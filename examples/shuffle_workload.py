#!/usr/bin/env python3
"""MapReduce-style shuffle: the east-west workload from the paper's intro.

Runs an all-to-all TCP transfer (every host sends to every other host)
over a PortLand fat tree, twice: once with the normal ECMP forwarding
and once with every switch pinned to a single uplink. The flow-
completion-time distribution shows why multipath fabrics exist — and
why PortLand keeps ECMP while remaining plug-and-play layer 2.

Run:  python examples/shuffle_workload.py
"""

from repro import Simulator, build_portland_fabric
from repro.metrics.tables import format_table
from repro.portland import forwarding as fwd
from repro.workloads.shuffle import ShuffleWorkload

BYTES_PER_FLOW = 50_000


def run_shuffle(pin_single_path: bool) -> dict:
    sim = Simulator(seed=5)
    fabric = build_portland_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    if pin_single_path:
        for agent in fabric.agents.values():
            up = agent.ldp.up_ports()
            if up:
                spec = fwd.default_up((up[0],))
                agent.switch.table.remove_by_name("default-up")
                agent.switch.table.install(spec[0], spec[1], spec[2], spec[3])

    shuffle = ShuffleWorkload(sim, fabric.host_list(),
                              bytes_per_flow=BYTES_PER_FLOW)
    start = sim.now
    shuffle.start()
    end = shuffle.run_until_done(timeout_s=120.0)
    stats = shuffle.fct_stats()
    return {
        "flows": shuffle.num_flows,
        "makespan": end - start,
        "fct_mean": stats.mean,
        "fct_p50": stats.p50,
        "fct_p99": stats.p99,
        "goodput": shuffle.aggregate_goodput_bps(end - start),
    }


def main() -> None:
    print(f"all-to-all shuffle, 16 hosts x {BYTES_PER_FLOW // 1000} KB "
          "to each of 15 peers (240 TCP flows)\n")
    print("running with ECMP (PortLand default) ...")
    ecmp = run_shuffle(pin_single_path=False)
    print("running with a single pinned uplink per switch ...")
    single = run_shuffle(pin_single_path=True)

    def row(label, r):
        return [label, f"{r['makespan'] * 1000:.0f}",
                f"{r['fct_mean'] * 1000:.1f}", f"{r['fct_p50'] * 1000:.1f}",
                f"{r['fct_p99'] * 1000:.1f}", f"{r['goodput'] / 1e9:.2f}"]

    print()
    print(format_table(
        ["forwarding", "makespan (ms)", "FCT mean (ms)", "p50", "p99",
         "aggregate Gb/s"],
        [row("ECMP multipath", ecmp), row("single uplink", single)],
    ))
    speedup = single["makespan"] / ecmp["makespan"]
    print(f"\nECMP finishes the shuffle {speedup:.1f}x faster — the fat"
          " tree's bisection bandwidth is only reachable with multipath"
          " forwarding, which flat L2 (one spanning tree) cannot use.")


if __name__ == "__main__":
    main()
