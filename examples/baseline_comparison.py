#!/usr/bin/env python3
"""Run the same fat tree under three designs and compare them head-on.

PortLand vs. flat layer 2 (learning switches + spanning tree) vs.
layer 3 (link-state ECMP routers): bring-up time, failure convergence,
forwarding state, and configuration burden — the quantitative story
behind the paper's Table 1.

Run:  python examples/baseline_comparison.py   (takes ~a minute)
"""

from repro import (
    LinkParams,
    Simulator,
    build_l2_fabric,
    build_l3_fabric,
    build_portland_fabric,
)
from repro.host.apps import UdpStreamReceiver, UdpStreamSender
from repro.metrics.tables import format_table

K = 4
FLOW = (0, 12)  # host indices: pod 0 -> pod 3


def measure_outage(sim, fabric, rx, fail_link, settle_until, end):
    fabric.link_between(*fail_link).fail()
    sim.run(until=end)
    gap, _s, _e = rx.max_gap(settle_until, end)
    return gap


def run_portland():
    sim = Simulator(seed=3)
    fabric = build_portland_fabric(
        sim, k=K, link_params=LinkParams(carrier_detect=False))
    fabric.start()
    bringup = fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    hosts = fabric.host_list()
    rx = UdpStreamReceiver(hosts[FLOW[1]], 5001)
    UdpStreamSender(hosts[FLOW[0]], hosts[FLOW[1]].ip, 5001,
                    rate_pps=1000).start()
    sim.run(until=1.0)
    # Cut the destination edge's busiest uplink (worst case: the failure
    # is remote to the sender, so the fabric manager must intervene).
    edge = fabric.switches["edge-p3-s0"]
    uplink = max((2, 3), key=lambda i: edge.ports[i].counters.rx_frames)
    outage = measure_outage(sim, fabric,
                            rx, ("edge-p3-s0", f"agg-p3-s{uplink - 2}"),
                            0.9, 3.0)
    state = max(len(s.table) + len(s.rewrite_table)
                for s in fabric.switches.values())
    return ["PortLand", f"{bringup:.2f}", f"{outage * 1000:.0f} ms",
            state, 0, "yes"]


def run_l2():
    sim = Simulator(seed=3)
    fabric = build_l2_fabric(sim, k=K)
    bringup = fabric.run_until_stp_converged()
    hosts = fabric.host_list()
    # Populate MAC tables fabric-wide (one broadcast per host suffices:
    # floods traverse the spanning tree, every bridge learns the source).
    for host in hosts:
        host.gratuitous_arp()
    sim.run(until=sim.now + 0.5)
    rx = UdpStreamReceiver(hosts[FLOW[1]], 5001)
    UdpStreamSender(hosts[FLOW[0]], hosts[FLOW[1]].ip, 5001,
                    rate_pps=1000).start()
    start = sim.now
    sim.run(until=start + 1.0)
    # Fail the uplink actually carrying the flow into the destination
    # edge (the spanning tree may run through either one).
    edge_name = fabric.tree.hosts[FLOW[1]].edge_switch
    edge = fabric.switches[edge_name]
    up_ports = [p for p in edge.ports
                if p.link is not None and p.index >= K // 2]
    active = max(up_ports, key=lambda p: p.counters.rx_frames)
    active.link.carrier_detect = False
    peer = active.peer.node.name
    outage = measure_outage(sim, fabric, rx, (edge_name, peer),
                            start + 0.9, start + 61.0)
    state = max(s.mac_table_size() for s in fabric.switches.values())
    return ["Flat L2 + STP", f"{bringup:.0f}", f"{outage:.1f} s",
            state, 0, "yes"]


def run_l3():
    sim = Simulator(seed=3)
    fabric = build_l3_fabric(sim, k=K,
                             link_params=LinkParams(carrier_detect=False))
    fabric.start()
    bringup = fabric.run_until_converged()
    hosts = fabric.host_list()
    rx = UdpStreamReceiver(hosts[FLOW[1]], 5001)
    UdpStreamSender(hosts[FLOW[0]], hosts[FLOW[1]].ip, 5001,
                    rate_pps=1000).start()
    start = sim.now
    sim.run(until=start + 1.0)
    edge_name = fabric.tree.hosts[FLOW[1]].edge_switch
    router = fabric.routers[edge_name]
    active = max(router._neighbors,
                 key=lambda i: router.ports[i].counters.rx_frames)
    peer = router.ports[active].peer.node.name
    outage = measure_outage(sim, fabric, rx, (edge_name, peer),
                            start + 0.9, start + 15.0)
    state = max(r.route_table_size() for r in fabric.routers.values())
    return ["L3 link-state", f"{bringup:.2f}", f"{outage:.1f} s",
            state, fabric.total_config_lines(), "no (IP = location)"]


def main() -> None:
    print(f"same k={K} fat tree, three control planes\n")
    rows = []
    print("running PortLand ...")
    rows.append(run_portland())
    print("running flat L2 + spanning tree ...")
    rows.append(run_l2())
    print("running L3 link-state ECMP ...")
    rows.append(run_l3())
    print()
    print(format_table(
        ["design", "bring-up (s)", "failure outage", "max fwd entries",
         "config lines", "seamless VM migration"],
        rows,
    ))
    print("\n(the flat-L2 MAC table grows with hosts; PortLand and L3 stay"
          " O(k) — but only PortLand needs zero configuration and keeps"
          " host IPs location-independent)")


if __name__ == "__main__":
    main()
