#!/usr/bin/env python3
"""Multicast demo: fabric-manager-computed trees and fault repair.

Receivers in three pods join a group with plain IGMP; the fabric
manager picks a core, installs one flow entry per on-tree switch, and —
when we cut a tree link — recomputes and reinstalls within the LDP
detection window.

Run:  python examples/multicast_demo.py
"""

from repro import LinkParams, Simulator, build_portland_fabric
from repro.host.apps import MulticastReceiver, MulticastSender
from repro.net import ip


def main() -> None:
    sim = Simulator(seed=24)
    fabric = build_portland_fabric(
        sim, k=4, link_params=LinkParams(carrier_detect=False))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()

    group = ip("239.2.2.2")
    hosts = fabric.host_list()
    members = [hosts[5], hosts[9], hosts[13]]
    receivers = [MulticastReceiver(h, group, 7500) for h in members]
    print(f"receivers joined {group}: "
          + ", ".join(h.name for h in members))
    sim.run(until=sim.now + 0.2)

    sender = MulticastSender(hosts[0], group, 7500, rate_pps=1000)
    sender.start()
    print(f"sender {hosts[0].name} streaming at 1000 pkt/s")
    sim.run(until=1.0)

    fm = fabric.fabric_manager
    state = fm.multicast.groups[group]
    id_to_name = {a.switch_id: n for n, a in fabric.agents.items()}
    print(f"\ninstalled tree (core = {id_to_name[state.core]}):")
    for switch_id, ports in sorted(state.installed.items(),
                                   key=lambda kv: id_to_name[kv[0]]):
        print(f"  {id_to_name[switch_id]:12s} -> ports {list(ports)}")
    for rx in receivers:
        print(f"  {rx.host.name}: {rx.received} datagrams")

    # Cut a tree link: core -> the aggregation switch of a receiver pod.
    agg_name = next(id_to_name[sid] for sid in state.installed
                    if id_to_name[sid].startswith("agg-p3"))
    core_name = id_to_name[state.core]
    print(f"\n[t=1.0s] cutting tree link {core_name} <-> {agg_name} "
          "(silent failure)")
    fabric.link_between(core_name, agg_name).fail()
    sim.run(until=2.5)

    print("per-receiver outage around the failure:")
    for rx in receivers:
        gap, start, _ = rx.max_gap(0.9, 2.5)
        note = "affected" if gap > 0.01 else "untouched (off the failed subtree)"
        print(f"  {rx.host.name}: {gap * 1000:6.1f} ms  [{note}]")

    state = fm.multicast.groups[group]
    print(f"\ntree repaired: new core = {id_to_name[state.core]}")
    print(f"trees recomputed so far: {fm.multicast.recomputes}")


if __name__ == "__main__":
    main()
