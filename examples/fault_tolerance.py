#!/usr/bin/env python3
"""Fault tolerance demo: fail links under live traffic and watch the
fabric converge in tens of milliseconds.

A CBR UDP flow crosses pods while we cut (silently — no carrier signal,
so detection is purely LDP keepalive loss) first a core link on its
path, then the edge uplink it fails over to. The receiver's arrival
gaps are the convergence times; compare them with spanning tree's tens
of seconds.

Run:  python examples/fault_tolerance.py
"""

from repro import LinkParams, Simulator, build_portland_fabric
from repro.host.apps import UdpStreamReceiver, UdpStreamSender


def active_path(fabric, edge_name):
    """(agg, core) currently carrying the most traffic from this edge."""
    half = fabric.tree.k // 2
    edge = fabric.switches[edge_name]
    uplink = max(range(half, fabric.tree.k),
                 key=lambda i: edge.ports[i].counters.tx_frames)
    pod = int(edge_name.split("-")[1][1:])
    agg_name = f"agg-p{pod}-s{uplink - half}"
    agg = fabric.switches[agg_name]
    core_port = max(range(half, fabric.tree.k),
                    key=lambda i: agg.ports[i].counters.tx_frames)
    core_name = f"core-{(uplink - half) * half + (core_port - half)}"
    return agg_name, core_name


def main() -> None:
    sim = Simulator(seed=7)
    fabric = build_portland_fabric(
        sim, k=4, link_params=LinkParams(carrier_detect=False))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    config = fabric.config
    print(f"LDP keepalives every {config.ldm_period_s * 1000:.0f} ms, "
          f"declared dead after {config.miss_threshold} misses "
          f"(~{config.ldm_period_s * config.miss_threshold * 1000:.0f} ms "
          "detection)\n")

    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[12]  # pod 0 -> pod 3
    rx = UdpStreamReceiver(dst, 5001)
    tx = UdpStreamSender(src, dst.ip, 5001, rate_pps=1000)
    tx.start()
    print(f"streaming {src.name} -> {dst.name} at 1000 pkt/s")
    sim.run(until=1.0)

    agg, core = active_path(fabric, "edge-p0-s0")
    print(f"\n[t=1.0s] cutting {agg} <-> {core} (on the flow's path)")
    fabric.link_between(agg, core).fail()
    sim.run(until=2.0)
    gap, start, _ = rx.max_gap(0.9, 2.0)
    print(f"  outage: {gap * 1000:.1f} ms starting at t={start:.3f}s")
    print(f"  fault matrix now has {len(fabric.fabric_manager.fault_matrix)}"
          " entry")

    agg2, _ = active_path(fabric, "edge-p0-s0")
    print(f"\n[t=2.0s] cutting the edge uplink edge-p0-s0 <-> {agg2}")
    fabric.link_between("edge-p0-s0", agg2).fail()
    sim.run(until=3.0)
    gap, start, _ = rx.max_gap(1.9, 3.0)
    print(f"  outage: {gap * 1000:.1f} ms starting at t={start:.3f}s")

    print("\n[t=3.0s] recovering both links")
    for link in list(fabric.links.values()):
        if link.failed:
            link.recover()
    sim.run(until=4.0)
    print(f"  fault matrix size: {len(fabric.fabric_manager.fault_matrix)}")
    late = [t for t in rx.arrival_times() if t > 3.8]
    print(f"  flow healthy again: {len(late)} packets in the last 200 ms")
    total_sent = tx.next_seq
    print(f"\ntotal: {rx.received}/{total_sent} packets delivered "
          f"({100 * rx.received / total_sent:.2f}%) across two failures")


if __name__ == "__main__":
    main()
