#!/usr/bin/env python3
"""Capture simulated traffic to a Wireshark-readable pcap file.

Taps a host and its edge switch, runs a ping plus a short TCP burst,
and writes everything they receive — real Ethernet/ARP/IPv4/TCP bytes,
not a transcript — to ``portland.pcap``.

Run:  python examples/packet_capture.py
      wireshark portland.pcap       # or: tcpdump -r portland.pcap
"""

from repro import Simulator, build_portland_fabric
from repro.host.apps import TcpBulkSender, TcpSink, UdpEchoServer, UdpPinger
from repro.net.pcap import PcapTap, read_pcap_headers

OUTPUT = "portland.pcap"


def main() -> None:
    sim = Simulator(seed=9)
    fabric = build_portland_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()

    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[13]
    tap = PcapTap(OUTPUT, [dst, fabric.switches["edge-p0-s0"]])

    UdpEchoServer(dst, 7)
    pinger = UdpPinger(src, dst.ip)
    pinger.ping()
    sim.run(until=sim.now + 0.05)

    sink = TcpSink(dst, 9000)
    TcpBulkSender(src, dst.ip, 9000, total_bytes=200_000)
    sim.run(until=sim.now + 0.2)
    tap.detach()

    records = read_pcap_headers(OUTPUT)
    total_bytes = sum(length for _t, length in records)
    print(f"wrote {OUTPUT}: {len(records)} frames, {total_bytes} bytes")
    print(f"time span: {records[0][0]:.6f}s .. {records[-1][0]:.6f}s (simulated)")
    print("\nframe-size histogram:")
    buckets = {"<= 64": 0, "65-199": 0, "200-1499": 0, ">= 1500": 0}
    for _t, length in records:
        if length <= 64:
            buckets["<= 64"] += 1
        elif length < 200:
            buckets["65-199"] += 1
        elif length < 1500:
            buckets["200-1499"] += 1
        else:
            buckets[">= 1500"] += 1
    for label, count in buckets.items():
        print(f"  {label:>9s}: {count}")
    print("\nopen it in Wireshark: the ARP request/reply pair shows the"
          " proxy-ARP PMAC, and the TCP stream decodes end to end.")


if __name__ == "__main__":
    main()
