#!/usr/bin/env python3
"""VM migration demo: a TCP flow follows its endpoint across the fabric.

A bulk TCP transfer streams into a "VM". Mid-flow, the VM migrates to an
edge switch in a different pod (keeping its IP and MAC). PortLand's
machinery — re-registration, fabric-manager invalidation, the old
edge's trap + unicast gratuitous ARP — repoints the sender without
breaking the connection.

Run:  python examples/vm_migration.py
"""

from repro import Simulator, build_portland_fabric
from repro.host.apps import TcpBulkSender, TcpSink
from repro.portland.migration import VmMigration
from repro.topology import build_fat_tree


def main() -> None:
    sim = Simulator(seed=11)
    # One host per edge leaves a spare port on every edge switch —
    # somewhere for the VM to land.
    tree = build_fat_tree(4, hosts_per_edge=1)
    fabric = build_portland_fabric(sim, tree=tree)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()

    hosts = fabric.host_list()
    vm, sender = hosts[7], hosts[0]
    fm = fabric.fabric_manager
    print(f"VM {vm.name} (ip {vm.ip}) starts at edge-p3-s1")
    print(f"  PMAC: {fm.hosts_by_ip[vm.ip].pmac}")

    sink = TcpSink(vm, 9000, rate_bin_s=0.1)
    bulk = TcpBulkSender(sender, vm.ip, 9000)
    sim.run(until=1.0)
    print(f"\n[t=1.0s] TCP flow {sender.name} -> {vm.name} at "
          f"{sink.total_bytes * 8 / 1e9:.2f} Gbit transferred; migrating "
          "(200 ms stop-and-copy) to edge-p1-s0 ...")

    migration = VmMigration(fabric, vm.name, new_edge="edge-p1-s0",
                            new_port=1, downtime_s=0.2)
    migration.start()
    sim.run(until=4.0)

    record = fm.hosts_by_ip[vm.ip]
    print(f"\nafter migration:")
    print(f"  new PMAC: {record.pmac} (same IP {record.ip}, same AMAC)")
    print(f"  sender's ARP cache now maps {vm.ip} -> "
          f"{sender.arp_cache.lookup(vm.ip, sim.now)}")
    print(f"  TCP connection state: {bulk.conn.state.value} "
          f"(survived; {bulk.conn.segments_retransmitted} retransmissions)")

    print("\ngoodput timeline (100 ms bins):")
    for t, v in sink.goodput_series(0.5, 4.0, ):
        bar = "#" * int(v * 8 / 1e9 * 40)
        print(f"  t={t:4.1f}s {v * 8 / 1e6:7.1f} Mb/s {bar}")


if __name__ == "__main__":
    main()
