#!/usr/bin/env python3
"""Quickstart: bring up a PortLand fabric and send traffic across it.

Builds a k=4 fat tree (20 switches, 16 hosts), lets LDP discover every
switch's location with zero configuration, registers the hosts with the
fabric manager, then runs a ping and a cross-pod TCP transfer.

Run:  python examples/quickstart.py
"""

from repro import Simulator, build_portland_fabric
from repro.host.apps import TcpBulkSender, TcpSink, UdpEchoServer, UdpPinger
from repro.portland.messages import SwitchLevel
from repro.portland.pmac import Pmac


def main() -> None:
    sim = Simulator(seed=42)
    fabric = build_portland_fabric(sim, k=4)
    fabric.start()

    located_at = fabric.run_until_located()
    print(f"LDP converged in {located_at * 1000:.0f} ms of simulated time:")
    for level in (SwitchLevel.EDGE, SwitchLevel.AGGREGATION, SwitchLevel.CORE):
        count = sum(1 for a in fabric.agents.values() if a.level is level)
        print(f"  {count:2d} {level.name.lower()} switches")

    fabric.announce_hosts()
    fabric.run_until_registered()
    fm = fabric.fabric_manager
    print(f"fabric manager knows {len(fm.hosts_by_ip)} hosts")

    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]
    print(f"\nping {src.name} ({src.ip}) -> {dst.name} ({dst.ip}):")
    UdpEchoServer(dst, 7)
    pinger = UdpPinger(src, dst.ip)
    pinger.ping()
    sim.run(until=sim.now + 0.1)
    print(f"  rtt = {pinger.rtts[0][1] * 1e6:.0f} us "
          f"(first packet: includes proxy-ARP resolution via the FM)")
    pinger.ping()
    sim.run(until=sim.now + 0.1)
    print(f"  rtt = {pinger.rtts[1][1] * 1e6:.0f} us (warm ARP cache)")

    pmac = src.arp_cache.lookup(dst.ip, sim.now)
    decoded = Pmac.from_mac(pmac)
    print(f"\n{src.name} believes {dst.ip} is at {pmac}")
    print(f"  ...which is really the PMAC {decoded} — the host's location,"
          " not its hardware address")
    print(f"  (the real AMAC is {dst.mac}; the edge switch rewrites)")

    print(f"\nbulk TCP {hosts[1].name} -> {hosts[14].name} for 0.5 s:")
    sink = TcpSink(hosts[14], 9000, rate_bin_s=0.1)
    TcpBulkSender(hosts[1], hosts[14].ip, 9000)
    start = sim.now
    sim.run(until=start + 0.5)
    goodput = sink.total_bytes * 8 / 0.5 / 1e9
    print(f"  goodput = {goodput:.2f} Gb/s on 1 Gb/s links")

    print(f"\nforwarding state (the O(k) claim):")
    for name in ("edge-p0-s0", "agg-p0-s0", "core-0"):
        switch = fabric.switches[name]
        print(f"  {name:12s} {len(switch.table):2d} forwarding entries,"
              f" {len(switch.rewrite_table):2d} rewrite entries")


if __name__ == "__main__":
    main()
