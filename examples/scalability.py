#!/usr/bin/env python3
"""Scalability demo: the same zero-config bring-up from 16 to 250 hosts.

Grows the fat tree and shows the paper's three scaling claims live:
discovery time stays flat (LDP is purely local), per-switch state grows
with k (not with hosts), and the fabric manager's bring-up load grows
linearly with fabric size.

Run:  python examples/scalability.py
"""

from repro import Simulator, build_portland_fabric
from repro.metrics.tables import format_table


def main() -> None:
    rows = []
    for k in (4, 6, 8, 10):
        sim = Simulator(seed=k)
        fabric = build_portland_fabric(sim, k=k)
        fabric.start()
        located = fabric.run_until_located(timeout_s=10.0)
        fabric.announce_hosts()
        fabric.run_until_registered(timeout_s=10.0)
        flat_l2_equivalent = len(fabric.hosts)  # MAC entries a bridge needs
        max_state = max(len(s.table) + len(s.rewrite_table)
                        for s in fabric.switches.values())
        rows.append([
            k,
            len(fabric.switches),
            len(fabric.hosts),
            f"{located * 1000:.0f} ms",
            max_state,
            flat_l2_equivalent,
        ])
        print(f"k={k}: done ({len(fabric.switches)} switches,"
              f" {len(fabric.hosts)} hosts)")

    print()
    print(format_table(
        ["k", "switches", "hosts", "LDP bring-up",
         "PortLand max entries/switch", "flat-L2 entries/switch"],
        rows,
        title="zero-configuration bring-up at increasing scale",
    ))
    print("\ndiscovery time is constant (timers, not size, dominate);"
          "\nPortLand state tracks k while a flat-L2 bridge tracks hosts.")


if __name__ == "__main__":
    main()
