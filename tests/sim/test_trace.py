"""Unit tests for the trace bus."""

from repro.sim import Simulator
from repro.sim.trace import TraceBus, TraceCollector


def test_exact_subscription_receives_records():
    bus = TraceBus()
    seen = []
    bus.subscribe("link.drop", seen.append)
    bus.emit(1.0, "link.drop", "l0", reason="full")
    assert len(seen) == 1
    assert seen[0].detail["reason"] == "full"


def test_prefix_subscription_matches_children():
    bus = TraceBus()
    seen = []
    bus.subscribe("link", seen.append)
    bus.emit(1.0, "link.drop", "l0")
    bus.emit(2.0, "link.fail", "l1")
    bus.emit(3.0, "host.arp", "h0")
    assert [r.category for r in seen] == ["link.drop", "link.fail"]


def test_wildcard_receives_everything():
    bus = TraceBus()
    seen = []
    bus.subscribe("*", seen.append)
    bus.emit(1.0, "a.b", "x")
    bus.emit(2.0, "c", "y")
    assert len(seen) == 2


def test_unsubscribed_categories_are_cheap_and_silent():
    bus = TraceBus()
    assert not bus.wants("link.drop")
    bus.emit(1.0, "link.drop", "l0")  # no handler: no error
    bus.subscribe("link.drop", lambda r: None)
    assert bus.wants("link.drop")
    assert bus.wants("link.other")  # same top-level prefix is active


def test_unsubscribe_removes_handler():
    bus = TraceBus()
    seen = []
    bus.subscribe("x", seen.append)
    bus.unsubscribe("x", seen.append)
    bus.emit(1.0, "x", "s")
    assert seen == []
    bus.unsubscribe("x", seen.append)  # idempotent
    bus.unsubscribe("*", seen.append)  # not registered: no error


def test_unsubscribe_deactivates_prefix():
    # Regression: unsubscribe used to leave the top-level prefix marked
    # active forever, so guarded emitters kept paying to build records
    # nobody would receive.
    bus = TraceBus()
    seen = []
    bus.subscribe("verify.hop", seen.append)
    assert bus.wants("verify.hop")
    bus.unsubscribe("verify.hop", seen.append)
    assert not bus.wants("verify.hop")
    assert not bus.wants("verify.anything")


def test_unsubscribe_keeps_prefix_while_peers_remain():
    bus = TraceBus()
    first, second = [], []
    bus.subscribe("verify.hop", first.append)
    bus.subscribe("verify.miss", second.append)
    bus.unsubscribe("verify.hop", first.append)
    # Another subscriber still shares the "verify" prefix.
    assert bus.wants("verify.miss")
    bus.emit(1.0, "verify.miss", "s")
    assert len(second) == 1
    bus.unsubscribe("verify.miss", second.append)
    assert not bus.wants("verify.miss")


def test_duplicate_subscribe_unsubscribe_balances_prefix():
    bus = TraceBus()
    seen = []
    bus.subscribe("x.y", seen.append)
    bus.subscribe("x.y", seen.append)  # same handler registered twice
    bus.unsubscribe("x.y", seen.append)
    assert bus.wants("x.y")  # one registration remains
    bus.unsubscribe("x.y", seen.append)
    assert not bus.wants("x.y")


def test_collector_close_detaches():
    sim = Simulator()
    collector = TraceCollector(sim.trace, "evt")
    sim.trace.emit(1.0, "evt", "s")
    collector.close()
    assert not sim.trace.wants("evt")
    sim.trace.emit(2.0, "evt", "s")
    assert collector.times() == [1.0]
    collector.close()  # idempotent


def test_collector_gathers_times():
    sim = Simulator()
    collector = TraceCollector(sim.trace, "evt")
    sim.trace.emit(1.0, "evt", "s")
    sim.trace.emit(2.0, "evt.sub", "s")
    assert collector.times() == [1.0, 2.0]
    assert len(collector) == 2
