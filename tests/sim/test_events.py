"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, EventQueue


def test_pop_orders_by_time():
    q = EventQueue()
    seen = []
    q.push(3.0, seen.append, ("c",))
    q.push(1.0, seen.append, ("a",))
    q.push(2.0, seen.append, ("b",))
    while (event := q.pop()) is not None:
        event.callback(*event.args)
    assert seen == ["a", "b", "c"]


def test_same_time_orders_by_priority_then_fifo():
    q = EventQueue()
    order = []
    q.push(1.0, order.append, ("normal-1",), priority=PRIORITY_NORMAL)
    q.push(1.0, order.append, ("low",), priority=PRIORITY_LOW)
    q.push(1.0, order.append, ("high",), priority=PRIORITY_HIGH)
    q.push(1.0, order.append, ("normal-2",), priority=PRIORITY_NORMAL)
    while (event := q.pop()) is not None:
        event.callback(*event.args)
    assert order == ["high", "normal-1", "normal-2", "low"]


def test_cancel_skips_event():
    q = EventQueue()
    fired = []
    event = q.push(1.0, fired.append, ("x",))
    event.cancel()
    q.note_cancelled()
    assert q.pop() is None
    assert fired == []
    assert len(q) == 0


def test_len_counts_only_live_events():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    e1.cancel()
    q.note_cancelled()
    assert len(q) == 1


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    e1.cancel()
    q.note_cancelled()
    assert q.peek_time() == 2.0


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.push(float("nan"), lambda: None)


def test_clear_empties_queue():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.pop() is None
