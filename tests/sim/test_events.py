"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, EventQueue


def test_pop_orders_by_time():
    q = EventQueue()
    seen = []
    q.push(3.0, seen.append, ("c",))
    q.push(1.0, seen.append, ("a",))
    q.push(2.0, seen.append, ("b",))
    while (event := q.pop()) is not None:
        event.callback(*event.args)
    assert seen == ["a", "b", "c"]


def test_same_time_orders_by_priority_then_fifo():
    q = EventQueue()
    order = []
    q.push(1.0, order.append, ("normal-1",), priority=PRIORITY_NORMAL)
    q.push(1.0, order.append, ("low",), priority=PRIORITY_LOW)
    q.push(1.0, order.append, ("high",), priority=PRIORITY_HIGH)
    q.push(1.0, order.append, ("normal-2",), priority=PRIORITY_NORMAL)
    while (event := q.pop()) is not None:
        event.callback(*event.args)
    assert order == ["high", "normal-1", "normal-2", "low"]


def test_cancel_skips_event():
    q = EventQueue()
    fired = []
    event = q.push(1.0, fired.append, ("x",))
    event.cancel()
    q.note_cancelled()
    assert q.pop() is None
    assert fired == []
    assert len(q) == 0


def test_len_counts_only_live_events():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    e1.cancel()
    q.note_cancelled()
    assert len(q) == 1


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    e1.cancel()
    q.note_cancelled()
    assert q.peek_time() == 2.0


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.push(float("nan"), lambda: None)


def test_clear_empties_queue():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.pop() is None


# ----------------------------------------------------------------------
# Heap compaction


def test_heap_stays_bounded_under_cancel_churn():
    # Regression: lazy cancellation used to leave every cancelled entry
    # in the heap until it reached the top, so a constantly re-armed
    # far-future timer grew the heap without bound.
    q = EventQueue()
    for i in range(10_000):
        event = q.push(1000.0 + i, lambda: None)
        event.cancel()
        q.note_cancelled()
        # One live far-future event so the heap is never trivially empty.
        if i == 0:
            q.push(2000.0, lambda: None)
    assert len(q) == 1
    assert q.heap_size <= 2 * (len(q) + 1) + 64
    assert q.compactions > 0
    assert q.stats()["compacted_entries"] >= 10_000 - q.heap_size


def test_compaction_preserves_pop_order():
    q = EventQueue()
    fired = []
    keep = [q.push(float(t), fired.append, (t,)) for t in range(100)]
    cancelled = [q.push(t + 0.5, fired.append, (-t,)) for t in range(200)]
    for event in cancelled:
        event.cancel()
        q.note_cancelled()
    assert q.compactions > 0
    while (event := q.pop()) is not None:
        event.callback(*event.args)
    assert fired == list(range(100))
    assert len(keep) == 100  # silence unused warning


def test_no_compaction_below_min_heap_size():
    q = EventQueue()
    events = [q.push(float(i), lambda: None) for i in range(20)]
    for event in events[:15]:
        event.cancel()
        q.note_cancelled()
    # 15 dead vs 5 live, but the heap is tiny: not worth a sweep.
    assert q.compactions == 0
    assert q.heap_size == 20


def test_queue_stats_counters():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    e1.cancel()
    q.note_cancelled()
    q.pop()
    stats = q.stats()
    assert stats["pushes"] == 2
    assert stats["pops"] == 1
    assert stats["cancellations"] == 1
    assert stats["peak_heap"] == 2
    assert stats["live"] == 0


# ----------------------------------------------------------------------
# Bounded draining (the sharded kernel's run_before substrate)


def test_pop_before_respects_bound():
    q = EventQueue()
    q.push(1.0, lambda: None, ())
    q.push(2.0, lambda: None, ())
    q.push(3.0, lambda: None, ())
    assert q.pop_before(2.0).time == 1.0
    assert q.pop_before(2.0) is None          # 2.0 is not strictly before
    assert q.pop_before(2.0 + 1e-12).time == 2.0
    assert q.pop_before(10.0).time == 3.0
    assert q.pop_before(10.0) is None         # empty


def test_pop_before_skips_cancelled_heads():
    q = EventQueue()
    doomed = q.push(1.0, lambda: None, ())
    q.push(1.5, lambda: None, ())
    doomed.cancel()
    q.note_cancelled()
    assert q.pop_before(2.0).time == 1.5
    assert q.pop_before(2.0) is None


def test_compaction_correct_under_bounded_drain():
    """Heap compaction must not lose or reorder events when the queue is
    drained window-by-window with live events parked beyond the bound."""
    q = EventQueue()
    far = [q.push(100.0 + i, lambda: None, ()) for i in range(10)]
    popped = []
    for window in range(8):
        base = float(window)
        events = [q.push(base + i / 1000.0, lambda: None, ())
                  for i in range(200)]
        for i, event in enumerate(events):
            if i % 4 != 0:                    # cancel 3 of every 4
                event.cancel()
                q.note_cancelled()
        while (event := q.pop_before(base + 1.0)) is not None:
            popped.append(event.time)
    assert popped == sorted(popped)
    assert len(popped) == 8 * 50              # survivors of each window
    assert q.stats()["compactions"] >= 1      # churn actually compacted
    assert len(q) == len(far)                 # parked events all intact
    remaining = [q.pop().time for _ in range(len(far))]
    assert remaining == sorted(e.time for e in far)
