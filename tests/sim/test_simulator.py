"""Unit tests for the simulator core."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    times = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.schedule(0.5, lambda: times.append(sim.now))
    end = sim.run()
    assert times == [0.5, 1.5]
    assert end == 1.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_when_queue_drains():
    sim = Simulator()
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_schedule_in_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_via_simulator():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.cancel(event)  # idempotent
    sim.cancel(None)  # no-op
    sim.run()
    assert fired == []
    assert sim.pending_events() == 0


def test_stop_interrupts_run():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, fired.append, "second")
    sim.run()
    assert fired == ["first"]
    # A later run picks the remaining event up.
    sim.run()
    assert fired == ["first", "second"]


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_max_events_guard():
    sim = Simulator()
    sim.max_events = 10

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run()


def test_reentrant_run_rejected():
    sim = Simulator()

    def inner():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(0.0, inner)
    sim.run()
