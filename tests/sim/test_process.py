"""Unit tests for timers and periodic tasks."""

import pytest

from repro.sim import PeriodicTask, Simulator, Timer


def test_timer_fires_once():
    sim = Simulator()
    fired = []
    timer = Timer(sim, fired.append, "x")
    timer.start(1.0)
    assert timer.armed
    assert timer.expires_at == 1.0
    sim.run()
    assert fired == ["x"]
    assert not timer.armed


def test_timer_restart_replaces_earlier_arming():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.start(3.0)  # re-arm before expiry
    sim.run()
    assert fired == [3.0]


def test_timer_stop_prevents_firing():
    sim = Simulator()
    fired = []
    timer = Timer(sim, fired.append, "x")
    timer.start(1.0)
    timer.stop()
    sim.run()
    assert fired == []


def test_timer_can_be_rearmed_from_callback():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: None)

    def cb():
        fired.append(sim.now)
        if len(fired) < 3:
            timer.start(1.0)

    timer._callback = cb
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_periodic_task_fires_at_period():
    sim = Simulator()
    ticks = []
    task = PeriodicTask(sim, 0.5, lambda: ticks.append(sim.now))
    task.start()
    sim.run(until=2.2)
    assert ticks == [0.5, 1.0, 1.5, 2.0]


def test_periodic_task_stop_and_restart():
    sim = Simulator()
    ticks = []
    task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
    task.start(0.0)
    sim.run(until=2.5)
    task.stop()
    sim.run(until=5.0)
    count_after_stop = len(ticks)
    task.start()
    sim.run(until=7.5)
    assert len(ticks) > count_after_stop


def test_periodic_task_jitter_stays_in_bounds():
    sim = Simulator(seed=42)
    ticks = []
    task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now), jitter=0.2)
    task.start(0.0)
    sim.run(until=50.0)
    gaps = [b - a for a, b in zip(ticks, ticks[1:])]
    assert gaps, "task never ticked"
    assert all(0.8 <= g <= 1.2 for g in gaps)
    assert len(set(round(g, 9) for g in gaps)) > 1, "jitter had no effect"


def test_periodic_task_rejects_bad_params():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTask(sim, 0.0, lambda: None)
    with pytest.raises(ValueError):
        PeriodicTask(sim, 1.0, lambda: None, jitter=1.5)


def test_periodic_start_is_idempotent():
    sim = Simulator()
    ticks = []
    task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
    task.start(0.5)
    task.start(0.1)  # ignored: already running
    sim.run(until=1.4)
    assert ticks == [0.5]
