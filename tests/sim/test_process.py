"""Unit tests for timers and periodic tasks."""

import pytest

from repro.sim import PeriodicTask, Simulator, Timer


def test_timer_fires_once():
    sim = Simulator()
    fired = []
    timer = Timer(sim, fired.append, "x")
    timer.start(1.0)
    assert timer.armed
    assert timer.expires_at == 1.0
    sim.run()
    assert fired == ["x"]
    assert not timer.armed


def test_timer_restart_replaces_earlier_arming():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.start(3.0)  # re-arm before expiry
    sim.run()
    assert fired == [3.0]


def test_timer_stop_prevents_firing():
    sim = Simulator()
    fired = []
    timer = Timer(sim, fired.append, "x")
    timer.start(1.0)
    timer.stop()
    sim.run()
    assert fired == []


def test_timer_can_be_rearmed_from_callback():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: None)

    def cb():
        fired.append(sim.now)
        if len(fired) < 3:
            timer.start(1.0)

    timer._callback = cb
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_timer_rearm_later_reuses_pending_event():
    # The slotted re-arm path: pushing the deadline out must not push a
    # fresh heap entry per call (the TCP-retransmit-on-every-ACK pattern).
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    pushes_before = sim.queue_stats()["pushes"]
    for _ in range(500):
        timer.start(1.0)  # same deadline: reuse
    timer.start(5.0)  # later deadline: still reuse
    assert sim.queue_stats()["pushes"] == pushes_before
    assert timer.expires_at == 5.0
    sim.run()
    # One deferral hop (the old t=1.0 entry sliding to t=5.0) is allowed.
    assert fired == [5.0]


def test_timer_rearm_earlier_fires_early():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(3.0)
    timer.start(1.0)  # earlier: must cancel + re-push
    assert timer.expires_at == 1.0
    sim.run()
    assert fired == [1.0]


def test_timer_stop_during_deferral_window():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.start(4.0)  # deadline slides out; heap entry still at t=1.0
    sim.run(until=2.0)  # the stale entry pops and defers itself
    assert timer.armed and timer.expires_at == 4.0
    timer.stop()
    sim.run()
    assert fired == []
    assert not timer.armed


def test_timer_heap_bounded_under_repeated_rearm():
    # Regression for the unbounded-heap bug: a timer re-armed on every
    # "ACK" must keep O(1) heap entries, not one cancelled entry per ACK.
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    rearms = 5000

    def ack(n: int) -> None:
        timer.start(10.0)  # watchdog far beyond the next ack
        if n:
            sim.schedule(0.001, ack, n - 1)

    ack(rearms)
    sim.run(until=rearms * 0.001 + 0.5)
    heap = sim.queue_stats()["heap_size"]
    assert heap <= 70, f"heap grew to {heap} entries under timer re-arm"


def test_periodic_task_fires_at_period():
    sim = Simulator()
    ticks = []
    task = PeriodicTask(sim, 0.5, lambda: ticks.append(sim.now))
    task.start()
    sim.run(until=2.2)
    assert ticks == [0.5, 1.0, 1.5, 2.0]


def test_periodic_task_stop_and_restart():
    sim = Simulator()
    ticks = []
    task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
    task.start(0.0)
    sim.run(until=2.5)
    task.stop()
    sim.run(until=5.0)
    count_after_stop = len(ticks)
    task.start()
    sim.run(until=7.5)
    assert len(ticks) > count_after_stop


def test_periodic_task_jitter_stays_in_bounds():
    sim = Simulator(seed=42)
    ticks = []
    task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now), jitter=0.2)
    task.start(0.0)
    sim.run(until=50.0)
    gaps = [b - a for a, b in zip(ticks, ticks[1:])]
    assert gaps, "task never ticked"
    assert all(0.8 <= g <= 1.2 for g in gaps)
    assert len(set(round(g, 9) for g in gaps)) > 1, "jitter had no effect"


def test_periodic_task_rejects_bad_params():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTask(sim, 0.0, lambda: None)
    with pytest.raises(ValueError):
        PeriodicTask(sim, 1.0, lambda: None, jitter=1.5)


def test_periodic_start_is_idempotent():
    sim = Simulator()
    ticks = []
    task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
    task.start(0.5)
    task.start(0.1)  # ignored: already running
    sim.run(until=1.4)
    assert ticks == [0.5]


def test_timer_slotted_rearm_across_run_before_windows():
    """The slotted re-arm optimisation (a deferred heap entry sliding to
    a later deadline) must behave identically when time advances via
    bounded ``run_before`` windows instead of one ``run``."""
    def scenario(windowed: bool) -> tuple[list[float], float]:
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(0.5)
        # Push the deadline out repeatedly: each re-arm keeps the old
        # heap entry, which must defer itself across window boundaries.
        for i in range(1, 6):
            sim.schedule(i * 0.3, timer.start, 0.5)
        if windowed:
            bound = 0.0
            while bound < 3.0:
                bound += 0.25                 # boundaries hit deferrals
                sim.run_before(bound)
            sim.run(until=3.0)
        else:
            sim.run(until=3.0)
        return fired, sim.now

    assert scenario(windowed=True) == scenario(windowed=False)
    fired, now = scenario(windowed=True)
    assert fired == [pytest.approx(2.0)]      # last re-arm at 1.5 + 0.5
    assert now == 3.0
