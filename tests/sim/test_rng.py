"""Unit tests for deterministic random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(7).stream("ldp/sw1")
    b = RandomStreams(7).stream("ldp/sw1")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RandomStreams(7)
    a = streams.stream("a")
    b = streams.stream("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RandomStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_creation_order_does_not_matter():
    s1 = RandomStreams(3)
    s1.stream("first").random()
    v1 = s1.stream("second").random()

    s2 = RandomStreams(3)
    v2 = s2.stream("second").random()  # created without touching "first"
    assert v1 == v2


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x")
    b = RandomStreams(2).stream("x")
    assert a.random() != b.random()


def test_spawn_derives_stable_child():
    parent = RandomStreams(9)
    c1 = parent.spawn("rep-0")
    c2 = RandomStreams(9).spawn("rep-0")
    assert c1.stream("x").random() == c2.stream("x").random()
    assert c1.master_seed != parent.master_seed


def test_child_seed_is_stable_across_releases():
    from repro.sim import child_seed

    # Exact pinned values: shard seeds feed the determinism contract of
    # the parallel kernel, so the derivation may never silently change.
    assert child_seed(1, 0) == child_seed(1, 0)
    assert child_seed(1, 0) != child_seed(1, 1)
    assert child_seed(1, 0) != child_seed(2, 0)
    assert child_seed(7, "fm") != child_seed(7, "pod-0")
    baseline = {(1, 0): child_seed(1, 0), (1, 1): child_seed(1, 1),
                (123, 5): child_seed(123, 5)}
    for (root, shard), value in baseline.items():
        assert child_seed(root, shard) == value
        assert 0 <= value < 2 ** 64


def test_child_seed_known_values():
    from repro.sim import child_seed

    # sha256("1/shard/0")[:8] and sha256("7/shard/3")[:8], big-endian.
    import hashlib

    def expect(root, shard):
        digest = hashlib.sha256(f"{root}/shard/{shard}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    assert child_seed(1, 0) == expect(1, 0)
    assert child_seed(7, 3) == expect(7, 3)


def test_randomstreams_child_matches_child_seed():
    from repro.sim import child_seed

    parent = RandomStreams(11)
    child = parent.child(4)
    assert child.master_seed == child_seed(11, 4)
    # Same derivation from a fresh parent -> identical stream values.
    again = RandomStreams(11).child(4)
    assert child.stream("x").random() == again.stream("x").random()
