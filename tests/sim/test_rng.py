"""Unit tests for deterministic random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(7).stream("ldp/sw1")
    b = RandomStreams(7).stream("ldp/sw1")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RandomStreams(7)
    a = streams.stream("a")
    b = streams.stream("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RandomStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_creation_order_does_not_matter():
    s1 = RandomStreams(3)
    s1.stream("first").random()
    v1 = s1.stream("second").random()

    s2 = RandomStreams(3)
    v2 = s2.stream("second").random()  # created without touching "first"
    assert v1 == v2


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x")
    b = RandomStreams(2).stream("x")
    assert a.random() != b.random()


def test_spawn_derives_stable_child():
    parent = RandomStreams(9)
    c1 = parent.spawn("rep-0")
    c2 = RandomStreams(9).spawn("rep-0")
    assert c1.stream("x").random() == c2.stream("x").random()
    assert c1.master_seed != parent.master_seed
