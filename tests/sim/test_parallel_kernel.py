"""Unit tests for the sharded parallel kernel's machinery.

The heavyweight oracle-equivalence gates live in
``tests/verify/test_parallel_equivalence.py``; this file covers the
moving parts — shard planning, the horizon protocol, ``run_before``
window semantics, merge bookkeeping — at k=4 smoke scale.
"""

import pytest

from repro.sim import Simulator
from repro.sim.parallel import (
    ParallelRunSpec,
    ShardPlan,
    merge_results,
    run_sharded,
    run_single,
)
from repro.workloads.partition import PodWorkloadSpec


def _spec(**overrides) -> ParallelRunSpec:
    defaults = dict(k=4, hosts_per_edge=1, seed=21, duration_s=0.1,
                    workload=PodWorkloadSpec(kind="stride"))
    defaults.update(overrides)
    return ParallelRunSpec(**defaults)


# ----------------------------------------------------------------------
# Shard planning


def test_shard_plan_round_robins_pods():
    plan = ShardPlan.for_pods(4, 2)
    assert plan.assignments == ((), (0, 2), (1, 3))
    assert plan.num_shards == 3


def test_shard_plan_fm_shard_owns_nothing():
    assert ShardPlan.for_pods(8, 3).assignments[0] == ()


def test_shard_plan_clamps_workers_to_pods():
    plan = ShardPlan.for_pods(2, 16)
    assert plan.assignments == ((), (0,), (1,))


def test_shard_plan_covers_every_pod_exactly_once():
    plan = ShardPlan.for_pods(16, 5)
    owned = [pod for pods in plan.assignments for pod in pods]
    assert sorted(owned) == list(range(16))


# ----------------------------------------------------------------------
# run_before window semantics


def test_run_before_is_exclusive_and_advances_clock():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, hits.append, "a")
    sim.schedule(2.0, hits.append, "b")
    assert sim.run_before(2.0) == 2.0
    assert hits == ["a"]
    assert sim.now == 2.0
    sim.run(until=2.0)                        # inclusive final window
    assert hits == ["a", "b"]


def test_run_before_rejects_travel_into_the_past():
    sim = Simulator()
    sim.run(until=1.0)
    with pytest.raises(Exception):
        sim.run_before(0.5)


def test_windowed_run_equals_single_run():
    def chain_sim():
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(sim.now)
            if n:
                sim.schedule(0.037, chain, n - 1)

        sim.schedule(0.0, chain, 40)
        return sim, fired

    sim_a, fired_a = chain_sim()
    sim_a.run(until=1.0)

    sim_b, fired_b = chain_sim()
    bound = 0.0
    while bound < 1.0:
        bound = min(1.0, bound + 0.125)
        sim_b.run_before(bound)
    sim_b.run(until=1.0)
    assert fired_a == fired_b
    assert sim_a.now == sim_b.now == 1.0


# ----------------------------------------------------------------------
# Sharded smoke (tier-1; thread backend keeps it cheap on 1-core CI)


@pytest.mark.parallel
def test_sharded_smoke_thread_backend():
    result = run_sharded(_spec(), workers=2, backend="thread")
    assert result.workers == 2
    assert result.rounds > 1                  # actually windowed
    assert result.delivered > 0
    assert result.violations == []
    assert len(result.shard_events) == 3      # fm + 2 workload shards
    # The FM shard owns no flows, so every delivery came from a
    # workload shard and the flow sets are disjoint by construction.
    assert len(result.sent) == 8              # k=4 stride: one per host
    # Every shard compiled only its own flows' paths; the FM shard
    # compiled none (signature counts lead the digest).
    assert result.path_signatures[0].startswith("0:")
    for signature in result.path_signatures[1:]:
        assert not signature.startswith("0:")


@pytest.mark.parallel
def test_sharded_smoke_process_backend():
    result = run_sharded(_spec(duration_s=0.05), workers=1,
                        backend="process")
    assert result.delivered > 0
    assert result.violations == []


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        run_sharded(_spec(), workers=1, backend="mpi")


# ----------------------------------------------------------------------
# Merge bookkeeping


def test_merge_rejects_overlapping_flow_ownership():
    single = run_single(_spec(duration_s=0.05))
    assert single.delivered > 0
    # Feed the same shard result twice: ownership is no longer disjoint.
    from repro.errors import SimulationError
    from repro.sim.parallel import _ShardHarness

    harness = _ShardHarness(_spec(duration_s=0.05), 1, (0, 1, 2, 3))
    harness.setup()
    harness.sim.run(until=harness.start_time + 0.05)
    shard = harness.finish()
    with pytest.raises(SimulationError):
        merge_results([shard, shard], wall_s=0.0, backend="thread",
                      workers=2, rounds=1)


def test_single_result_merge_is_identity():
    single = run_single(_spec(duration_s=0.05))
    assert single.backend == "single"
    assert single.workers == 1
    # Counter identity with one result: merged == that result's deltas.
    assert all(v >= 0 for v in single.link_bytes.values())
    assert single.events_total == sum(single.shard_events)
