"""Unit and property tests for the statistics primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import (
    Counter,
    RateMeter,
    TimeSeries,
    aggregate_counters,
    cdf_points,
    percentile,
    summarize,
)


def test_counter_accumulates():
    c = Counter("rx")
    c.add()
    c.add(2, nbytes=100)
    assert c.count == 3
    assert c.bytes == 100


def test_time_series_window_and_last():
    ts = TimeSeries("t")
    for t, v in [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]:
        ts.record(t, v)
    assert ts.window(0.5, 2.0) == [(1.0, 2.0)]
    assert ts.last_value() == 3.0
    assert len(ts) == 3


def test_time_series_rejects_time_travel():
    ts = TimeSeries()
    ts.record(1.0, 0.0)
    with pytest.raises(ValueError):
        ts.record(0.5, 0.0)


def test_time_series_integrate_trapezoid():
    ts = TimeSeries()
    ts.record(0.0, 0.0)
    ts.record(2.0, 2.0)
    assert ts.integrate() == pytest.approx(2.0)


def test_rate_meter_bins_and_zero_gaps():
    meter = RateMeter(1.0)
    meter.record(0.5, nbytes=100)
    meter.record(2.5, nbytes=300)
    series = dict(meter.series(0.0, 3.0))
    assert series[0.0] == 1.0
    assert series[1.0] == 0.0  # the outage bin is visible
    assert series[2.0] == 1.0
    byte_series = dict(meter.series(0.0, 3.0, bytes_per_sec=True))
    assert byte_series[2.0] == 300.0
    assert meter.total() == 2
    assert meter.total_bytes() == 400


def test_rate_meter_rejects_bad_bin():
    with pytest.raises(ValueError):
        RateMeter(0.0)


def test_percentile_interpolates():
    samples = [0.0, 10.0]
    assert percentile(samples, 0.5) == 5.0
    assert percentile(samples, 0.0) == 0.0
    assert percentile(samples, 1.0) == 10.0
    with pytest.raises(ValueError):
        percentile([], 0.5)


def test_percentile_handles_unsorted_input():
    # Regression: percentile() used to index straight into the caller's
    # list, silently returning garbage unless it happened to be sorted.
    unsorted = [9.0, 1.0, 5.0, 3.0, 7.0]
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        assert percentile(unsorted, frac) == percentile(sorted(unsorted), frac)
    assert percentile([30.0, 10.0], 0.5) == 20.0
    # The caller's list is not mutated.
    assert unsorted == [9.0, 1.0, 5.0, 3.0, 7.0]


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
                min_size=1, max_size=100),
       st.floats(min_value=0.0, max_value=1.0))
def test_percentile_order_invariant(samples, frac):
    assert percentile(samples, frac) == percentile(sorted(samples), frac)


def test_aggregate_counters_sums_keywise():
    merged = aggregate_counters([
        {"hits": 3, "misses": 1},
        {"hits": 2, "evictions": 5},
        {},
    ])
    assert merged == {"hits": 5, "misses": 1, "evictions": 5}
    assert aggregate_counters([]) == {}


def test_summarize_basics():
    stats = summarize([3.0, 1.0, 2.0])
    assert stats.count == 3
    assert stats.minimum == 1.0
    assert stats.maximum == 3.0
    assert stats.mean == pytest.approx(2.0)
    assert stats.p50 == 2.0


def test_cdf_points_monotone():
    points = cdf_points([5.0, 1.0, 3.0])
    values = [v for v, _f in points]
    fracs = [f for _v, f in points]
    assert values == sorted(values)
    assert fracs[-1] == pytest.approx(1.0)
    assert cdf_points([]) == []


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False), min_size=1, max_size=200))
def test_percentile_bounded_by_extremes(samples):
    ordered = sorted(samples)
    for frac in (0.0, 0.25, 0.5, 0.9, 1.0):
        p = percentile(ordered, frac)
        assert ordered[0] <= p <= ordered[-1]


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=100))
def test_summarize_invariants(samples):
    stats = summarize(samples)
    assert stats.minimum <= stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum
    assert stats.minimum <= stats.mean <= stats.maximum
