"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim import Simulator

pytest_plugins = ["repro.verify.pytest_plugin"]
from repro.topology import build_portland_fabric
from repro.topology.builder import PortlandFabric


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def fabric(sim: Simulator) -> PortlandFabric:
    """A converged k=4 PortLand fabric with all hosts registered."""
    fabric = build_portland_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric
