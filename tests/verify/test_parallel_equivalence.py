"""Determinism gate: the sharded kernel is oracle-equivalent to the
single-process kernel.

These are the tests the parallel kernel's whole value rests on. For the
same :class:`~repro.sim.parallel.ParallelRunSpec`, a sharded run (any
worker count, thread or process backend) must produce *exactly* the
same deliveries — ``(time, seq)`` tuples per flow — the same per-link
byte/frame/drop totals, and zero invariant violations, as one
single-process ``run(until)``. With mid-run faults the reconvergence
frames travel hop-by-hop and may interleave differently, so the fault
variant relaxes to delivered-seq-sets while keeping byte totals and
drop counts exact.
"""

import pytest

from repro.portland.ops import FaultOp
from repro.sim.parallel import (
    ParallelRunSpec,
    diff_results,
    run_sharded,
    run_single,
)
from repro.workloads.partition import PodWorkloadSpec


def _assert_equivalent(spec: ParallelRunSpec, workers: int,
                       exact_times: bool = True) -> None:
    reference = run_sharded(spec, workers=workers, backend="thread")
    single = run_single(spec)
    diffs = diff_results(single, reference, exact_times=exact_times)
    assert diffs == [], f"sharded != single: {diffs[:8]}"
    assert single.violations == []
    assert reference.violations == []
    assert single.delivered > 0


@pytest.mark.parallel
def test_k4_two_workers_exact_equivalence():
    _assert_equivalent(
        ParallelRunSpec(k=4, hosts_per_edge=1, seed=31, duration_s=0.15,
                        workload=PodWorkloadSpec(kind="stride")),
        workers=2)


@pytest.mark.parallel
def test_k4_all_to_all_exact_equivalence():
    _assert_equivalent(
        ParallelRunSpec(k=4, hosts_per_edge=1, seed=37, duration_s=0.1,
                        workload=PodWorkloadSpec(kind="all_to_all",
                                                 rate_pps=100.0)),
        workers=3)


@pytest.mark.parallel
@pytest.mark.slow
def test_k8_three_workers_exact_equivalence():
    _assert_equivalent(
        ParallelRunSpec(k=8, hosts_per_edge=1, seed=41, duration_s=0.1,
                        workload=PodWorkloadSpec(kind="stride")),
        workers=3)


@pytest.mark.parallel
def test_k4_permutation_workload_equivalence():
    """The permutation matrix is drawn from a simulator RNG stream —
    identical in every replica by construction."""
    _assert_equivalent(
        ParallelRunSpec(k=4, hosts_per_edge=1, seed=43, duration_s=0.1,
                        workload=PodWorkloadSpec(kind="permutation")),
        workers=2)


@pytest.mark.parallel
def test_fault_injection_equivalence():
    """A link fails and recovers mid-window: every shard must apply the
    op at the same virtual instant, and the merged seq-sets, byte
    totals, and drop counts must match the reference exactly."""
    spec = ParallelRunSpec(
        k=4, hosts_per_edge=1, seed=47, duration_s=0.3,
        workload=PodWorkloadSpec(kind="stride"),
        faults=(FaultOp(0.08, "fail", "edge-p0-s0", "agg-p0-s0"),
                FaultOp(0.18, "recover", "edge-p0-s0", "agg-p0-s0")))
    reference = run_sharded(spec, workers=2, backend="thread")
    single = run_single(spec)
    diffs = diff_results(single, reference, exact_times=False)
    assert diffs == [], f"fault run diverged: {diffs[:8]}"
    assert single.drops_total == reference.drops_total
    assert single.drops_total > 0             # the fault actually bit
    assert reference.violations == []


@pytest.mark.parallel
def test_fluid_mode_equivalence():
    """Demand-limited fluid flows shard exactly: same byte totals, FCTs
    within float-settlement tolerance, and the engine certifies no
    cross-flow coupling ever occurred (bottleneck_events == 0)."""
    spec = ParallelRunSpec(
        k=4, hosts_per_edge=1, seed=53, duration_s=0.3, flow_mode=True,
        workload=PodWorkloadSpec(kind="fluid_stride", demand_bps=20e6,
                                 size_bytes=100_000))
    reference = run_sharded(spec, workers=2, backend="thread")
    single = run_single(spec)
    diffs = diff_results(single, reference)
    assert diffs == [], f"fluid run diverged: {diffs[:8]}"
    assert len(single.fcts) == len(single.sent) > 0   # all completed
    assert single.flow_stats.get("bottleneck_events", 0) == 0
    assert reference.flow_stats.get("bottleneck_events", 0) == 0


@pytest.mark.parallel
def test_worker_count_does_not_matter():
    """1, 2, and 4 workers all merge to the same fabric-wide view."""
    spec = ParallelRunSpec(k=4, hosts_per_edge=1, seed=59, duration_s=0.1,
                           workload=PodWorkloadSpec(kind="stride"))
    baseline = run_sharded(spec, workers=1, backend="thread")
    for workers in (2, 4):
        other = run_sharded(spec, workers=workers, backend="thread")
        assert diff_results(baseline, other) == []
