"""Path-cache soundness under faults: a compiled path must die the
moment any hop's state changes, and in-flight launched frames must
revalidate physically.

Mirrors ``test_cache_invalidation`` one level up: the runtime oracle
watches every hop (compiled launches synthesize the same ``verify.hop``
stream), the stats counters prove the cut-through path was engaged and
flushed, and a seeded campaign exercises the whole fault repertoire with
the cache on.
"""

import pytest

from repro.host.apps import UdpStreamReceiver, UdpStreamSender
from repro.portland.config import PortlandConfig
from repro.sim import Simulator
from repro.topology import build_portland_fabric
from repro.verify.campaign import CampaignConfig, run_campaign
from repro.verify.oracle import InvariantOracle
from repro.verify.walk import check_all_pairs_delivery


def _converged(seed=1234):
    sim = Simulator(seed=seed)
    fabric = build_portland_fabric(
        sim, k=4, config=PortlandConfig(path_cache_entries=4096))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def _active_compiled_path(src):
    """The live flow's compiled path at its ingress edge switch."""
    ingress = src.nic.peer.node
    paths = [p for p in ingress._path_table.values()
             if p.compiled and len(p.hops) >= 4]
    assert paths, "the flow's path never compiled"
    return paths[0]


def test_mid_path_link_failure_invalidates_compiled_paths():
    fabric = _converged()
    sim = fabric.sim
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]  # cross-pod: the path crosses the core
    receiver = UdpStreamReceiver(dst, 7300)
    with InvariantOracle(fabric) as oracle:
        UdpStreamSender(src, dst.ip, 7300, rate_pps=2000.0).start()
        sim.run(until=sim.now + 0.2)
        warm = fabric.path_cache_stats()
        assert warm["launches"] > 0, "cut-through never engaged"
        assert len(receiver.arrivals) > 0

        # Fail the agg->core link the flow actually traverses.
        fail_time = sim.now
        _active_compiled_path(src).links[1].fail()
        sim.run(until=fail_time + 1.0)

        after = fabric.path_cache_stats()
        assert after["invalidated"] > warm["invalidated"], (
            "link failure retired no compiled path")
        assert after["launches"] > warm["launches"], (
            "cache never re-engaged after the failure")
        # The stream recovered once the fabric manager converged.
        recovered = [t for t, _seq, _delay in receiver.arrivals
                     if t > fail_time + 0.7]
        assert recovered, "flow did not survive the failure"
        # Every hop — interpreted or synthesized by a launch — was clean.
        assert oracle.hops > 0
        assert oracle.violations == []
        assert oracle.check_now() == []
    assert check_all_pairs_delivery(fabric) == []


def test_recovery_invalidates_again_and_stays_clean():
    # FaultClear must retire paths compiled while the link was out, or
    # traffic keeps detouring around a healthy link forever.
    fabric = _converged(seed=1235)
    sim = fabric.sim
    hosts = fabric.host_list()
    src, dst = hosts[-1], hosts[0]
    receiver = UdpStreamReceiver(dst, 7301)
    with InvariantOracle(fabric) as oracle:
        UdpStreamSender(src, dst.ip, 7301, rate_pps=1000.0).start()
        sim.run(until=sim.now + 0.2)
        link = _active_compiled_path(src).links[1]
        link.fail()
        sim.run(until=sim.now + 0.8)
        mid = fabric.path_cache_stats()
        assert mid["launches"] > 0
        link.recover()
        sim.run(until=sim.now + 0.8)
        after = fabric.path_cache_stats()
        assert after["invalidated"] > mid["invalidated"], (
            "recovery retired no compiled path")
        assert after["compiles"] > mid["compiles"], (
            "no path recompiled after recovery")
        assert oracle.violations == []
        assert oracle.check_now() == []
    assert len(receiver.arrivals) > 0
    assert check_all_pairs_delivery(fabric) == []


@pytest.mark.campaign
def test_full_campaign_25_scenarios_with_path_cache():
    # The oracle-checked fault repertoire (multi-link failures, switch
    # failures, recoveries, migrations) with cut-through transit on.
    report = run_campaign(CampaignConfig(scenarios=25, seed=7,
                                         path_cache_entries=4096))
    assert report.ok, "\n".join(
        str(v) for result in report.results for v in result.violations)
    launches = sum(result.path_launches for result in report.results)
    assert launches > 0, "campaign never exercised the compiled path"
