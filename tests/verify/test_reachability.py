"""Unit tests for the independent up*-down* reachability oracle."""

from repro.verify.reachability import (
    deliverable_via_agg,
    deliverable_via_core,
    edge_reachable,
    reachable_edge_set,
)
from tests.portland.test_faults import make_fat_tree_view

# Id scheme from make_fat_tree_view: edges 100+pod*2+i, aggs 200+pod*2+i,
# cores 300+c (k=4).


def test_healthy_fabric_all_pairs_reachable():
    view = make_fat_tree_view()
    edges = view.edges()
    for src in edges:
        assert reachable_edge_set(view, src) == set(edges)


def test_same_pod_needs_shared_alive_agg():
    # Pod-0 edges 100/101 talk through aggs 200/201. Cutting 100-200 and
    # 101-201 leaves both edges with an alive uplink, but no *shared*
    # agg — and the own-pod-drop guard forbids the valley through core.
    view = make_fat_tree_view(failed=[(100, 200), (101, 201)])
    assert not edge_reachable(view, 100, 101)
    assert not edge_reachable(view, 101, 100)
    # Cross-pod reachability survives: each edge still has one uplink.
    assert edge_reachable(view, 100, 102)
    assert edge_reachable(view, 101, 102)


def test_same_pod_one_shared_agg_suffices():
    view = make_fat_tree_view(failed=[(100, 200)])
    assert edge_reachable(view, 100, 101)  # via agg 201


def test_cross_pod_through_surviving_core_group():
    # Agg 200 (pod0 group0) loses all cores: pod-0 traffic to pod 1 must
    # go through agg 201's group.
    view = make_fat_tree_view(failed=[(200, 300), (200, 301)])
    assert edge_reachable(view, 100, 102)
    assert not deliverable_via_agg(view, 200, 102)
    assert deliverable_via_agg(view, 201, 102)


def test_isolated_edge_unreachable_but_self_reachable():
    view = make_fat_tree_view(failed=[(100, 200), (100, 201)])
    assert edge_reachable(view, 100, 100)
    assert reachable_edge_set(view, 100) == {100}
    assert not edge_reachable(view, 102, 100)


def test_deliverable_via_core_requires_both_legs():
    view = make_fat_tree_view()
    # Core 300 reaches pod-0 edges through agg 200.
    assert deliverable_via_core(view, 300, 100)
    # Kill the core->agg leg: nothing in pod 0 is deliverable from 300.
    view = make_fat_tree_view(failed=[(300, 200)])
    assert not deliverable_via_core(view, 300, 100)
    # Kill the agg->edge leg instead: only that edge is lost.
    view = make_fat_tree_view(failed=[(200, 100)])
    assert not deliverable_via_core(view, 300, 100)
    assert deliverable_via_core(view, 300, 101)


def test_descent_never_reascends():
    # Core 302 (group 1) serves pod 0 via agg 201 only. With 201-100
    # dead, core 302 cannot deliver to edge 100 even though a physical
    # detour (302 -> 201 -> 101 -> ...) exists in the undirected graph.
    view = make_fat_tree_view(failed=[(201, 100)])
    assert not deliverable_via_core(view, 302, 100)
    assert deliverable_via_core(view, 302, 101)
