"""Campaign driver tests, including the mutation smoke test.

The mutation test is the acceptance check for the whole subsystem: with
a deliberately broken fault handler (aggregation overrides skipped), the
oracle must catch the resulting blackhole and shrink the failure set to
the single causal link. With the real implementation, campaigns must
come back clean.
"""

import pytest

import repro.portland.faults as faults
from repro.verify.campaign import (
    CampaignConfig,
    Reproducer,
    run_campaign,
    run_scenario,
    scenario_seed_for,
    shrink_failure_links,
    static_violations_for_links,
)


def quick_config(**overrides) -> CampaignConfig:
    defaults = dict(scenarios=3, seed=11, steps=3, probe_pairs=2,
                    probe_rate_pps=100.0)
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def test_small_campaign_is_clean():
    report = run_campaign(quick_config())
    assert report.ok
    assert report.violation_count == 0
    assert report.reproducers == []
    assert len(report.results) == 3
    assert all(result.hops > 0 for result in report.results)


def test_scenarios_are_deterministic():
    config = quick_config(scenarios=1)
    seed = scenario_seed_for(config, 0)
    first = run_scenario(seed, config)
    second = run_scenario(seed, config)
    assert first.steps == second.steps
    assert first.hops == second.hops
    assert first.failed_links == second.failed_links


def test_static_check_clean_with_real_implementation():
    links = [("agg-p0-s0", "core-0"), ("edge-p1-s0", "agg-p1-s1")]
    assert static_violations_for_links(4, links) == []


def test_mutation_agg_overrides_skipped_is_caught(monkeypatch):
    # Break the FM: aggregation switches in remote pods never learn to
    # avoid a core that lost its link into the destination pod. Their
    # ECMP set still contains the dead core, whose own pod entry was
    # removed -> table miss -> blackhole the walker must attribute.
    monkeypatch.setattr(faults, "_agg_overrides", lambda *a, **k: None)
    links = [("agg-p0-s0", "core-0"), ("edge-p1-s0", "agg-p1-s1")]
    violations = static_violations_for_links(4, links)
    assert violations, "mutation survived: broken overrides went undetected"
    assert {v.kind for v in violations} == {"blackhole"}
    minimal = shrink_failure_links(4, links)
    assert minimal == [("agg-p0-s0", "core-0")]


def test_mutation_caught_by_campaign_with_reproducer(monkeypatch):
    monkeypatch.setattr(faults, "_agg_overrides", lambda *a, **k: None)
    # Enough scenarios/steps that some scenario fails an agg-core link.
    report = run_campaign(quick_config(scenarios=4, steps=4, migrate=False))
    assert not report.ok
    assert report.reproducers
    reproducer = report.reproducers[0]
    assert isinstance(reproducer, Reproducer)
    assert "blackhole" in reproducer.kinds
    assert "seed=" in str(reproducer)
    if reproducer.static:
        # A shrunk reproducer must itself reproduce.
        assert static_violations_for_links(reproducer.k, reproducer.links)


@pytest.mark.campaign
def test_full_campaign_25_scenarios():
    # The 'make verify' workload as a test: excluded from tier-1 runs by
    # the default '-m "not campaign"' addopts.
    report = run_campaign(CampaignConfig(scenarios=25, seed=7))
    assert report.ok, "\n".join(
        str(v) for result in report.results for v in result.violations)


@pytest.mark.parallel
def test_parallel_campaign_matches_sequential():
    """Scenario results are identical at any worker count — parallelism
    only shards independent seeds over processes."""
    sequential = run_campaign(quick_config())
    parallel = run_campaign(quick_config(parallel=2))
    assert parallel.ok == sequential.ok
    assert len(parallel.results) == len(sequential.results)
    for a, b in zip(sequential.results, parallel.results):
        assert (a.seed, a.k, a.steps, a.failed_links, a.hops,
                a.path_launches) == \
               (b.seed, b.k, b.steps, b.failed_links, b.hops,
                b.path_launches)
        assert len(a.violations) == len(b.violations)
