"""Policy invariants under the campaign driver and the static walker.

The polarity flip is the point: for an ACL-blocked pair every drop is
*justified* (never reported as a blackhole), while a delivery across an
installed ACL is its own violation class (``acl-leak``). The mutation
test proves the walker actually enforces the flip — with the edge entry
silently removed behind the FM's back, the campaign's oracle must
report the leak.
"""

import pytest

from repro.portland.config import PortlandConfig
from repro.sim import Simulator
from repro.topology import LinkParams, build_portland_fabric
from repro.verify import InvariantOracle
from repro.verify.campaign import (
    CampaignConfig,
    run_campaign,
    run_scenario,
    scenario_seed_for,
)


def quick_config(**overrides) -> CampaignConfig:
    defaults = dict(scenarios=3, seed=11, steps=3, probe_pairs=2,
                    probe_rate_pps=100.0, policy=True)
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def converged(sim, shards=0):
    config = PortlandConfig(fm_shards=shards)
    fabric = build_portland_fabric(
        sim, k=4, config=config,
        link_params=LinkParams(carrier_detect=True))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def test_policy_campaign_is_clean():
    report = run_campaign(quick_config())
    assert report.ok
    assert report.violation_count == 0
    installs = [step for result in report.results
                for step in result.steps if step.startswith("acl-install")]
    assert installs, "op mix never exercised acl-install"


def test_policy_campaign_with_churn_and_shards_is_clean():
    report = run_campaign(quick_config(churn=True, fm_shards=4,
                                       fm_batch_interval_s=0.02,
                                       fm_incremental=True))
    assert report.ok
    assert report.violation_count == 0


def test_policy_scenarios_are_deterministic():
    config = quick_config(scenarios=1)
    seed = scenario_seed_for(config, 0)
    first = run_scenario(seed, config)
    second = run_scenario(seed, config)
    assert first.steps == second.steps
    assert first.hops == second.hops


@pytest.mark.slow
def test_policy_campaign_full_25_scenarios():
    """The `make verify-policy` acceptance lane, in-process: 25
    scenarios of faults, migrations, and ACL churn with zero
    unjustified drops and zero leaks."""
    report = run_campaign(CampaignConfig(scenarios=25, seed=7, policy=True))
    assert report.ok, report.reproducers
    assert report.violation_count == 0


def test_acl_blocked_pair_drop_is_justified_not_blackhole():
    """With an ACL installed, the walker must treat the edge drop as
    policy, not as a blackhole."""
    sim = Simulator(seed=101)
    fabric = converged(sim)
    fm = fabric.fabric_manager
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]
    fm.install_acl(src.ip, dst.ip)
    sim.run(until=sim.now + 0.2)

    oracle = InvariantOracle(fabric)
    oracle.check_now()
    assert oracle.violations == [], oracle.violations[:3]
    oracle.close()


def test_acl_leak_is_reported():
    """Mutation: the rule says blocked, but the edge entry vanished
    (here: removed behind the FM's back). The walker must flag every
    delivery across the installed ACL as an acl-leak."""
    sim = Simulator(seed=102)
    fabric = converged(sim)
    fm = fabric.fabric_manager
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]
    rule = fm.install_acl(src.ip, dst.ip)
    sim.run(until=sim.now + 0.2)

    removed = 0
    for agent in fabric.agents.values():
        removed += agent.switch.table.remove_by_name(rule.name)
    assert removed == 1

    oracle = InvariantOracle(fabric)
    oracle.check_now()
    kinds = {violation.kind for violation in oracle.violations}
    assert "acl-leak" in kinds, oracle.violations[:3]
    leaks = [v for v in oracle.violations if v.kind == "acl-leak"]
    assert leaks[0].detail["src"] == src.name
    assert leaks[0].detail["dst"] == dst.name
    oracle.close()


def test_sharded_acl_blocked_pair_is_justified():
    sim = Simulator(seed=103)
    fabric = converged(sim, shards=4)
    cluster = fabric.fabric_manager
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]
    cluster.install_acl(src.ip, dst.ip)
    sim.run(until=sim.now + 0.3)

    oracle = InvariantOracle(fabric)
    oracle.check_now()
    assert oracle.violations == [], oracle.violations[:3]
    oracle.close()
