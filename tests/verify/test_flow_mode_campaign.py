"""Fault campaigns over the fluid flow engine (flow-mode fabrics).

The frame-mode campaign checks every *hop* a probe frame takes; in flow
mode there are no probe frames — probes are fluid flows, and the oracle
instead checks every *resolved path* the engine pins a flow to
(``verify.flow`` records): loop-free, up*-down*-ordered, terminating at
a host-delivery entry. Faults make the engine re-resolve, so a campaign
exercises exactly the soundness question that matters for the fluid
abstraction: after any fail/recover/migrate sequence, do flows only
ever occupy valid paths (or stall honestly)?
"""

import pytest

from repro.verify.campaign import (
    CampaignConfig,
    run_campaign,
    run_scenario,
    scenario_seed_for,
)


def quick_config(**overrides) -> CampaignConfig:
    defaults = dict(scenarios=3, seed=11, steps=3, probe_pairs=2,
                    flow_mode=True)
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def test_small_flow_mode_campaign_is_clean():
    report = run_campaign(quick_config())
    assert report.ok
    assert report.violation_count == 0
    # Flow-mode scenarios are judged on resolved paths, not frame hops.
    assert all(result.hops == 0 for result in report.results)
    assert all(result.flow_paths > 0 for result in report.results)
    # The fluid engine actually ran in every scenario.
    assert all(result.flow_stats["flows_started"] > 0
               for result in report.results)


def test_flow_mode_scenarios_are_deterministic():
    config = quick_config(scenarios=1)
    seed = scenario_seed_for(config, 0)
    first = run_scenario(seed, config)
    second = run_scenario(seed, config)
    assert first.steps == second.steps
    assert first.flow_paths == second.flow_paths
    assert first.flow_stats == second.flow_stats
    assert first.failed_links == second.failed_links


def test_faults_force_reresolution():
    # Across a few scenarios with faults, at least one fluid probe must
    # have re-resolved (path count above the initial one-per-probe),
    # otherwise the campaign is not exercising invalidation at all.
    report = run_campaign(quick_config(scenarios=3, steps=4))
    assert report.ok
    assert any(result.flow_paths > result.flow_stats["flows_started"]
               for result in report.results)


@pytest.mark.campaign
def test_full_flow_mode_campaign_25_scenarios():
    # The 'make verify-flows' workload as a test: excluded from tier-1
    # runs by the default '-m "not campaign"' addopts.
    report = run_campaign(CampaignConfig(scenarios=25, seed=7,
                                         flow_mode=True))
    assert report.ok, "\n".join(
        str(v) for result in report.results for v in result.violations)
    assert sum(result.flow_paths for result in report.results) > 25
