"""Compiled transit must be observationally identical to interpreted
forwarding: same hops, same entries, same ports, same timestamps.

Two fabrics are built from the same seed — one with the path cache off,
one with it on — and run the same staggered low-rate UDP flows (low
enough that no two data frames are ever in flight together, so the
interpreted run sees no queueing the cut-through approximation would
miss). Every ``verify.hop`` record of every datagram must then match
record-for-record, including the float timestamp: ``PathCache.launch``
accumulates per-hop times with the exact same operations
``Link._start_transmission`` performs.
"""

from repro.host.apps import UdpStreamReceiver, UdpStreamSender
from repro.net.packet import AppData
from repro.portland.config import PortlandConfig
from repro.sim import Simulator, TraceCollector
from repro.topology import build_portland_fabric

FLOWS = ((0, 15, 7200), (1, 14, 7201), (5, 10, 7202), (12, 3, 7203))


def _run(path_cache_entries: int):
    sim = Simulator(seed=4321)
    fabric = build_portland_fabric(
        sim, k=4,
        config=PortlandConfig(path_cache_entries=path_cache_entries))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    hosts = fabric.host_list()
    collector = TraceCollector(sim.trace, "verify.hop")
    senders = []
    for stagger, (src, dst, port) in enumerate(FLOWS):
        UdpStreamReceiver(hosts[dst], port)
        sender = UdpStreamSender(hosts[src], hosts[dst].ip, port,
                                 rate_pps=200.0)
        # Staggered starts: 1.3 ms apart, so frames of different flows
        # are never concurrently on the wire (path latency is ~10 us).
        sender.start(first_delay=0.0013 * stagger)
        senders.append(sender)
    sim.run(until=sim.now + 0.25)
    for sender in senders:
        sender.stop()
    sim.run(until=sim.now + 0.01)  # drain in-flight frames in both runs
    collector.close()
    return fabric, collector.records


def _trajectories(records):
    """verify.hop records grouped per datagram, in hop order.

    Keyed by the (flow_id, seq) the sender stamped into the AppData —
    stable across runs, unlike object identity.
    """
    by_packet = {}
    for record in records:
        ip = record.detail["payload"]
        udp = getattr(ip, "payload", None)
        app = getattr(udp, "payload", None)
        if not isinstance(app, AppData) or not app.flow_id:
            continue  # control traffic (ARP/LDP punts)
        by_packet.setdefault((app.flow_id, app.seq), []).append(
            (record.time, record.source, record.detail["entry"],
             record.detail["in_port"], record.detail["dst"],
             record.detail["ethertype"]))
    return by_packet


def test_compiled_hop_trace_identical_to_interpreted():
    interpreted_fabric, interpreted_records = _run(path_cache_entries=0)
    compiled_fabric, compiled_records = _run(path_cache_entries=4096)

    assert interpreted_fabric.path_cache_stats() == {}
    stats = compiled_fabric.path_cache_stats()
    assert stats["launches"] > 150, "cut-through never engaged"
    assert stats["dropped_in_flight"] == 0

    interpreted = _trajectories(interpreted_records)
    compiled = _trajectories(compiled_records)
    assert interpreted, "no data-frame hops traced"
    assert interpreted.keys() == compiled.keys()
    for key in interpreted:
        assert compiled[key] == interpreted[key], (
            f"datagram {key}: compiled trajectory diverged\n"
            f"  interpreted: {interpreted[key]}\n"
            f"  compiled:    {compiled[key]}")
