"""Runtime oracle tests: trajectory invariants over the hop stream."""

from repro.host.apps import UdpStreamReceiver, UdpStreamSender
from repro.net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4
from repro.verify.oracle import InvariantOracle


class _Payload:
    pass


def emit_hop(fabric, switch, entry, payload, dst=0x000100000000,
             ethertype=ETHERTYPE_IPV4):
    fabric.sim.trace.emit(fabric.sim.now, "verify.hop", switch,
                          payload=payload, dst=dst, ethertype=ethertype,
                          entry=entry, in_port=0)


def test_real_traffic_is_clean_and_counted(fabric):
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]  # cross-pod pair
    with InvariantOracle(fabric) as oracle:
        UdpStreamReceiver(dst, 5000)
        UdpStreamSender(src, dst.ip, 5000, rate_pps=500.0).start()
        fabric.sim.run(until=fabric.sim.now + 0.2)
        assert oracle.hops > 0
        assert oracle.violations == []
        assert oracle.check_now() == []


def test_switch_revisit_is_a_loop(fabric):
    payload = _Payload()
    with InvariantOracle(fabric) as oracle:
        emit_hop(fabric, "edge-p0-s0", "default-up", payload)
        emit_hop(fabric, "agg-p0-s0", "default-up", payload)
        emit_hop(fabric, "edge-p0-s0", "default-up", payload)
        assert [v.kind for v in oracle.violations] == ["loop"]
        assert oracle.violations[0].where == "edge-p0-s0"


def test_up_after_down_flagged(fabric):
    payload = _Payload()
    with InvariantOracle(fabric) as oracle:
        emit_hop(fabric, "core-0", "pod:1", payload)       # descending
        emit_hop(fabric, "agg-p1-s0", "default-up", payload)  # re-ascends!
        assert [v.kind for v in oracle.violations] == ["up-after-down"]


def test_rewritten_destination_starts_fresh_trajectory(fabric):
    # A migration trap rewrites the destination PMAC; the same payload
    # then legally re-traverses switches it already visited.
    payload = _Payload()
    with InvariantOracle(fabric) as oracle:
        emit_hop(fabric, "edge-p0-s0", "pod:0", payload, dst=0x000100000000)
        emit_hop(fabric, "edge-p0-s0", "default-up", payload,
                 dst=0x000200000000)
        assert oracle.violations == []


def test_non_ip_and_multicast_excluded(fabric):
    payload = _Payload()
    with InvariantOracle(fabric) as oracle:
        emit_hop(fabric, "edge-p0-s0", "default-up", payload,
                 ethertype=ETHERTYPE_ARP)
        emit_hop(fabric, "edge-p0-s0", "default-up", payload,
                 ethertype=ETHERTYPE_ARP)
        emit_hop(fabric, "edge-p0-s1", "mcast:1", payload,
                 dst=0x01005E000001)
        emit_hop(fabric, "edge-p0-s1", "mcast:1", payload,
                 dst=0x01005E000001)
        assert oracle.violations == []
        assert oracle.hops == 4


def test_close_unsubscribes_and_reset_clears(fabric):
    oracle = InvariantOracle(fabric)
    assert fabric.sim.trace.wants("verify.hop")
    emit_hop(fabric, "edge-p0-s0", "default-up", _Payload())
    assert oracle.hops == 1
    oracle.reset()
    assert oracle.hops == 0 and oracle.violations == []
    oracle.close()
    assert not fabric.sim.trace.wants("verify.hop")
    emit_hop(fabric, "edge-p0-s0", "default-up", _Payload())
    assert oracle.hops == 0
    oracle.close()  # idempotent


def test_fixture_attaches_and_observes_traffic(fabric, invariant_oracle):
    oracle = invariant_oracle(fabric)
    hosts = fabric.host_list()
    UdpStreamReceiver(hosts[1], 5001)
    UdpStreamSender(hosts[0], hosts[1].ip, 5001, rate_pps=200.0).start()
    fabric.sim.run(until=fabric.sim.now + 0.1)
    assert oracle.hops > 0
    oracle.check_now()
