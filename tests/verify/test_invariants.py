"""Static invariant checks against real (and sabotaged) fabrics."""

import pytest

from repro.portland.messages import SwitchLevel
from repro.portland.pmac import POSITION_PREFIX_LEN, position_prefix
from repro.verify.invariants import (
    check_override_soundness,
    check_pmac_consistency,
)
from repro.verify.walk import check_all_pairs_delivery


def settle(fabric, duration=0.5):
    fabric.sim.run(until=fabric.sim.now + duration)


def edge_agents(fabric):
    return [a for a in fabric.agents.values() if a.level is SwitchLevel.EDGE]


# ----------------------------------------------------------------------
# PMAC consistency


def test_pmac_consistency_clean_on_converged_fabric(fabric):
    assert check_pmac_consistency(fabric) == []


def test_pmac_duplicate_detected(fabric):
    donor, thief = edge_agents(fabric)[:2]
    pmac_mac, record = next(iter(donor.hosts_by_pmac.items()))
    thief.hosts_by_pmac[pmac_mac] = record
    kinds = {v.kind for v in check_pmac_consistency(fabric)}
    assert "pmac-duplicate" in kinds
    # The copied record also fails the structural check at the thief
    # (wrong pod/position for that edge).
    assert "pmac-structure" in kinds


def test_pmac_structure_mismatch_detected(fabric):
    agent = edge_agents(fabric)[0]
    record = next(iter(agent.hosts_by_pmac.values()))
    record.port = record.port + 1  # no longer the port the host hangs off
    kinds = {v.kind for v in check_pmac_consistency(fabric)}
    assert "pmac-structure" in kinds
    # The FM's registry still holds the original port: registry check
    # fires too.
    assert "pmac-registry" in kinds


def test_fm_binding_missing_at_edge_detected(fabric):
    agent = edge_agents(fabric)[0]
    pmac_mac = next(iter(agent.hosts_by_pmac))
    amac = agent.hosts_by_pmac[pmac_mac].amac
    del agent.hosts_by_pmac[pmac_mac]
    agent.hosts_by_amac.pop(amac, None)
    kinds = {v.kind for v in check_pmac_consistency(fabric)}
    assert kinds == {"pmac-registry"}


# ----------------------------------------------------------------------
# Override soundness


def test_overrides_sound_after_single_failure(fabric):
    fabric.link_between("agg-p0-s0", "edge-p0-s1").fail()
    settle(fabric)
    assert check_override_soundness(fabric) == []


def test_overrides_sound_after_core_failure(fabric):
    fabric.link_between("agg-p1-s0", "core-0").fail()
    settle(fabric)
    assert check_override_soundness(fabric) == []


def test_gratuitous_avoid_flagged(fabric):
    # Hand the pod-2 edge an override avoiding a perfectly alive agg for
    # a perfectly reachable prefix: minimality violated.
    agent = fabric.agents["edge-p2-s0"]
    value, bits = position_prefix(0, 0)
    alive_agg = fabric.agents["agg-p2-s0"].switch_id
    agent._fault_overrides[(value.value, bits)] = (alive_agg,)
    violations = check_override_soundness(fabric)
    assert [v.kind for v in violations] == ["override-soundness"]
    assert violations[0].detail["reason"] == "alive path forbidden by override"


def test_non_position_prefix_override_flagged(fabric):
    agent = fabric.agents["edge-p2-s0"]
    agent._fault_overrides[(0, POSITION_PREFIX_LEN + 8)] = (1,)
    violations = check_override_soundness(fabric)
    assert [v.kind for v in violations] == ["override-soundness"]


# ----------------------------------------------------------------------
# Table walks (delivery / blackholes / loops)


def test_all_pairs_delivered_on_healthy_fabric(fabric):
    assert check_all_pairs_delivery(fabric) == []


def test_all_pairs_delivered_after_survivable_failures(fabric):
    fabric.link_between("agg-p0-s0", "edge-p0-s1").fail()
    fabric.link_between("agg-p3-s1", "core-3").fail()
    settle(fabric)
    assert check_all_pairs_delivery(fabric) == []


def test_partitioned_destination_is_not_a_blackhole(fabric):
    # Cut both uplinks of edge-p0-s0: its hosts are provably
    # unreachable, so the resulting drops are justified, not blackholes.
    fabric.link_between("agg-p0-s0", "edge-p0-s0").fail()
    fabric.link_between("agg-p0-s1", "edge-p0-s0").fail()
    settle(fabric)
    assert check_all_pairs_delivery(fabric) == []


def test_sabotaged_core_table_reports_blackhole(fabric):
    core = fabric.switches["core-0"]
    removed = core.table.remove_by_name("pod:3")
    assert removed
    violations = check_all_pairs_delivery(fabric)
    kinds = {v.kind for v in violations}
    assert kinds == {"blackhole"}
    assert any(v.where == "core-0" for v in violations)


def test_sabotaged_egress_rewrite_reports_misdelivery(fabric):
    # Strip the AMAC rewrite from one host-egress entry: the frame
    # reaches the right host still carrying its PMAC.
    from repro.switching.flow_table import SetEthDst

    edge = fabric.switches["edge-p1-s0"]
    for entry in edge.table:
        if entry.name and entry.name.startswith("host:"):
            entry.actions = [a for a in entry.actions
                             if not isinstance(a, SetEthDst)]
            break
    else:
        pytest.fail("no host egress entry found")
    violations = check_all_pairs_delivery(fabric)
    assert {v.kind for v in violations} == {"misdelivery"}
