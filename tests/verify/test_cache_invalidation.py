"""Decision-cache soundness under faults: a link failing mid-flow must
never leave a switch forwarding on a stale cached decision.

The runtime oracle watches every hop across the fault transition (loop
and up-after-down invariants), the static walker checks the converged
tables, and the cache counters prove the fast path was actually engaged
and flushed — a silently bypassed cache would make these tests
vacuously green.
"""

import random

import pytest

from repro.host.apps import UdpStreamReceiver, UdpStreamSender
from repro.sim import Simulator
from repro.topology import build_portland_fabric
from repro.verify.oracle import InvariantOracle
from repro.verify.walk import check_all_pairs_delivery
from repro.workloads.failures import switch_link_names


def test_link_failure_mid_flow_never_serves_stale_decision(fabric):
    sim = fabric.sim
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]  # cross-pod: the flow crosses the core
    receiver = UdpStreamReceiver(dst, 7000)
    with InvariantOracle(fabric) as oracle:
        UdpStreamSender(src, dst.ip, 7000, rate_pps=2000.0).start()
        sim.run(until=sim.now + 0.2)
        warm = fabric.decision_cache_stats()
        assert warm["hits"] > 0, "fast path never engaged"
        assert len(receiver.arrivals) > 0

        fail_time = sim.now
        fabric.link_between("agg-p0-s0", "core-0").fail()
        sim.run(until=fail_time + 1.0)

        after = fabric.decision_cache_stats()
        assert after["flushes"] > warm["flushes"], (
            "link failure flushed no decision cache")
        assert after["hits"] > warm["hits"], "cache never refilled"
        # The stream recovered once the fabric manager converged.
        recovered = [t for t, _seq, _delay in receiver.arrivals
                     if t > fail_time + 0.7]
        assert recovered, "flow did not survive the failure"
        # No hop anywhere crossed a stale path: no loop, no re-ascent
        # through an upward entry after descending.
        assert oracle.hops > 0
        assert oracle.violations == []
        assert oracle.check_now() == []
    # The converged tables deliver all pairs — cached or walked.
    assert check_all_pairs_delivery(fabric) == []


def test_recovery_flushes_again_and_stays_clean(fabric):
    # The return path matters too: EnableLink must drop decisions cached
    # while the link was out, or traffic keeps avoiding a healthy path.
    sim = fabric.sim
    link = fabric.link_between("agg-p1-s0", "core-0")
    hosts = fabric.host_list()
    receiver = UdpStreamReceiver(hosts[0], 7001)
    with InvariantOracle(fabric) as oracle:
        UdpStreamSender(hosts[-1], hosts[0].ip, 7001,
                        rate_pps=1000.0).start()
        link.fail()
        sim.run(until=sim.now + 0.8)
        mid = fabric.decision_cache_stats()
        link.recover()
        sim.run(until=sim.now + 0.8)
        after = fabric.decision_cache_stats()
        assert after["flushes"] > mid["flushes"], (
            "recovery flushed no decision cache")
        assert oracle.violations == []
        assert oracle.check_now() == []
    assert len(receiver.arrivals) > 0
    assert check_all_pairs_delivery(fabric) == []


@pytest.mark.campaign
def test_fail_recover_campaign_never_serves_stale_decisions():
    """Seeded fail/recover cycles with live probe flows and the cache on.

    Complements ``test_full_campaign_25_scenarios`` (which now also runs
    with the cache enabled by default) with a focused loop that checks
    the cache counters each cycle: engaged before the fault, flushed by
    it, refilled after, and never a single oracle violation.
    """
    rng = random.Random(7)
    for scenario in range(5):
        sim = Simulator(seed=1000 + scenario)
        fabric = build_portland_fabric(sim, k=4)
        fabric.start()
        fabric.run_until_located()
        fabric.announce_hosts()
        fabric.run_until_registered()

        hosts = fabric.host_list()
        rng.shuffle(hosts)
        for i in range(4):
            UdpStreamReceiver(hosts[2 * i + 1], 6000 + i)
            UdpStreamSender(hosts[2 * i], hosts[2 * i + 1].ip, 6000 + i,
                            rate_pps=500.0).start()
        candidates = switch_link_names(fabric.tree)
        with InvariantOracle(fabric) as oracle:
            sim.run(until=sim.now + 0.2)
            for _cycle in range(3):
                before = fabric.decision_cache_stats()
                assert before["hits"] > 0
                links = [fabric.link_between(*pair) for pair in
                         rng.sample(candidates, rng.randint(1, 2))]
                for link in links:
                    link.fail()
                sim.run(until=sim.now + 0.6)
                failed = fabric.decision_cache_stats()
                assert failed["flushes"] > before["flushes"]
                for link in links:
                    link.recover()
                sim.run(until=sim.now + 0.6)
                assert fabric.decision_cache_stats()["hits"] > before["hits"]
            assert oracle.violations == [], (
                f"scenario {scenario}: stale forwarding decisions: "
                f"{oracle.violations}")
            assert oracle.check_now() == []
        assert check_all_pairs_delivery(fabric) == []
