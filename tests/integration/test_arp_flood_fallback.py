"""The ARP-flood fallback path, end to end.

When the fabric manager has no mapping for an IP (e.g. a host that has
never transmitted), it answers the edge with found=False and floods the
request out every edge switch's host ports. The owner replies; its edge
switch rewrites the reply's AMAC to the PMAC and routes it back to the
requester — after which the mapping is registered and the slow path is
never taken again.
"""

from repro.host.apps import UdpEchoServer, UdpPinger
from repro.sim import Simulator
from repro.topology import build_portland_fabric


def quiet_fabric(seed=111):
    """Converged fabric where hosts have NOT announced themselves."""
    sim = Simulator(seed=seed)
    fabric = build_portland_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_located()
    # deliberately no announce_hosts(): the FM registry is empty.
    return fabric


def test_resolution_of_unknown_host_via_flood():
    fabric = quiet_fabric()
    sim = fabric.sim
    fm = fabric.fabric_manager
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[13]
    assert dst.ip not in fm.hosts_by_ip

    UdpEchoServer(dst, 7)
    pinger = UdpPinger(src, dst.ip)
    pinger.ping()
    sim.run(until=sim.now + 2.0)

    assert pinger.answered == 1
    assert fm.arp_misses >= 1
    # The flood taught the FM both endpoints.
    assert dst.ip in fm.hosts_by_ip
    assert src.ip in fm.hosts_by_ip
    # The requester's cache holds the target's PMAC, not its AMAC.
    cached = src.arp_cache.lookup(dst.ip, sim.now)
    assert cached is not None and cached != dst.mac
    assert cached == fm.hosts_by_ip[dst.ip].pmac


def test_second_resolution_uses_fast_path():
    fabric = quiet_fabric(seed=112)
    sim = fabric.sim
    fm = fabric.fabric_manager
    hosts = fabric.host_list()
    src, other, dst = hosts[0], hosts[5], hosts[13]

    UdpEchoServer(dst, 7)
    first = UdpPinger(src, dst.ip)
    first.ping()
    sim.run(until=sim.now + 2.0)
    assert first.answered == 1
    misses_after_first = fm.arp_misses

    # A different requester now resolves the same IP without a flood.
    second = UdpPinger(other, dst.ip)
    second.ping()
    sim.run(until=sim.now + 1.0)
    assert second.answered == 1
    assert fm.arp_misses == misses_after_first


def test_same_edge_host_resolves_via_flood_exactly_once():
    """The FM's flood deliberately includes the querying edge.

    Edges proxy ARP to the FM and never flood locally, so a host that
    shares the requester's edge switch can only hear the request through
    the FM-mediated flood — excluding the origin edge would make
    same-edge neighbours unresolvable on the slow path. The audit
    counterpart: including it must not double-deliver to anyone.
    """
    fabric = quiet_fabric(seed=114)
    sim = fabric.sim
    fm = fabric.fabric_manager
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[1]
    # Same edge switch by construction of the host plan.
    spec_by_name = {spec.name: spec for spec in fabric.tree.hosts}
    assert (spec_by_name[src.name].edge_switch
            == spec_by_name[dst.name].edge_switch)

    heard = []
    original = dst.receive

    def spy(frame, in_port):
        from repro.net.arp import ARP_REQUEST, ArpPacket
        from repro.net.ethernet import ETHERTYPE_ARP
        from repro.net.packet import coerce
        if frame.ethertype == ETHERTYPE_ARP:
            arp = coerce(frame.payload, ArpPacket)
            if arp.op == ARP_REQUEST and arp.sender_ip == src.ip:
                heard.append(arp)
        original(frame, in_port)

    dst.receive = spy
    UdpEchoServer(dst, 7)
    pinger = UdpPinger(src, dst.ip)
    pinger.ping()
    sim.run(until=sim.now + 2.0)

    assert fm.arp_misses >= 1
    assert pinger.answered == 1
    # Exactly one copy of the flooded request reached the neighbour.
    assert len(heard) == 1


def test_flood_skips_requesters_own_port():
    """The requester never sees its own flooded request echoed back."""
    fabric = quiet_fabric(seed=113)
    sim = fabric.sim
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[13]

    echoes = []
    original = src.receive

    def spy(frame, in_port):
        from repro.net.arp import ARP_REQUEST, ArpPacket
        from repro.net.ethernet import ETHERTYPE_ARP
        from repro.net.packet import coerce
        if frame.ethertype == ETHERTYPE_ARP:
            arp = coerce(frame.payload, ArpPacket)
            if arp.op == ARP_REQUEST and arp.sender_ip == src.ip:
                echoes.append(arp)
        original(frame, in_port)

    src.receive = spy
    UdpEchoServer(dst, 7)
    UdpPinger(src, dst.ip).ping()
    sim.run(until=sim.now + 2.0)
    assert echoes == []
