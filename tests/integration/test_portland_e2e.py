"""End-to-end PortLand behaviour: proxy ARP, PMAC rewriting, ECMP,
forwarding-state size, and the fabric manager registry."""

from repro.host.apps import TcpBulkSender, TcpSink, UdpEchoServer, UdpPinger
from repro.net import AppData
from repro.net.ethernet import ETHERTYPE_ARP
from repro.portland.messages import SwitchLevel
from repro.portland.pmac import Pmac
from repro.sim import Simulator
from repro.topology import build_portland_fabric


def test_any_to_any_connectivity(fabric):
    sim = fabric.sim
    hosts = fabric.host_list()
    server = UdpEchoServer(hosts[-1], 7)
    pingers = [UdpPinger(h, hosts[-1].ip) for h in hosts[:-1]]
    for pinger in pingers:
        pinger.ping()
    sim.run(until=sim.now + 1.0)
    assert all(p.answered == 1 for p in pingers)


def test_proxy_arp_no_fabric_broadcast(fabric):
    """Host ARPs never flood the fabric: the edge intercepts them and the
    core/aggregation layers see no ARP frames at all."""
    sim = fabric.sim
    arp_seen_at_core = []

    for name, switch in fabric.switches.items():
        if name.startswith(("core", "agg")):
            def tap(frame, in_port, _name=name):
                if frame.ethertype == ETHERTYPE_ARP and frame.dst.is_broadcast:
                    arp_seen_at_core.append(_name)
            switch.rx_tap = tap

    hosts = fabric.host_list()
    server = UdpEchoServer(hosts[8], 7)
    pinger = UdpPinger(hosts[0], hosts[8].ip)
    pinger.ping()
    sim.run(until=sim.now + 0.5)
    assert pinger.answered == 1
    assert arp_seen_at_core == []
    assert fabric.fabric_manager.arp_queries >= 1


def test_hosts_see_pmacs_not_amacs(fabric):
    """The ARP answer a host receives is a PMAC (location-encoded), and
    traffic delivered to a host carries the sender's PMAC as source."""
    sim = fabric.sim
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[10]
    inbox = dst.udp_socket(5000)
    src.udp_socket().sendto(dst.ip, 5000, AppData(10))
    sim.run(until=sim.now + 0.5)
    learned = src.arp_cache.lookup(dst.ip, sim.now)
    assert learned is not None
    assert learned != dst.mac  # it is a PMAC, not the real AMAC
    pmac = Pmac.from_mac(learned)
    # The PMAC's port field matches where the host actually lives.
    spec = fabric.tree.hosts[10]
    assert pmac.port == spec.edge_port
    edge_agent = fabric.edge_agent_of(spec.name)
    assert pmac.pod == edge_agent.ldp.pod
    assert pmac.position == edge_agent.ldp.position


def test_fm_registry_contents(fabric):
    fm = fabric.fabric_manager
    assert len(fm.hosts_by_ip) == len(fabric.tree.hosts)
    for spec in fabric.tree.hosts:
        record = fm.hosts_by_ip[spec.ip]
        assert record.amac == spec.mac
        edge_agent = fabric.agents[spec.edge_switch]
        assert record.edge_id == edge_agent.switch_id
        assert record.port == spec.edge_port


def test_forwarding_state_is_order_k(fabric):
    """PortLand's headline scalability claim: per-switch forwarding state
    is O(k), independent of host count."""
    k = fabric.tree.k
    for name, switch in fabric.switches.items():
        entries = len(switch.table) + len(switch.rewrite_table)
        level = fabric.agents[name].level
        if level is SwitchLevel.EDGE:
            # per-host entries bounded by hosts-per-edge (k/2), plus
            # intercepts + default routes.
            assert entries <= 3 * (k // 2) + 8
        else:
            assert entries <= k + 4


def test_ecmp_spreads_flows_across_uplinks(fabric):
    sim = fabric.sim
    hosts = fabric.host_list()
    # Many UDP flows from the two hosts on edge-p0-s0 to pod 3 hosts.
    src_a, src_b = hosts[0], hosts[1]
    destinations = hosts[12:16]
    for dst in destinations:
        inbox = dst.udp_socket(6000)
    for i in range(32):
        src = (src_a, src_b)[i % 2]
        dst = destinations[i % len(destinations)]
        src.udp_socket().sendto(dst.ip, 6000, AppData(64))
    sim.run(until=sim.now + 1.0)
    edge = fabric.switches["edge-p0-s0"]
    up_tx = [edge.ports[i].counters.tx_frames for i in (2, 3)]
    assert min(up_tx) > 0  # both uplinks carried traffic


def test_tcp_cross_pod_goodput(fabric):
    sim = fabric.sim
    hosts = fabric.host_list()
    sink = TcpSink(hosts[15], 9000, rate_bin_s=0.05)
    TcpBulkSender(hosts[0], hosts[15].ip, 9000)
    sim.run(until=sim.now + 0.5)
    goodput = sink.total_bytes * 8 / 0.5
    assert goodput > 0.8e9


def test_vmid_distinguishes_hosts_on_same_port_prefix(fabric):
    """Two hosts on the same edge switch get PMACs differing in port."""
    agents = [a for a in fabric.agents.values()
              if a.level is SwitchLevel.EDGE]
    for agent in agents:
        pmacs = [record.pmac for record in agent.hosts_by_amac.values()]
        assert len({(p.port, p.vmid) for p in pmacs}) == len(pmacs)


def test_unknown_ip_triggers_arp_flood_fallback(fabric):
    """ARPing for an IP the FM does not know falls back to an
    edge-mediated flood (and fails gracefully when nobody owns it)."""
    sim = fabric.sim
    fm = fabric.fabric_manager
    hosts = fabric.host_list()
    misses_before = fm.arp_misses
    from repro.net import ip as mkip

    hosts[0].udp_socket().sendto(mkip("10.99.99.99"), 1234, AppData(8))
    sim.run(until=sim.now + 0.5)
    assert fm.arp_misses == misses_before + 1
