"""Multiple VMs behind one edge port — the PMAC vmid field at work."""

from repro.host.apps import UdpEchoServer, UdpPinger
from repro.host.hypervisor import Hypervisor
from repro.net import Link, ip, mac
from repro.portland.pmac import Pmac
from repro.sim import Simulator
from repro.topology import build_fat_tree, build_portland_fabric


def fabric_with_hypervisor():
    sim = Simulator(seed=95)
    tree = build_fat_tree(4, hosts_per_edge=1)  # port 1 of each edge spare
    fabric = build_portland_fabric(sim, tree=tree)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()

    hyp = Hypervisor(sim, "hyp0", num_vm_slots=3)
    edge = fabric.switches["edge-p0-s0"]
    Link(sim, hyp.uplink, edge.port(1))
    vms = [
        hyp.add_vm("vm-a", mac("0a:00:00:00:00:01"), ip("10.50.0.1")),
        hyp.add_vm("vm-b", mac("0a:00:00:00:00:02"), ip("10.50.0.2")),
        hyp.add_vm("vm-c", mac("0a:00:00:00:00:03"), ip("10.50.0.3")),
    ]
    # Wait out the edge's silent-port grace, then announce.
    sim.run(until=sim.now + 0.1)
    hyp.announce_vms()
    sim.run(until=sim.now + 0.2)
    return fabric, hyp, vms


def test_vms_share_port_prefix_distinct_vmids():
    fabric, _hyp, vms = fabric_with_hypervisor()
    fm = fabric.fabric_manager
    pmacs = [Pmac.from_mac(fm.hosts_by_ip[vm.ip].pmac) for vm in vms]
    # Same (pod, position, port) — they hang off one physical port.
    assert len({(p.pod, p.position, p.port) for p in pmacs}) == 1
    assert pmacs[0].port == 1
    # Distinct vmids.
    assert len({p.vmid for p in pmacs}) == 3


def test_vm_to_remote_host_connectivity():
    fabric, _hyp, vms = fabric_with_hypervisor()
    sim = fabric.sim
    remote = fabric.host_list()[7]  # other pod
    UdpEchoServer(remote, 7)
    pinger = UdpPinger(vms[0], remote.ip)
    pinger.ping()
    sim.run(until=sim.now + 0.5)
    assert pinger.answered == 1


def test_remote_host_to_vm_connectivity():
    fabric, _hyp, vms = fabric_with_hypervisor()
    sim = fabric.sim
    remote = fabric.host_list()[5]
    UdpEchoServer(vms[1], 7)
    pinger = UdpPinger(remote, vms[1].ip)
    pinger.ping()
    sim.run(until=sim.now + 0.5)
    assert pinger.answered == 1


def test_vm_to_vm_stays_local():
    """Traffic between co-resident VMs is bridged inside the hypervisor
    and never reaches the edge switch."""
    fabric, hyp, vms = fabric_with_hypervisor()
    sim = fabric.sim
    uplink_tx_before = hyp.uplink.counters.tx_frames

    UdpEchoServer(vms[2], 7)
    pinger = UdpPinger(vms[0], vms[2].ip)
    pinger.ping()
    sim.run(until=sim.now + 0.2)
    assert pinger.answered == 1
    # The ARP broadcast leaks up (it must: the fabric proxy may own the
    # answer), but the data/echo frames were bridged locally.
    delta = hyp.uplink.counters.tx_frames - uplink_tx_before
    assert delta <= 2  # at most the ARP request (+ retry), no data frames


def test_vm_distinct_from_physical_host_on_same_edge():
    fabric, _hyp, vms = fabric_with_hypervisor()
    fm = fabric.fabric_manager
    physical = fabric.tree.hosts[0]  # host on port 0 of the same edge
    phys_pmac = Pmac.from_mac(fm.hosts_by_ip[physical.ip].pmac)
    vm_pmac = Pmac.from_mac(fm.hosts_by_ip[vms[0].ip].pmac)
    assert phys_pmac.port != vm_pmac.port
    assert (phys_pmac.pod, phys_pmac.position) == (vm_pmac.pod,
                                                   vm_pmac.position)
