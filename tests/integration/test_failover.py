"""Fault-tolerance integration tests: the Fig. 10/11 mechanisms."""

import pytest

from repro.host.apps import TcpBulkSender, TcpSink, UdpStreamReceiver, UdpStreamSender
from repro.metrics.convergence import convergence_time, measure_outages
from repro.sim import Simulator
from repro.topology import LinkParams, build_portland_fabric
from repro.workloads.failures import FailureInjector, pick_failures


def converged(sim, carrier=False, k=4):
    fabric = build_portland_fabric(
        sim, k=k, link_params=LinkParams(carrier_detect=carrier))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def active_uplink_path(fabric, edge_name):
    """(agg_name, core_name) currently carrying the probe flow."""
    edge = fabric.switches[edge_name]
    half = fabric.tree.k // 2
    up = {i: edge.ports[i].counters.tx_frames
          for i in range(half, fabric.tree.k)}
    uplink = max(up, key=up.get)
    pod = int(edge_name.split("-")[1][1:])
    agg_name = f"agg-p{pod}-s{uplink - half}"
    agg = fabric.switches[agg_name]
    core_tx = {i: agg.ports[i].counters.tx_frames
               for i in range(half, fabric.tree.k)}
    core_port = max(core_tx, key=core_tx.get)
    agg_idx = uplink - half
    core_name = f"core-{agg_idx * half + (core_port - half)}"
    return agg_name, core_name


def test_udp_converges_after_silent_core_link_failure():
    sim = Simulator(seed=5)
    fabric = converged(sim, carrier=False)
    hosts = fabric.host_list()
    rx = UdpStreamReceiver(hosts[12], 5001)
    tx = UdpStreamSender(hosts[0], hosts[12].ip, 5001, rate_pps=1000)
    tx.start()
    sim.run(until=1.0)
    agg_name, core_name = active_uplink_path(fabric, "edge-p0-s0")
    fabric.link_between(agg_name, core_name).fail()
    sim.run(until=2.0)
    outages = measure_outages([rx], 0.9, 2.0, nominal_interval_s=0.001)
    assert outages[0].affected
    conv = convergence_time(outages, 0.001)
    # LDP detection (50 ms) + report + reinstallation: well under 200 ms.
    assert 0.02 < conv < 0.2
    # And traffic is flowing again at the end.
    late = [t for t in rx.arrival_times() if t > 1.8]
    assert len(late) > 150


def test_udp_converges_after_edge_uplink_failure():
    sim = Simulator(seed=6)
    fabric = converged(sim, carrier=False)
    hosts = fabric.host_list()
    rx = UdpStreamReceiver(hosts[12], 5001)
    tx = UdpStreamSender(hosts[0], hosts[12].ip, 5001, rate_pps=1000)
    tx.start()
    sim.run(until=1.0)
    agg_name, _core = active_uplink_path(fabric, "edge-p0-s0")
    fabric.link_between("edge-p0-s0", agg_name).fail()
    sim.run(until=2.0)
    outages = measure_outages([rx], 0.9, 2.0, nominal_interval_s=0.001)
    assert outages[0].affected
    assert 0.02 < convergence_time(outages, 0.001) < 0.25
    late = [t for t in rx.arrival_times() if t > 1.8]
    assert len(late) > 150


def test_remote_edge_gets_fault_update_for_dest_uplink_failure():
    """Failing the *destination* edge's uplink requires the FM to inform
    remote switches (the failure is invisible locally to the sender)."""
    sim = Simulator(seed=7)
    fabric = converged(sim, carrier=False)
    hosts = fabric.host_list()
    rx = UdpStreamReceiver(hosts[12], 5001)  # pod 3, edge-p3-s0
    tx = UdpStreamSender(hosts[0], hosts[12].ip, 5001, rate_pps=1000)
    tx.start()
    sim.run(until=1.0)
    dst_edge = "edge-p3-s0"
    # Find the aggregation switch through which traffic *descends*.
    edge = fabric.switches[dst_edge]
    half = fabric.tree.k // 2
    rx_per_up = {i: edge.ports[i].counters.rx_frames
                 for i in range(half, fabric.tree.k)}
    active_up = max(rx_per_up, key=rx_per_up.get)
    agg_name = f"agg-p3-s{active_up - half}"
    fabric.link_between(dst_edge, agg_name).fail()
    sim.run(until=2.5)
    outages = measure_outages([rx], 0.9, 2.5, nominal_interval_s=0.001)
    assert outages[0].affected
    assert convergence_time(outages, 0.001) < 0.4
    # The source edge switch received a prescriptive fault override.
    src_agent = fabric.agents["edge-p0-s0"]
    assert len(src_agent._fault_overrides) == 1
    late = [t for t in rx.arrival_times() if t > 2.3]
    assert len(late) > 150


def test_recovery_restores_ecmp_and_clears_overrides():
    sim = Simulator(seed=8)
    fabric = converged(sim, carrier=False)
    hosts = fabric.host_list()
    rx = UdpStreamReceiver(hosts[12], 5001)
    tx = UdpStreamSender(hosts[0], hosts[12].ip, 5001, rate_pps=500)
    tx.start()
    sim.run(until=0.5)
    agg_name, _ = active_uplink_path(fabric, "edge-p0-s0")
    link = fabric.link_between("edge-p0-s0", agg_name)
    link.fail()
    sim.run(until=1.5)
    link.recover()
    sim.run(until=2.5)
    assert len(fabric.fabric_manager.fault_matrix) == 0
    for agent in fabric.agents.values():
        assert agent._fault_overrides == {}
    edge_agent = fabric.agents["edge-p0-s0"]
    assert len(edge_agent.ldp.up_ports()) == 2


@pytest.mark.slow
def test_multiple_simultaneous_failures_converge():
    sim = Simulator(seed=9)
    fabric = converged(sim, carrier=False)
    hosts = fabric.host_list()
    receivers = []
    for i, (src_i, dst_i) in enumerate([(0, 12), (2, 14), (5, 9), (7, 11)]):
        rx = UdpStreamReceiver(hosts[dst_i], 6000 + i)
        tx = UdpStreamSender(hosts[src_i], hosts[dst_i].ip, 6000 + i,
                             rate_pps=1000)
        tx.start()
        receivers.append(rx)
    sim.run(until=1.0)
    rng = sim.random.stream("failtest")
    links = pick_failures(fabric.tree, 4, rng, keep_connected=True)
    injector = FailureInjector(sim, fabric.link_between)
    injector.fail_at(1.0, links)
    sim.run(until=3.0)
    outages = measure_outages(receivers, 0.9, 3.0, nominal_interval_s=0.001)
    conv = convergence_time(outages, 0.001)
    if conv is not None:  # at least one flow crossed a failed link
        assert conv < 0.5
    # Every flow is alive again at the end.
    for rx in receivers:
        late = [t for t in rx.arrival_times() if t > 2.8]
        assert len(late) > 100


def test_tcp_flow_survives_failure_with_one_rto_outage():
    sim = Simulator(seed=10)
    fabric = converged(sim, carrier=False)
    hosts = fabric.host_list()
    sink = TcpSink(hosts[12], 9000, rate_bin_s=0.02)
    bulk = TcpBulkSender(hosts[0], hosts[12].ip, 9000)
    sim.run(until=0.5)
    agg_name, core_name = active_uplink_path(fabric, "edge-p0-s0")
    fabric.link_between(agg_name, core_name).fail()
    sim.run(until=1.5)
    assert bulk.conn.state.value == "ESTABLISHED"
    series = sink.goodput_series(0.4, 1.5)
    outage_bins = [t for t, v in series if v == 0 and 0.5 <= t <= 1.0]
    # Outage exists but is short: bounded by ~RTO (200 ms) + convergence.
    assert 0 < len(outage_bins) <= 25
    tail = [v for t, v in series if t > 1.3]
    assert sum(tail) / len(tail) > 0.5e9 / 8  # back above 500 Mb/s
