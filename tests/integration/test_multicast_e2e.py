"""Multicast end-to-end: IGMP → fabric manager → tree → delivery, and
fault recovery of the tree (the Fig. 12 mechanism)."""

from repro.host.apps import MulticastReceiver, MulticastSender
from repro.net import ip as mkip
from repro.sim import Simulator
from repro.topology import LinkParams, build_portland_fabric

GROUP = mkip("239.2.2.2")
PORT = 7500


def converged(sim, carrier=False):
    fabric = build_portland_fabric(
        sim, k=4, link_params=LinkParams(carrier_detect=carrier))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def test_multicast_delivery_to_joined_receivers_only():
    sim = Simulator(seed=21)
    fabric = converged(sim)
    hosts = fabric.host_list()
    receivers = [MulticastReceiver(hosts[i], GROUP, PORT) for i in (4, 9, 13)]
    bystander = hosts[6].udp_socket(PORT)  # bound but not joined
    sim.run(until=sim.now + 0.2)  # joins propagate to the FM

    sender = MulticastSender(hosts[0], GROUP, PORT, rate_pps=500)
    sender.start()
    sim.run(until=sim.now + 1.0)
    for rx in receivers:
        assert rx.received > 300
    assert bystander.inbox == []
    # Group state at the FM has all three member edges + the sender edge.
    fm = fabric.fabric_manager
    state = fm.multicast.groups[GROUP]
    assert len(state.member_edges()) == 3
    assert len(state.sender_edges) == 1


def test_sender_in_member_pod_and_same_edge():
    sim = Simulator(seed=22)
    fabric = converged(sim)
    hosts = fabric.host_list()
    # Receiver on the same edge switch as the sender, plus a remote one.
    rx_local = MulticastReceiver(hosts[1], GROUP, PORT)  # same edge as hosts[0]
    rx_remote = MulticastReceiver(hosts[14], GROUP, PORT)
    sim.run(until=sim.now + 0.2)
    sender = MulticastSender(hosts[0], GROUP, PORT, rate_pps=500)
    sender.start()
    sim.run(until=sim.now + 1.0)
    assert rx_local.received > 300
    assert rx_remote.received > 300
    # The sender itself never gets a copy (ingress-port exclusion).
    assert all(seq >= 0 for _t, seq, _d in rx_local.arrivals)


def test_leave_stops_delivery():
    sim = Simulator(seed=23)
    fabric = converged(sim)
    hosts = fabric.host_list()
    rx = MulticastReceiver(hosts[9], GROUP, PORT)
    sim.run(until=sim.now + 0.2)
    sender = MulticastSender(hosts[0], GROUP, PORT, rate_pps=500)
    sender.start()
    sim.run(until=sim.now + 0.5)
    count_at_leave = rx.received
    assert count_at_leave > 100
    rx.leave()
    sim.run(until=sim.now + 0.5)
    # A handful of in-flight datagrams may still land.
    assert rx.received - count_at_leave < 30


def test_tree_repairs_after_silent_link_failure():
    sim = Simulator(seed=24)
    fabric = converged(sim, carrier=False)
    hosts = fabric.host_list()
    receivers = [MulticastReceiver(hosts[i], GROUP, PORT) for i in (5, 13)]
    sim.run(until=sim.now + 0.2)
    sender = MulticastSender(hosts[0], GROUP, PORT, rate_pps=1000)
    sender.start()
    sim.run(until=1.0)
    for rx in receivers:
        assert rx.received > 400

    # Fail a link actually on the installed tree: core -> receiver agg.
    fm = fabric.fabric_manager
    state = fm.multicast.groups[GROUP]
    core_id = state.core
    id_to_name = {agent.switch_id: name
                  for name, agent in fabric.agents.items()}
    core_name = id_to_name[core_id]
    # Pick the tree agg of the pod of receiver hosts[13].
    agg_ids = [sid for sid in state.installed if id_to_name[sid].startswith("agg")]
    target_agg = None
    for sid in agg_ids:
        name = id_to_name[sid]
        if name.split("-")[1] == "p3":  # hosts[13] lives in physical pod 3
            target_agg = name
    assert target_agg is not None
    fabric.link_between(core_name, target_agg).fail()
    sim.run(until=2.5)

    for rx in receivers:
        gap, _s, _e = rx.max_gap(0.9, 2.5)
        # Outage bounded: detection (~50 ms) + recompute + install.
        assert gap < 0.4
        late = [t for t in rx.arrival_times() if t > 2.3]
        assert len(late) > 100


def test_tree_uses_recovered_links_again():
    sim = Simulator(seed=25)
    fabric = converged(sim, carrier=False)
    hosts = fabric.host_list()
    rx = MulticastReceiver(hosts[13], GROUP, PORT)
    sim.run(until=sim.now + 0.2)
    sender = MulticastSender(hosts[0], GROUP, PORT, rate_pps=500)
    sender.start()
    sim.run(until=0.8)
    fm = fabric.fabric_manager
    recomputes_before = fm.multicast.recomputes
    state = fm.multicast.groups[GROUP]
    id_to_name = {agent.switch_id: name for name, agent in fabric.agents.items()}
    core_name = id_to_name[state.core]
    # Fail any tree agg link and recover it: the manager recomputes twice.
    agg_name = next(id_to_name[sid] for sid in state.installed
                    if id_to_name[sid].startswith("agg"))
    link = fabric.link_between(core_name, agg_name)
    link.fail()
    sim.run(until=1.5)
    link.recover()
    sim.run(until=2.2)
    assert fm.multicast.recomputes >= recomputes_before + 2
    late = [t for t in rx.arrival_times() if t > 2.0]
    assert len(late) > 50
