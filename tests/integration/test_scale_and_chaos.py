"""Heavyweight robustness tests (marked slow).

* k=16: 320 switches / 1024 hosts — the paper's target scale class —
  brought up with zero configuration.
* Chaos churn: seconds of random fail/recover storms under live probes;
  the fabric must never loop a frame and must return to a clean state.
"""

import pytest

from repro.host.apps import UdpEchoServer, UdpPinger
from repro.portland.messages import SwitchLevel
from repro.sim import Simulator
from repro.topology import LinkParams, build_portland_fabric
from repro.workloads.failures import pick_failures
from repro.workloads.traffic import UdpFlowSet, inter_pod_pairs


@pytest.mark.slow
def test_k16_fabric_bringup_and_traffic():
    sim = Simulator(seed=131)
    fabric = build_portland_fabric(sim, k=16)
    assert len(fabric.switches) == 320
    assert len(fabric.hosts) == 1024
    fabric.start()
    located = fabric.run_until_located(timeout_s=10.0)
    assert located < 0.5  # discovery time does not grow with scale
    fabric.announce_hosts()
    fabric.run_until_registered(timeout_s=10.0)
    assert len(fabric.fabric_manager.hosts_by_ip) == 1024

    # Positions unique in every one of the 16 pods.
    by_pod = {}
    for agent in fabric.agents.values():
        if agent.level is SwitchLevel.EDGE:
            by_pod.setdefault(agent.ldp.pod, []).append(agent.ldp.position)
    assert len(by_pod) == 16
    for positions in by_pod.values():
        assert sorted(positions) == list(range(8))

    # State stays O(k) at 1024 hosts.
    max_state = max(len(s.table) + len(s.rewrite_table)
                    for s in fabric.switches.values())
    assert max_state <= 40

    hosts = fabric.host_list()
    UdpEchoServer(hosts[-1], 7)
    pinger = UdpPinger(hosts[0], hosts[-1].ip)
    pinger.ping()
    sim.run(until=sim.now + 0.2)
    assert pinger.answered == 1


@pytest.mark.slow
def test_chaos_churn_converges_clean():
    sim = Simulator(seed=132)
    fabric = build_portland_fabric(
        sim, k=4, link_params=LinkParams(carrier_detect=False))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()

    # Loop detector: no switch may ever see the same payload twice.
    seen = {name: {} for name in fabric.switches}
    violations = []
    from repro.net.ethernet import ETHERTYPE_IPV4

    def make_tap(name):
        def tap(frame, in_port):
            if frame.ethertype != ETHERTYPE_IPV4 or frame.payload is None:
                return
            key = id(frame.payload)
            if key in seen[name]:
                violations.append((name, key))
            seen[name][key] = frame.payload
        return tap

    for name, switch in fabric.switches.items():
        switch.rx_tap = make_tap(name)

    hosts = fabric.host_list()
    by_pod = {}
    for spec, host in zip(fabric.tree.hosts, hosts):
        by_pod.setdefault(spec.pod, []).append(host)
    rng = sim.random.stream("chaos")
    flows = UdpFlowSet(inter_pod_pairs(by_pod, rng, flows=6), rate_pps=400)
    flows.start(stagger=0.0005)
    sim.run(until=0.5)

    # Five rounds of random fail + staggered recover.
    from repro.workloads.failures import FailureInjector

    injector = FailureInjector(sim, fabric.link_between)
    t = 0.5
    for round_index in range(5):
        links = pick_failures(fabric.tree, 1 + round_index % 3, rng)
        injector.fail_at(t, links)
        injector.recover_at(t + 0.35)
        t += 0.7
    sim.run(until=t + 1.5)

    assert violations == []
    fm = fabric.fabric_manager
    assert len(fm.fault_matrix) == 0  # everything recovered
    for agent in fabric.agents.values():
        assert agent._fault_overrides == {}
        assert agent.fm_blocked_neighbors == set()
    # Every probe flow is alive at the end.
    for rx in flows.receivers():
        late = [x for x in rx.arrival_times() if x > t + 1.2]
        assert len(late) > 50
