"""Fabric-manager restart: soft state rebuilds from agent refreshes.

The paper's §3.1 design point: the fabric manager holds *no hard
state* — a failed instance (or a replica taking over empty) relearns
everything from the fabric itself. These tests crash the FM mid-run and
verify the fabric heals without any reconfiguration.
"""

from repro.host.apps import MulticastReceiver, MulticastSender, UdpEchoServer, UdpPinger
from repro.net import ip as mkip
from repro.portland.config import PortlandConfig
from repro.portland.faults import compute_overrides
from repro.sim import Simulator
from repro.topology import LinkParams, build_portland_fabric
from repro.verify import InvariantOracle
from repro.workloads.arp_workload import ArpStorm

REFRESH = 0.5


def converged(sim, carrier=False, **config_kwargs):
    config = PortlandConfig(soft_state_refresh_s=REFRESH, **config_kwargs)
    fabric = build_portland_fabric(
        sim, k=4, config=config,
        link_params=LinkParams(carrier_detect=carrier))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def test_registries_rebuild_after_restart():
    sim = Simulator(seed=71)
    fabric = converged(sim)
    fm = fabric.fabric_manager
    hosts_before = dict(fm.hosts_by_ip)
    switches_before = set(fm.switches)

    fm.restart()
    assert fm.hosts_by_ip == {}
    assert fm.switches == {}
    sim.run(until=sim.now + 2.5 * REFRESH)

    assert set(fm.switches) == switches_before
    assert set(fm.hosts_by_ip) == set(hosts_before)
    for ip_addr, record in fm.hosts_by_ip.items():
        assert record.pmac == hosts_before[ip_addr].pmac
        assert record.edge_id == hosts_before[ip_addr].edge_id


def test_arp_resolution_works_after_restart():
    sim = Simulator(seed=72)
    fabric = converged(sim)
    fm = fabric.fabric_manager
    fm.restart()
    sim.run(until=sim.now + 2.5 * REFRESH)

    hosts = fabric.host_list()
    UdpEchoServer(hosts[9], 7)
    pinger = UdpPinger(hosts[2], hosts[9].ip)
    hosts[2].arp_cache.invalidate(hosts[9].ip)
    pinger.ping()
    sim.run(until=sim.now + 0.5)
    assert pinger.answered == 1
    assert fm.arp_misses == 0  # registry was already warm again


def test_outstanding_failure_survives_restart():
    sim = Simulator(seed=73)
    fabric = converged(sim, carrier=False)
    link = fabric.link_between("agg-p0-s0", "core-0")
    link.fail()
    sim.run(until=sim.now + 0.3)
    fm = fabric.fabric_manager
    assert len(fm.fault_matrix) == 1

    fm.restart()
    assert len(fm.fault_matrix) == 0
    sim.run(until=sim.now + 2.5 * REFRESH)
    # Agents re-report the still-broken link.
    assert len(fm.fault_matrix) == 1
    link.recover()
    sim.run(until=sim.now + 1.0)
    assert len(fm.fault_matrix) == 0


def test_multicast_group_state_rebuilds():
    sim = Simulator(seed=74)
    fabric = converged(sim, carrier=False)
    group = mkip("239.4.4.4")
    hosts = fabric.host_list()
    receivers = [MulticastReceiver(hosts[i], group, 7700) for i in (5, 13)]
    sim.run(until=sim.now + 0.2)
    sender = MulticastSender(hosts[0], group, 7700, rate_pps=500)
    sender.start()
    sim.run(until=sim.now + 0.5)

    fm = fabric.fabric_manager
    fm.restart()
    assert fm.multicast.groups == {}
    sim.run(until=sim.now + 2.5 * REFRESH)
    state = fm.multicast.groups.get(group)
    assert state is not None
    assert len(state.member_edges()) == 2

    # A post-restart tree-link failure is still repaired (the rebuilt
    # state is fully functional, not just cosmetic).
    id_to_name = {a.switch_id: n for n, a in fabric.agents.items()}
    core_name = id_to_name[state.core] if state.core else None
    # The restarted FM may not have recomputed a tree yet if membership
    # did not change; force by checking delivery instead.
    t0 = sim.now
    sim.run(until=t0 + 1.0)
    for rx in receivers:
        recent = [t for t in rx.arrival_times() if t > t0]
        assert len(recent) > 300


def test_restart_during_arp_storm():
    """Failover under fire: the FM crashes mid-ARP-storm and the fabric
    keeps resolving — misses fall back to floods, the registry re-warms
    from refreshes, and the invariant oracle stays clean."""
    sim = Simulator(seed=76)
    fabric = converged(sim)
    fm = fabric.fabric_manager
    oracle = InvariantOracle(fabric)
    storm = ArpStorm(sim, fabric.host_list(), 50.0,
                     sim.random.stream("restart-storm"))
    storm.start()
    sim.run(until=sim.now + 0.3)
    fm.restart()
    sim.run(until=sim.now + 1.0)
    storm.stop()
    sim.run(until=sim.now + 2.5 * REFRESH)

    # Registry re-warmed; a cold resolution works end to end.
    assert len(fm.hosts_by_ip) == len(fabric.hosts)
    hosts = fabric.host_list()
    UdpEchoServer(hosts[9], 7)
    pinger = UdpPinger(hosts[2], hosts[9].ip)
    hosts[2].arp_cache.invalidate(hosts[9].ip)
    pinger.ping()
    sim.run(until=sim.now + 0.5)
    assert pinger.answered == 1
    oracle.check_now()
    assert oracle.violations == []
    oracle.close()
    # Counters stayed consistent across the crash: the new instance
    # serviced real work and charged whole service slots for it.
    assert fm.restarts == 1
    assert fm.arp_queries > 0
    slots = fm.busy_time / fm.config.fm_service_time_s
    assert abs(slots - round(slots)) < 1e-9


def test_restart_with_override_push_half_batched():
    """A crash with a batching round half-open: the pending batch dies
    with the instance, and the re-reported failure rebuilds the same
    override state after refresh."""
    sim = Simulator(seed=77)
    fabric = converged(sim, carrier=True, fm_batch_interval_s=0.05)
    fm = fabric.fabric_manager
    link = fabric.link_between("agg-p0-s0", "core-0")
    link.fail()
    # Let the LinkFail reach the FM and open a batching round, then
    # crash before the timer flushes it.
    sim.run(until=sim.now + 0.02)
    assert fm._batch_timer.armed
    assert fm.override_updates_sent == 0
    fm.restart()
    assert not fm._batch_timer.armed
    assert not fm._pending_links and not fm._pending_full

    sim.run(until=sim.now + 2.5 * REFRESH + 0.1)
    # Refresh re-taught the failure; the batched push converged to
    # exactly the from-scratch override set.
    assert len(fm.fault_matrix) == 1
    assert fm._sent_overrides == compute_overrides(fm.view())
    assert fm.override_updates_sent > 0

    link.recover()
    sim.run(until=sim.now + 0.5)
    assert fm._sent_overrides == {}


def test_recovery_while_fm_down_heals_via_override_report():
    """The restart hole OverrideReport closes: a fault clears while the
    FM is down, so nothing in the fault-driven path ever retracts the
    overrides agents still hold — until the soft-state refresh reports
    them and the FM sends the missing clears."""
    sim = Simulator(seed=78)
    fabric = converged(sim, carrier=True)
    fm = fabric.fabric_manager
    link = fabric.link_between("agg-p0-s0", "core-0")
    link.fail()
    sim.run(until=sim.now + 0.3)
    holders = [a for a in fabric.agents.values() if a._fault_overrides]
    assert holders  # overrides are installed in the fabric

    fm.restart()
    link.recover()
    # The LinkRecover reports land on a manager that never knew the
    # fault: they are idempotent no-ops, and the stale overrides would
    # stay installed forever without reconciliation.
    sim.run(until=sim.now + 0.1)
    assert any(a._fault_overrides for a in holders)
    assert fm._sent_overrides == {}

    sim.run(until=sim.now + 2.5 * REFRESH)
    assert not any(a._fault_overrides for a in fabric.agents.values())


def test_pod_numbers_not_reused_after_restart():
    sim = Simulator(seed=75)
    fabric = converged(sim)
    fm = fabric.fabric_manager
    pods_in_use = {a.ldp.pod for a in fabric.agents.values()
                   if a.ldp.pod is not None}
    fm.restart()
    sim.run(until=sim.now + 2.5 * REFRESH)
    # Next pod assignment must not collide with any live pod.
    assert fm._next_pod not in pods_in_use
    assert fm._next_pod >= max(pods_in_use) + 1
