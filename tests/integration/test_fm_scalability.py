"""Fabric-manager load behaviour (the Figs. 14–15 mechanisms)."""

from repro.sim import Simulator
from repro.topology import build_portland_fabric
from repro.workloads.arp_workload import ArpStorm


def storm_fabric(sim, k=4):
    fabric = build_portland_fabric(sim, k=k)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def test_arp_storm_load_reaches_fm():
    sim = Simulator(seed=51)
    fabric = storm_fabric(sim)
    fm = fabric.fabric_manager
    queries_before = fm.arp_queries
    storm = ArpStorm(sim, fabric.host_list(), per_host_rate=25.0,
                     rng=sim.random.stream("storm"))
    storm.start()
    start = sim.now
    sim.run(until=start + 1.0)
    storm.stop()
    issued = storm.requests_issued
    served = fm.arp_queries - queries_before
    # 16 hosts x 25 ARPs/s for 1 s, modulo self-picks and jitter.
    assert 300 <= issued <= 500
    # Essentially every issued request reached the fabric manager.
    assert served >= issued * 0.95
    assert fm.arp_misses == 0  # registry was warm


def test_fm_control_bytes_scale_with_requests():
    sim = Simulator(seed=52)
    fabric = storm_fabric(sim)
    fm = fabric.fabric_manager
    bytes_before = fm.bytes_received
    msgs_before = fm.messages_received
    storm = ArpStorm(sim, fabric.host_list(), per_host_rate=50.0,
                     rng=sim.random.stream("storm"))
    storm.start()
    sim.run(until=sim.now + 1.0)
    storm.stop()
    new_msgs = fm.messages_received - msgs_before
    new_bytes = fm.bytes_received - bytes_before
    assert new_msgs > 0
    per_message = new_bytes / new_msgs
    # Every control message is a minimum-size Ethernet frame here.
    assert 60 <= per_message <= 130


def test_fm_utilization_tracks_service_time():
    sim = Simulator(seed=53)
    fabric = storm_fabric(sim)
    fm = fabric.fabric_manager
    busy_before = fm.busy_time
    storm = ArpStorm(sim, fabric.host_list(), per_host_rate=100.0,
                     rng=sim.random.stream("storm"))
    storm.start()
    start = sim.now
    sim.run(until=start + 1.0)
    storm.stop()
    utilization = (fm.busy_time - busy_before) / 1.0
    # ~1600 requests/s x 25 us ≈ 4% of one core.
    assert 0.01 < utilization < 0.20


def test_fm_resolution_latency_sub_millisecond():
    """An ARP miss costs punt + control RTT + FM service: well under 1 ms
    (the paper reports ~100 us-scale proxy resolution)."""
    sim = Simulator(seed=54)
    fabric = storm_fabric(sim)
    hosts = fabric.host_list()
    from repro.host.apps import UdpEchoServer, UdpPinger

    UdpEchoServer(hosts[9], 7)
    pinger = UdpPinger(hosts[2], hosts[9].ip)
    hosts[2].arp_cache.invalidate(hosts[9].ip)
    pinger.ping()
    sim.run(until=sim.now + 0.1)
    assert pinger.answered == 1
    rtt = pinger.rtts[0][1]
    assert rtt < 0.002  # includes two ARP resolutions (both directions)
