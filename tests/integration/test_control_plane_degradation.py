"""Graceful degradation when the control plane is unreachable.

The fabric manager is *not* on the data path: established communication
must continue even if a switch loses its control link; only new
resolutions through that edge stall, and they recover when the link
returns. Also: full-stack determinism (same seed ⇒ identical run) and
the ARP-cache-expiry → FM-load feedback loop behind Fig. 14.
"""

from repro.host.apps import UdpEchoServer, UdpPinger, UdpStreamReceiver, UdpStreamSender
from repro.sim import Simulator
from repro.topology import build_portland_fabric


def converged(seed):
    sim = Simulator(seed=seed)
    fabric = build_portland_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def test_data_plane_survives_control_link_failure():
    fabric = converged(101)
    sim = fabric.sim
    hosts = fabric.host_list()
    rx = UdpStreamReceiver(hosts[12], 5001)
    tx = UdpStreamSender(hosts[0], hosts[12].ip, 5001, rate_pps=500)
    tx.start()
    sim.run(until=sim.now + 0.5)
    received_before = rx.received
    assert received_before > 200

    # Sever the source edge's control link entirely.
    assert fabric.control is not None
    ctl = next(l for l in fabric.control.links
               if l.name == "ctl:edge-p0-s0")
    ctl.fail()
    sim.run(until=sim.now + 1.0)
    # The established flow never noticed (warm ARP caches, installed
    # entries — the fabric manager is off the data path).
    assert rx.received > received_before + 400


def test_new_resolution_stalls_then_recovers_with_control_link():
    fabric = converged(102)
    sim = fabric.sim
    hosts = fabric.host_list()
    ctl = next(l for l in fabric.control.links
               if l.name == "ctl:edge-p0-s0")
    ctl.fail()

    # A fresh resolution through the cut edge cannot complete...
    UdpEchoServer(hosts[9], 7)
    hosts[0].arp_cache.invalidate(hosts[9].ip)
    pinger = UdpPinger(hosts[0], hosts[9].ip)
    pinger.ping()
    sim.run(until=sim.now + 0.5)
    assert pinger.answered == 0

    # ...until the control link heals (the host's own ARP retry drives a
    # new query).
    ctl.recover()
    sim.run(until=sim.now + 3.0)
    pinger.ping()
    sim.run(until=sim.now + 0.5)
    assert pinger.answered >= 1


def test_full_stack_determinism():
    """Identical seeds produce byte-identical runs."""

    def signature(seed):
        fabric = converged(seed)
        sim = fabric.sim
        hosts = fabric.host_list()
        UdpEchoServer(hosts[15], 7)
        pinger = UdpPinger(hosts[0], hosts[15].ip)
        pinger.ping()
        sim.run(until=1.0)
        return (sim.events_executed, tuple(pinger.rtts),
                fabric.fabric_manager.messages_received,
                fabric.fabric_manager.bytes_received)

    assert signature(103) == signature(103)
    assert signature(103) != signature(104)


def test_arp_cache_expiry_drives_fm_load():
    """The Fig. 14 premise: steady-state FM ARP load comes from cache
    expiry. Short cache lifetimes mean repeated queries."""
    sim = Simulator(seed=105)
    fabric = build_portland_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[9]
    src.arp_cache.timeout_s = 0.3  # aggressive expiry

    UdpEchoServer(dst, 7)
    pinger = UdpPinger(src, dst.ip)
    fm = fabric.fabric_manager
    queries_before = fm.arp_queries
    for i in range(5):
        sim.schedule(i * 0.5, pinger.ping)
    sim.run(until=sim.now + 3.0)
    assert pinger.answered == 5
    # Every ping found an expired cache entry -> one FM query each.
    assert fm.arp_queries - queries_before >= 5
