"""Link-utilization accounting plus a k=6 (3-position pods) end-to-end
sanity check."""

from repro.host.apps import UdpEchoServer, UdpPinger
from repro.metrics.utilization import by_layer, imbalance, snapshot, usage_since
from repro.portland.messages import SwitchLevel
from repro.sim import Simulator
from repro.topology import build_portland_fabric
from repro.workloads.shuffle import ShuffleWorkload


def test_utilization_accounting_tracks_shuffle():
    sim = Simulator(seed=91)
    fabric = build_portland_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()

    baseline = snapshot(fabric.links)
    hosts = fabric.host_list()[:6]
    shuffle = ShuffleWorkload(sim, hosts, bytes_per_flow=30_000)
    shuffle.start()
    shuffle.run_until_done(timeout_s=30.0)

    usages = usage_since(fabric.links, baseline)
    assert usages[0].bytes_total >= usages[-1].bytes_total  # sorted
    layers = by_layer(usages)
    # All three layers carried shuffle traffic (hosts span pods).
    assert layers.get("edge-host", 0) > 0
    assert layers.get("agg-edge", 0) > 0
    assert layers.get("agg-core", 0) > 0
    # Host links carry each byte exactly once in and once out; upper
    # layers carry only the inter-switch subset.
    assert layers["edge-host"] >= layers["agg-core"]
    # ECMP keeps core-layer imbalance bounded.
    assert imbalance(usages, "agg-core") < 4.0
    # Utilization values are sane fractions.
    elapsed = max(r.fct for r in shuffle.results if r.fct)
    for usage in usages[:5]:
        u = usage.utilization(elapsed, 1e9)
        assert 0.0 <= u <= 1.0


def test_k6_fabric_end_to_end():
    """k=6: pods with 3 edges/3 positions — exercises non-power-of-two
    position agreement and 9-way core ECMP."""
    sim = Simulator(seed=92)
    fabric = build_portland_fabric(sim, k=6)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()

    by_pod: dict[int, list[int]] = {}
    for agent in fabric.agents.values():
        if agent.level is SwitchLevel.EDGE:
            by_pod.setdefault(agent.ldp.pod, []).append(agent.ldp.position)
    assert len(by_pod) == 6
    for positions in by_pod.values():
        assert sorted(positions) == [0, 1, 2]

    hosts = fabric.host_list()
    UdpEchoServer(hosts[-1], 7)
    pinger = UdpPinger(hosts[0], hosts[-1].ip)
    pinger.ping()
    sim.run(until=sim.now + 0.5)
    assert pinger.answered == 1
