"""Fabric-manager-mediated broadcast (the paper's answer to non-ARP
broadcast like DHCP: tunnel it, never flood the fabric)."""

from repro.net import AppData, ip as mkip
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.sim import Simulator
from repro.topology import build_portland_fabric

BROADCAST = mkip("255.255.255.255")


def build(seed=81):
    sim = Simulator(seed=seed)
    fabric = build_portland_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def test_limited_broadcast_reaches_every_other_host():
    fabric = build()
    sim = fabric.sim
    hosts = fabric.host_list()
    inboxes = {h.name: h.udp_socket(6800) for h in hosts}
    hosts[0].udp_socket(6801).sendto(BROADCAST, 6800, AppData(32))
    sim.run(until=sim.now + 0.3)
    for host in hosts[1:]:
        assert len(inboxes[host.name].inbox) == 1, host.name
    # The sender does not hear its own broadcast back.
    assert inboxes[hosts[0].name].inbox == []


def test_broadcast_never_floods_the_fabric_core():
    """The data-plane copies are host-port emissions only: aggregation
    and core switches never carry the broadcast frame."""
    fabric = build(seed=82)
    sim = fabric.sim
    seen_at_core = []
    for name, switch in fabric.switches.items():
        if not name.startswith("edge"):
            def tap(frame, in_port, _n=name):
                if frame.ethertype == ETHERTYPE_IPV4 and frame.dst.is_broadcast:
                    seen_at_core.append(_n)
            switch.rx_tap = tap
    hosts = fabric.host_list()
    for h in hosts:
        h.udp_socket(6800)
    hosts[3].udp_socket(6801).sendto(BROADCAST, 6800, AppData(16))
    sim.run(until=sim.now + 0.3)
    assert seen_at_core == []
    # And the fabric manager relayed it to the 7 other edges.
    fm = fabric.fabric_manager
    assert fm.messages_sent > 0


def test_local_hosts_get_broadcast_even_before_relay():
    """Hosts on the sender's own edge switch get the frame directly."""
    fabric = build(seed=83)
    sim = fabric.sim
    hosts = fabric.host_list()
    local_peer = hosts[1]  # same edge as hosts[0]
    inbox = local_peer.udp_socket(6800)
    hosts[0].udp_socket(6801).sendto(BROADCAST, 6800, AppData(8))
    sim.run(until=sim.now + 0.05)
    assert len(inbox.inbox) == 1


def test_broadcast_reply_unicast_works():
    """A broadcast query / unicast response cycle (the DHCP shape)."""
    fabric = build(seed=84)
    sim = fabric.sim
    hosts = fabric.host_list()
    server = hosts[13]
    server_sock = server.udp_socket(6800)

    replies = []

    def on_query(src_ip, src_port, payload, now):
        server_sock.sendto(src_ip, src_port, AppData(4))

    server_sock.on_datagram = on_query
    client_sock = hosts[0].udp_socket(6801)
    client_sock.on_datagram = lambda *a: replies.append(a)
    client_sock.sendto(BROADCAST, 6800, AppData(32))
    sim.run(until=sim.now + 0.5)
    assert len(replies) == 1
