"""Unidirectional failures (FM-mediated blocking) and lossy links."""

import pytest

from repro.errors import LinkError
from repro.host.apps import TcpBulkSender, TcpSink, UdpStreamReceiver, UdpStreamSender
from repro.net import Link, ip, mac
from repro.host import Host
from repro.sim import Simulator
from repro.topology import LinkParams, build_portland_fabric


def converged(sim):
    fabric = build_portland_fabric(
        sim, k=4, link_params=LinkParams(carrier_detect=False))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def test_unidirectional_link_failure_recovers():
    """Killing only one direction of a link: the deaf side times out and
    reports; the FM blocks the *other* side (whose keepalives still
    arrive) via DisableLink; traffic reroutes."""
    sim = Simulator(seed=61)
    fabric = converged(sim)
    hosts = fabric.host_list()
    rx = UdpStreamReceiver(hosts[12], 5001)
    tx = UdpStreamSender(hosts[0], hosts[12].ip, 5001, rate_pps=1000)
    tx.start()
    sim.run(until=1.0)

    # Find the edge uplink in use and kill only edge->agg (the deaf side
    # is the aggregation switch; the edge still hears the agg's LDMs).
    edge = fabric.switches["edge-p0-s0"]
    uplink = max((2, 3), key=lambda i: edge.ports[i].counters.tx_frames)
    agg_name = f"agg-p0-s{uplink - 2}"
    link = fabric.link_between("edge-p0-s0", agg_name)
    link.fail_direction(edge.ports[uplink])
    sim.run(until=2.5)

    gap, _s, _e = rx.max_gap(0.9, 2.5)
    assert 0.02 < gap < 0.4, f"unidirectional failure not healed: {gap}"
    late = [t for t in rx.arrival_times() if t > 2.3]
    assert len(late) > 150
    # The edge (whose receive direction still worked) was blocked by the
    # fabric manager, not by its own keepalive timeout.
    edge_agent = fabric.agents["edge-p0-s0"]
    agg_id = fabric.agents[agg_name].switch_id
    assert agg_id in edge_agent.fm_blocked_neighbors

    # Physical repair: the agg re-hears LDMs, reports recovery, the FM
    # unblocks the edge.
    link.recover()
    sim.run(until=3.5)
    assert agg_id not in edge_agent.fm_blocked_neighbors
    assert len(fabric.fabric_manager.fault_matrix) == 0


def test_bidirectional_failure_disable_enable_cycle():
    sim = Simulator(seed=62)
    fabric = converged(sim)
    link = fabric.link_between("agg-p0-s0", "core-0")
    link.fail()
    sim.run(until=sim.now + 0.3)
    agg_agent = fabric.agents["agg-p0-s0"]
    core_agent = fabric.agents["core-0"]
    assert core_agent.switch_id in agg_agent.fm_blocked_neighbors
    assert agg_agent.switch_id in core_agent.fm_blocked_neighbors
    link.recover()
    sim.run(until=sim.now + 0.5)
    assert agg_agent.fm_blocked_neighbors == set()
    assert core_agent.fm_blocked_neighbors == set()


def test_fail_direction_validates_endpoint():
    sim = Simulator()
    h1 = Host(sim, "h1", mac("00:00:00:00:00:01"), ip("10.0.0.1"))
    h2 = Host(sim, "h2", mac("00:00:00:00:00:02"), ip("10.0.0.2"))
    h3 = Host(sim, "h3", mac("00:00:00:00:00:03"), ip("10.0.0.3"))
    link = Link(sim, h1.nic, h2.nic)
    with pytest.raises(LinkError):
        link.fail_direction(h3.nic)


def test_fail_direction_is_one_way():
    sim = Simulator()
    h1 = Host(sim, "h1", mac("00:00:00:00:00:01"), ip("10.0.0.1"))
    h2 = Host(sim, "h2", mac("00:00:00:00:00:02"), ip("10.0.0.2"))
    link = Link(sim, h1.nic, h2.nic, carrier_detect=False)
    # Warm ARP both ways first.
    box2 = h2.udp_socket(5000)
    box1 = h1.udp_socket(5000)
    h1.udp_socket().sendto(h2.ip, 5000, b"x")
    sim.run(until=sim.now + 0.1)
    assert len(box2.inbox) == 1

    link.fail_direction(h1.nic)
    h1.udp_socket().sendto(h2.ip, 5000, b"y")  # dies
    h2.udp_socket().sendto(h1.ip, 5000, b"z")  # survives
    sim.run(until=sim.now + 0.1)
    assert len(box2.inbox) == 1
    assert len(box1.inbox) == 1
    link.recover()
    h1.udp_socket().sendto(h2.ip, 5000, b"again")
    sim.run(until=sim.now + 0.1)
    assert len(box2.inbox) == 2


def test_lossy_link_tcp_still_completes():
    """1% random loss: TCP grinds through with retransmissions."""
    sim = Simulator(seed=63)
    h1 = Host(sim, "h1", mac("00:00:00:00:00:01"), ip("10.0.0.1"))
    h2 = Host(sim, "h2", mac("00:00:00:00:00:02"), ip("10.0.0.2"))
    Link(sim, h1.nic, h2.nic, loss_rate=0.01, carrier_detect=False)
    got = []

    def on_accept(server):
        server.on_receive = lambda n, t: got.append(n)

    h2.tcp.listen(80, on_accept)
    conn = h1.tcp.connect(h2.ip, 80)
    conn.on_established = lambda: conn.send(2_000_000)
    sim.run(until=20.0)
    assert sum(got) == 2_000_000
    assert conn.segments_retransmitted > 0


def test_lossy_link_parameter_validation():
    sim = Simulator()
    h1 = Host(sim, "h1", mac("00:00:00:00:00:01"), ip("10.0.0.1"))
    h2 = Host(sim, "h2", mac("00:00:00:00:00:02"), ip("10.0.0.2"))
    with pytest.raises(LinkError):
        Link(sim, h1.nic, h2.nic, loss_rate=1.5)


def test_lossy_link_drops_expected_fraction():
    sim = Simulator(seed=64)
    h1 = Host(sim, "h1", mac("00:00:00:00:00:01"), ip("10.0.0.1"))
    h2 = Host(sim, "h2", mac("00:00:00:00:00:02"), ip("10.0.0.2"))
    Link(sim, h1.nic, h2.nic, loss_rate=0.2, carrier_detect=False)
    rx = UdpStreamReceiver(h2, 5000)
    tx = UdpStreamSender(h1, h2.ip, 5000, rate_pps=2000)
    tx.start()
    sim.run(until=2.0)
    delivered = rx.received / tx.next_seq
    assert 0.7 < delivered < 0.9  # ~80% delivery at 20% loss
