"""VM migration end-to-end (the Fig. 13 mechanism)."""

import pytest

from repro.errors import TopologyError
from repro.host.apps import TcpBulkSender, TcpSink, UdpStreamReceiver, UdpStreamSender
from repro.portland.migration import VmMigration
from repro.portland.pmac import Pmac
from repro.sim import Simulator
from repro.topology import build_fat_tree, build_portland_fabric


def fabric_with_spare_ports(sim):
    tree = build_fat_tree(4, hosts_per_edge=1)
    fabric = build_portland_fabric(sim, tree=tree)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def test_migration_updates_fm_and_old_edge_trap():
    sim = Simulator(seed=31)
    fabric = fabric_with_spare_ports(sim)
    hosts = fabric.host_list()
    vm = hosts[7]
    old_record = fabric.fabric_manager.hosts_by_ip[vm.ip]
    old_edge_agent = fabric.agents["edge-p3-s1"]
    assert old_record.edge_id == old_edge_agent.switch_id

    mig = VmMigration(fabric, vm.name, new_edge="edge-p1-s0", new_port=1,
                      downtime_s=0.1)
    mig.start()
    sim.run(until=sim.now + 1.0)

    new_record = fabric.fabric_manager.hosts_by_ip[vm.ip]
    new_agent = fabric.agents["edge-p1-s0"]
    assert new_record.edge_id == new_agent.switch_id
    assert new_record.pmac != old_record.pmac
    assert Pmac.from_mac(new_record.pmac).port == 1
    # Old edge holds a trap for the stale PMAC.
    assert old_record.pmac in old_edge_agent._traps
    assert mig.events.attached_at > mig.events.started_at
    assert mig.events.announced_at > mig.events.attached_at


def test_tcp_flow_survives_migration():
    sim = Simulator(seed=32)
    fabric = fabric_with_spare_ports(sim)
    hosts = fabric.host_list()
    vm, sender = hosts[7], hosts[0]
    sink = TcpSink(vm, 9000, rate_bin_s=0.05)
    bulk = TcpBulkSender(sender, vm.ip, 9000)
    sim.run(until=1.0)
    bytes_before = sink.total_bytes
    assert bytes_before > 10_000_000

    VmMigration(fabric, vm.name, new_edge="edge-p1-s0", new_port=1,
                downtime_s=0.2).start()
    sim.run(until=3.0)
    assert bulk.conn.state.value == "ESTABLISHED"
    assert sink.total_bytes > bytes_before + 10_000_000
    # Sender's ARP cache points at the new PMAC.
    cached = sender.arp_cache.lookup(vm.ip, sim.now)
    assert cached == fabric.fabric_manager.hosts_by_ip[vm.ip].pmac
    # Recovery within ~1 s of reattachment (RTO-backoff gated).
    series = sink.goodput_series(2.2, 3.0)
    assert sum(v for _t, v in series) / len(series) > 0.4e9 / 8


def test_udp_stream_redirects_after_migration():
    sim = Simulator(seed=33)
    fabric = fabric_with_spare_ports(sim)
    hosts = fabric.host_list()
    vm, sender = hosts[6], hosts[1]
    rx = UdpStreamReceiver(vm, 5005)
    tx = UdpStreamSender(sender, vm.ip, 5005, rate_pps=500)
    tx.start()
    sim.run(until=0.5)
    received_before = rx.received
    VmMigration(fabric, vm.name, new_edge="edge-p0-s0", new_port=1,
                downtime_s=0.1).start()
    sim.run(until=2.0)
    # Stream resumed at the new location.
    late = [t for t in rx.arrival_times() if t > 1.8]
    assert len(late) > 80
    assert rx.received > received_before


def test_migration_back_to_back():
    """A VM that migrates twice ends with exactly one live trap chain and
    reachable state."""
    sim = Simulator(seed=34)
    fabric = fabric_with_spare_ports(sim)
    hosts = fabric.host_list()
    vm, sender = hosts[5], hosts[0]

    VmMigration(fabric, vm.name, "edge-p1-s0", 1, downtime_s=0.1).start()
    sim.run(until=1.0)
    VmMigration(fabric, vm.name, "edge-p3-s0", 1, downtime_s=0.1).start()
    sim.run(until=2.0)

    fm = fabric.fabric_manager
    record = fm.hosts_by_ip[vm.ip]
    assert record.edge_id == fabric.agents["edge-p3-s0"].switch_id
    # End-to-end reachability after the double hop.
    from repro.host.apps import UdpEchoServer, UdpPinger

    UdpEchoServer(vm, 7)
    pinger = UdpPinger(sender, vm.ip)
    pinger.ping()
    sim.run(until=sim.now + 0.5)
    assert pinger.answered == 1


def test_migration_validation_errors():
    sim = Simulator(seed=35)
    fabric = fabric_with_spare_ports(sim)
    with pytest.raises(TopologyError):
        VmMigration(fabric, fabric.tree.hosts[0].name, "nonexistent", 1)
    with pytest.raises(TopologyError):
        # Port 0 of every edge already has a host.
        VmMigration(fabric, fabric.tree.hosts[0].name, "edge-p1-s0", 0)
