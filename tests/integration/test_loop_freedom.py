"""Loop-freedom property: no packet ever visits the same switch twice.

The paper proves PortLand forwarding is loop-free by construction
(up*-down* with prefix matching). Here the property is *observed*: every
data-plane frame is fingerprinted by its payload object, every switch
records which payloads it has seen, and a duplicate sighting anywhere —
under any combination of random failures, fault overrides, and recovery
churn — fails the test. TTL-style leniency is deliberately absent.
"""

import pytest

from repro.host.apps import UdpStreamReceiver, UdpStreamSender
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.sim import Simulator
from repro.topology import LinkParams, build_portland_fabric
from repro.workloads.failures import FailureInjector, pick_failures
from repro.workloads.traffic import random_permutation_pairs


def instrument_no_revisit(fabric):
    """Attach taps that assert no switch sees the same payload twice."""
    # Strong references keep payload objects alive so that CPython never
    # recycles an id() into a false duplicate.
    seen: dict[str, dict[int, object]] = {name: {} for name in fabric.switches}
    violations: list[tuple[str, int]] = []

    def make_tap(name):
        def tap(frame, in_port):
            if frame.ethertype != ETHERTYPE_IPV4 or frame.payload is None:
                return
            key = id(frame.payload)
            if key in seen[name]:
                violations.append((name, key))
            seen[name][key] = frame.payload
        return tap

    for name, switch in fabric.switches.items():
        switch.rx_tap = make_tap(name)
    return violations


@pytest.mark.parametrize("seed,failures", [(41, 0), (42, 2), (43, 4),
                                           (44, 6), (45, 8)])
def test_no_switch_revisits_under_failures(seed, failures, invariant_oracle):
    sim = Simulator(seed=seed)
    fabric = build_portland_fabric(
        sim, k=4, link_params=LinkParams(carrier_detect=False))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    violations = instrument_no_revisit(fabric)
    # The repro.verify oracle watches the same run: its teardown asserts
    # no loop/up-after-down violations alongside the tap-based check.
    oracle = invariant_oracle(fabric)

    hosts = fabric.host_list()
    rng = sim.random.stream("loop-test")
    pairs = random_permutation_pairs(hosts, rng)[:8]
    receivers = []
    for i, (src, dst) in enumerate(pairs):
        rx = UdpStreamReceiver(dst, 7000 + i)
        tx = UdpStreamSender(src, dst.ip, 7000 + i, rate_pps=200)
        tx.start()
        receivers.append(rx)
    sim.run(until=0.5)

    if failures:
        links = pick_failures(fabric.tree, failures, rng, keep_connected=True)
        injector = FailureInjector(sim, fabric.link_between)
        injector.fail_at(0.5, links)
        injector.recover_at(1.5)
    sim.run(until=2.5)

    assert violations == []
    # Post-churn the settled fabric passes the full static suite too.
    assert oracle.check_now() == []
    # And the fabric still delivers after the churn.
    for rx in receivers:
        late = [t for t in rx.arrival_times() if t > 2.3]
        assert len(late) > 20


def test_no_revisit_during_discovery_storm():
    """Even the bring-up phase (floods of gratuitous ARPs, registration,
    reactive installs) never loops a frame."""
    sim = Simulator(seed=46)
    fabric = build_portland_fabric(sim, k=4)
    violations = instrument_no_revisit(fabric)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    hosts = fabric.host_list()
    for i, host in enumerate(hosts):
        host.udp_socket().sendto(hosts[(i + 5) % len(hosts)].ip, 8000,
                                 b"probe")
    sim.run(until=sim.now + 0.5)
    assert violations == []
