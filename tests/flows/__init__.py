"""Tests for the flow-level fluid simulation engine (repro.flows)."""
