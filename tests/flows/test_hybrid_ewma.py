"""Regression tests for the hybrid frame-load EWMA metering.

Each link direction fluid crosses gets its *own* epoch accumulator —
a (byte watermark, timestamp) pair seeded the moment the direction
joins the tracked set. Two historical bugs this pins down:

* a direction joining mid-run must not have its whole pre-join frame
  history attributed to its first epoch (a one-tick load spike that
  could spuriously starve fluid flows on that link);
* the instantaneous rate must be measured over the direction's own
  elapsed span, not the nominal epoch length — ticks are irregular
  when the epoch timer stops (no fluid flows) and restarts.

The fluid flows here carry a ``demand_bps`` cap so they leave the
frame stream its full offered rate; a greedy flow would squeeze the
frames to the residual floor, and the EWMA would (correctly) report
that smaller achieved load instead of the stream's rate.
"""

import pytest

from repro.host.apps.udp_stream import UdpStreamSender
from repro.portland.config import PortlandConfig
from repro.sim import Simulator
from repro.topology import LinkParams, build_portland_fabric

EPOCH_S = 0.005
STREAM_BPS = 20e6
PAYLOAD = 500
FLUID_DEMAND_BPS = 100e6


def hybrid_fabric(seed=71):
    sim = Simulator(seed=seed)
    fabric = build_portland_fabric(
        sim, k=4,
        config=PortlandConfig(flow_mode="hybrid", hybrid_epoch_s=EPOCH_S),
        link_params=LinkParams(carrier_detect=True))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def uplink_direction(fabric, host):
    """(link, port) of the host's uplink toward its edge switch."""
    port = host.port(0)
    return port.link, port


def start_stream(sim, src, dst, bps=STREAM_BPS):
    stream = UdpStreamSender(src, dst.ip, 9999,
                             rate_pps=bps / (PAYLOAD * 8),
                             payload_bytes=PAYLOAD)
    stream.start()
    return stream


def start_fluid(engine, src, dst, sport, name):
    return engine.start_flow(src, dst.ip, size_bytes=None, sport=sport,
                             dport=sport, demand_bps=FLUID_DEMAND_BPS,
                             name=name)


def test_direction_joining_midrun_ignores_frame_history():
    fabric = hybrid_fabric()
    sim = fabric.sim
    hosts = fabric.host_list()
    src, frame_dst, fluid_dst = hosts[0], hosts[5], hosts[-1]

    # 100 ms of frame history on src's uplink before fluid ever looks
    # at it: ~2.5 Mbit transmitted.
    stream = start_stream(sim, src, frame_dst)
    sim.run(until=sim.now + 0.1)
    link, port = uplink_direction(fabric, src)
    history_bytes = link.frame_tx_bytes(port)
    assert history_bytes * 8 > STREAM_BPS * 0.08

    # Fluid joins the direction now. Its first epochs must estimate the
    # stream's *rate*, not (history bytes / epoch) — which would be
    # ~40x the real load here.
    engine = fabric.flow_engine
    start_fluid(engine, src, fluid_dst, 7000, "probe")
    sim.run(until=sim.now + 6 * EPOCH_S)
    pid = id(port)
    assert pid in engine._frame_ewma
    estimate = engine._frame_ewma[pid]
    # EWMA from a cold start needs a few epochs to converge; by six it
    # must be within a factor of 2 of the true offered rate, and far
    # below the history-misattribution value.
    spurious = history_bytes * 8 / EPOCH_S
    assert estimate < STREAM_BPS * 2, (
        f"frame-load estimate {estimate:.0f} bps looks like misattributed "
        f"history (stream is {STREAM_BPS:.0f} bps, spurious would be "
        f"~{spurious:.0f})")
    assert estimate > STREAM_BPS * 0.5
    stream.stop()


def test_each_direction_meters_independently():
    fabric = hybrid_fabric(seed=72)
    sim = fabric.sim
    hosts = fabric.host_list()
    src_a, src_b, dst = hosts[0], hosts[4], hosts[-1]

    # Direction A carries 20 Mb/s of frames, direction B none.
    stream = start_stream(sim, src_a, hosts[5])
    engine = fabric.flow_engine
    start_fluid(engine, src_a, dst, 7001, "fluid-a")
    start_fluid(engine, src_b, dst, 7002, "fluid-b")
    sim.run(until=sim.now + 8 * EPOCH_S)

    _link_a, port_a = uplink_direction(fabric, src_a)
    _link_b, port_b = uplink_direction(fabric, src_b)
    est_a = engine._frame_ewma.get(id(port_a), 0.0)
    est_b = engine._frame_ewma.get(id(port_b), 0.0)
    assert est_a > STREAM_BPS * 0.5
    assert est_b == 0.0, (
        f"direction B inherited {est_b:.0f} bps from direction A's "
        f"accumulator")
    stream.stop()


def test_rejoining_direction_reseeds_watermark():
    """A direction retired (fluid left) and rejoined later must re-seed:
    bytes sent during the gap belong to no epoch."""
    fabric = hybrid_fabric(seed=73)
    sim = fabric.sim
    hosts = fabric.host_list()
    src, frame_dst, fluid_dst = hosts[0], hosts[5], hosts[-1]
    engine = fabric.flow_engine
    link, port = uplink_direction(fabric, src)
    pid = id(port)

    flow = start_fluid(engine, src, fluid_dst, 7003, "first")
    sim.run(until=sim.now + 3 * EPOCH_S)
    assert pid in engine._frame_seen
    engine.stop_flow(flow)
    sim.run(until=sim.now + EPOCH_S)          # let the recompute land
    assert pid not in engine._frame_seen      # retired and cleared

    # 50 ms of frame traffic while fluid is absent.
    stream = start_stream(sim, src, frame_dst)
    sim.run(until=sim.now + 0.05)
    gap_bytes = link.frame_tx_bytes(port)

    t_join = sim.now
    start_fluid(engine, src, fluid_dst, 7004, "second")
    sim.run(until=sim.now + 1e-6)             # same-instant recompute
    seen_bytes, seen_t = engine._frame_seen[pid]
    assert seen_bytes >= gap_bytes            # watermark at rejoin, not 0
    assert seen_t == pytest.approx(t_join)
    sim.run(until=sim.now + 6 * EPOCH_S)
    estimate = engine._frame_ewma[pid]
    assert estimate < STREAM_BPS * 2
    stream.stop()
