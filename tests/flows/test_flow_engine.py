"""Unit/behavioural tests for the fluid flow engine.

Each test drives a converged k=4 flow-mode fabric and checks one piece
of the fluid contract: fair-share rates, demand caps, exact completion
accounting, frame-equivalent counter charging, rerouting on faults, and
stall/resume across a partition.
"""

import math

import pytest

from repro.portland.config import PortlandConfig
from repro.sim import Simulator
from repro.topology import build_portland_fabric

GBPS = 1e9


@pytest.fixture
def flow_fabric():
    sim = Simulator(seed=77)
    fabric = build_portland_fabric(sim, k=4,
                                   config=PortlandConfig(flow_mode=True))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def _inter_pod_pair(fabric):
    hosts = fabric.host_list()
    src = hosts[0]
    dst = next(h for h in hosts if h.name.split("-")[1] != src.name.split("-")[1])
    return src, dst


def _settle(fabric, dt=0.01):
    fabric.sim.run(until=fabric.sim.now + dt)
    fabric.flow_engine.settle_now()


def test_flow_mode_forces_path_cache_on():
    sim = Simulator(seed=1)
    fabric = build_portland_fabric(sim, k=4,
                                   config=PortlandConfig(flow_mode=True))
    assert fabric.flow_engine is not None
    assert fabric.path_cache is not None


def test_single_greedy_flow_takes_line_rate(flow_fabric):
    src, dst = _inter_pod_pair(flow_fabric)
    engine = flow_fabric.flow_engine
    flow = engine.start_flow(src, dst.ip)
    _settle(flow_fabric)
    # Payload (goodput) rate = link rate divided by the wire blow-up.
    expected = GBPS / flow.gross_per_payload
    assert flow.rate_bps == pytest.approx(expected)
    assert flow.transferred_bytes > 0
    assert not flow.stalled


def test_two_flows_share_their_common_bottleneck(flow_fabric):
    hosts = flow_fabric.host_list()
    src = hosts[0]
    engine = flow_fabric.flow_engine
    # Same source host: the host->edge ingress link is the bottleneck.
    f1 = engine.start_flow(src, hosts[2].ip, dport=7001)
    f2 = engine.start_flow(src, hosts[3].ip, dport=7002)
    _settle(flow_fabric)
    expected = GBPS / f1.gross_per_payload / 2
    assert f1.rate_bps == pytest.approx(expected)
    assert f2.rate_bps == pytest.approx(expected)


def test_demand_cap_leaves_headroom_to_greedy_flow(flow_fabric):
    hosts = flow_fabric.host_list()
    src = hosts[0]
    engine = flow_fabric.flow_engine
    capped = engine.start_flow(src, hosts[2].ip, demand_bps=100e6, dport=7001)
    greedy = engine.start_flow(src, hosts[3].ip, dport=7002)
    _settle(flow_fabric)
    assert capped.rate_bps == pytest.approx(100e6)
    # The greedy flow takes everything the capped one left behind.
    line = GBPS / greedy.gross_per_payload
    assert greedy.rate_bps == pytest.approx(
        line - 100e6, rel=1e-6)


def test_finite_flow_completes_exactly(flow_fabric):
    src, dst = _inter_pod_pair(flow_fabric)
    engine = flow_fabric.flow_engine
    done = []
    flow = engine.start_flow(src, dst.ip, size_bytes=1_000_000,
                             on_complete=done.append)
    flow_fabric.sim.run(until=flow_fabric.sim.now + 0.1)
    assert done == [flow]
    assert flow.completed_at is not None
    assert flow.transferred_bytes == 1_000_000
    # TCP-modelled transfer: handshake setup, then a constant-rate
    # line-rate transfer (the initial window's rate bound exceeds line
    # rate on these short paths), then the FIN drain tail.
    line = GBPS / flow.gross_per_payload
    assert flow.tcp is not None
    assert flow.fct == pytest.approx(
        flow.tcp.setup_s + 1_000_000 * 8 / line + flow.tcp.tail_s)
    assert flow not in engine.flows and flow in engine.finished
    assert engine.stats()["flows_completed"] == 1


def test_fluid_charging_matches_frame_accounting(flow_fabric):
    src, dst = _inter_pod_pair(flow_fabric)
    engine = flow_fabric.flow_engine
    nic = src.nic
    base_frames = nic.counters.tx_frames
    base_bytes = nic.counters.tx_bytes
    flow = engine.start_flow(src, dst.ip, size_bytes=500_000,
                             payload_bytes=1000)
    flow_fabric.sim.run(until=flow_fabric.sim.now + 0.1)
    frames = math.ceil(500_000 / 1000)
    assert flow.total_frames() == frames
    # The ingress port saw exactly the frames the frame path would send
    # (plus any ARP noise the fluid path never generates).
    assert nic.counters.tx_frames - base_frames == frames
    assert (nic.counters.tx_bytes - base_bytes
            == frames * flow.frame_wire_bytes)


def test_stop_flow_keeps_partial_transfer(flow_fabric):
    src, dst = _inter_pod_pair(flow_fabric)
    engine = flow_fabric.flow_engine
    flow = engine.start_flow(src, dst.ip)  # open-ended
    _settle(flow_fabric)
    moved = flow.transferred_bytes
    assert moved > 0
    engine.stop_flow(flow)
    assert flow.completed_at is not None
    assert flow.transferred_bytes == pytest.approx(moved)
    assert flow.rate_bps == 0.0
    _settle(flow_fabric)
    assert flow.transferred_bytes == pytest.approx(moved)


def test_flow_reroutes_around_failed_link(flow_fabric):
    src, dst = _inter_pod_pair(flow_fabric)
    engine = flow_fabric.flow_engine
    flow = engine.start_flow(src, dst.ip)
    _settle(flow_fabric)
    assert flow.reroutes == 0
    # Kill a switch-switch link on the pinned path (skip the ingress
    # host link — that one has no alternative).
    link = flow._path.segments[1][0]
    link.fail()
    _settle(flow_fabric)
    assert flow.reroutes == 1
    assert not flow.stalled
    assert link not in [seg_link for seg_link, _ in flow._path.segments]
    before = flow.transferred_bytes
    _settle(flow_fabric)
    assert flow.transferred_bytes > before


def test_partition_stalls_then_recovery_resumes(flow_fabric):
    src, dst = _inter_pod_pair(flow_fabric)
    engine = flow_fabric.flow_engine
    flow = engine.start_flow(src, dst.ip)
    _settle(flow_fabric)
    # Cut every uplink of the destination edge switch: the pod-external
    # source has no path at all.
    edge_port = dst.nic.link.other_end(dst.nic)
    uplinks = [
        port.link for port in edge_port.node.ports
        if port.link is not None
        and port.link.other_end(port).node.name.startswith("agg")
    ]
    assert len(uplinks) == 2
    for link in uplinks:
        link.fail()
    _settle(flow_fabric)
    assert flow.stalled
    assert flow.rate_bps == 0.0
    stalled_bytes = flow.transferred_bytes
    _settle(flow_fabric, dt=0.05)
    assert flow.transferred_bytes == pytest.approx(stalled_bytes)
    assert engine.stats()["flows_stalled"] == 1
    uplinks[0].recover()
    # The retry timer re-resolves within one interval.
    _settle(flow_fabric, dt=3 * engine.retry_interval_s)
    assert not flow.stalled
    assert flow.rate_bps > 0
    assert flow.transferred_bytes > stalled_bytes
    assert engine.stats()["stall_events"] >= 1


def test_rate_log_records_outage_span(flow_fabric):
    src, dst = _inter_pod_pair(flow_fabric)
    engine = flow_fabric.flow_engine
    flow = engine.start_flow(src, dst.ip)
    _settle(flow_fabric)
    edge_port = dst.nic.link.other_end(dst.nic)
    uplinks = [
        port.link for port in edge_port.node.ports
        if port.link is not None
        and port.link.other_end(port).node.name.startswith("agg")
    ]
    for link in uplinks:
        link.fail()
    _settle(flow_fabric)
    for link in uplinks:
        link.recover()
    _settle(flow_fabric, dt=3 * engine.retry_interval_s)
    rates = [rate for _t, rate in flow.rate_log]
    # start -> up, outage -> 0, recovery -> up again.
    assert rates[0] > 0
    assert 0.0 in rates
    assert rates[-1] > 0
