"""Property tests for the fluid engine's max-min allocator.

``FlowEngine._refill`` delegates its water-filling to the pure
:func:`repro.flows.engine.max_min_allocate`; Hypothesis drives that
function with random flow sets over random link graphs and checks the
three contract properties the ISSUE pins down:

* **demand cap** — no flow is ever allocated more than it asked for;
* **capacity** — per-link allocations sum to at most the link's
  starting capacity (in hybrid mode the caller passes capacity *minus
  the frame reservation*, so the same property is what keeps fluid
  flows from starving foreground frame traffic);
* **monotonicity** — removing any one flow improves the survivors in
  the *leximin* order (max-min is the leximin-maximal feasible
  allocation, and the survivors' old rates stay feasible after the
  removal). Per-flow monotonicity is deliberately NOT asserted in the
  multi-link case — Hypothesis finds real counterexamples where
  freeing link A lets a neighbor grow and squeeze a third flow on
  link B — but it does hold, and is asserted, when all flows share
  one bottleneck.

A final engine-level test checks the hybrid wiring of the second
property: with a frame reservation pushed onto a link, the allocator
sees (and respects) the reduced ``fluid_capacity_bps``.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.engine import _EPS_BPS, max_min_allocate

#: Slack for float accumulation across filling rounds.
SLACK = 1e-3

LINK_IDS = list(range(6))

link_capacity = st.floats(min_value=1e6, max_value=1e9,
                          allow_nan=False, allow_infinity=False)
demand = st.one_of(
    st.just(math.inf),  # greedy
    st.floats(min_value=1e3, max_value=2e9,
              allow_nan=False, allow_infinity=False))


@st.composite
def refill_instances(draw):
    """A random allocation problem: capacities per directed link, and
    per flow a demand plus a non-empty subset of links it crosses."""
    capacities = {pid: draw(link_capacity) for pid in LINK_IDS}
    n_flows = draw(st.integers(min_value=1, max_value=8))
    demands = [draw(demand) for _ in range(n_flows)]
    segs_of = [
        draw(st.lists(st.sampled_from(LINK_IDS), min_size=1, max_size=4,
                      unique=True))
        for _ in range(n_flows)
    ]
    return capacities, demands, segs_of


def _allocate(capacities, demands, segs_of):
    remaining = dict(capacities)
    rates = max_min_allocate(demands, segs_of, remaining)
    return rates, remaining


@given(refill_instances())
@settings(max_examples=200, deadline=None)
def test_rates_never_exceed_demand(instance):
    capacities, demands, segs_of = instance
    rates, _remaining = _allocate(capacities, demands, segs_of)
    for rate, want in zip(rates, demands):
        assert rate <= want + _EPS_BPS + SLACK


@given(refill_instances())
@settings(max_examples=200, deadline=None)
def test_per_link_sums_respect_capacity(instance):
    capacities, demands, segs_of = instance
    rates, remaining = _allocate(capacities, demands, segs_of)
    used: dict[int, float] = {}
    for rate, segs in zip(rates, segs_of):
        for pid in segs:
            used[pid] = used.get(pid, 0.0) + rate
    for pid, total in used.items():
        assert total <= capacities[pid] + SLACK
        # And the mutated remaining is consistent with what was taken.
        assert remaining[pid] >= -SLACK
        assert abs(capacities[pid] - total - remaining[pid]) <= SLACK


@given(refill_instances(), st.data())
@settings(max_examples=200, deadline=None)
def test_removing_a_flow_improves_survivors_leximin(instance, data):
    capacities, demands, segs_of = instance
    rates, _remaining = _allocate(capacities, demands, segs_of)
    drop = data.draw(st.integers(min_value=0, max_value=len(demands) - 1))
    kept = [i for i in range(len(demands)) if i != drop]
    new_rates, _r = _allocate(capacities,
                              [demands[i] for i in kept],
                              [segs_of[i] for i in kept])
    before = sorted(rates[i] for i in kept)
    after = sorted(new_rates)
    # Lexicographic comparison of the sorted vectors, with float slack:
    # at the first decided index, the new allocation must be the larger.
    for new_rate, old_rate in zip(after, before):
        if abs(new_rate - old_rate) > SLACK:
            assert new_rate > old_rate, (
                f"survivor rates regressed in leximin order after "
                f"removing flow {drop}: {before} -> {after}")
            break
    # The worst-off survivor in particular never gets poorer.
    if kept:
        assert after[0] >= before[0] - SLACK


@given(st.lists(demand, min_size=2, max_size=8), link_capacity, st.data())
@settings(max_examples=200, deadline=None)
def test_single_bottleneck_removal_is_per_flow_monotone(demands, capacity,
                                                        data):
    """On one shared link, per-flow monotonicity does hold."""
    segs_of = [[0] for _ in demands]
    rates, _r = _allocate({0: capacity}, demands, segs_of)
    drop = data.draw(st.integers(min_value=0, max_value=len(demands) - 1))
    kept = [i for i in range(len(demands)) if i != drop]
    new_rates, _r = _allocate({0: capacity},
                              [demands[i] for i in kept],
                              [segs_of[i] for i in kept])
    for new_rate, i in zip(new_rates, kept):
        assert new_rate >= rates[i] - SLACK


@given(st.floats(min_value=0.0, max_value=9e8), link_capacity)
@settings(max_examples=100, deadline=None)
def test_frame_reservation_shrinks_the_fluid_pool(frame_load, capacity):
    """Hybrid wiring of the capacity property: the allocator receives
    capacity minus the measured frame load (floored at 1% of rate, as
    Link.fluid_capacity_bps does), and its allocations never exceed it."""
    pool = max(capacity - frame_load, capacity * 0.01)
    rates, _r = _allocate({0: pool}, [math.inf, math.inf], [[0], [0]])
    assert sum(rates) <= pool + SLACK
    assert rates[0] == rates[1]  # equal split of the reduced pool
