"""CLI smoke tests (the commands are thin wrappers over tested code)."""

import pytest

from repro.cli import build_parser, main


def test_info_runs(capsys):
    assert main(["info", "--k", "4"]) == 0
    out = capsys.readouterr().out
    assert "hosts" in out and "16" in out


def test_bringup_runs(capsys):
    assert main(["bringup", "--k", "4"]) == 0
    out = capsys.readouterr().out
    assert "LDP location discovery complete" in out
    assert "8 edge" in out


def test_convergence_runs(capsys):
    assert main(["--seed", "3", "convergence", "--failures", "1",
                 "--rate", "500"]) == 0
    out = capsys.readouterr().out
    assert "worst-flow convergence" in out


def test_arp_load_runs(capsys):
    assert main(["arp-load", "--rate", "10", "--duration", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "FM utilization" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
