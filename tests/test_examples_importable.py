"""Every example script must at least import cleanly.

Full runs are exercised by ``make examples``; this guards against API
drift breaking them silently.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # guarded by __main__: does not run
    assert hasattr(module, "main"), f"{path.name} must define main()"


def test_examples_exist():
    assert len(EXAMPLES) >= 8
