"""Structural tests for fat-tree and multi-rooted topology builders."""

import pytest

from repro.errors import TopologyError
from repro.topology.fattree import build_fat_tree, host_ip, host_mac
from repro.topology.multirooted import build_multirooted_tree
from repro.topology.validate import bisection_paths, to_graph, validate_tree


@pytest.mark.parametrize("k", [2, 4, 6, 8])
def test_fat_tree_counts(k):
    tree = build_fat_tree(k)
    half = k // 2
    assert len(tree.edge_names) == k * half
    assert len(tree.agg_names) == k * half
    assert len(tree.core_names) == half * half
    assert tree.num_hosts == k * half * half == k**3 // 4
    validate_tree(tree)


def test_fat_tree_rejects_odd_or_tiny_k():
    with pytest.raises(TopologyError):
        build_fat_tree(3)
    with pytest.raises(TopologyError):
        build_fat_tree(0)


def test_hosts_per_edge_leaves_spare_ports():
    tree = build_fat_tree(4, hosts_per_edge=1)
    assert tree.num_hosts == 8
    validate_tree(tree)
    with pytest.raises(TopologyError):
        build_fat_tree(4, hosts_per_edge=3)


def test_host_addressing_unique_and_unicast():
    tree = build_fat_tree(8)
    macs = {h.mac for h in tree.hosts}
    ips = {h.ip for h in tree.hosts}
    assert len(macs) == len(tree.hosts)
    assert len(ips) == len(tree.hosts)
    assert all(not h.mac.is_multicast for h in tree.hosts)
    assert str(host_ip(0, 0, 0)) == "10.0.0.2"
    assert host_mac(1, 2, 3).is_locally_administered


def test_core_group_structure():
    tree = build_fat_tree(4)
    assert tree.core_group_of_agg(0) == [0, 1]
    assert tree.core_group_of_agg(1) == [2, 3]


def test_fat_tree_link_counts():
    k = 4
    tree = build_fat_tree(k)
    half = k // 2
    # edge-agg: k pods x half x half; agg-core: same.
    assert len(tree.switch_wires) == 2 * k * half * half
    assert len(tree.host_wires) == tree.num_hosts


def test_graph_export_levels_and_connectivity():
    tree = build_fat_tree(4)
    graph = to_graph(tree, include_hosts=True)
    assert graph.number_of_nodes() == 20 + 16
    assert graph.nodes["core-0"]["level"] == "core"
    assert bisection_paths(tree) >= 2  # multipath exists


def test_multirooted_irregular_valid():
    tree = build_multirooted_tree(num_pods=3, edges_per_pod=4,
                                  aggs_per_pod=2, cores_per_group=3,
                                  hosts_per_edge=2)
    validate_tree(tree)
    assert len(tree.core_names) == 6
    assert tree.num_hosts == 3 * 4 * 2


def test_multirooted_rejects_degenerate():
    with pytest.raises(TopologyError):
        build_multirooted_tree(1, 1, 1, 1, 1)
    with pytest.raises(TopologyError):
        build_multirooted_tree(2, 0, 1, 1, 1)


def test_validate_catches_double_wiring():
    tree = build_fat_tree(4)
    tree.switch_wires.append(tree.switch_wires[0])
    with pytest.raises(TopologyError):
        validate_tree(tree)


def test_validate_catches_host_on_core():
    tree = build_fat_tree(4)
    from repro.topology.fattree import WireSpec

    bad = WireSpec(tree.hosts[0].name, 0, "core-0", 3)
    tree.host_wires[0] = bad
    with pytest.raises(TopologyError):
        validate_tree(tree)
