"""Structural tests for the topology backends and the scheme factory.

The conformance suite proves the backends behave identically through
the shared pipeline; these tests pin the *structures* themselves — the
two-level design search, the bipartite wiring, the Jellyfish port
layout, and the :func:`scheme_for_backend` campaign-scale mapping.
"""

import pytest

from repro.errors import TopologyError
from repro.portland.messages import SwitchLevel
from repro.topology.fattree import build_fat_tree
from repro.topology.jellyfish import build_jellyfish, jellyfish_graph
from repro.topology.scheme import (
    BACKEND_NAMES,
    FatTreeScheme,
    JellyfishScheme,
    TwoLayerFatTreeScheme,
    scheme_for_backend,
)
from repro.topology.twolayer import (
    build_twolayer,
    design_twolayer,
)


# ----------------------------------------------------------------------
# Two-level design search (Solnushkin-style)


def test_design_search_minimises_switch_count():
    design = design_twolayer(48, port_counts=(8, 16, 24, 32, 48, 64))
    assert design.num_hosts >= 48
    assert design.oversubscription <= 1.0
    assert design.leaf_ports >= design.hosts_per_leaf + design.spines
    assert design.spine_ports >= design.leaves
    # No feasible design with fewer switches exists: brute-check the
    # same space the search walks.
    for leaf_ports in (8, 16, 24, 32, 48, 64):
        for uplinks in range(1, leaf_ports):
            hosts = leaf_ports - uplinks
            if hosts > uplinks:  # violates 1:1 oversubscription
                continue
            leaves = -(-48 // hosts)
            if leaves < 2 or leaves > 256 or leaves > 64:
                continue
            assert leaves + uplinks >= design.num_switches


def test_design_search_is_deterministic_and_bounded():
    first = design_twolayer(100)
    second = design_twolayer(100)
    assert first == second
    relaxed = design_twolayer(100, max_oversubscription=3.0)
    assert relaxed.num_switches <= first.num_switches
    assert relaxed.oversubscription <= 3.0


def test_design_search_rejects_infeasible():
    with pytest.raises(TopologyError):
        design_twolayer(10_000, port_counts=(8,))
    with pytest.raises(TopologyError):
        design_twolayer(1)


def test_build_twolayer_is_fully_bipartite():
    tree = build_twolayer(leaves=4, spines=3, hosts_per_leaf=2,
                          spare_host_ports=1)
    assert len(tree.edge_names) == 4
    assert len(tree.agg_names) == 3
    assert not tree.core_names
    assert len(tree.hosts) == 8
    # Every (leaf, spine) pair wired exactly once, uplinks above the
    # host + spare block.
    pairs = {(w.node_a, w.node_b) for w in tree.switch_wires}
    assert pairs == {(leaf, spine) for leaf in tree.edge_names
                     for spine in tree.agg_names}
    assert all(w.port_a >= 3 for w in tree.switch_wires)
    assert all(w.port_b == tree.edge_names.index(w.node_a)
               for w in tree.switch_wires)


# ----------------------------------------------------------------------
# Jellyfish structure


def test_jellyfish_port_layout():
    tree = build_jellyfish(8, 3, hosts_per_switch=2, seed=5,
                           spare_host_ports=1)
    assert len(tree.edge_names) == 8
    assert not tree.agg_names and not tree.core_names
    assert len(tree.hosts) == 16
    # Host ports [0, 2), spare port 2, RRG links from port 3 up.
    assert all(w.port_b in (0, 1) for w in tree.host_wires)
    assert all(min(w.port_a, w.port_b) >= 3 for w in tree.switch_wires)
    graph = jellyfish_graph(tree)
    assert all(d == 3 for _n, d in graph.degree())


def test_jellyfish_validates_inputs():
    with pytest.raises(TopologyError):
        build_jellyfish(300, 3)  # over the locator cap
    with pytest.raises(TopologyError):
        build_jellyfish(9, 3)  # odd degree sum
    with pytest.raises(TopologyError):
        build_jellyfish(4, 5)  # degree >= switches


# ----------------------------------------------------------------------
# Scheme factory + locator assignment


def test_scheme_for_backend_mapping():
    assert scheme_for_backend("fattree") is None

    jelly = scheme_for_backend("jellyfish", k=4, topo_seed=3)
    assert isinstance(jelly, JellyfishScheme)
    assert len(jelly.tree.edge_names) == 16  # k^2 switches, degree k-1
    assert all(d == 3 for _n, d in jellyfish_graph(jelly.tree).degree())

    two = scheme_for_backend("twolayer", k=4, hosts_per_edge=2)
    assert isinstance(two, TwoLayerFatTreeScheme)
    assert len(two.tree.edge_names) == 4
    assert len(two.tree.agg_names) == 2

    with pytest.raises(TopologyError):
        scheme_for_backend("hypercube")
    assert set(BACKEND_NAMES) == {"fattree", "jellyfish", "twolayer"}


def test_jellyfish_locators_are_unique_edge_positions():
    scheme = scheme_for_backend("jellyfish", k=4, topo_seed=11)
    locations = scheme.static_locations()
    assert set(locations) == set(scheme.tree.edge_names)
    assert all(loc.level is SwitchLevel.EDGE for loc in locations.values())
    pods = [loc.pod for loc in locations.values()]
    assert len(set(pods)) == len(pods)  # locator = unique pod number
    assert all(loc.position == 0 for loc in locations.values())


def test_twolayer_locations_preseed_both_levels():
    scheme = scheme_for_backend("twolayer", k=4, hosts_per_edge=2)
    locations = scheme.static_locations()
    leaves = {n: l for n, l in locations.items() if n.startswith("leaf")}
    spines = {n: l for n, l in locations.items() if n.startswith("spine")}
    assert len(leaves) == 4 and len(spines) == 2
    assert sorted(l.position for l in leaves.values()) == [0, 1, 2, 3]
    assert all(l.level is SwitchLevel.AGGREGATION for l in spines.values())
    assert all(l.host_ports == frozenset({0, 1}) for l in leaves.values())


def test_fattree_scheme_delegates_to_reachability_oracle():
    scheme = FatTreeScheme(build_fat_tree(4))
    # Structural sanity of the shared path oracle on the classic tree:
    # k=4 has (k/2)^2 = 4 shortest inter-pod paths.
    paths = scheme.enumerate_paths("edge-p0-s0", "edge-p3-s1")
    assert len(paths) == 4
    assert all(len(p) == 5 for p in paths)
    same_pod = scheme.enumerate_paths("edge-p0-s0", "edge-p0-s1")
    assert all(len(p) == 3 for p in same_pod)
    assert scheme.host_port_capacity("edge-p0-s0") == {0, 1}
