"""Failure-path tests for the fabric builder helpers."""

import pytest

from repro.errors import TopologyError
from repro.sim import Simulator
from repro.topology import build_fat_tree, build_portland_fabric
from repro.topology.fattree import FatTree, HostSpec, WireSpec, host_ip, host_mac


def test_link_between_unknown_pair_raises(fabric):
    with pytest.raises(TopologyError):
        fabric.link_between("edge-p0-s0", "core-3")  # not physically wired
    with pytest.raises(TopologyError):
        fabric.link_between("nope", "also-nope")


def test_edge_agent_of_resolves_host(fabric):
    spec = fabric.tree.hosts[0]
    agent = fabric.edge_agent_of(spec.name)
    assert agent.switch.name == spec.edge_switch


def test_run_until_located_times_out_on_broken_topology():
    """A lone edge with hosts but no uplinks can never classify itself
    (it hears no LDMs at all) — discovery must fail loudly, not hang."""
    tree = FatTree(k=2)
    tree.edge_names.append("edge-p0-s0")
    tree.hosts.append(HostSpec(
        name="host-p0-e0-0", pod=0, edge=0, index=0,
        mac=host_mac(0, 0, 0), ip=host_ip(0, 0, 0),
        edge_switch="edge-p0-s0", edge_port=0))
    tree.host_wires.append(WireSpec("host-p0-e0-0", 0, "edge-p0-s0", 0))

    sim = Simulator(seed=1)
    fabric = build_portland_fabric(sim, tree=tree)
    fabric.start()
    with pytest.raises(TopologyError) as excinfo:
        fabric.run_until_located(timeout_s=0.5)
    assert "edge-p0-s0" in str(excinfo.value)


def test_run_until_registered_times_out_without_announcements():
    sim = Simulator(seed=2)
    fabric = build_portland_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_located()
    # No announce_hosts(): silent hosts never register.
    with pytest.raises(TopologyError):
        fabric.run_until_registered(timeout_s=0.3)


def test_hosts_in_pod_helper():
    tree = build_fat_tree(4)
    pod0 = tree.hosts_in_pod(0)
    assert len(pod0) == 4
    assert all(h.pod == 0 for h in pod0)
