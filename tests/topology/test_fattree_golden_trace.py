"""Golden-trace pin for the fat-tree backend.

A k=4 fabric is converged from a fixed seed and runs a deterministic
cross-pod ping-pong workload. Every ``verify.hop`` record of every
probe — timestamps included — plus the flow-entry and port counters of
every switch are serialized to canonical JSON and byte-compared against
``tests/data/golden_fattree_k4.json``, captured before the
TopologyScheme refactor. Any behavioral drift in location discovery,
PMAC assignment, table programming, ECMP hashing, or link timing for
the default backend shows up here as a byte diff.

Regenerate (only when a change is *intended* to alter behavior) with::

    PYTHONPATH=src python tests/topology/test_fattree_golden_trace.py --write
"""

import json
from pathlib import Path

from repro.host.apps.pingpong import UdpEchoServer, UdpPinger
from repro.net.packet import AppData
from repro.portland.config import PortlandConfig
from repro.sim import Simulator, TraceCollector
from repro.topology import build_portland_fabric

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_fattree_k4.json"

SEED = 20090817  # SIGCOMM'09 presentation day; arbitrary but fixed.
PAIRS = ((0, 15), (3, 12), (5, 10), (9, 6))
PINGS = 5
PING_GAP_S = 0.004


def capture_golden() -> str:
    """Run the pinned workload; return the canonical JSON trace."""
    sim = Simulator(seed=SEED)
    fabric = build_portland_fabric(sim, k=4, config=PortlandConfig())
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    hosts = fabric.host_list()

    collector = TraceCollector(sim.trace, "verify.hop")
    pingers = []
    for stagger, (src, dst) in enumerate(PAIRS):
        UdpEchoServer(hosts[dst], port=7)
        pinger = UdpPinger(hosts[src], hosts[dst].ip)
        for i in range(PINGS):
            sim.schedule(0.0007 * stagger + PING_GAP_S * i, pinger.ping)
        pingers.append(pinger)
    sim.run(until=sim.now + PING_GAP_S * PINGS + 0.01)
    collector.close()

    hops = {}
    for record in collector.records:
        ip = record.detail["payload"]
        udp = getattr(ip, "payload", None)
        app = getattr(udp, "payload", None)
        if not isinstance(app, AppData) or not app.flow_id:
            continue  # control traffic (ARP/LDP punts)
        key = f"{app.flow_id}#{app.seq}"
        hops.setdefault(key, []).append([
            repr(record.time), record.source, record.detail["entry"],
            record.detail["in_port"], str(record.detail["dst"]),
            record.detail["ethertype"],
        ])

    entry_counters = {}
    port_counters = {}
    for name in sorted(fabric.switches):
        switch = fabric.switches[name]
        touched = [[e.name, e.packets, e.bytes]
                   for e in switch.table if e.packets > 0]
        if touched:
            entry_counters[name] = touched
        ports = {}
        for port in switch.ports:
            c = port.counters
            if c.tx_frames or c.rx_frames:
                ports[port.index] = [c.tx_frames, c.tx_bytes,
                                     c.rx_frames, c.rx_bytes, c.drops]
        if ports:
            port_counters[name] = ports

    rtts = {hosts[src].name: [[seq, repr(rtt)] for seq, rtt in pinger.rtts]
            for (src, _dst), pinger in zip(PAIRS, pingers)}

    blob = {
        "seed": SEED,
        "pairs": [list(p) for p in PAIRS],
        "hops": hops,
        "entry_counters": entry_counters,
        "port_counters": port_counters,
        "rtts": rtts,
    }
    return json.dumps(blob, indent=1, sort_keys=True) + "\n"


def test_fattree_golden_trace_is_byte_identical():
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing — run this module with --write to capture")
    golden = GOLDEN_PATH.read_text()
    current = capture_golden()
    if current != golden:
        want = json.loads(golden)
        got = json.loads(current)
        for section in want:
            assert got[section] == want[section], (
                f"fat-tree behavior drifted from golden trace in {section!r}")
        raise AssertionError("golden trace drifted (formatting)")


if __name__ == "__main__":
    import sys

    if "--write" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(capture_golden())
        print(f"wrote {GOLDEN_PATH}")
    else:
        print(__doc__)
