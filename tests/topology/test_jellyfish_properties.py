"""Property tests for Jellyfish structure generation (Hypothesis).

The guarantees the routing scheme leans on — r-regularity (every route
computation assumes a uniform switch-port budget), connectedness (the
shortest-path DAG must cover every pair), seed determinism (campaign
scenarios replay bit-for-bit), and regularity-preserving incremental
expansion (the NSDI'12 §3 rewiring argument) — hold across the whole
parameter space, not just the scales the conformance suite pins.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.jellyfish import (
    build_jellyfish,
    expand_jellyfish,
    expand_regular_graph,
    jellyfish_graph,
    random_regular_connected,
)


def _valid_rrg_params(params):
    degree, num = params
    return degree < num and (degree * num) % 2 == 0


#: (degree, num_switches) pairs with a realizable regular graph.
RRG_PARAMS = st.tuples(st.integers(2, 5), st.integers(4, 24)).filter(
    _valid_rrg_params)

#: Even degrees only: odd-degree graphs cannot be expanded by one node.
EXPANDABLE_PARAMS = st.tuples(st.sampled_from([2, 4]),
                              st.integers(6, 20)).filter(_valid_rrg_params)

SEEDS = st.integers(0, 10_000)


@settings(max_examples=30, deadline=None)
@given(params=RRG_PARAMS, seed=SEEDS)
def test_rrg_is_regular_and_connected(params, seed):
    degree, num = params
    graph = random_regular_connected(degree, num, seed)
    assert graph.number_of_nodes() == num
    assert all(d == degree for _node, d in graph.degree())
    assert nx.is_connected(graph)


@settings(max_examples=20, deadline=None)
@given(params=RRG_PARAMS, seed=SEEDS)
def test_rrg_is_seed_deterministic(params, seed):
    degree, num = params
    first = random_regular_connected(degree, num, seed)
    second = random_regular_connected(degree, num, seed)
    assert sorted(first.edges()) == sorted(second.edges())


@settings(max_examples=20, deadline=None)
@given(params=EXPANDABLE_PARAMS, seed=SEEDS)
def test_expansion_preserves_regularity_and_connectivity(params, seed):
    degree, num = params
    graph = random_regular_connected(degree, num, seed)
    expanded = expand_regular_graph(graph, num, seed=seed)
    assert expanded.number_of_nodes() == num + 1
    assert all(d == degree for _node, d in expanded.degree())
    # Each removed edge's endpoints stay connected through the new node.
    assert nx.is_connected(expanded)
    # Old nodes only lost edges that were rewired through the new node.
    lost = set(graph.edges()) - set(expanded.edges())
    assert len(lost) == degree // 2
    assert all(expanded.has_edge(a, num) and expanded.has_edge(b, num)
               for a, b in lost)


@settings(max_examples=15, deadline=None)
@given(params=EXPANDABLE_PARAMS, seed=SEEDS,
       hosts=st.integers(1, 2), spares=st.integers(0, 1))
def test_expand_jellyfish_preserves_structure(params, seed, hosts, spares):
    degree, num = params
    tree = build_jellyfish(num, degree, hosts_per_switch=hosts,
                           seed=seed, spare_host_ports=spares)
    grown = expand_jellyfish(tree, seed=seed)
    assert len(grown.edge_names) == num + 1
    # Same host/spare port layout everywhere, including the new switch.
    assert len(grown.host_wires) == (num + 1) * hosts
    base = min(min(w.port_a, w.port_b) for w in grown.switch_wires)
    assert base == hosts + spares
    expanded_graph = jellyfish_graph(grown)
    assert all(d == degree for _node, d in expanded_graph.degree())
    assert nx.is_connected(expanded_graph)
    # Existing hosts keep their attachment (expansion is incremental).
    old_hosts = {(h.name, h.edge_switch, h.edge_port) for h in tree.hosts}
    new_hosts = {(h.name, h.edge_switch, h.edge_port) for h in grown.hosts}
    assert old_hosts <= new_hosts


@settings(max_examples=10, deadline=None)
@given(seed=SEEDS)
def test_build_is_seed_deterministic(seed):
    first = build_jellyfish(10, 3, seed=seed, spare_host_ports=1)
    second = build_jellyfish(10, 3, seed=seed, spare_host_ports=1)
    assert first.switch_wires == second.switch_wires
    assert first.host_wires == second.host_wires
