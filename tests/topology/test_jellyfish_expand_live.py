"""Live Jellyfish expansion: splice a ToR into a *running* fabric.

The static :func:`expand_jellyfish` is covered by the jellyfish property
tests; these tests exercise :func:`expand_jellyfish_live` — the same
Singla §3 rewiring performed on a simulating fabric — and assert the
full recovery story: compiled paths through spliced links are
invalidated, routing re-converges through the new switch, the new hosts
register with the fabric manager, and the invariant oracle comes back
clean. A campaign-level test pins a scenario whose op draw includes
``expand`` steps mid-fault-sequence.
"""

from repro.errors import TopologyError
from repro.host.apps import UdpEchoServer, UdpPinger
from repro.portland.config import PortlandConfig
from repro.sim import Simulator
from repro.topology import (
    JellyfishScheme,
    build_jellyfish,
    build_portland_fabric,
    expand_jellyfish_live,
)
from repro.topology.jellyfish import expand_regular_graph, jellyfish_graph
from repro.verify import InvariantOracle
from repro.verify.campaign import CampaignConfig, run_scenario

EXPAND_SEED = 5


def converged_even_degree_fabric(sim):
    """A 12-switch degree-4 Jellyfish (even degree: splicable)."""
    tree = build_jellyfish(12, 4, hosts_per_switch=1, seed=3,
                           spare_host_ports=1)
    fabric = build_portland_fabric(
        sim, config=PortlandConfig(path_cache_entries=256),
        scheme=JellyfishScheme(tree))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def test_live_expansion_recovers_clean():
    sim = Simulator(seed=11)
    fabric = converged_even_degree_fabric(sim)

    # Predict (from the deterministic splice seed) one link that the
    # expansion will unplug, and pin a compiled path across it first.
    graph = jellyfish_graph(fabric.tree)
    removed = ({frozenset(e) for e in graph.edges()}
               - {frozenset(e) for e in
                  expand_regular_graph(graph, 12, seed=EXPAND_SEED).edges()})
    a, b = min(sorted(edge) for edge in removed)
    src = fabric.hosts[f"host-j{a}-0"]
    dst = fabric.hosts[f"host-j{b}-0"]
    UdpEchoServer(dst, 7)
    pinger = UdpPinger(src, dst.ip)
    pinger.ping()
    sim.run(until=sim.now + 0.3)
    assert pinger.answered == 1  # adjacent pair: path uses the spliced link
    invalidated_before = fabric.path_cache.stats()["invalidated"]

    oracle = InvariantOracle(fabric)
    expansion = expand_jellyfish_live(fabric, seed=EXPAND_SEED)
    assert expansion.new_switch == "jelly-12"
    assert tuple(sorted((f"jelly-{a}", f"jelly-{b}"))) in [
        tuple(pair) for pair in expansion.spliced]
    assert len(fabric.switches) == 13
    sim.run(until=sim.now + 1.5)

    # The compiled path across the spliced link was retired (carrier
    # loss on detach), and the fabric re-located with the new switch.
    assert fabric.path_cache.stats()["invalidated"] > invalidated_before
    assert fabric.located()

    # The new hosts announced, registered, and are reachable.
    new_host = fabric.hosts[expansion.hosts[0]]
    assert new_host.ip in fabric.fabric_manager.hosts_by_ip
    UdpEchoServer(new_host, 7)
    newcomer = UdpPinger(src, new_host.ip)
    newcomer.ping()
    sim.run(until=sim.now + 0.5)
    assert newcomer.answered == 1

    # The severed pair re-converged around the splice (via jelly-12 or
    # any other shortest path on the rewired graph).
    pinger.ping()
    sim.run(until=sim.now + 0.5)
    assert pinger.answered == 2

    oracle.check_now()
    assert oracle.violations == []
    oracle.close()


def test_expansion_rejects_odd_degree():
    # The campaign-default jellyfish (k=4 -> degree 3) cannot keep
    # regularity across a single-node splice; the live expansion must
    # refuse loudly rather than corrupt the fabric.
    from repro.topology.scheme import scheme_for_backend

    sim = Simulator(seed=12)
    fabric = build_portland_fabric(
        sim, scheme=scheme_for_backend("jellyfish", k=4))
    fabric.start()
    fabric.run_until_located()
    switches_before = len(fabric.switches)
    try:
        expand_jellyfish_live(fabric, seed=0)
        raise AssertionError("odd-degree expansion should raise")
    except TopologyError:
        pass
    assert len(fabric.switches) == switches_before


def test_campaign_expand_step_recovers():
    # Scenario seed 0 with this config draws two expand steps followed
    # by a triple link failure (pinned by the seeded op sequence): the
    # oracle must stay clean through splices and faults combined.
    config = CampaignConfig(backend="jellyfish", ks=(5,), steps=3,
                            expand=True, path_cache_entries=256,
                            probe_pairs=2)
    result = run_scenario(0, config)
    expand_steps = [s for s in result.steps if s.startswith("expand +")]
    assert len(expand_steps) == 2
    assert result.ok, result.violations
    assert result.path_launches > 0
