"""The ``fabric_backend`` fixture: one knob, every topology backend.

Each parametrization is a :class:`FabricBackend` — a named (backend,
scale) pair that builds converged fabrics on demand, so one test body
runs unchanged against the classic fat tree, a seeded Jellyfish RRG,
and a generated two-level fat tree. That is the conformance claim of
``docs/TOPOLOGIES.md``: the mechanism half of the stack (tables,
caches, fluid engine, oracle) never branches on what fabric it's in.

Tier-1 runs the small smoke scales; the larger matrix is marked
``topo`` and runs via ``make test-topo`` (or ``pytest -m topo``).
"""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.topology import build_portland_fabric
from repro.topology.jellyfish import build_jellyfish
from repro.topology.scheme import JellyfishScheme, TwoLayerFatTreeScheme
from repro.topology.twolayer import build_twolayer


class FabricBackend:
    """A topology backend at a fixed scale, buildable on demand."""

    def __init__(self, name: str, scheme_factory, k: int = 4) -> None:
        self.name = name
        self._scheme_factory = scheme_factory
        self.k = k

    def build(self, seed: int = 1, config=None):
        """A wired (not yet started) fabric."""
        sim = Simulator(seed=seed)
        return build_portland_fabric(sim, k=self.k, config=config,
                                     scheme=self._scheme_factory())

    def converged(self, seed: int = 1, config=None):
        """A started fabric, run to full discovery + host registration."""
        fabric = self.build(seed=seed, config=config)
        fabric.start()
        fabric.run_until_located()
        fabric.announce_hosts()
        fabric.run_until_registered()
        return fabric


def _fattree():
    return None  # scheme=None is the built-in dynamic fat tree


def _jellyfish(num_switches: int, degree: int, hosts: int, seed: int):
    def make():
        return JellyfishScheme(build_jellyfish(
            num_switches, degree, hosts_per_switch=hosts, seed=seed,
            spare_host_ports=1))
    return make


def _twolayer(leaves: int, spines: int, hosts: int):
    def make():
        return TwoLayerFatTreeScheme(build_twolayer(
            leaves=leaves, spines=spines, hosts_per_leaf=hosts,
            spare_host_ports=1))
    return make


#: Tier-1 smoke scales: small enough that the whole matrix stays cheap.
SMOKE = [
    FabricBackend("fattree-k4", _fattree, k=4),
    FabricBackend("jellyfish-8x3", _jellyfish(8, 3, 1, 42)),
    FabricBackend("twolayer-4x2", _twolayer(4, 2, 2)),
]

#: Larger instances of the same backends, behind the ``topo`` marker.
FULL = [
    FabricBackend("fattree-k6", _fattree, k=6),
    FabricBackend("jellyfish-16x4", _jellyfish(16, 4, 1, 7)),
    FabricBackend("twolayer-6x3", _twolayer(6, 3, 2)),
]

PARAMS = [pytest.param(backend, id=backend.name) for backend in SMOKE] + [
    pytest.param(backend, id=backend.name, marks=pytest.mark.topo)
    for backend in FULL
]


@pytest.fixture(params=PARAMS)
def fabric_backend(request) -> FabricBackend:
    return request.param
