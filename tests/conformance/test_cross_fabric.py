"""Cross-fabric conformance: the invariant suite, the installed-table
walker, compiled-path trace equivalence, and fluid/frame agreement must
all hold on every topology backend through the *same* code paths.

Every test body below is backend-agnostic — the ``fabric_backend``
fixture (see ``conftest.py``) swaps the fabric underneath it. A test
that can only pass on a fat tree would be a leak in the
:class:`~repro.topology.scheme.TopologyScheme` abstraction.
"""

from repro.host.apps import UdpStreamReceiver, UdpStreamSender
from repro.net.packet import AppData
from repro.portland.config import PortlandConfig
from repro.sim import TraceCollector
from repro.verify.oracle import InvariantOracle

RATE_PPS = 2000.0
PAYLOAD = 1000
WINDOW_S = 0.25


# ----------------------------------------------------------------------
# Oracle invariants + installed-table walker


def test_healthy_fabric_passes_all_invariants(fabric_backend):
    """PMAC consistency, override soundness, and the all-pairs table
    walk are clean on a freshly converged fabric."""
    fabric = fabric_backend.converged(seed=3)
    with InvariantOracle(fabric, track_hops=False) as oracle:
        assert oracle.check_now() == []


def test_fault_then_recovery_keeps_invariants(fabric_backend):
    """A link failure must not strand the walker (reroute or provably
    unreachable), and recovery must retract every override."""
    fabric = fabric_backend.converged(seed=5)
    sim = fabric.sim
    candidates = fabric.routing_scheme().fault_candidate_links()
    assert candidates, "scheme offered no faultable links"
    link = fabric.link_between(*candidates[len(candidates) // 2])
    with InvariantOracle(fabric, track_hops=False) as oracle:
        link.fail()
        sim.run(until=sim.now + 0.6)
        assert oracle.check_now() == []
        link.recover()
        sim.run(until=sim.now + 0.6)
        assert oracle.check_now() == []
    leftover = {name: dict(agent._fault_overrides)
                for name, agent in fabric.agents.items()
                if agent._fault_overrides}
    assert not leftover, f"overrides survived recovery: {leftover}"


def test_enumerated_paths_follow_the_wiring(fabric_backend):
    """The scheme's path oracle only emits real, loop-free switch paths."""
    fabric = fabric_backend.build(seed=3)
    scheme = fabric.routing_scheme()
    edges = fabric.tree.edge_names
    adjacent = {(w.node_a, w.node_b) for w in fabric.tree.switch_wires}
    adjacent |= {(b, a) for a, b in adjacent}
    src, dst = edges[0], edges[-1]
    ecmp = scheme.enumerate_paths(src, dst)
    diverse = scheme.enumerate_paths(src, dst, limit=4)
    assert ecmp and diverse
    shortest = len(ecmp[0])
    for path in ecmp + diverse:
        assert path[0] == src and path[-1] == dst
        assert len(set(path)) == len(path), f"loop in {path}"
        assert all(pair in adjacent for pair in zip(path, path[1:])), path
    assert all(len(path) == shortest for path in ecmp)
    assert all(len(path) >= shortest for path in diverse)


# ----------------------------------------------------------------------
# Compiled-path (cut-through) trace equivalence


def _traced_run(fabric_backend, path_cache_entries: int):
    fabric = fabric_backend.converged(
        seed=11, config=PortlandConfig(path_cache_entries=path_cache_entries))
    sim = fabric.sim
    hosts = fabric.host_list()
    pairs = [(hosts[0], hosts[-1], 7300), (hosts[1], hosts[-2], 7301)]
    collector = TraceCollector(sim.trace, "verify.hop")
    senders = []
    for stagger, (src, dst, port) in enumerate(pairs):
        UdpStreamReceiver(dst, port)
        sender = UdpStreamSender(src, dst.ip, port, rate_pps=200.0)
        # Staggered starts keep flows off the wire simultaneously, so
        # the interpreted run sees no queueing cut-through would skip.
        sender.start(first_delay=0.0013 * stagger)
        senders.append(sender)
    sim.run(until=sim.now + 0.2)
    for sender in senders:
        sender.stop()
    sim.run(until=sim.now + 0.01)
    collector.close()
    return fabric, collector.records


def _trajectories(records):
    by_packet = {}
    for record in records:
        ip = record.detail["payload"]
        udp = getattr(ip, "payload", None)
        app = getattr(udp, "payload", None)
        if not isinstance(app, AppData) or not app.flow_id:
            continue  # control traffic (ARP/LDP punts)
        by_packet.setdefault((app.flow_id, app.seq), []).append(
            (record.time, record.source, record.detail["entry"],
             record.detail["in_port"], record.detail["dst"],
             record.detail["ethertype"]))
    return by_packet


def test_compiled_paths_trace_identically(fabric_backend):
    """With the path cache on, every datagram's hop-by-hop trajectory —
    entries, ports, timestamps — matches the interpreted run exactly."""
    _f, interpreted_records = _traced_run(fabric_backend, 0)
    compiled_fabric, compiled_records = _traced_run(fabric_backend, 4096)

    stats = compiled_fabric.path_cache_stats()
    assert stats["launches"] > 50, "cut-through never engaged"
    assert stats["dropped_in_flight"] == 0

    interpreted = _trajectories(interpreted_records)
    compiled = _trajectories(compiled_records)
    assert interpreted, "no data-frame hops traced"
    assert interpreted.keys() == compiled.keys()
    for key in interpreted:
        assert compiled[key] == interpreted[key], (
            f"datagram {key}: compiled trajectory diverged\n"
            f"  interpreted: {interpreted[key]}\n"
            f"  compiled:    {compiled[key]}")


# ----------------------------------------------------------------------
# Fluid (flow-level) / frame agreement


def test_fluid_flow_rate_agrees_with_frame_path(fabric_backend):
    """A fluid flow's allocated rate matches what a real UDP stream's
    receiver measures on the same pair (same seed, same 5-tuple)."""
    frame_fab = fabric_backend.converged(seed=17)
    fluid_fab = fabric_backend.converged(
        seed=17, config=PortlandConfig(flow_mode=True))

    hosts = frame_fab.host_list()
    src, dst = hosts[0], hosts[-1]
    receiver = UdpStreamReceiver(dst, 6100)
    sender = UdpStreamSender(src, dst.ip, 6100,
                             rate_pps=RATE_PPS, payload_bytes=PAYLOAD)
    sender.start()
    t0 = frame_fab.sim.now
    frame_fab.sim.run(until=t0 + WINDOW_S)
    frame_goodput = len(receiver.arrivals) * PAYLOAD * 8 / WINDOW_S
    assert frame_goodput > 0

    fluid_hosts = fluid_fab.host_list()
    flow = fluid_fab.flow_engine.start_flow(
        fluid_hosts[0], fluid_hosts[-1].ip,
        demand_bps=RATE_PPS * PAYLOAD * 8,
        sport=sender.socket.port, dport=6100, payload_bytes=PAYLOAD)
    t0 = fluid_fab.sim.now
    fluid_fab.sim.run(until=t0 + WINDOW_S)
    fluid_fab.flow_engine.settle_now()
    fluid_rate = flow.average_rate_bps(fluid_fab.sim.now)
    assert abs(fluid_rate - frame_goodput) <= 0.05 * frame_goodput, (
        f"{fabric_backend.name}: fluid {fluid_rate:.0f} bps vs frame "
        f"{frame_goodput:.0f} bps")
