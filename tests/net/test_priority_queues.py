"""Per-class strict-priority egress queue units (docs/POLICY.md).

The queues live inside ``Link``'s per-direction state: classed
(tclass > 0) frames that arrive while the direction is busy wait in
per-class queues and always transmit ahead of the best-effort FIFO,
highest class first. Classless traffic must never see any of this —
the default path keeps the exact pre-policy structures and counters.
"""

import pytest

from repro.net import AppData, EthernetFrame, Link, mac
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.net.node import Node
from repro.policy import CLASS_PRIORITY, DSCP_CS0, DSCP_EF, class_of_dscp
from repro.sim import Simulator


class Sink(Node):
    def __init__(self, sim, name, ports=1):
        super().__init__(sim, name, ports)
        self.received = []

    def receive(self, frame, in_port):
        self.received.append((self.sim.now, frame))


def frame(length=1000, tclass=0):
    return EthernetFrame(mac("ff:ff:ff:ff:ff:ff"), mac("00:00:00:00:00:01"),
                         ETHERTYPE_IPV4, AppData(length), tclass=tclass)


def wire(sim, a, b, **kwargs):
    kwargs.setdefault("rate_bps", 1e6)
    kwargs.setdefault("delay_s", 0.0)
    return Link(sim, a.port(0), b.port(0), **kwargs)


def order(sink):
    return [f.tclass for _t, f in sink.received]


def test_priority_frame_overtakes_queued_bulk():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    wire(sim, a, b)
    # First bulk frame occupies the wire; two more queue; the priority
    # frame arrives last but transmits as soon as the wire frees.
    for _ in range(3):
        assert a.port(0).send(frame(tclass=0))
    assert a.port(0).send(frame(tclass=CLASS_PRIORITY))
    sim.run()
    assert order(b) == [0, CLASS_PRIORITY, 0, 0]


def test_higher_class_beats_lower_class():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    wire(sim, a, b)
    a.port(0).send(frame(tclass=0))      # transmitting
    a.port(0).send(frame(tclass=1))
    a.port(0).send(frame(tclass=2))      # queued later, higher class
    sim.run()
    assert order(b) == [0, 2, 1]


def test_fifo_within_a_class():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    wire(sim, a, b)
    a.port(0).send(frame(tclass=0))
    sizes = (900, 700, 800)
    for size in sizes:
        a.port(0).send(frame(size, tclass=CLASS_PRIORITY))
    sim.run()
    assert [f.payload.length for _t, f in b.received[1:]] == list(sizes)


def test_priority_queues_off_is_plain_fifo():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    wire(sim, a, b, priority_queues=False)
    for _ in range(2):
        a.port(0).send(frame(tclass=0))
    a.port(0).send(frame(tclass=CLASS_PRIORITY))
    a.port(0).send(frame(tclass=0))
    sim.run()
    assert order(b) == [0, 0, CLASS_PRIORITY, 0]


def test_shared_drop_tail_budget_counts_classed_drops():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = wire(sim, a, b, queue_bytes=1100)
    # One transmitting + one queued bulk frame exhausts the budget: both
    # a further bulk frame and a priority frame are tail-dropped (strict
    # priority changes service order, not admission).
    assert a.port(0).send(frame(1000))
    assert a.port(0).send(frame(1000))
    assert not a.port(0).send(frame(1000, tclass=0))
    assert not a.port(0).send(frame(1000, tclass=CLASS_PRIORITY))
    assert a.port(0).counters.drops == 2
    # Only the classed drop is metered per class; class 0 is derived
    # from the port counters (see metrics.utilization.class_drop_totals).
    assert link.class_drops(a.port(0)) == {CLASS_PRIORITY: 1}
    sim.run()
    assert len(b.received) == 2


def test_class_tx_byte_accounting():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = wire(sim, a, b)
    bulk, prio = frame(1000, tclass=0), frame(400, tclass=CLASS_PRIORITY)
    a.port(0).send(bulk)
    a.port(0).send(prio)
    sim.run()
    assert link.class_tx_bytes(a.port(0)) == {
        CLASS_PRIORITY: prio.wire_length()}
    assert a.port(0).counters.tx_bytes == (bulk.wire_length()
                                           + prio.wire_length())
    # The reverse direction carried nothing classed.
    assert link.class_tx_bytes(b.port(0)) == {}


def test_classless_traffic_leaves_class_state_untouched():
    """Bit-identity guard: a fabric that never marks a frame must never
    allocate per-class queues or counters."""
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = wire(sim, a, b)
    for _ in range(5):
        a.port(0).send(frame(tclass=0))
    sim.run()
    assert len(b.received) == 5
    assert link.class_tx_bytes(a.port(0)) == {}
    assert link.class_drops(a.port(0)) == {}
    for direction in link._dirs.values():
        assert direction.class_queues is None


def test_serialization_is_not_preempted():
    """Strict priority is non-preemptive: a priority frame waits out the
    bulk frame already on the wire."""
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    wire(sim, a, b, rate_bps=1e6)
    bulk = frame(1000)
    a.port(0).send(bulk)
    a.port(0).send(frame(100, tclass=CLASS_PRIORITY))
    sim.run()
    bulk_done = (bulk.wire_length() + 20) * 8 / 1e6
    assert b.received[0][0] == pytest.approx(bulk_done)
    assert b.received[1][1].tclass == CLASS_PRIORITY
    assert b.received[1][0] > bulk_done


def test_dscp_to_class_mapping():
    assert class_of_dscp(DSCP_CS0) == 0
    assert class_of_dscp(DSCP_EF) == CLASS_PRIORITY
    assert class_of_dscp(31) == 0
    assert class_of_dscp(32) == CLASS_PRIORITY
