"""Unit and property tests for MAC/IPv4 address types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.net.addresses import BROADCAST_MAC, IPv4Address, MacAddress, ip, mac


def test_mac_parse_and_str_roundtrip():
    m = mac("0a:1b:2c:3d:4e:5f")
    assert str(m) == "0a:1b:2c:3d:4e:5f"
    assert MacAddress.parse("0A-1B-2C-3D-4E-5F") == m


def test_mac_bytes_roundtrip():
    m = mac("00:11:22:33:44:55")
    assert MacAddress.from_bytes(m.to_bytes()) == m
    assert len(m.to_bytes()) == 6


@pytest.mark.parametrize("bad", [
    "00:11:22:33:44", "00:11:22:33:44:55:66", "zz:11:22:33:44:55",
    "001122334455", "00:11:22:33:44:1ff",
])
def test_mac_parse_rejects_malformed(bad):
    with pytest.raises(AddressError):
        MacAddress.parse(bad)


def test_mac_flags():
    assert BROADCAST_MAC.is_broadcast
    assert BROADCAST_MAC.is_multicast
    assert mac("01:00:5e:00:00:01").is_multicast
    assert not mac("00:00:5e:00:00:01").is_multicast
    assert mac("02:00:00:00:00:01").is_locally_administered


def test_mac_value_range():
    with pytest.raises(AddressError):
        MacAddress(-1)
    with pytest.raises(AddressError):
        MacAddress(1 << 48)
    with pytest.raises(AddressError):
        MacAddress.from_bytes(b"\x00" * 5)


def test_mac_ordering_and_hash():
    a, b = MacAddress(1), MacAddress(2)
    assert a < b
    assert len({a, MacAddress(1)}) == 1
    assert a != IPv4Address(1)  # cross-type inequality, not error


def test_ipv4_parse_and_str_roundtrip():
    a = ip("10.1.2.3")
    assert str(a) == "10.1.2.3"
    assert a.value == (10 << 24) | (1 << 16) | (2 << 8) | 3


@pytest.mark.parametrize("bad", ["10.0.0", "10.0.0.0.0", "256.0.0.1",
                                 "a.b.c.d", "10.-1.0.0"])
def test_ipv4_parse_rejects_malformed(bad):
    with pytest.raises(AddressError):
        IPv4Address.parse(bad)


def test_ipv4_multicast_and_mac_mapping():
    group = ip("239.1.2.3")
    assert group.is_multicast
    # RFC 1112: 01:00:5e + low 23 bits.
    assert str(group.multicast_mac()) == "01:00:5e:01:02:03"
    with pytest.raises(AddressError):
        ip("10.0.0.1").multicast_mac()


def test_ipv4_multicast_mac_drops_high_bit():
    # 239.129.2.3: bit 23 of the group is not carried into the MAC.
    assert ip("239.129.2.3").multicast_mac() == ip("239.1.2.3").multicast_mac()


@given(st.integers(min_value=0, max_value=(1 << 48) - 1))
def test_mac_roundtrip_property(value):
    m = MacAddress(value)
    assert MacAddress.parse(str(m)) == m
    assert MacAddress.from_bytes(m.to_bytes()) == m


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_ipv4_roundtrip_property(value):
    a = IPv4Address(value)
    assert IPv4Address.parse(str(a)) == a
    assert IPv4Address.from_bytes(a.to_bytes()) == a
