"""Tests for pcap export."""

import io
import struct

import pytest

from repro.host import Host
from repro.net import AppData, EthernetFrame, Link, ip, mac
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.net.pcap import PcapTap, PcapWriter, read_pcap_headers
from repro.sim import Simulator


def test_writer_produces_valid_global_header():
    buf = io.BytesIO()
    PcapWriter(buf)
    data = buf.getvalue()
    assert len(data) == 24
    magic, major, minor = struct.unpack("!IHH", data[:8])
    assert magic == 0xA1B2C3D4
    assert (major, minor) == (2, 4)


def test_writer_records_roundtrip(tmp_path):
    path = tmp_path / "capture.pcap"
    writer = PcapWriter(open(path, "wb"))
    frame = EthernetFrame(mac("ff:ff:ff:ff:ff:ff"), mac("00:00:00:00:00:01"),
                          ETHERTYPE_IPV4, AppData(100))
    writer.write(1.5, frame)
    writer.write(2.25, frame)
    writer.close()
    records = read_pcap_headers(str(path))
    assert len(records) == 2
    assert records[0] == (pytest.approx(1.5), frame.wire_length())
    assert records[1][0] == pytest.approx(2.25)
    assert writer.frames_written == 2


def test_timestamp_rounding_carry(tmp_path):
    path = tmp_path / "carry.pcap"
    writer = PcapWriter(open(path, "wb"))
    frame = EthernetFrame(mac("ff:ff:ff:ff:ff:ff"), mac("00:00:00:00:00:01"),
                          ETHERTYPE_IPV4, AppData(10))
    writer.write(0.9999999, frame)  # rounds to exactly 1.0 s
    writer.close()
    records = read_pcap_headers(str(path))
    assert records[0][0] == pytest.approx(1.0)


def test_tap_captures_live_traffic(tmp_path):
    sim = Simulator(seed=1)
    h1 = Host(sim, "h1", mac("00:00:00:00:00:01"), ip("10.0.0.1"))
    h2 = Host(sim, "h2", mac("00:00:00:00:00:02"), ip("10.0.0.2"))
    Link(sim, h1.nic, h2.nic)
    path = tmp_path / "live.pcap"
    tap = PcapTap(str(path), [h2])

    inbox = h2.udp_socket(5000)
    h1.udp_socket().sendto(h2.ip, 5000, AppData(64))
    sim.run(until=0.1)
    tap.detach()

    # h2 saw the ARP request plus the data frame.
    records = read_pcap_headers(str(path))
    assert len(records) >= 2
    assert len(inbox.inbox) == 1  # delivery still worked through the tap

    # After detach, traffic is no longer captured.
    h1.udp_socket().sendto(h2.ip, 5000, AppData(64))
    sim.run(until=0.2)
    assert len(read_pcap_headers(str(path))) == len(records)


def test_reader_rejects_garbage(tmp_path):
    path = tmp_path / "bad.pcap"
    path.write_bytes(b"not a pcap")
    with pytest.raises(ValueError):
        read_pcap_headers(str(path))
