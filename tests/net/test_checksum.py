"""Unit and property tests for the Internet checksum."""

import struct

from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import internet_checksum, verify_checksum


def test_known_vector():
    # Classic RFC 1071 worked example.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert internet_checksum(data) == 0x220D


def test_odd_length_pads_with_zero():
    assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


def test_verify_detects_corruption():
    header = bytearray(20)
    header[0] = 0x45
    checksum = internet_checksum(bytes(header))
    struct.pack_into("!H", header, 10, checksum)
    assert verify_checksum(bytes(header))
    header[4] ^= 0xFF
    assert not verify_checksum(bytes(header))


@given(st.binary(min_size=0, max_size=256).map(
    lambda d: d if len(d) % 2 == 0 else d + b"\x00"))
def test_checksummed_data_always_verifies(data):
    # 16-bit-aligned data with its checksum appended must verify.
    checksum = internet_checksum(data + b"\x00\x00")
    stamped = data + struct.pack("!H", checksum)
    assert verify_checksum(stamped)
