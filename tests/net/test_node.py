"""Unit tests for the Node base class."""

import pytest

from repro.errors import TopologyError
from repro.host import Host
from repro.net import Link, ip, mac
from repro.net.node import Node
from repro.sim import Simulator


def test_port_indexing_and_errors():
    sim = Simulator()
    node = Node(sim, "n", 3)
    assert node.port(2).index == 2
    with pytest.raises(TopologyError):
        node.port(3)
    with pytest.raises(TopologyError):
        node.port(-1)
    with pytest.raises(TopologyError):
        Node(sim, "bad", -1)


def test_add_port_extends():
    sim = Simulator()
    node = Node(sim, "n", 1)
    port = node.add_port()
    assert port.index == 1
    assert len(node.ports) == 2


def test_free_port_skips_wired_and_disabled():
    sim = Simulator()
    a = Node(sim, "a", 3)
    b = Node(sim, "b", 1)
    Link(sim, a.port(0), b.port(0))
    a.port(1).enabled = False
    assert a.free_port() is a.port(2)
    Link(sim, a.port(2), Node(sim, "c", 1).port(0))
    with pytest.raises(TopologyError):
        a.free_port()


def test_default_receive_drops_silently():
    sim = Simulator()
    a = Node(sim, "a", 1)
    h = Host(sim, "h", mac("00:00:00:00:00:01"), ip("10.0.0.1"))
    Link(sim, a.port(0), h.nic)
    h.gratuitous_arp()
    sim.run(until=0.01)  # delivered into Node.receive: no-op, no crash
    assert a.port(0).counters.rx_frames == 1
