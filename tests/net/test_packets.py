"""Codec tests: every PDU encodes to bytes and decodes back, and
``wire_length`` always equals ``len(encode())``."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.net.addresses import BROADCAST_MAC, IPv4Address, MacAddress
from repro.net.arp import ARP_REPLY, ARP_REQUEST, ArpPacket
from repro.net.ethernet import (
    ETHERNET_MIN_FRAME,
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetFrame,
)
from repro.net.igmp import IgmpMessage
from repro.net.ipv4 import IPPROTO_UDP, IPv4Packet
from repro.net.packet import AppData, coerce
from repro.net.tcp_wire import FLAG_ACK, FLAG_FIN, FLAG_SYN, TcpSegment
from repro.net.udp import UdpDatagram

MACS = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MacAddress)
IPS = st.integers(min_value=0, max_value=(1 << 32) - 1).map(IPv4Address)


def test_ethernet_roundtrip_and_min_frame():
    frame = EthernetFrame(BROADCAST_MAC, MacAddress(1), ETHERTYPE_IPV4, b"hi")
    raw = frame.encode()
    assert len(raw) == frame.wire_length() == ETHERNET_MIN_FRAME
    decoded = EthernetFrame.decode(raw)
    assert decoded.dst == frame.dst
    assert decoded.src == frame.src
    assert decoded.ethertype == ETHERTYPE_IPV4


def test_ethernet_vlan_tag_roundtrip():
    frame = EthernetFrame(MacAddress(2), MacAddress(1), ETHERTYPE_IPV4,
                          b"x" * 100, vlan=42)
    decoded = EthernetFrame.decode(frame.encode())
    assert decoded.vlan == 42
    assert decoded.ethertype == ETHERTYPE_IPV4
    assert frame.wire_length() == 14 + 4 + 100 + 4


def test_ethernet_rejects_garbage():
    with pytest.raises(CodecError):
        EthernetFrame.decode(b"\x00" * 10)
    with pytest.raises(CodecError):
        EthernetFrame(MacAddress(0), MacAddress(0), 1 << 16, b"")


def test_arp_roundtrip_and_helpers():
    req = ArpPacket.request(MacAddress(1), IPv4Address(10), IPv4Address(20))
    decoded = ArpPacket.decode(req.encode())
    assert decoded.op == ARP_REQUEST
    assert decoded.target_ip == IPv4Address(20)
    assert decoded.ethernet_dst().is_broadcast
    assert len(req.encode()) == req.wire_length() == 28

    rep = ArpPacket.reply(MacAddress(2), IPv4Address(20), MacAddress(1),
                          IPv4Address(10))
    assert ArpPacket.decode(rep.encode()).op == ARP_REPLY
    assert rep.ethernet_dst() == MacAddress(1)

    grat = ArpPacket.gratuitous(MacAddress(3), IPv4Address(30))
    assert grat.is_gratuitous
    assert grat.ethernet_dst().is_broadcast


def test_ipv4_roundtrip_and_checksum():
    packet = IPv4Packet(IPv4Address(1), IPv4Address(2), IPPROTO_UDP,
                        b"payload", ttl=17, ident=99, dscp=10)
    raw = packet.encode()
    assert len(raw) == packet.wire_length()
    decoded = IPv4Packet.decode(raw)
    assert (decoded.src, decoded.dst) == (packet.src, packet.dst)
    assert decoded.ttl == 17
    assert decoded.ident == 99
    assert decoded.dscp == 10
    assert bytes(decoded.payload) == b"payload"
    from repro.net.checksum import verify_checksum
    assert verify_checksum(raw[:20])


def test_ipv4_rejects_malformed():
    with pytest.raises(CodecError):
        IPv4Packet.decode(b"\x00" * 10)
    with pytest.raises(CodecError):
        IPv4Packet(IPv4Address(0), IPv4Address(0), 300, b"")


def test_udp_roundtrip():
    d = UdpDatagram(1000, 2000, b"abc")
    decoded = UdpDatagram.decode(d.encode())
    assert (decoded.src_port, decoded.dst_port) == (1000, 2000)
    assert bytes(decoded.payload) == b"abc"
    with pytest.raises(CodecError):
        UdpDatagram(70000, 1, b"")


def test_tcp_segment_roundtrip_and_seg_len():
    seg = TcpSegment(10, 20, seq=100, ack=200, flags=FLAG_SYN | FLAG_ACK,
                     window=500, payload=b"zz")
    decoded = TcpSegment.decode(seg.encode())
    assert (decoded.seq, decoded.ack) == (100, 200)
    assert decoded.flags == FLAG_SYN | FLAG_ACK
    assert decoded.payload_length == 2
    assert seg.seg_len == 3  # 2 data + SYN
    fin = TcpSegment(1, 2, 0, 0, FLAG_FIN, 0)
    assert fin.seg_len == 1


def test_igmp_roundtrip():
    join = IgmpMessage.join(IPv4Address.parse("239.0.0.5"))
    decoded = IgmpMessage.decode(join.encode())
    assert decoded.is_join
    assert decoded.group == IPv4Address.parse("239.0.0.5")
    leave = IgmpMessage.leave(IPv4Address.parse("239.0.0.5"))
    assert not IgmpMessage.decode(leave.encode()).is_join
    with pytest.raises(CodecError):
        IgmpMessage.join(IPv4Address.parse("10.0.0.1"))


def test_appdata_and_coerce():
    data = AppData(10, flow_id="f", seq=3, sent_at=1.5)
    assert data.encode() == b"\x00" * 10
    assert data.wire_length() == 10
    # coerce: objects pass through, bytes are decoded, junk raises.
    assert coerce(data, AppData) is data
    arp = ArpPacket.request(MacAddress(1), IPv4Address(1), IPv4Address(2))
    assert coerce(arp.encode(), ArpPacket).target_ip == IPv4Address(2)
    with pytest.raises(TypeError):
        coerce(3.14, ArpPacket)


@given(src=MACS, dst=MACS, ethertype=st.integers(0, 0xFFFF),
       length=st.integers(0, 1500))
def test_frame_wire_length_matches_encode(src, dst, ethertype, length):
    frame = EthernetFrame(dst, src, ethertype, AppData(length))
    assert len(frame.encode()) == frame.wire_length()


@given(src=IPS, dst=IPS, proto=st.integers(0, 255), ttl=st.integers(0, 255),
       length=st.integers(0, 1480))
def test_ipv4_wire_length_matches_encode(src, dst, proto, ttl, length):
    packet = IPv4Packet(src, dst, proto, AppData(length), ttl=ttl)
    raw = packet.encode()
    assert len(raw) == packet.wire_length()
    decoded = IPv4Packet.decode(raw)
    assert decoded.src == src and decoded.dst == dst
    assert decoded.protocol == proto


@given(op=st.sampled_from([ARP_REQUEST, ARP_REPLY]), sha=MACS, tha=MACS,
       spa=IPS, tpa=IPS)
def test_arp_roundtrip_property(op, sha, tha, spa, tpa):
    arp = ArpPacket(op, sha, spa, tha, tpa)
    decoded = ArpPacket.decode(arp.encode())
    assert decoded.op == op
    assert decoded.sender_mac == sha and decoded.target_mac == tha
    assert decoded.sender_ip == spa and decoded.target_ip == tpa
