"""Unit tests for links, ports, and failure semantics."""

import pytest

from repro.errors import LinkError
from repro.net import AppData, EthernetFrame, Link, mac
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.net.node import Node
from repro.sim import Simulator


class Sink(Node):
    """Records (time, frame) arrivals and port up/down events."""

    def __init__(self, sim, name, ports=1):
        super().__init__(sim, name, ports)
        self.received = []
        self.downs = 0
        self.ups = 0

    def receive(self, frame, in_port):
        self.received.append((self.sim.now, frame))

    def on_port_down(self, port):
        self.downs += 1

    def on_port_up(self, port):
        self.ups += 1


def frame(length=100):
    return EthernetFrame(mac("ff:ff:ff:ff:ff:ff"), mac("00:00:00:00:00:01"),
                         ETHERTYPE_IPV4, AppData(length))


def wire(sim, a, b, **kwargs):
    return Link(sim, a.port(0), b.port(0), **kwargs)


def test_delivery_latency_is_serialization_plus_propagation():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = wire(sim, a, b, rate_bps=1e9, delay_s=10e-6, carrier_detect=False)
    f = frame(100)
    a.port(0).send(f)
    sim.run()
    expected = (f.wire_length() + 20) * 8 / 1e9 + 10e-6
    assert b.received[0][0] == pytest.approx(expected)


def test_full_duplex_directions_are_independent():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    wire(sim, a, b)
    a.port(0).send(frame())
    b.port(0).send(frame())
    sim.run()
    assert len(a.received) == 1
    assert len(b.received) == 1


def test_frames_queue_while_transmitting():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    wire(sim, a, b, rate_bps=1e6, delay_s=0.0)  # slow link
    for _ in range(3):
        assert a.port(0).send(frame(1000))
    sim.run()
    assert len(b.received) == 3
    arrival_times = [t for t, _f in b.received]
    gaps = [t2 - t1 for t1, t2 in zip(arrival_times, arrival_times[1:])]
    serialization = (frame(1000).wire_length() + 20) * 8 / 1e6
    for gap in gaps:
        assert gap == pytest.approx(serialization)


def test_queue_overflow_drops_tail():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    # Queue fits one queued frame (plus one transmitting).
    wire(sim, a, b, rate_bps=1e6, queue_bytes=1100)
    results = [a.port(0).send(frame(1000)) for _ in range(4)]
    sim.run()
    assert results[0] is True  # transmitting
    assert results[1] is True  # queued
    assert results[2] is False  # dropped
    assert a.port(0).counters.drops == 2
    assert len(b.received) == 2


def test_fail_drops_in_flight_and_queued():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = wire(sim, a, b, rate_bps=1e6, delay_s=0.001, carrier_detect=False)
    a.port(0).send(frame(1000))
    a.port(0).send(frame(1000))
    sim.schedule(0.0005, link.fail)  # mid-flight
    sim.run()
    assert b.received == []
    assert not a.port(0).is_up


def test_send_on_failed_link_counts_drop():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = wire(sim, a, b, carrier_detect=False)
    link.fail()
    assert a.port(0).send(frame()) is False
    assert a.port(0).counters.drops == 1


def test_carrier_notifications_on_fail_and_recover():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = wire(sim, a, b, carrier_detect=True)
    sim.run()  # flush plug-in carrier-up
    assert a.ups == 1 and b.ups == 1
    link.fail()
    link.fail()  # idempotent
    sim.run()
    assert a.downs == 1 and b.downs == 1
    link.recover()
    sim.run()
    assert a.ups == 2 and b.ups == 2
    assert a.port(0).is_up


def test_no_carrier_notifications_when_disabled():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = wire(sim, a, b, carrier_detect=False)
    link.fail()
    link.recover()
    sim.run()
    assert a.downs == b.downs == 0
    assert a.ups == b.ups == 0


def test_recover_restores_delivery():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = wire(sim, a, b, carrier_detect=False)
    link.fail()
    link.recover()
    a.port(0).send(frame())
    sim.run()
    assert len(b.received) == 1


def test_detach_frees_ports_for_rewiring():
    sim = Simulator()
    a, b, c = Sink(sim, "a"), Sink(sim, "b"), Sink(sim, "c")
    link = wire(sim, a, b)
    link.detach()
    assert a.port(0).link is None
    # Re-wire a to c.
    wire(sim, a, c)
    a.port(0).send(frame())
    sim.run()
    assert len(c.received) == 1
    assert b.received == []


def test_double_wiring_rejected():
    sim = Simulator()
    a, b, c = Sink(sim, "a"), Sink(sim, "b"), Sink(sim, "c")
    wire(sim, a, b)
    with pytest.raises(LinkError):
        wire(sim, a, c)
    with pytest.raises(LinkError):
        Link(sim, c.port(0), c.port(0))


def test_disabled_port_drops_rx_and_tx():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    wire(sim, a, b)
    b.port(0).enabled = False
    a.port(0).send(frame())
    sim.run()
    assert b.received == []
    assert b.port(0).counters.drops == 1
    assert b.port(0).send(frame()) is False


def test_counters_track_bytes():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    wire(sim, a, b)
    f = frame(200)
    a.port(0).send(f)
    sim.run()
    assert a.port(0).counters.tx_bytes == f.wire_length()
    assert b.port(0).counters.rx_bytes == f.wire_length()
