"""Tier-1 hybrid-mode smoke: fluid background and frame foreground must
actually share link capacity, cheaply enough for plain ``pytest``.

A reduced-scale cousin of ``benchmarks/bench_hybrid.py``'s k=16
acceptance run (k=4, dozens of background flows instead of 10k, no
JSON artifact). Three properties are gated:

* **fluid slows frames** — a frame-level TCP foreground run over links
  carrying a heavy fluid background (900 Mb/s of CBR allocation per
  host link) must complete measurably slower than the identical
  foreground on an idle frame-mode fabric: fluid allocations stretch
  frame serialization (`Link.serialization_time`), so the foreground
  only gets the residual rate;
* **frames don't evict demand-limited fluid** — the background's CBR
  demand fits inside ``capacity - frame_load`` at every point, so the
  epoch-metered frame load must cut nobody: after the foreground
  finishes (and the frame-load EWMA decays), every background flow is
  back at full demand;
* **soundness** — the invariant oracle watches every foreground frame
  hop and every fluid path resolution, then runs the full static walk
  (cheap at k=4); zero violations.

Also runnable alone via ``make bench-hybrid-smoke``.
"""

from repro.portland.config import PortlandConfig
from repro.sim import Simulator
from repro.topology import build_portland_fabric
from repro.verify import InvariantOracle
from repro.workloads.hybrid import HybridWorkload
from repro.workloads.shuffle import ShuffleWorkload

BG_PER_HOST = 3
BG_RATE_BPS = 300e6          # 900 Mb/s of fluid demand per host link
FG_BYTES = 200_000
SLOWDOWN_FLOOR = 1.5         # expected ~10x at 100 Mb/s residual
DEMAND_TOLERANCE = 0.01


def _converged(seed: int, hybrid: bool):
    sim = Simulator(seed=seed)
    config = PortlandConfig(flow_mode="hybrid" if hybrid else False,
                            path_cache_entries=4096)
    fabric = build_portland_fabric(sim, k=4, config=config)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def _pairs(hosts):
    n = len(hosts)
    bg = [(hosts[i], hosts[(i + j + 1) % n])
          for i in range(n) for j in range(BG_PER_HOST)]
    fg = [(hosts[i], hosts[i + n // 2]) for i in range(8)]
    return bg, fg


def test_hybrid_couples_fluid_and_frame_capacity():
    # Baseline: the identical foreground on an idle frame-mode fabric.
    frame_fab = _converged(42, hybrid=False)
    bg_names, fg_names = _pairs([h.name for h in frame_fab.host_list()])
    idle_shuffle = ShuffleWorkload(
        frame_fab.sim, hosts=[],
        pairs=[(frame_fab.hosts[a], frame_fab.hosts[b])
               for a, b in fg_names],
        bytes_per_flow=FG_BYTES, base_port=31000, stagger_s=0.001)
    idle_shuffle.start()
    idle_shuffle.run_until_done(timeout_s=10.0)
    idle_fct = idle_shuffle.fct_stats().mean
    assert idle_fct > 0

    # Hybrid: same foreground under a heavy fluid background sea.
    fabric = _converged(42, hybrid=True)
    oracle = InvariantOracle(fabric)
    workload = HybridWorkload(
        fabric,
        [(fabric.hosts[a], fabric.hosts[b]) for a, b in bg_names],
        [(fabric.hosts[a], fabric.hosts[b]) for a, b in fg_names],
        background_bps=BG_RATE_BPS, bytes_per_flow=FG_BYTES,
        background_batches=4)
    workload.start()
    workload.run_until_foreground_done(timeout_s=10.0)
    hybrid_fct = workload.fct_stats().mean
    stats = fabric.flow_engine.stats()

    assert stats["flows_active"] == len(bg_names)
    assert stats["epoch_ticks"] > 0, "frame-load metering never ticked"
    slowdown = hybrid_fct / idle_fct
    assert slowdown >= SLOWDOWN_FLOOR, (
        f"foreground FCT {hybrid_fct * 1e3:.2f} ms over the fluid sea vs "
        f"{idle_fct * 1e3:.2f} ms idle — only {slowdown:.2f}x slower "
        f"(floor {SLOWDOWN_FLOOR}x); fluid load is not stretching frame "
        f"serialization")

    # Let the frame-load EWMA decay, then every demand-limited CBR
    # background flow must be back at (or still at) full demand: frame
    # traffic must never permanently crowd out fluid demand that fits.
    fabric.sim.run(until=fabric.sim.now + 0.05)
    fabric.flow_engine.settle_now()
    starved = [f.name for f in workload.background_flows
               if f.rate_bps < (1 - DEMAND_TOLERANCE) * BG_RATE_BPS]
    assert not starved, f"background flows below demand: {starved[:5]}"
    assert workload.background_delivered_bytes() > 0

    oracle.check_now()
    assert oracle.violations == [], oracle.violations[:3]
    assert oracle.hops > 0 and oracle.flow_paths >= len(bg_names)
    oracle.close()


def test_hybrid_workload_requires_hybrid_fabric():
    fabric = _converged(43, hybrid=False)
    hosts = fabric.host_list()
    try:
        HybridWorkload(fabric, [(hosts[0], hosts[1])],
                       [(hosts[2], hosts[3])])
        raise AssertionError("HybridWorkload should refuse a frame-mode "
                             "fabric")
    except ValueError:
        pass
