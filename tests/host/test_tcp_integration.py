"""TCP end-to-end tests: two hosts on one link (optionally lossy)."""

import pytest

from repro.host import Host, TcpState
from repro.net import Link, ip, mac
from repro.net.node import Node
from repro.sim import Simulator


def make_pair(sim, rate_bps=1e9, delay_s=10e-6):
    h1 = Host(sim, "h1", mac("00:00:00:00:00:01"), ip("10.0.0.1"))
    h2 = Host(sim, "h2", mac("00:00:00:00:00:02"), ip("10.0.0.2"))
    link = Link(sim, h1.nic, h2.nic, rate_bps=rate_bps, delay_s=delay_s,
                carrier_detect=False)
    return h1, h2, link


def test_handshake_establishes_both_sides():
    sim = Simulator()
    h1, h2, _ = make_pair(sim)
    accepted = []
    h2.tcp.listen(80, accepted.append)
    conn = h1.tcp.connect(h2.ip, 80)
    established = []
    conn.on_established = lambda: established.append(sim.now)
    sim.run(until=1.0)
    assert conn.state is TcpState.ESTABLISHED
    assert len(accepted) == 1
    assert accepted[0].state is TcpState.ESTABLISHED
    assert established and established[0] < 0.01


def test_data_transfer_counts_bytes():
    sim = Simulator()
    h1, h2, _ = make_pair(sim)
    got = []
    def on_accept(server):
        server.on_receive = lambda n, t: got.append(n)
    h2.tcp.listen(80, on_accept)
    conn = h1.tcp.connect(h2.ip, 80)
    conn.on_established = lambda: conn.send(100_000)
    sim.run(until=1.0)
    assert sum(got) == 100_000
    assert conn.bytes_acked == 100_000


def test_bidirectional_transfer():
    sim = Simulator()
    h1, h2, _ = make_pair(sim)
    got_at_server, got_at_client = [], []

    def on_accept(server):
        server.on_receive = lambda n, t: got_at_server.append(n)
        server.send(5000)

    h2.tcp.listen(80, on_accept)
    conn = h1.tcp.connect(h2.ip, 80)
    conn.on_receive = lambda n, t: got_at_client.append(n)
    conn.on_established = lambda: conn.send(7000)
    sim.run(until=1.0)
    assert sum(got_at_server) == 7000
    assert sum(got_at_client) == 5000


def test_orderly_close_reaches_closed():
    sim = Simulator()
    h1, h2, _ = make_pair(sim)
    server_closed = []
    def on_accept(server):
        server.on_receive = lambda n, t: None
        server.on_closed = lambda reason: (server_closed.append(reason),
                                           server.close())
    h2.tcp.listen(80, on_accept)
    conn = h1.tcp.connect(h2.ip, 80)
    conn.on_established = lambda: (conn.send(1000), conn.close())
    sim.run(until=5.0)
    assert server_closed == ["peer closed"]
    assert conn.state in (TcpState.TIME_WAIT, TcpState.CLOSED)
    sim.run(until=10.0)
    assert conn.state is TcpState.CLOSED
    assert conn.key not in h1.tcp.connections


def test_syn_to_closed_port_gets_reset():
    sim = Simulator()
    h1, h2, _ = make_pair(sim)
    conn = h1.tcp.connect(h2.ip, 81)  # nobody listening
    closed = []
    conn.on_closed = closed.append
    sim.run(until=1.0)
    assert conn.state is TcpState.CLOSED
    assert closed == ["reset by peer"]


def test_syn_retransmits_until_peer_appears():
    sim = Simulator()
    h1, h2, link = make_pair(sim)
    link.fail()
    conn = h1.tcp.connect(h2.ip, 80)
    h2.tcp.listen(80)
    sim.schedule(2.5, link.recover)
    sim.run(until=10.0)
    assert conn.state is TcpState.ESTABLISHED
    assert conn.segments_retransmitted >= 1


def test_outage_recovery_via_rto():
    """Mid-transfer outage: the connection survives and resumes roughly
    one (backed-off) RTO after the path heals — the Fig. 11 mechanism."""
    sim = Simulator()
    h1, h2, link = make_pair(sim)
    received = []
    def on_accept(server):
        server.on_receive = lambda n, t: received.append((t, n))
    h2.tcp.listen(80, on_accept)
    conn = h1.tcp.connect(h2.ip, 80)
    conn.on_established = lambda: conn.send(10_000_000)
    sim.schedule(0.020, link.fail)
    sim.schedule(0.060, link.recover)
    sim.run(until=2.0)
    assert conn.state is TcpState.ESTABLISHED
    assert sum(n for _t, n in received) == 10_000_000
    # Find the outage gap in the delivery timeline.
    times = [t for t, _n in received]
    gaps = [(t2 - t1, t1) for t1, t2 in zip(times, times[1:])]
    worst_gap, at = max(gaps)
    assert 0.04 <= worst_gap <= 0.6
    assert 0.01 <= at <= 0.1


def test_abort_sends_reset():
    sim = Simulator()
    h1, h2, _ = make_pair(sim)
    server_conns = []
    h2.tcp.listen(80, server_conns.append)
    conn = h1.tcp.connect(h2.ip, 80)
    sim.run(until=0.5)
    closed = []
    server_conns[0].on_closed = closed.append
    conn.abort()
    sim.run(until=1.0)
    assert conn.state is TcpState.CLOSED
    assert closed == ["reset by peer"]


def test_listener_close_stops_new_connections():
    sim = Simulator()
    h1, h2, _ = make_pair(sim)
    listener = h2.tcp.listen(80)
    listener.close()
    conn = h1.tcp.connect(h2.ip, 80)
    sim.run(until=1.0)
    assert conn.state is TcpState.CLOSED


def test_throughput_saturates_fast_link():
    sim = Simulator()
    h1, h2, _ = make_pair(sim)
    got = []
    def on_accept(server):
        server.on_receive = lambda n, t: got.append(n)
    h2.tcp.listen(80, on_accept)
    conn = h1.tcp.connect(h2.ip, 80)
    conn.on_established = lambda: conn.send(100_000_000)
    sim.run(until=0.5)
    goodput_bps = sum(got) * 8 / 0.5
    assert goodput_bps > 0.85e9  # ≥85% of the 1 Gb/s line rate


def test_send_on_unopened_connection_rejected():
    sim = Simulator()
    h1, h2, _ = make_pair(sim)
    conn = h1.tcp.connect(h2.ip, 80)
    conn.close()  # close before establishment aborts
    with pytest.raises(Exception):
        conn.send(10)


def test_delayed_acks_halve_ack_traffic():
    """With delayed ACKs on the receiver, ~half the ACKs flow and
    throughput is preserved (the sender is never app/window-starved)."""
    from repro.net.ethernet import ETHERTYPE_IPV4
    from repro.net.ipv4 import IPv4Packet
    from repro.net.packet import coerce
    from repro.net.tcp_wire import TcpSegment

    def run(delack):
        sim = Simulator()
        h1, h2, _ = make_pair(sim)
        got = []

        def on_accept(server):
            server.on_receive = lambda n, t: got.append(n)

        h2.tcp.listen(80, on_accept, delayed_ack_s=delack)
        conn = h1.tcp.connect(h2.ip, 80)
        conn.on_established = lambda: conn.send(50_000_000)
        acks = []
        original = h1.receive

        def spy(frame, in_port):
            if frame.ethertype == ETHERTYPE_IPV4:
                seg = coerce(coerce(frame.payload, IPv4Packet).payload,
                             TcpSegment)
                if seg.payload_length == 0:
                    acks.append(seg.ack)
            original(frame, in_port)

        h1.receive = spy
        sim.run(until=0.3)
        return sum(got), len(acks)

    bytes_plain, acks_plain = run(None)
    bytes_delack, acks_delack = run(0.040)
    assert bytes_delack > 0.9 * bytes_plain  # throughput preserved
    assert acks_delack < 0.6 * acks_plain  # ~every-other-segment acking


def test_delayed_ack_timer_bounds_latency():
    """A lone segment is acked by the delack timer, not stranded."""
    sim = Simulator()
    h1, h2, _ = make_pair(sim)
    h2.tcp.listen(80, lambda c: setattr(c, "on_receive", lambda n, t: None),
                  delayed_ack_s=0.040)
    conn = h1.tcp.connect(h2.ip, 80)
    conn.on_established = lambda: conn.send(100)  # a single small segment
    sim.run(until=0.030)
    assert conn.bytes_acked == 0  # ack still held back
    sim.run(until=0.2)
    assert conn.bytes_acked == 100  # delack timer fired
    assert conn.segments_retransmitted == 0  # RTO (200 ms) never raced it
