"""Unit tests for the application-layer traffic sources and sinks."""

import pytest

from repro.host import Host
from repro.host.apps import (
    MulticastSender,
    TcpBulkSender,
    TcpSink,
    UdpEchoServer,
    UdpPinger,
    UdpStreamReceiver,
    UdpStreamSender,
)
from repro.net import Link, ip, mac
from repro.sim import Simulator


def pair(sim):
    h1 = Host(sim, "h1", mac("00:00:00:00:00:01"), ip("10.0.0.1"))
    h2 = Host(sim, "h2", mac("00:00:00:00:00:02"), ip("10.0.0.2"))
    link = Link(sim, h1.nic, h2.nic, carrier_detect=False)
    return h1, h2, link


def test_udp_stream_rate_and_sequencing():
    sim = Simulator(seed=1)
    h1, h2, _ = pair(sim)
    rx = UdpStreamReceiver(h2, 5000)
    tx = UdpStreamSender(h1, h2.ip, 5000, rate_pps=500, payload_bytes=32)
    tx.start(0.0)
    sim.run(until=1.0)
    assert 495 <= rx.received <= 505
    seqs = [seq for _t, seq, _d in rx.arrivals]
    assert seqs == sorted(seqs)  # in order on a FIFO link
    assert rx.rate.total() == rx.received
    tx.stop()
    count = rx.received
    sim.run(until=1.5)
    assert rx.received == count


def test_udp_stream_rejects_bad_rate():
    sim = Simulator(seed=1)
    h1, h2, _ = pair(sim)
    with pytest.raises(ValueError):
        UdpStreamSender(h1, h2.ip, 5000, rate_pps=0)


def test_receiver_max_gap_with_outage():
    sim = Simulator(seed=2)
    h1, h2, link = pair(sim)
    rx = UdpStreamReceiver(h2, 5000)
    tx = UdpStreamSender(h1, h2.ip, 5000, rate_pps=1000)
    tx.start()
    sim.schedule(0.4, link.fail)
    sim.schedule(0.6, link.recover)
    sim.run(until=1.0)
    gap, start, end = rx.max_gap(0.0, 1.0)
    assert gap == pytest.approx(0.2, abs=0.05)
    assert 0.35 <= start <= 0.45


def test_pinger_counts_losses():
    sim = Simulator(seed=3)
    h1, h2, link = pair(sim)
    UdpEchoServer(h2, 7)
    pinger = UdpPinger(h1, h2.ip)
    pinger.ping()
    sim.run(until=0.1)
    link.fail()
    pinger.ping()
    sim.run(until=2.0)
    assert pinger.answered == 1
    assert pinger.lost == 1


def test_tcp_bulk_finite_transfer_closes():
    sim = Simulator(seed=4)
    h1, h2, _ = pair(sim)
    sink = TcpSink(h2, 9000)
    bulk = TcpBulkSender(h1, h2.ip, 9000, total_bytes=500_000)
    sim.run(until=10.0)
    assert sink.total_bytes == 500_000
    assert bulk.conn.state.value in ("CLOSED", "TIME_WAIT")
    assert bulk.acked_bytes >= 500_000


def test_tcp_sink_multiple_connections():
    sim = Simulator(seed=5)
    h1, h2, _ = pair(sim)
    sink = TcpSink(h2, 9000)
    b1 = TcpBulkSender(h1, h2.ip, 9000, total_bytes=10_000)
    b2 = TcpBulkSender(h1, h2.ip, 9000, total_bytes=20_000)
    sim.run(until=5.0)
    assert len(sink.connections) == 2
    assert sink.total_bytes == 30_000


def test_goodput_series_shape():
    sim = Simulator(seed=6)
    h1, h2, _ = pair(sim)
    sink = TcpSink(h2, 9000, rate_bin_s=0.1)
    TcpBulkSender(h1, h2.ip, 9000)
    sim.run(until=0.55)
    series = sink.goodput_series(0.0, 0.5)
    assert len(series) == 5
    assert all(v >= 0 for _t, v in series)
    assert series[-1][1] * 8 > 0.5e9  # cruising near line rate


def test_multicast_sender_requires_group_address():
    sim = Simulator(seed=7)
    h1, _h2, _ = pair(sim)
    with pytest.raises(ValueError):
        MulticastSender(h1, ip("10.0.0.5"), 7500)
