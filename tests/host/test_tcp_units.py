"""Unit & property tests for TCP building blocks: sequence arithmetic,
RTO estimation, congestion control, reassembly."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.host.tcp.congestion import RenoCongestionControl
from repro.host.tcp.reassembly import ReassemblyBuffer
from repro.host.tcp.rto import RtoEstimator
from repro.host.tcp.seqnum import SEQ_MOD, unwrap, wire


# ----------------------------------------------------------------------
# Sequence numbers


def test_wire_truncates_to_32_bits():
    assert wire(SEQ_MOD + 5) == 5


def test_unwrap_near_reference():
    assert unwrap(5, reference_abs=3) == 5
    assert unwrap(0xFFFFFFFF, reference_abs=SEQ_MOD + 10) == SEQ_MOD - 1
    assert unwrap(2, reference_abs=SEQ_MOD - 3) == SEQ_MOD + 2


@given(st.integers(min_value=0, max_value=1 << 48),
       st.integers(min_value=-(1 << 30), max_value=1 << 30))
def test_unwrap_roundtrip_property(reference, offset):
    absolute = max(0, reference + offset)
    assert unwrap(wire(absolute), reference) == absolute


# ----------------------------------------------------------------------
# RTO estimation (RFC 6298)


def test_first_sample_sets_srtt_and_floor():
    est = RtoEstimator(min_rto_s=0.2)
    est.sample(0.01)
    assert est.srtt == pytest.approx(0.01)
    assert est.rto == 0.2  # floor dominates for tiny RTTs


def test_rto_grows_with_variance():
    est = RtoEstimator(min_rto_s=0.0)
    est.sample(0.1)
    base = est.rto
    est.sample(0.5)  # large deviation
    assert est.rto > base


def test_backoff_doubles_and_resets():
    est = RtoEstimator()
    est.sample(0.01)
    base = est.rto
    est.backoff()
    assert est.rto == pytest.approx(2 * base)
    est.backoff()
    assert est.rto == pytest.approx(4 * base)
    est.reset_backoff()
    assert est.rto == pytest.approx(base)


def test_rto_capped_at_max():
    est = RtoEstimator(max_rto_s=1.0)
    est.sample(0.9)
    for _ in range(10):
        est.backoff()
    assert est.rto == 1.0


def test_negative_rtt_rejected():
    with pytest.raises(ValueError):
        RtoEstimator().sample(-0.1)


@given(st.lists(st.floats(min_value=1e-6, max_value=10.0), min_size=1,
                max_size=50))
def test_rto_always_at_least_min(samples):
    est = RtoEstimator(min_rto_s=0.2)
    for rtt in samples:
        est.sample(rtt)
        assert est.rto >= 0.2


# ----------------------------------------------------------------------
# Reno congestion control


def test_slow_start_doubles_per_rtt():
    cc = RenoCongestionControl(mss=1000)
    start = cc.cwnd
    assert cc.in_slow_start
    cc.on_new_ack(1000)
    assert cc.cwnd == start + 1000


def test_congestion_avoidance_grows_linearly():
    cc = RenoCongestionControl(mss=1000)
    cc.ssthresh = cc.cwnd  # exit slow start immediately
    start = cc.cwnd
    # One full window of acks ≈ one MSS of growth.
    acked = 0
    while acked < start:
        cc.on_new_ack(1000)
        acked += 1000
    assert start + 500 <= cc.cwnd <= start + 2000


def test_timeout_collapses_to_one_mss():
    cc = RenoCongestionControl(mss=1000)
    cc.on_timeout(flight_size=20000)
    assert cc.cwnd == 1000
    assert cc.ssthresh == 10000
    assert cc.timeouts == 1


def test_timeout_ssthresh_floor():
    cc = RenoCongestionControl(mss=1000)
    cc.on_timeout(flight_size=1000)
    assert cc.ssthresh == 2000  # 2*MSS floor


def test_fast_recovery_cycle():
    cc = RenoCongestionControl(mss=1000)
    cc.cwnd = 16000
    cc.enter_fast_recovery(flight_size=16000)
    assert cc.in_fast_recovery
    assert cc.ssthresh == 8000
    assert cc.cwnd == 8000 + 3000
    cc.on_dupack_in_recovery()
    assert cc.cwnd == 12000
    cc.exit_fast_recovery()
    assert not cc.in_fast_recovery
    assert cc.cwnd == 8000


def test_partial_ack_deflates():
    cc = RenoCongestionControl(mss=1000)
    cc.cwnd = 16000
    cc.enter_fast_recovery(flight_size=16000)
    inflated = cc.cwnd
    cc.on_partial_ack(acked_bytes=2000)
    assert cc.cwnd == max(cc.ssthresh, inflated - 2000 + 1000)


def test_acks_in_recovery_do_not_grow_cwnd():
    cc = RenoCongestionControl(mss=1000)
    cc.enter_fast_recovery(flight_size=10000)
    before = cc.cwnd
    cc.on_new_ack(1000)
    assert cc.cwnd == before


# ----------------------------------------------------------------------
# Reassembly


def test_in_order_delivery():
    buf = ReassemblyBuffer(rcv_nxt=100)
    assert buf.offer(100, 50) == 50
    assert buf.rcv_nxt == 150


def test_out_of_order_held_then_released():
    buf = ReassemblyBuffer(rcv_nxt=0)
    assert buf.offer(100, 50) == 0
    assert buf.out_of_order_bytes == 50
    assert buf.offer(0, 100) == 150
    assert buf.rcv_nxt == 150
    assert buf.out_of_order_bytes == 0


def test_duplicates_and_overlaps_ignored():
    buf = ReassemblyBuffer(rcv_nxt=0)
    buf.offer(0, 100)
    assert buf.offer(0, 100) == 0
    assert buf.offer(50, 100) == 50  # half old, half new
    assert buf.rcv_nxt == 150


def test_adjacent_ranges_merge():
    buf = ReassemblyBuffer(rcv_nxt=0)
    buf.offer(100, 50)
    buf.offer(150, 50)
    assert buf.out_of_order_bytes == 100
    assert buf.offer(0, 100) == 200


def test_zero_length_and_negative():
    buf = ReassemblyBuffer(rcv_nxt=10)
    assert buf.offer(10, 0) == 0
    with pytest.raises(ValueError):
        buf.offer(0, -1)


def test_heavy_out_of_order_stream_reassembles_identically():
    """Deliver a long stream as heavily shuffled, overlapping segments and
    check the reassembled byte stream equals the in-order reference.

    Regression guard for the bisect-based ``_insert``: the old code
    rebuilt and re-sorted the whole range list per segment, and a splice
    bug here would corrupt delivery order or drop/duplicate bytes.
    """
    import random

    rng = random.Random(1234)
    total = 64_000
    mss = 536
    segments = [(seq, min(mss, total - seq)) for seq in range(0, total, mss)]
    # Duplicates and stragglers that overlap two neighbours.
    segments += [(seq, length) for seq, length in segments[::7]]
    segments += [(max(0, seq - 100), min(mss + 200, total - max(0, seq - 100)))
                 for seq, _length in segments[::11]]
    rng.shuffle(segments)

    buf = ReassemblyBuffer(rcv_nxt=0)
    reference = ReassemblyBuffer(rcv_nxt=0)
    # Reference consumes the same byte ranges strictly in order.
    for seq, length in sorted(segments):
        reference.offer(seq, length)

    delivered = []
    for seq, length in segments:
        got = buf.offer(seq, length)
        if got:
            # Synthetic payload: bytes are their sequence number mod 256,
            # so equal ranges imply equal reassembled bytes.
            delivered.append((buf.rcv_nxt - got, buf.rcv_nxt))

    assert buf.rcv_nxt == reference.rcv_nxt == total
    assert buf.out_of_order_bytes == 0
    # Delivered chunks are contiguous, non-overlapping, and cover [0, total).
    flat = bytearray()
    expected = bytearray(seq % 256 for seq in range(total))
    cursor = 0
    for start, end in delivered:
        assert start == cursor, "delivery left a gap or overlapped"
        flat.extend(expected[start:end])
        cursor = end
    assert cursor == total
    assert bytes(flat) == bytes(expected)


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 20)),
                min_size=1, max_size=40))
def test_reassembly_total_matches_union(segments):
    """Delivered bytes equal the measure of the union of offered ranges
    clipped at the contiguous prefix."""
    buf = ReassemblyBuffer(rcv_nxt=0)
    delivered = sum(buf.offer(seq, length) for seq, length in segments)
    assert delivered == buf.rcv_nxt
    covered = set()
    for seq, length in segments:
        covered.update(range(seq, seq + length))
    expected = 0
    while expected in covered:
        expected += 1
    assert buf.rcv_nxt == expected
