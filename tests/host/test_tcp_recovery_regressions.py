"""Regression tests for specific TCP recovery behaviours found during
development of the migration/failover experiments."""

import pytest

from repro.host import Host, TcpState
from repro.net import Link, ip, mac
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.net.ipv4 import IPv4Packet
from repro.net.packet import coerce
from repro.net.tcp_wire import TcpSegment
from repro.sim import Simulator


def make_pair(sim):
    h1 = Host(sim, "h1", mac("00:00:00:00:00:01"), ip("10.0.0.1"))
    h2 = Host(sim, "h2", mac("00:00:00:00:00:02"), ip("10.0.0.2"))
    link = Link(sim, h1.nic, h2.nic, carrier_detect=False)
    return h1, h2, link


def test_go_back_n_after_rto_recovers_quickly():
    """Regression: after an RTO, the whole lost window must be
    retransmitted (cwnd-paced), not one segment per RTO."""
    sim = Simulator(seed=1)
    h1, h2, link = make_pair(sim)
    got = []

    def on_accept(server):
        server.on_receive = lambda n, t: got.append((sim.now, n))

    h2.tcp.listen(80, on_accept)
    conn = h1.tcp.connect(h2.ip, 80)
    conn.on_established = lambda: conn.send(5_000_000)
    sim.run(until=0.02)
    link.fail()  # strands ~64 KB in flight
    sim.run(until=0.1)
    link.recover()
    sim.run(until=1.0)
    assert sum(n for _t, n in got) == 5_000_000
    # The entire transfer (incl. the stranded window) finished within
    # ~RTO + transfer time, nowhere near 64KB/1460 * 200 ms ≈ 9 s.
    assert got[-1][0] < 0.6


def test_no_runt_segments_after_recovery():
    """Regression (silly-window syndrome): after loss recovery, the
    sender must keep emitting MSS-sized segments, never a self-
    sustaining stream of runts."""
    sim = Simulator(seed=2)
    h1, h2, link = make_pair(sim)
    h2.tcp.listen(80, lambda c: setattr(c, "on_receive", lambda n, t: None))
    conn = h1.tcp.connect(h2.ip, 80)
    conn.on_established = lambda: conn.send(200_000_000)
    sim.run(until=0.02)
    link.fail()
    sim.run(until=0.08)
    link.recover()
    sim.run(until=0.5)  # well past recovery, flow still running

    # Sample segment sizes on the wire after recovery.
    sizes = []
    original = h2.receive

    def spy(frame, in_port):
        if frame.ethertype == ETHERTYPE_IPV4:
            packet = coerce(frame.payload, IPv4Packet)
            segment = coerce(packet.payload, TcpSegment)
            if segment.payload_length:
                sizes.append(segment.payload_length)
        original(frame, in_port)

    h2.receive = spy
    sim.run(until=0.55)
    assert sizes, "flow must still be running"
    runts = [s for s in sizes if s < conn.mss]
    assert len(runts) <= 1  # at most a single odd-sized boundary segment


def test_final_partial_segment_still_sent():
    """SWS avoidance must not strand a final sub-MSS tail."""
    sim = Simulator(seed=3)
    h1, h2, _ = make_pair(sim)
    got = []

    def on_accept(server):
        server.on_receive = lambda n, t: got.append(n)

    h2.tcp.listen(80, on_accept)
    conn = h1.tcp.connect(h2.ip, 80)
    conn.on_established = lambda: conn.send(1461)  # one MSS + 1 byte
    sim.run(until=1.0)
    assert sum(got) == 1461


def test_on_finished_fires_exactly_once():
    sim = Simulator(seed=4)
    h1, h2, _ = make_pair(sim)
    finished = []
    h2.tcp.listen(80, lambda c: setattr(c, "on_receive", lambda n, t: None))
    conn = h1.tcp.connect(h2.ip, 80)
    conn.on_finished = lambda: finished.append(sim.now)
    conn.on_established = lambda: (conn.send(10_000), conn.close())
    sim.run(until=5.0)
    assert len(finished) == 1
    assert conn.bytes_acked >= 10_000


def test_zero_byte_send_then_close():
    sim = Simulator(seed=5)
    h1, h2, _ = make_pair(sim)
    h2.tcp.listen(80)
    conn = h1.tcp.connect(h2.ip, 80)
    finished = []
    conn.on_finished = lambda: finished.append(True)
    conn.on_established = lambda: (conn.send(0), conn.close())
    sim.run(until=5.0)
    assert finished == [True]
    assert conn.state in (TcpState.TIME_WAIT, TcpState.CLOSED,
                          TcpState.FIN_WAIT_2)


def test_connection_gives_up_after_max_retries():
    """A permanently dead peer ends in a local abort, not an infinite
    retransmission loop."""
    sim = Simulator(seed=6)
    h1, h2, link = make_pair(sim)
    h2.tcp.listen(80, lambda c: setattr(c, "on_receive", lambda n, t: None))
    conn = h1.tcp.connect(h2.ip, 80)
    conn.on_established = lambda: conn.send(500_000_000)  # far from done
    sim.run(until=0.05)
    assert conn.state is TcpState.ESTABLISHED
    assert conn.flight_size > 0
    link.fail()
    closed = []
    conn.on_closed = closed.append
    sim.run(until=3600.0)  # RTO backoff caps at 60 s; 15 retries ≈ <15 min
    assert conn.state is TcpState.CLOSED
    assert closed == ["too many retransmissions"]
    assert conn.key not in h1.tcp.connections
