"""Property test: TCP delivers exactly-once, in-order, under random loss.

For random loss rates and seeds, a finite transfer must complete with
the exact byte count (no loss, no duplication visible to the app) and
the receiver's data stream must advance monotonically.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.host import Host
from repro.net import Link, ip, mac
from repro.sim import Simulator


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    loss=st.sampled_from([0.0, 0.005, 0.02, 0.05]),
    seed=st.integers(min_value=0, max_value=2**16),
    nbytes=st.integers(min_value=1, max_value=400_000),
)
def test_tcp_exactly_once_under_loss(loss, seed, nbytes):
    sim = Simulator(seed=seed)
    h1 = Host(sim, "h1", mac("00:00:00:00:00:01"), ip("10.0.0.1"))
    h2 = Host(sim, "h2", mac("00:00:00:00:00:02"), ip("10.0.0.2"))
    Link(sim, h1.nic, h2.nic, loss_rate=loss, carrier_detect=False)

    deliveries: list[int] = []

    def on_accept(server):
        server.on_receive = lambda n, t: deliveries.append(n)

    h2.tcp.listen(80, on_accept)
    conn = h1.tcp.connect(h2.ip, 80)
    conn.on_established = lambda: (conn.send(nbytes), conn.close())
    sim.run(until=60.0)

    assert sum(deliveries) == nbytes, (
        f"loss={loss} seed={seed}: delivered {sum(deliveries)} != {nbytes}")
    assert all(n > 0 for n in deliveries)
    if loss == 0.0:
        assert conn.segments_retransmitted == 0
    # The sender fully drained and finished the close handshake far
    # enough to know everything was acked.
    assert conn.unsent_bytes == 0
    assert conn.bytes_acked >= nbytes
