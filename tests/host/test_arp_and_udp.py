"""Host-stack tests: ARP resolution, caching, UDP sockets, IGMP."""

import pytest

from repro.errors import HostError
from repro.host import Host
from repro.host.arp_cache import ArpCache
from repro.net import AppData, Link, ip, mac
from repro.sim import Simulator


def two_hosts(sim):
    h1 = Host(sim, "h1", mac("00:00:00:00:00:01"), ip("10.0.0.1"))
    h2 = Host(sim, "h2", mac("00:00:00:00:00:02"), ip("10.0.0.2"))
    Link(sim, h1.nic, h2.nic)
    return h1, h2


# ----------------------------------------------------------------------
# ArpCache unit tests


def test_cache_lookup_insert_invalidate():
    cache = ArpCache(timeout_s=10.0)
    m = mac("00:00:00:00:00:09")
    assert cache.lookup(ip("10.0.0.9"), now=0.0) is None
    cache.insert(ip("10.0.0.9"), m, now=0.0)
    assert cache.lookup(ip("10.0.0.9"), now=5.0) == m
    assert cache.invalidate(ip("10.0.0.9"))
    assert not cache.invalidate(ip("10.0.0.9"))
    assert cache.lookup(ip("10.0.0.9"), now=5.0) is None


def test_cache_entries_expire():
    cache = ArpCache(timeout_s=1.0)
    cache.insert(ip("10.0.0.9"), mac("00:00:00:00:00:09"), now=0.0)
    assert cache.lookup(ip("10.0.0.9"), now=2.0) is None
    assert cache.hits == 0 and cache.misses == 1


def test_cache_hit_miss_counters():
    cache = ArpCache()
    cache.insert(ip("10.0.0.9"), mac("00:00:00:00:00:09"), now=0.0)
    cache.lookup(ip("10.0.0.9"), now=0.0)
    cache.lookup(ip("10.0.0.8"), now=0.0)
    assert (cache.hits, cache.misses) == (1, 1)


# ----------------------------------------------------------------------
# ARP protocol between hosts


def test_arp_resolution_then_delivery():
    sim = Simulator()
    h1, h2 = two_hosts(sim)
    sock2 = h2.udp_socket(5000)
    sock1 = h1.udp_socket()
    sock1.sendto(h2.ip, 5000, AppData(10))
    sim.run(until=0.1)
    assert len(sock2.inbox) == 1
    # Both sides learned each other's mapping from the exchange.
    assert h1.arp_cache.lookup(h2.ip, sim.now) == h2.mac
    assert h2.arp_cache.lookup(h1.ip, sim.now) == h1.mac
    assert h1.arp_requests_sent == 1


def test_arp_retry_and_give_up():
    sim = Simulator()
    h1 = Host(sim, "h1", mac("00:00:00:00:00:01"), ip("10.0.0.1"),
              arp_retries=3, arp_retry_interval_s=0.5)
    h2 = Host(sim, "h2", mac("00:00:00:00:00:02"), ip("10.0.0.2"))
    link = Link(sim, h1.nic, h2.nic, carrier_detect=False)
    link.fail()
    h1.udp_socket().sendto(ip("10.0.0.99"), 5000, AppData(10))
    sim.run(until=10.0)
    assert h1.arp_requests_sent == 3
    assert h1.unresolved_drops == 1


def test_arp_queue_limit_drops_oldest():
    sim = Simulator()
    h1, h2 = two_hosts(sim)
    h2.nic.enabled = False  # silently eat everything
    sock = h1.udp_socket()
    for _ in range(5):
        sock.sendto(ip("10.0.0.50"), 5000, AppData(10))
    assert h1.unresolved_drops == 2  # queue limit 3


def test_gratuitous_arp_updates_peer_cache():
    sim = Simulator()
    h1, h2 = two_hosts(sim)
    h1.gratuitous_arp()
    sim.run(until=0.01)
    assert h2.arp_cache.lookup(h1.ip, sim.now) == h1.mac


def test_host_ignores_foreign_unicast():
    sim = Simulator()
    h1, h2 = two_hosts(sim)
    sock2 = h2.udp_socket(5000)
    # Frame addressed to a MAC that is not h2's: the NIC filters it.
    from repro.net import EthernetFrame, ETHERTYPE_IPV4, IPv4Packet, UdpDatagram
    from repro.net.ipv4 import IPPROTO_UDP
    packet = IPv4Packet(h1.ip, h2.ip, IPPROTO_UDP, UdpDatagram(1, 5000, b"x"))
    h1.nic.send(EthernetFrame(mac("00:00:00:00:00:99"), h1.mac,
                              ETHERTYPE_IPV4, packet))
    sim.run(until=0.01)
    assert sock2.inbox == []


# ----------------------------------------------------------------------
# UDP sockets


def test_udp_port_binding_rules():
    sim = Simulator()
    h1, _h2 = two_hosts(sim)
    h1.udp_socket(5000)
    with pytest.raises(HostError):
        h1.udp_socket(5000)
    ephemeral = h1.udp_socket()
    assert ephemeral.port >= 49152


def test_udp_close_releases_port():
    sim = Simulator()
    h1, _ = two_hosts(sim)
    sock = h1.udp_socket(5000)
    sock.close()
    h1.udp_socket(5000)  # rebindable
    with pytest.raises(HostError):
        sock.sendto(ip("10.0.0.2"), 1, AppData(1))


def test_udp_handler_callback():
    sim = Simulator()
    h1, h2 = two_hosts(sim)
    got = []
    sock2 = h2.udp_socket(5000)
    sock2.on_datagram = lambda src, sport, payload, now: got.append(
        (str(src), sport, payload.length))
    h1.udp_socket(6000).sendto(h2.ip, 5000, AppData(42))
    sim.run(until=0.1)
    assert got == [("10.0.0.1", 6000, 42)]


def test_udp_to_unbound_port_is_dropped():
    sim = Simulator()
    h1, h2 = two_hosts(sim)
    h1.udp_socket().sendto(h2.ip, 1234, AppData(5))
    sim.run(until=0.1)  # no crash, nothing delivered


# ----------------------------------------------------------------------
# IGMP / multicast receive filtering


def test_join_emits_igmp_and_filters_groups():
    sim = Simulator()
    h1, h2 = two_hosts(sim)
    group = ip("239.1.1.1")
    sent = []
    h2.on_igmp_sent = sent.append
    h2.join_group(group)
    assert len(sent) == 1 and sent[0].is_join

    sock = h2.udp_socket(7000)
    h1.udp_socket().sendto(group, 7000, AppData(9))
    sim.run(until=0.05)
    assert len(sock.inbox) == 1

    h2.leave_group(group)
    assert len(sent) == 2 and not sent[1].is_join
    h1.udp_socket().sendto(group, 7000, AppData(9))
    sim.run(until=0.1)
    assert len(sock.inbox) == 1  # no longer delivered


def test_join_is_idempotent():
    sim = Simulator()
    _h1, h2 = two_hosts(sim)
    sent = []
    h2.on_igmp_sent = sent.append
    group = ip("239.1.1.2")
    h2.join_group(group)
    h2.join_group(group)
    h2.leave_group(ip("239.9.9.9"))  # never joined: no message
    assert len(sent) == 1
