"""Agent-level behaviours exercised directly on a converged fabric."""

from repro.host.apps import UdpEchoServer, UdpPinger
from repro.net import AppData
from repro.net.addresses import MacAddress
from repro.portland.messages import (
    FaultClear,
    FaultUpdate,
    McastInstall,
    McastRemove,
    SwitchLevel,
)
from repro.portland.pmac import position_prefix
from repro.sim import Simulator
from repro.topology import build_portland_fabric


def test_same_edge_hairpin_traffic(fabric):
    """Two hosts on the same edge switch talk without leaving it."""
    sim = fabric.sim
    hosts = fabric.host_list()
    h0, h1 = hosts[0], hosts[1]  # both on edge-p0-s0
    inbox = h1.udp_socket(5000)
    h0.udp_socket().sendto(h1.ip, 5000, AppData(10))
    sim.run(until=sim.now + 0.2)
    assert len(inbox.inbox) == 1
    # No uplink transmitted the data frame beyond control/LDP noise:
    # the edge's host egress entry handled it locally.
    edge = fabric.switches["edge-p0-s0"]
    assert any(e.packets >= 1 for e in edge.table
               if e.name.startswith("host:"))


def test_host_port_down_unregisters_locally(fabric):
    sim = fabric.sim
    agent = fabric.agents["edge-p0-s0"]
    assert len(agent.hosts_by_amac) == 2
    spec = fabric.tree.hosts[0]
    fabric.link_between(spec.name, spec.edge_switch).fail()
    sim.run(until=sim.now + 0.05)
    assert len(agent.hosts_by_amac) == 1
    # Entries are gone too.
    assert not any(e.name == f"ingress:{spec.mac}"
                   for e in agent.switch.rewrite_table)


def test_fault_update_and_clear_messages(fabric):
    agent = fabric.agents["edge-p0-s0"]
    value, bits = position_prefix(agent.ldp.pod ^ 1, 0)  # some other prefix
    avoid_id = fabric.agents["agg-p0-s0"].switch_id
    agent._handle_fm_frame_message = None  # no-op guard
    from repro.net.ethernet import ETHERTYPE_FABRIC, EthernetFrame

    update = FaultUpdate(value, bits, (avoid_id,))
    frame = EthernetFrame(MacAddress(agent.switch_id), MacAddress(1),
                          ETHERTYPE_FABRIC, update)
    agent._handle_fm_frame(frame)
    entry = next(e for e in agent.switch.table if e.name.startswith("fault:"))
    # The ECMP group excludes the avoided neighbour's port.
    ports = entry.actions[0].ports
    avoided_port = next(i for i, info in agent.ldp.neighbors.items()
                        if info.switch_id == avoid_id)
    assert avoided_port not in ports and len(ports) == 1

    clear = FaultClear(value, bits)
    frame = EthernetFrame(MacAddress(agent.switch_id), MacAddress(1),
                          ETHERTYPE_FABRIC, clear)
    agent._handle_fm_frame(frame)
    assert not any(e.name.startswith("fault:") for e in agent.switch.table)


def test_mcast_install_remove_messages(fabric):
    from repro.net import ip as mkip
    from repro.net.ethernet import ETHERTYPE_FABRIC, EthernetFrame

    agent = fabric.agents["agg-p0-s0"]
    group_mac = mkip("239.9.9.9").multicast_mac()
    install = McastInstall(group_mac, (0, 2))
    agent._handle_fm_frame(EthernetFrame(MacAddress(agent.switch_id),
                                         MacAddress(1), ETHERTYPE_FABRIC,
                                         install))
    entry = next(e for e in agent.switch.table if e.name.startswith("mcast:"))
    assert entry.actions[0].ports == (0, 2)
    # Reinstall with different ports replaces, not duplicates.
    agent._handle_fm_frame(EthernetFrame(MacAddress(agent.switch_id),
                                         MacAddress(1), ETHERTYPE_FABRIC,
                                         McastInstall(group_mac, (1,))))
    entries = [e for e in agent.switch.table if e.name.startswith("mcast:")]
    assert len(entries) == 1 and entries[0].actions[0].ports == (1,)
    agent._handle_fm_frame(EthernetFrame(MacAddress(agent.switch_id),
                                         MacAddress(1), ETHERTYPE_FABRIC,
                                         McastRemove(group_mac)))
    assert not any(e.name.startswith("mcast:") for e in agent.switch.table)


def test_trap_garp_rate_limited(fabric):
    sim = fabric.sim
    from repro.net import ip as mkip
    from repro.net.ethernet import ETHERTYPE_FABRIC, ETHERTYPE_IPV4, EthernetFrame
    from repro.portland.messages import Invalidate

    agent = fabric.agents["edge-p0-s0"]
    record = next(iter(agent.hosts_by_amac.values()))
    old_pmac = record.pmac.to_mac()
    new_pmac = MacAddress(0x000300010000)
    inv = Invalidate(record.ip, old_pmac, new_pmac)
    agent._handle_fm_frame(EthernetFrame(MacAddress(agent.switch_id),
                                         MacAddress(1), ETHERTYPE_FABRIC, inv))
    assert old_pmac in agent._traps

    sender_pmac = MacAddress(0x000100000000)
    injected = 0
    orig_inject = agent.switch.inject

    def counting_inject(frame, from_port_index=-1):
        nonlocal injected
        injected += 1
        # swallow: we only count GARP/forward attempts

    agent.switch.inject = counting_inject
    data = EthernetFrame(old_pmac, sender_pmac, ETHERTYPE_IPV4, AppData(10))
    for _ in range(5):
        agent._handle_trap(data)
    agent.switch.inject = orig_inject
    # 1 rate-limited GARP + 5 forwarded copies.
    assert injected == 6


def test_arp_counters_on_agents(fabric):
    sim = fabric.sim
    hosts = fabric.host_list()
    agent = fabric.edge_agent_of(hosts[0].name)
    before = agent.arp_queries
    UdpEchoServer(hosts[9], 7)
    hosts[0].arp_cache.invalidate(hosts[9].ip)
    pinger = UdpPinger(hosts[0], hosts[9].ip)
    pinger.ping()
    sim.run(until=sim.now + 0.2)
    assert agent.arp_queries == before + 1
    assert agent.control_messages_sent > 0
    assert agent.control_bytes_sent > 0


def test_agg_and_core_have_no_host_state(fabric):
    for name, agent in fabric.agents.items():
        if agent.level is not SwitchLevel.EDGE:
            assert agent.hosts_by_amac == {}
            assert agent.allocator is None
            assert len(agent.switch.rewrite_table) == 0
