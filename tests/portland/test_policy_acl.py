"""Edge ACLs end to end: install/revoke through the FM, the sharded
cluster, migrations, and restarts (docs/POLICY.md).

An ACL is fabric-manager soft state (a `PolicyTable` rule) materialised
as a priority-above-route drop entry at the *source's* edge switch.
These tests drive the full round trip: rule → PolicyInstall message →
edge flow-table entry → dropped frames → `verify.policy_drop` trace,
then revoke → delivery restored — and the re-push paths that keep the
entry anchored as the endpoints move, re-register, or the FM restarts.
"""

from repro.net.packet import AppData
from repro.portland.config import PortlandConfig
from repro.portland.migration import VmMigration
from repro.sim import Simulator
from repro.topology import LinkParams, build_portland_fabric
from repro.topology.fattree import build_fat_tree

REFRESH = 0.5


def converged(sim, shards=0, hosts_per_edge=None, **config_kwargs):
    config = PortlandConfig(soft_state_refresh_s=REFRESH,
                            fm_shards=shards, **config_kwargs)
    # hosts_per_edge=1 leaves port 1 free on every edge switch — the
    # migration tests need somewhere to move a VM to.
    tree = build_fat_tree(4, hosts_per_edge=hosts_per_edge)
    fabric = build_portland_fabric(
        sim, tree=tree, config=config,
        link_params=LinkParams(carrier_detect=True))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


_PROBE_PORT = [50000]


def probe(sim, src, dst, count=3):
    """One-way delivery: send ``count`` datagrams src → dst, return how
    many arrive. One-way on purpose — a unidirectional ACL must not be
    confused with a lost reply leg."""
    _PROBE_PORT[0] += 1
    port = _PROBE_PORT[0]
    received = []
    rx = dst.udp_socket(port)
    rx.on_datagram = lambda *args: received.append(args)
    tx = src.udp_socket()
    for _ in range(count):
        tx.sendto(dst.ip, port, AppData(32))
        sim.run(until=sim.now + 0.05)
    return len(received)


def acl_entries(fabric, switch_name):
    agent = fabric.agents[switch_name]
    return [e for e in agent.switch.table
            if e.name and e.name.startswith("acl:")]


def edge_of(fabric, host):
    from repro.verify.invariants import agents_by_switch_id
    record = fabric.fabric_manager.hosts_by_ip[host.ip]
    return agents_by_switch_id(fabric)[record.edge_id].switch.name


def test_install_blocks_one_direction_then_revoke_restores():
    sim = Simulator(seed=91)
    fabric = converged(sim)
    fm = fabric.fabric_manager
    hosts = fabric.host_list()
    src, dst, bystander = hosts[0], hosts[-1], hosts[3]

    drops = []
    sim.trace.subscribe("verify.policy_drop",
                        lambda record: drops.append(record))

    fm.install_acl(src.ip, dst.ip)
    sim.run(until=sim.now + 0.1)
    assert len(acl_entries(fabric, edge_of(fabric, src))) == 1

    assert probe(sim, src, dst) == 0          # blocked direction
    assert len(drops) >= 1
    assert drops[0].detail["reason"] == "acl"
    assert probe(sim, dst, src) == 3          # reverse unaffected
    assert probe(sim, src, bystander) == 3    # other pairs unaffected

    fm.revoke_acl(src.ip, dst.ip)
    sim.run(until=sim.now + 0.1)
    assert acl_entries(fabric, edge_of(fabric, src)) == []
    assert probe(sim, src, dst) == 3
    assert len(fm.policy) == 0


def test_install_before_registration_lands_on_register():
    """A rule whose endpoints are not yet registered is held in the
    policy table and materialised by the registration re-push hook."""
    sim = Simulator(seed=92)
    config = PortlandConfig(soft_state_refresh_s=REFRESH)
    fabric = build_portland_fabric(
        sim, k=4, config=config,
        link_params=LinkParams(carrier_detect=True))
    fabric.start()
    fabric.run_until_located()
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]
    fabric.fabric_manager.install_acl(src.ip, dst.ip)  # nobody registered
    assert acl_entries(fabric, f"edge-p0-s0") == []
    fabric.announce_hosts()
    fabric.run_until_registered()
    sim.run(until=sim.now + 0.1)
    assert len(acl_entries(fabric, edge_of(fabric, src))) == 1
    assert probe(sim, src, dst) == 0


def test_acl_survives_fm_restart():
    """The policy table is FM state that outlives a restart; the edge
    entry is re-pushed when soft-state refresh re-registers the hosts."""
    sim = Simulator(seed=93)
    fabric = converged(sim)
    fm = fabric.fabric_manager
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]
    fm.install_acl(src.ip, dst.ip)
    sim.run(until=sim.now + 0.1)

    fm.restart()
    assert len(fm.policy) == 1
    sim.run(until=sim.now + 3 * REFRESH)      # refresh re-registers
    assert len(acl_entries(fabric, edge_of(fabric, src))) == 1
    assert probe(sim, src, dst) == 0


def test_acl_follows_source_migration():
    """Migrating the *source* moves the entry: retracted at the old
    edge, re-installed at the new one."""
    sim = Simulator(seed=94)
    fabric = converged(sim, hosts_per_edge=1)
    fm = fabric.fabric_manager
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]
    fm.install_acl(src.ip, dst.ip)
    sim.run(until=sim.now + 0.1)
    old_edge = edge_of(fabric, src)

    VmMigration(fabric, src.name, new_edge="edge-p1-s0", new_port=1,
                downtime_s=0.1).start()
    sim.run(until=sim.now + 1.2)

    new_edge = edge_of(fabric, src)
    assert new_edge != old_edge
    assert acl_entries(fabric, old_edge) == []
    assert len(acl_entries(fabric, new_edge)) == 1
    assert probe(sim, src, dst) == 0


def test_acl_tracks_destination_migration():
    """Migrating the *destination* rewrites the entry in place at the
    source's edge (the dst PMAC changed)."""
    sim = Simulator(seed=95)
    fabric = converged(sim, hosts_per_edge=1)
    fm = fabric.fabric_manager
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]
    fm.install_acl(src.ip, dst.ip)
    sim.run(until=sim.now + 0.1)

    VmMigration(fabric, dst.name, new_edge="edge-p1-s1", new_port=1,
                downtime_s=0.1).start()
    sim.run(until=sim.now + 1.2)

    entries = acl_entries(fabric, edge_of(fabric, src))
    assert len(entries) == 1
    new_pmac = fm.hosts_by_ip[dst.ip].pmac
    assert entries[0].match.eth_dst == new_pmac
    assert probe(sim, src, dst) == 0


# ----------------------------------------------------------------------
# Sharded cluster


def test_cluster_install_revoke_round_trip():
    sim = Simulator(seed=96)
    fabric = converged(sim, shards=4)
    cluster = fabric.fabric_manager
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]      # pods 0 and 3: different shards

    cluster.install_acl(src.ip, dst.ip)
    sim.run(until=sim.now + 0.2)        # intershard relay + push
    assert len(cluster.policy) == 1
    assert len(acl_entries(fabric, edge_of(fabric, src))) == 1
    assert probe(sim, src, dst) == 0
    assert probe(sim, dst, src) == 3

    cluster.revoke_acl(src.ip, dst.ip)
    sim.run(until=sim.now + 0.2)
    assert acl_entries(fabric, edge_of(fabric, src)) == []
    assert probe(sim, src, dst) == 3


def test_cluster_repush_on_migration():
    sim = Simulator(seed=97)
    fabric = converged(sim, shards=4, hosts_per_edge=1)
    cluster = fabric.fabric_manager
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]
    cluster.install_acl(src.ip, dst.ip)
    sim.run(until=sim.now + 0.2)
    old_edge = edge_of(fabric, src)

    # Cross-pod move: the source's registry record changes owner shard,
    # and the coordinator must still retract old + push new.
    VmMigration(fabric, src.name, new_edge="edge-p2-s0", new_port=1,
                downtime_s=0.1).start()
    sim.run(until=sim.now + 1.5)

    new_edge = edge_of(fabric, src)
    assert new_edge != old_edge
    assert acl_entries(fabric, old_edge) == []
    assert len(acl_entries(fabric, new_edge)) == 1
    assert probe(sim, src, dst) == 0
