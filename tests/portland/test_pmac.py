"""Unit & property tests for PMAC structure and allocation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.portland.pmac import (
    Pmac,
    PmacAllocator,
    pod_prefix,
    position_prefix,
)
from repro.switching.flow_table import mac_prefix_mask


def test_pmac_field_packing():
    pmac = Pmac(pod=0x0012, position=0x34, port=0x56, vmid=0x789A)
    mac = pmac.to_mac()
    assert str(mac) == "00:12:34:56:78:9a"
    assert Pmac.from_mac(mac) == pmac


def test_pmac_rejects_out_of_range_fields():
    with pytest.raises(AddressError):
        Pmac(pod=-1, position=0, port=0, vmid=0)
    with pytest.raises(AddressError):
        Pmac(pod=0, position=256, port=0, vmid=0)
    with pytest.raises(AddressError):
        Pmac(pod=0, position=0, port=256, vmid=0)
    with pytest.raises(AddressError):
        Pmac(pod=0, position=0, port=0, vmid=1 << 16)


def test_pmac_rejects_multicast_pod():
    # Pod 256 sets bit 8 -> the Ethernet I/G bit -> unroutable as unicast.
    with pytest.raises(AddressError):
        Pmac(pod=256, position=0, port=0, vmid=0)
    Pmac(pod=255, position=0, port=0, vmid=0)  # fine


def test_prefixes_cover_their_pmacs():
    value, bits = pod_prefix(7)
    mask = mac_prefix_mask(bits)
    member = Pmac(7, 3, 2, 99).to_mac()
    stranger = Pmac(8, 3, 2, 99).to_mac()
    assert member.value & mask == value.value & mask
    assert stranger.value & mask != value.value & mask

    value, bits = position_prefix(7, 3)
    mask = mac_prefix_mask(bits)
    assert Pmac(7, 3, 0, 0).to_mac().value & mask == value.value & mask
    assert Pmac(7, 4, 0, 0).to_mac().value & mask != value.value & mask


def test_allocator_unique_and_released():
    alloc = PmacAllocator(pod=1, position=2)
    a = alloc.allocate(port=0)
    b = alloc.allocate(port=0)
    c = alloc.allocate(port=1)
    assert len({a, b, c}) == 3
    assert a.port == 0 and c.port == 1
    assert alloc.allocated_count() == 3
    alloc.release(a)
    assert alloc.allocated_count() == 2
    reused = alloc.allocate(port=0)
    assert reused.vmid == a.vmid  # freed vmid is recycled


def test_allocator_rejects_foreign_pmac():
    alloc = PmacAllocator(pod=1, position=2)
    with pytest.raises(AddressError):
        alloc.release(Pmac(9, 9, 0, 0))


def test_release_unallocated_is_noop():
    alloc = PmacAllocator(pod=1, position=2)
    alloc.release(Pmac(1, 2, 0, 42))  # never allocated: ignored
    assert alloc.allocated_count() == 0


@given(pod=st.integers(0, 255), position=st.integers(0, 255),
       port=st.integers(0, 255), vmid=st.integers(0, 65535))
def test_pmac_roundtrip_property(pod, position, port, vmid):
    pmac = Pmac(pod, position, port, vmid)
    assert Pmac.from_mac(pmac.to_mac()) == pmac
    assert not pmac.to_mac().is_multicast
