"""Unit tests for the PortlandSwitch two-stage pipeline."""

from repro.net import AppData, EthernetFrame, Link, mac
from repro.net.ethernet import ETHERTYPE_FABRIC, ETHERTYPE_IPV4, ETHERTYPE_LDP
from repro.net.node import Node
from repro.portland.switch import PortlandSwitch
from repro.sim import Simulator
from repro.switching.flow_table import Match, Output, SetEthDst, SetEthSrc, ToAgent
from repro.switching.switch import SwitchAgent


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name, 1)
        self.received = []

    def receive(self, frame, in_port):
        self.received.append(frame)


class Recorder(SwitchAgent):
    def __init__(self, switch):
        super().__init__(switch)
        self.punts = []

    def on_packet_in(self, frame, in_port, reason):
        self.punts.append((frame, reason))


def build(sim):
    switch = PortlandSwitch(sim, "psw", 3, agent_delay_s=1e-6)
    agent = Recorder(switch)
    switch.attach_agent(agent)
    sinks = [Sink(sim, f"s{i}") for i in range(3)]
    for i, sink in enumerate(sinks):
        Link(sim, switch.port(i), sink.port(0), carrier_detect=False)
    return switch, agent, sinks


def frame(dst="00:00:00:00:00:aa", src="00:00:00:00:00:01",
          ethertype=ETHERTYPE_IPV4):
    return EthernetFrame(mac(dst), mac(src), ethertype, AppData(10))


def test_rewrite_stage_continues_to_forwarding():
    sim = Simulator()
    switch, _agent, sinks = build(sim)
    pmac = mac("00:07:01:00:00:00")
    switch.rewrite_table.install(
        Match(in_port=0, eth_src=mac("00:00:00:00:00:01")),
        (SetEthSrc(pmac),), 500, "ingress")
    switch.table.install(Match(), (Output(2),), 100, "up")
    switch.receive(frame(), switch.port(0))
    sim.run()
    assert sinks[2].received[0].src == pmac


def test_terminal_rewrite_entry_consumes_frame():
    sim = Simulator()
    switch, agent, sinks = build(sim)
    switch.rewrite_table.install(Match(in_port=0), (ToAgent("new-host"),),
                                 100, "trap")
    switch.table.install(Match(), (Output(2),), 100, "up")
    switch.receive(frame(), switch.port(0))
    sim.run()
    assert agent.punts and agent.punts[0][1] == "new-host"
    assert sinks[2].received == []  # never reached stage 2


def test_ldp_frames_bypass_tables():
    sim = Simulator()
    switch, agent, _sinks = build(sim)
    switch.table.install(Match(), (Output(2),), 100, "up")
    switch.receive(frame(ethertype=ETHERTYPE_LDP), switch.port(0))
    sim.run()
    assert agent.punts[0][1] == "ldp"


def test_control_port_frames_reach_agent():
    sim = Simulator()
    switch, agent, _sinks = build(sim)
    control = switch.attach_control_port()
    fm_side = Sink(sim, "fm")
    Link(sim, control, fm_side.port(0))
    fm_side.port(0).send(frame(ethertype=ETHERTYPE_FABRIC))
    sim.run()
    assert agent.punts[0][1] == "control"


def test_send_control_requires_port():
    sim = Simulator()
    switch, _agent, _sinks = build(sim)
    assert switch.send_control(frame()) is False
    control = switch.attach_control_port()
    fm_side = Sink(sim, "fm")
    Link(sim, control, fm_side.port(0))
    assert switch.send_control(frame()) is True
    sim.run()
    assert len(fm_side.received) == 1


def test_inject_skips_punt_entries():
    sim = Simulator()
    switch, agent, sinks = build(sim)
    switch.table.install(Match(), (ToAgent("loop"),), 500, "punt")
    switch.table.install(Match(), (Output(1),), 100, "out")
    switch.inject(frame())
    sim.run()
    assert agent.punts == []  # punt entry skipped
    assert len(sinks[1].received) == 1


def test_inject_miss_counts_drop():
    sim = Simulator()
    switch, _agent, _sinks = build(sim)
    switch.inject(frame())
    assert switch.miss_drops == 1


def test_rewrite_dst_applies_before_forwarding_lookup():
    sim = Simulator()
    switch, _agent, sinks = build(sim)
    target = mac("00:00:00:00:00:bb")
    switch.rewrite_table.install(Match(in_port=0),
                                 (SetEthDst(target),), 100, "rw")
    # Forwarding matches on the REWRITTEN destination.
    switch.table.install(Match(eth_dst=target), (Output(1),), 200, "hit")
    switch.table.install(Match(), (Output(2),), 100, "default")
    switch.receive(frame(dst="00:00:00:00:00:aa"), switch.port(0))
    sim.run()
    assert len(sinks[1].received) == 1
    assert sinks[2].received == []
