"""PortLand on a hand-built tree with *asymmetric pods*.

The paper claims generality over multi-rooted trees; this goes further
than the uniform irregular builder: pods with different numbers of edge
switches and hosts (aggregation counts stay uniform — the core-group
wiring invariant multi-rooted trees require). LDP, position agreement,
pod assignment, forwarding, and fault recovery must all still work.
"""

from repro.host.apps import UdpEchoServer, UdpPinger, UdpStreamReceiver, UdpStreamSender
from repro.portland.messages import SwitchLevel
from repro.sim import Simulator
from repro.topology import LinkParams, build_portland_fabric
from repro.topology.fattree import FatTree, HostSpec, WireSpec, host_ip, host_mac
from repro.topology.validate import validate_tree


def build_asymmetric_tree() -> FatTree:
    """Pod 0: 3 edges × 2 hosts; pod 1: 1 edge × 1 host; pod 2: 2 edges
    × 1 host. Two aggs per pod, one core per group (2 cores)."""
    tree = FatTree(k=8)
    pods = {0: 3, 1: 1, 2: 2}          # edges per pod
    hosts_per_pod = {0: 2, 1: 1, 2: 1}  # hosts per edge
    aggs_per_pod = 2
    cores = 2

    for pod, edge_count in pods.items():
        for e in range(edge_count):
            tree.edge_names.append(f"edge-p{pod}-s{e}")
        for a in range(aggs_per_pod):
            tree.agg_names.append(f"agg-p{pod}-s{a}")
    for c in range(cores):
        tree.core_names.append(f"core-{c}")

    for pod, edge_count in pods.items():
        nhosts = hosts_per_pod[pod]
        for e in range(edge_count):
            edge = f"edge-p{pod}-s{e}"
            for i in range(nhosts):
                name = f"host-p{pod}-e{e}-{i}"
                tree.hosts.append(HostSpec(
                    name=name, pod=pod, edge=e, index=i,
                    mac=host_mac(pod, e, i), ip=host_ip(pod, e, i),
                    edge_switch=edge, edge_port=i))
                tree.host_wires.append(WireSpec(name, 0, edge, i))
            for a in range(aggs_per_pod):
                tree.switch_wires.append(WireSpec(
                    edge, nhosts + a, f"agg-p{pod}-s{a}", e))
        for a in range(aggs_per_pod):
            tree.switch_wires.append(WireSpec(
                f"agg-p{pod}-s{a}", edge_count, f"core-{a}", pod))
    return tree


def converged_asymmetric(seed=121, carrier=True):
    tree = build_asymmetric_tree()
    validate_tree(tree)
    sim = Simulator(seed=seed)
    fabric = build_portland_fabric(
        sim, tree=tree, link_params=LinkParams(carrier_detect=carrier))
    fabric.start()
    fabric.run_until_located(timeout_s=10.0)
    fabric.announce_hosts()
    fabric.run_until_registered(timeout_s=10.0)
    return fabric


def test_discovery_on_asymmetric_pods():
    fabric = converged_asymmetric()
    levels = {}
    for name, agent in fabric.agents.items():
        levels.setdefault(agent.level, []).append(name)
    assert len(levels[SwitchLevel.EDGE]) == 6
    assert len(levels[SwitchLevel.AGGREGATION]) == 6
    assert len(levels[SwitchLevel.CORE]) == 2
    # Three distinct pod numbers; positions unique within each pod.
    pods = {}
    for name, agent in fabric.agents.items():
        if agent.level is SwitchLevel.EDGE:
            pods.setdefault(agent.ldp.pod, []).append(agent.ldp.position)
    assert len(pods) == 3
    for positions in pods.values():
        assert len(set(positions)) == len(positions)


def test_all_pairs_reachable_on_asymmetric_pods():
    fabric = converged_asymmetric(seed=122)
    sim = fabric.sim
    hosts = fabric.host_list()
    target = hosts[-1]
    UdpEchoServer(target, 7)
    pingers = [UdpPinger(h, target.ip) for h in hosts[:-1]]
    for pinger in pingers:
        pinger.ping()
    sim.run(until=sim.now + 1.0)
    assert all(p.answered == 1 for p in pingers)


def test_failover_on_asymmetric_pods():
    fabric = converged_asymmetric(seed=123, carrier=False)
    sim = fabric.sim
    hosts = fabric.host_list()
    # Big pod (0) talks to the single-edge pod (1).
    src = hosts[0]
    dst = next(fabric.hosts[s.name] for s in fabric.tree.hosts if s.pod == 1)
    rx = UdpStreamReceiver(dst, 5001)
    UdpStreamSender(src, dst.ip, 5001, rate_pps=1000).start()
    sim.run(until=1.0)
    # Fail the destination edge's active uplink.
    edge = fabric.switches["edge-p1-s0"]
    up = {p.index: p.counters.rx_frames for p in edge.ports
          if p.link is not None and p.index >= 1}
    active = max(up, key=up.get)
    peer = edge.ports[active].peer.node.name
    fabric.link_between("edge-p1-s0", peer).fail()
    sim.run(until=2.5)
    gap, _s, _e = rx.max_gap(0.9, 2.5)
    assert gap < 0.4
    late = [t for t in rx.arrival_times() if t > 2.3]
    assert len(late) > 150
