"""Unit tests for the fabric manager's fault-override computation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.portland.faults import (
    OverrideComputer,
    apply_diff,
    compute_overrides,
    diff_overrides,
)
from repro.portland.messages import SwitchLevel
from repro.portland.pmac import position_prefix
from repro.portland.topology_view import FabricView, SwitchRecord


def make_fat_tree_view(k=4, failed=()):
    """A hand-built k=4 fat-tree FabricView with integer switch ids.

    Ids: edges 100+index, aggs 200+index, cores 300+index, where index =
    pod * (k/2) + pos for edges/aggs.
    """
    half = k // 2
    switches = {}

    def add(sid, level, pod=None, position=None):
        record = SwitchRecord(sid)
        record.level = level
        record.pod = pod
        record.position = position
        switches[sid] = record
        return record

    for pod in range(k):
        for i in range(half):
            add(100 + pod * half + i, SwitchLevel.EDGE, pod, i)
            add(200 + pod * half + i, SwitchLevel.AGGREGATION, pod)
    for c in range(half * half):
        add(300 + c, SwitchLevel.CORE)

    # Wire: edge <-> agg (full bipartite per pod); agg a <-> core group a.
    for pod in range(k):
        for e in range(half):
            edge = switches[100 + pod * half + e]
            for a in range(half):
                agg = switches[200 + pod * half + a]
                edge.neighbors[half + a] = (agg.switch_id, SwitchLevel.AGGREGATION)
                agg.neighbors[e] = (edge.switch_id, SwitchLevel.EDGE)
        for a in range(half):
            agg = switches[200 + pod * half + a]
            for j in range(half):
                core = switches[300 + a * half + j]
                agg.neighbors[half + j] = (core.switch_id, SwitchLevel.CORE)
                core.neighbors[pod] = (agg.switch_id, SwitchLevel.AGGREGATION)

    return FabricView(switches, set(frozenset(f) for f in failed))


def test_view_structure_queries():
    view = make_fat_tree_view()
    assert len(view.edges()) == 8
    assert len(view.aggregations()) == 8
    assert len(view.cores()) == 4
    assert view.pod(100) == 0 and view.position(101) == 1
    assert view.port_toward(100, 200) == 2
    assert view.adjacent(100, 200)
    assert not view.adjacent(100, 300)
    # Aggregation group: agg 200 (pod0, idx0) shares cores with 202/204/206.
    assert view.agg_group(200) == {200, 202, 204, 206}
    assert view.agg_group(201) == {201, 203, 205, 207}


def test_alive_respects_fault_matrix():
    view = make_fat_tree_view(failed=[(100, 200)])
    assert not view.alive(100, 200)
    assert view.alive(100, 201)


def test_no_failures_no_overrides():
    assert compute_overrides(make_fat_tree_view()) == {}


def test_agg_edge_failure_overrides():
    # Fail agg 200 (pod0, group0) <-> edge 101 (pod0, pos1).
    view = make_fat_tree_view(failed=[(200, 101)])
    overrides = compute_overrides(view)
    prefix = position_prefix(0, 1)
    key = (prefix[0].value, prefix[1])
    # Every other edge gets an update, plus the remote group-0 aggs
    # (whose cores can no longer descend to the broken edge).
    assert set(overrides) == {100, 102, 103, 104, 105, 106, 107,
                              202, 204, 206}
    # Same-pod edge avoids just the broken agg.
    assert overrides[100][key] == {200}
    # A remote edge avoids its local group-0 aggregation switch.
    assert overrides[102][key] == {202}
    # Remote group-0 aggs avoid their (now useless) cores for the prefix.
    assert overrides[202][key] == {300, 301}


def test_core_agg_failure_overrides():
    # Fail core 300 <-> agg 200 (pod0, group 0).
    view = make_fat_tree_view(failed=[(300, 200)])
    overrides = compute_overrides(view)
    # Other group-0 aggs (in pods 1..3) avoid core 300 for both pod-0
    # position prefixes; no edge needs an update (every local agg still
    # reaches pod 0 through some core).
    assert set(overrides) == {202, 204, 206}
    for position in (0, 1):
        prefix = position_prefix(0, position)
        key = (prefix[0].value, prefix[1])
        for sid in (202, 204, 206):
            assert overrides[sid][key] == {300}


def test_multiple_failures_merge_avoid_sets():
    # Both pod-0 aggs lose their link to edge 101.
    view = make_fat_tree_view(failed=[(200, 101), (201, 101)])
    overrides = compute_overrides(view)
    prefix = position_prefix(0, 1)
    key = (prefix[0].value, prefix[1])
    # The prefix is unreachable: every uplink everywhere is avoided.
    assert overrides[102][key] == {202, 203}
    assert overrides[100][key] == {200, 201}
    assert overrides[202][key] == {300, 301}


def test_host_and_unknown_links_ignored():
    view = make_fat_tree_view(failed=[(100, 999)])  # unknown endpoint
    assert compute_overrides(view) == {}


def test_diff_overrides():
    old = {1: {(0xA, 24): {7}}, 2: {(0xB, 16): {8}}}
    new = {1: {(0xA, 24): {7, 9}}, 3: {(0xC, 24): {5}}}
    updates, clears = diff_overrides(old, new)
    assert (1, (0xA, 24), (7, 9)) in updates
    assert (3, (0xC, 24), (5,)) in updates
    assert (2, (0xB, 16)) in clears
    assert len(updates) == 2 and len(clears) == 1


def test_diff_overrides_no_change_is_empty():
    state = {1: {(0xA, 24): {7}}}
    updates, clears = diff_overrides(state, {1: {(0xA, 24): {7}}})
    assert updates == [] and clears == []


# ----------------------------------------------------------------------
# diff/apply round-trip properties

# Override maps as the FM builds them: no switch entry without at least
# one prefix (compute_overrides only creates entries via setdefault on a
# real avoid set); empty *avoid* sets are legal and mean "drop".
_prefix = st.tuples(st.integers(0, 2**48 - 1), st.sampled_from((24, 40)))
_avoid = st.sets(st.integers(0, 40), max_size=4)
_overrides = st.dictionaries(
    st.integers(0, 20),
    st.dictionaries(_prefix, _avoid, min_size=1, max_size=3),
    max_size=6,
)


@settings(max_examples=200, deadline=None)
@given(old=_overrides, new=_overrides)
def test_apply_diff_roundtrip_forward(old, new):
    # The incremental FaultUpdate/FaultClear stream lands the fabric in
    # exactly the state a from-scratch recomputation would.
    updates, clears = diff_overrides(old, new)
    assert apply_diff(old, updates, clears) == new


@settings(max_examples=200, deadline=None)
@given(old=_overrides, new=_overrides)
def test_apply_diff_roundtrip_inverse(old, new):
    # old -> new -> old restores the original state (recovery sequences
    # are exact inverses of the failures that caused them).
    forward = apply_diff(old, *diff_overrides(old, new))
    restored = apply_diff(forward, *diff_overrides(new, old))
    assert restored == old


@settings(max_examples=100, deadline=None)
@given(state=_overrides)
def test_diff_is_fixpoint_after_apply(state):
    updates, clears = diff_overrides(state, state)
    assert updates == [] and clears == []
    applied = apply_diff(state, updates, clears)
    assert diff_overrides(applied, state) == ([], [])


def test_apply_diff_does_not_mutate_base():
    base = {1: {(0xA, 24): {7}}}
    apply_diff(base, [(1, (0xA, 24), (9,))], [(1, (0xA, 24))])
    assert base == {1: {(0xA, 24): {7}}}


# ----------------------------------------------------------------------
# Fully-partitioned prefixes: an empty allowed set must yield an
# explicit drop override (avoid = every physical uplink), never an
# absent entry — absence means "use the default ECMP set", which would
# spray traffic at a provably unreachable destination.


def _all_uplinks(view, sid, level):
    return {nbr for nbr in view.neighbors_of(sid).values()
            if view.level(nbr) is level}


def test_partitioned_prefix_gets_explicit_drop_everywhere():
    # Edge 101 (pod0, pos1) loses both its uplinks: its prefix is
    # unreachable fabric-wide.
    view = make_fat_tree_view(failed=[(200, 101), (201, 101)])
    overrides = compute_overrides(view)
    prefix = position_prefix(0, 1)
    key = (prefix[0].value, prefix[1])
    half = 2
    for pod in range(4):
        for e in range(half):
            edge = 100 + pod * half + e
            if edge == 101:
                continue  # the destination itself holds no override
            assert overrides[edge][key] == _all_uplinks(
                view, edge, SwitchLevel.AGGREGATION), edge
        for a in range(half):
            agg = 200 + pod * half + a
            if pod == 0:
                # Same-pod aggs route down or drop locally; the FM never
                # overrides them for their own pod's prefixes.
                assert key not in overrides.get(agg, {})
            else:
                assert overrides[agg][key] == _all_uplinks(
                    view, agg, SwitchLevel.CORE), agg


def test_partition_overlapping_with_unrelated_failure():
    # The partition of 101 composes with an unrelated agg-core failure:
    # the drop overrides for 101's prefix must be unchanged, while the
    # core failure adds its own avoid entries for other prefixes.
    view = make_fat_tree_view(
        failed=[(200, 101), (201, 101), (202, 300)])
    overrides = compute_overrides(view)
    prefix = position_prefix(0, 1)
    key = (prefix[0].value, prefix[1])
    assert overrides[102][key] == {202, 203}
    assert overrides[104][key] == {204, 205}
    assert overrides[202][key] == {300, 301}
    # agg 202 (pod1, group0) lost core 300: pods 2/3's group-0 aggs are
    # unaffected for pod-1 prefixes, but pod-1 destinations now avoid
    # core 300 from other pods' group-0 aggs.
    pod1_prefix = position_prefix(1, 0)
    pod1_key = (pod1_prefix[0].value, pod1_prefix[1])
    for agg in (200, 204, 206):
        assert overrides[agg][pod1_key] == {300}


def test_recovery_sequence_clears_partition_overrides():
    # Fail both uplinks of 101, then recover them one at a time,
    # applying the diff stream at each step; the final state is empty.
    steps = [
        [(200, 101), (201, 101)],  # both down: full partition
        [(200, 101)],              # one recovered
        [],                        # all recovered
    ]
    state = {}
    prefix = position_prefix(0, 1)
    key = (prefix[0].value, prefix[1])
    for failed in steps:
        target = compute_overrides(make_fat_tree_view(failed=failed))
        updates, clears = diff_overrides(state, target)
        state = apply_diff(state, updates, clears)
        assert state == target
    assert state == {}
    # And mid-sequence the partial recovery really shrank the avoid set.
    mid = compute_overrides(make_fat_tree_view(failed=[(200, 101)]))
    assert mid[102][key] == {202}  # only the group of the dead agg
    assert key not in mid.get(100, {}) or mid[100][key] == {200}


# ----------------------------------------------------------------------
# Incremental override maintenance (OverrideComputer): after any mix of
# fault flips and one-sided wiring changes the incrementally maintained
# map must equal a from-scratch compute_overrides of the same view.


def _candidate_links(view):
    links = []
    for sid, record in sorted(view.switches.items()):
        for _port, (nbr, _level) in sorted(record.neighbors.items()):
            if sid < nbr:
                links.append((sid, nbr))
    return links


_ops = st.lists(
    st.tuples(st.sampled_from(("fault", "wire")), st.integers(0, 10**6)),
    min_size=1, max_size=12)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_incremental_computer_matches_full(ops):
    view = make_fat_tree_view()
    links = _candidate_links(view)
    computer = OverrideComputer()
    computer.update(view)  # prime on the clean fabric
    removed: dict[tuple[int, int], tuple[int, SwitchLevel]] = {}

    for kind, n in ops:
        if kind == "fault":
            link = frozenset(links[n % len(links)])
            if link in view.failed:
                view.failed.discard(link)
            else:
                view.failed.add(link)
            got = computer.update(view, changed_links={link})
        else:
            # One-sided wiring toggle (LDP pruning / re-adding an uplink
            # in one switch's report): ports 2-3 are the up-neighbours
            # of both edges and aggs in the hand-built k=4 view.
            targets = sorted(view.edges()) + sorted(view.aggregations())
            sid = targets[n % len(targets)]
            port = 2 + (n // len(targets)) % 2
            record = view.switches[sid]
            if (sid, port) in removed:
                record.neighbors[port] = removed.pop((sid, port))
            elif port in record.neighbors:
                removed[(sid, port)] = record.neighbors.pop(port)
            else:
                continue
            nbr = (removed.get((sid, port)) or record.neighbors[port])[0]
            got = computer.update(view,
                                  changed_links={frozenset((sid, nbr))},
                                  changed_switches={sid})
        assert got == compute_overrides(view)


def test_computer_full_fallback_on_unattributed_change():
    view = make_fat_tree_view(failed=[(200, 101)])
    computer = OverrideComputer()
    first = computer.update(view, changed_links={frozenset((200, 101))})
    # Unprimed: the attributed change still forces a full recompute.
    assert computer.full_recomputes == 1
    assert first == compute_overrides(view)
    view.failed.clear()
    # None = "cannot attribute": full recompute again.
    assert computer.update(view) == {}
    assert computer.full_recomputes == 2
