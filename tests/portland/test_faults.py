"""Unit tests for the fabric manager's fault-override computation."""

from repro.portland.faults import compute_overrides, diff_overrides
from repro.portland.messages import SwitchLevel
from repro.portland.pmac import position_prefix
from repro.portland.topology_view import FabricView, SwitchRecord


def make_fat_tree_view(k=4, failed=()):
    """A hand-built k=4 fat-tree FabricView with integer switch ids.

    Ids: edges 100+index, aggs 200+index, cores 300+index, where index =
    pod * (k/2) + pos for edges/aggs.
    """
    half = k // 2
    switches = {}

    def add(sid, level, pod=None, position=None):
        record = SwitchRecord(sid)
        record.level = level
        record.pod = pod
        record.position = position
        switches[sid] = record
        return record

    for pod in range(k):
        for i in range(half):
            add(100 + pod * half + i, SwitchLevel.EDGE, pod, i)
            add(200 + pod * half + i, SwitchLevel.AGGREGATION, pod)
    for c in range(half * half):
        add(300 + c, SwitchLevel.CORE)

    # Wire: edge <-> agg (full bipartite per pod); agg a <-> core group a.
    for pod in range(k):
        for e in range(half):
            edge = switches[100 + pod * half + e]
            for a in range(half):
                agg = switches[200 + pod * half + a]
                edge.neighbors[half + a] = (agg.switch_id, SwitchLevel.AGGREGATION)
                agg.neighbors[e] = (edge.switch_id, SwitchLevel.EDGE)
        for a in range(half):
            agg = switches[200 + pod * half + a]
            for j in range(half):
                core = switches[300 + a * half + j]
                agg.neighbors[half + j] = (core.switch_id, SwitchLevel.CORE)
                core.neighbors[pod] = (agg.switch_id, SwitchLevel.AGGREGATION)

    return FabricView(switches, set(frozenset(f) for f in failed))


def test_view_structure_queries():
    view = make_fat_tree_view()
    assert len(view.edges()) == 8
    assert len(view.aggregations()) == 8
    assert len(view.cores()) == 4
    assert view.pod(100) == 0 and view.position(101) == 1
    assert view.port_toward(100, 200) == 2
    assert view.adjacent(100, 200)
    assert not view.adjacent(100, 300)
    # Aggregation group: agg 200 (pod0, idx0) shares cores with 202/204/206.
    assert view.agg_group(200) == {200, 202, 204, 206}
    assert view.agg_group(201) == {201, 203, 205, 207}


def test_alive_respects_fault_matrix():
    view = make_fat_tree_view(failed=[(100, 200)])
    assert not view.alive(100, 200)
    assert view.alive(100, 201)


def test_no_failures_no_overrides():
    assert compute_overrides(make_fat_tree_view()) == {}


def test_agg_edge_failure_overrides():
    # Fail agg 200 (pod0, group0) <-> edge 101 (pod0, pos1).
    view = make_fat_tree_view(failed=[(200, 101)])
    overrides = compute_overrides(view)
    prefix = position_prefix(0, 1)
    key = (prefix[0].value, prefix[1])
    # Every other edge gets an update, plus the remote group-0 aggs
    # (whose cores can no longer descend to the broken edge).
    assert set(overrides) == {100, 102, 103, 104, 105, 106, 107,
                              202, 204, 206}
    # Same-pod edge avoids just the broken agg.
    assert overrides[100][key] == {200}
    # A remote edge avoids its local group-0 aggregation switch.
    assert overrides[102][key] == {202}
    # Remote group-0 aggs avoid their (now useless) cores for the prefix.
    assert overrides[202][key] == {300, 301}


def test_core_agg_failure_overrides():
    # Fail core 300 <-> agg 200 (pod0, group 0).
    view = make_fat_tree_view(failed=[(300, 200)])
    overrides = compute_overrides(view)
    # Other group-0 aggs (in pods 1..3) avoid core 300 for both pod-0
    # position prefixes; no edge needs an update (every local agg still
    # reaches pod 0 through some core).
    assert set(overrides) == {202, 204, 206}
    for position in (0, 1):
        prefix = position_prefix(0, position)
        key = (prefix[0].value, prefix[1])
        for sid in (202, 204, 206):
            assert overrides[sid][key] == {300}


def test_multiple_failures_merge_avoid_sets():
    # Both pod-0 aggs lose their link to edge 101.
    view = make_fat_tree_view(failed=[(200, 101), (201, 101)])
    overrides = compute_overrides(view)
    prefix = position_prefix(0, 1)
    key = (prefix[0].value, prefix[1])
    # The prefix is unreachable: every uplink everywhere is avoided.
    assert overrides[102][key] == {202, 203}
    assert overrides[100][key] == {200, 201}
    assert overrides[202][key] == {300, 301}


def test_host_and_unknown_links_ignored():
    view = make_fat_tree_view(failed=[(100, 999)])  # unknown endpoint
    assert compute_overrides(view) == {}


def test_diff_overrides():
    old = {1: {(0xA, 24): {7}}, 2: {(0xB, 16): {8}}}
    new = {1: {(0xA, 24): {7, 9}}, 3: {(0xC, 24): {5}}}
    updates, clears = diff_overrides(old, new)
    assert (1, (0xA, 24), (7, 9)) in updates
    assert (3, (0xC, 24), (5,)) in updates
    assert (2, (0xB, 16)) in clears
    assert len(updates) == 2 and len(clears) == 1


def test_diff_overrides_no_change_is_empty():
    state = {1: {(0xA, 24): {7}}}
    updates, clears = diff_overrides(state, {1: {(0xA, 24): {7}}})
    assert updates == [] and clears == []
