"""Sharded fabric manager: placement, facade, failover, partitions."""

from repro.host.apps import UdpEchoServer, UdpPinger
from repro.net.addresses import IPv4Address
from repro.portland.config import PortlandConfig
from repro.portland.fabric_manager import FabricManager
from repro.portland.fm_shard import (
    FmShardCluster,
    owner_index_for_ip,
    pod_hint_from_name,
)
from repro.sim import Simulator
from repro.topology import LinkParams, build_portland_fabric
from repro.verify import InvariantOracle

REFRESH = 0.5


def converged(sim, shards=4, carrier=False, **config_kwargs):
    config = PortlandConfig(soft_state_refresh_s=REFRESH, fm_shards=shards,
                            **config_kwargs)
    fabric = build_portland_fabric(
        sim, k=4, config=config,
        link_params=LinkParams(carrier_detect=carrier))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


# ----------------------------------------------------------------------
# Placement functions


def test_owner_index_partitions_by_pod_octet():
    # 10.pod.edge.host: the pod octet picks the shard.
    assert owner_index_for_ip(IPv4Address.parse("10.0.0.2"), 4) == 0
    assert owner_index_for_ip(IPv4Address.parse("10.3.1.2"), 4) == 3
    assert owner_index_for_ip(IPv4Address.parse("10.5.0.2"), 4) == 1
    assert owner_index_for_ip(IPv4Address.parse("10.3.9.9"), 2) == 1


def test_owner_index_hash_fallback_balances_flat_ip_plans():
    # The two-layer plan puts every host in 10.0.edge.host: by-pod
    # placement would pin the whole registry onto shard 0. The
    # full-IP hash fallback (pod_plan=False) must spread it.
    ips = [IPv4Address.parse(f"10.0.{e}.{h + 2}")
           for e in range(16) for h in range(8)]
    by_pod = {owner_index_for_ip(ip, 4) for ip in ips}
    assert by_pod == {0}  # the imbalance the fallback exists to fix
    counts: dict[int, int] = {}
    for ip in ips:
        idx = owner_index_for_ip(ip, 4, pod_plan=False)
        counts[idx] = counts.get(idx, 0) + 1
    assert set(counts) == {0, 1, 2, 3}
    assert max(counts.values()) <= 2 * min(counts.values())


def test_cluster_placement_mode_follows_scheme():
    from repro.topology.scheme import scheme_for_backend

    sim = Simulator(seed=84)
    config = PortlandConfig(fm_shards=4)
    # Fat tree (no scheme): by-pod placement.
    assert FmShardCluster(sim, config).pod_ip_plan
    # Flat IP plans: stable-hash placement.
    for backend in ("twolayer", "jellyfish"):
        scheme = scheme_for_backend(backend, k=4)
        cluster = FmShardCluster(sim, config, scheme=scheme)
        assert not cluster.pod_ip_plan
        ip = IPv4Address.parse("10.0.1.2")
        assert cluster.owner_shard(ip) is cluster.shards[
            owner_index_for_ip(ip, 4, pod_plan=False)]


def test_pod_hint_from_name():
    assert pod_hint_from_name("edge-p3-s1") == 3
    assert pod_hint_from_name("agg-p12-s0") == 12
    assert pod_hint_from_name("core-2") is None
    assert pod_hint_from_name(None) is None


def test_default_config_builds_single_fm():
    sim = Simulator(seed=81)
    config = PortlandConfig()  # fm_shards=0
    fabric = build_portland_fabric(sim, k=4, config=config)
    assert type(fabric.fabric_manager) is FabricManager


# ----------------------------------------------------------------------
# Converged sharded fabric


def test_sharded_convergence_and_placement():
    sim = Simulator(seed=82)
    fabric = converged(sim)
    cluster = fabric.fabric_manager
    assert isinstance(cluster, FmShardCluster)
    # Every host registered, and the facade merges all shard registries.
    assert len(cluster.hosts_by_ip) == len(fabric.hosts)
    # Each record lives on exactly its owner shard.
    for shard in cluster.shards:
        for ip in shard.hosts_by_ip:
            assert cluster.owner_shard(ip) is shard
    # Switches are homed by structural pod; cores spread round-robin.
    for name, agent in fabric.agents.items():
        pod = pod_hint_from_name(name)
        if pod is not None:
            assert cluster.home_index(agent.switch_id) == pod % 4


def test_cross_pod_and_same_pod_arp_resolution():
    sim = Simulator(seed=83)
    fabric = converged(sim)
    hosts = fabric.host_list()
    # hosts[0] is in pod 0; hosts[-1] in pod 3: cross-pod (one
    # inter-shard hop); hosts[1] shares pod 0 (pure shard-local).
    for target in (hosts[-1], hosts[1]):
        UdpEchoServer(target, 7)
        pinger = UdpPinger(hosts[0], target.ip)
        hosts[0].arp_cache.invalidate(target.ip)
        pinger.ping()
        sim.run(until=sim.now + 0.5)
        assert pinger.answered == 1
    assert fabric.fabric_manager.intershard_messages > 0


def test_cluster_restart_rebuilds_all_servers():
    sim = Simulator(seed=84)
    fabric = converged(sim)
    cluster = fabric.fabric_manager
    hosts_before = set(cluster.hosts_by_ip)
    switches_before = set(cluster.switches)

    cluster.restart()
    assert cluster.hosts_by_ip == {}
    assert cluster.switches == {}
    sim.run(until=sim.now + 2.5 * REFRESH)

    assert set(cluster.switches) == switches_before
    assert set(cluster.hosts_by_ip) == hosts_before
    assert cluster.restarts == len(cluster.servers)


def test_single_shard_restart_resyncs_replica():
    sim = Simulator(seed=85)
    fabric = converged(sim, carrier=True)
    cluster = fabric.fabric_manager
    link = fabric.link_between("agg-p1-s0", "core-0")
    link.fail()
    sim.run(until=sim.now + 0.3)
    assert len(cluster.fault_matrix) == 1

    shard = cluster.shards[2]
    edges_before = shard._edge_switch_ids()
    assert edges_before
    shard.restart()
    assert shard._edge_switch_ids() == []
    sim.run(until=sim.now + 2.5 * REFRESH)
    # The resync replica restores the edge directory and fault matrix.
    assert set(shard._edge_switch_ids()) == set(edges_before)
    assert shard.fault_matrix == cluster.fault_matrix
    link.recover()
    sim.run(until=sim.now + 0.5)
    assert len(cluster.fault_matrix) == 0


def test_shard_partition_heals_clean():
    sim = Simulator(seed=86)
    fabric = converged(sim, carrier=True,
                       fm_batch_interval_s=0.02, fm_incremental=True)
    cluster = fabric.fabric_manager
    oracle = InvariantOracle(fabric)
    victim = cluster.shards[1]
    links = [fabric.control.links_by_switch[sid]
             for sid, shard in cluster._home_by_switch.items()
             if shard is victim]
    assert links

    for link in links:
        link.fail()
    cluster.set_partitioned(victim, True)
    sim.run(until=sim.now + 0.3)
    assert cluster.intershard_dropped >= 0  # drops only if traffic flowed

    for link in links:
        link.recover()
    cluster.set_partitioned(victim, False)
    sim.run(until=sim.now + 2.5 * REFRESH)

    # Fabric is healed: registries complete, data path clean end to end.
    assert len(cluster.hosts_by_ip) == len(fabric.hosts)
    hosts = fabric.host_list()
    UdpEchoServer(hosts[-1], 7)
    pinger = UdpPinger(hosts[0], hosts[-1].ip)
    hosts[0].arp_cache.invalidate(hosts[-1].ip)
    pinger.ping()
    sim.run(until=sim.now + 0.5)
    assert pinger.answered == 1
    oracle.check_now()
    assert oracle.violations == []
    oracle.close()


def test_busy_time_accrues_per_shard():
    sim = Simulator(seed=87)
    fabric = converged(sim)
    cluster = fabric.fabric_manager
    # Registration/refresh traffic touched every shard's queue.
    assert all(shard.busy_time > 0 for shard in cluster.shards)
    assert cluster.busy_time >= sum(s.busy_time for s in cluster.shards)
