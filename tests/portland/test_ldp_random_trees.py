"""Property test: LDP converges on arbitrary multi-rooted trees.

PortLand's claim of generality beyond the fat tree, checked with
hypothesis-generated topology dimensions: for every generated tree,
location discovery must converge, pods must be internally consistent,
positions unique, and end-to-end traffic must flow.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.host.apps import UdpEchoServer, UdpPinger
from repro.portland.messages import SwitchLevel
from repro.sim import Simulator
from repro.topology import build_portland_fabric
from repro.topology.multirooted import build_multirooted_tree
from repro.topology.validate import validate_tree

DIMENSIONS = st.tuples(
    st.integers(min_value=2, max_value=4),  # pods
    st.integers(min_value=1, max_value=3),  # edges per pod
    st.integers(min_value=1, max_value=3),  # aggs per pod
    st.integers(min_value=1, max_value=2),  # cores per group
    st.integers(min_value=1, max_value=2),  # hosts per edge
)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(dims=DIMENSIONS, seed=st.integers(min_value=0, max_value=2**16))
def test_ldp_converges_on_random_multirooted_trees(dims, seed):
    pods, edges, aggs, cores, hosts_per_edge = dims
    tree = build_multirooted_tree(pods, edges, aggs, cores, hosts_per_edge)
    validate_tree(tree)

    sim = Simulator(seed=seed)
    fabric = build_portland_fabric(sim, tree=tree)
    fabric.start()
    fabric.run_until_located(timeout_s=10.0)
    fabric.announce_hosts()
    fabric.run_until_registered(timeout_s=10.0)

    # Levels match the physical roles.
    for name, agent in fabric.agents.items():
        expected = {"edge": SwitchLevel.EDGE,
                    "agg": SwitchLevel.AGGREGATION,
                    "core": SwitchLevel.CORE}[name.split("-")[0]]
        assert agent.level is expected, name

    # Pods are internally consistent and positions unique within a pod.
    for pod_index in range(pods):
        members = [fabric.agents[f"edge-p{pod_index}-s{e}"]
                   for e in range(edges)]
        members += [fabric.agents[f"agg-p{pod_index}-s{a}"]
                    for a in range(aggs)]
        pod_values = {m.ldp.pod for m in members}
        assert len(pod_values) == 1
        positions = [m.ldp.position for m in members
                     if m.level is SwitchLevel.EDGE]
        assert len(set(positions)) == len(positions)

    # Distinct physical pods got distinct pod numbers.
    pod_numbers = {fabric.agents[f"edge-p{p}-s0"].ldp.pod
                   for p in range(pods)}
    assert len(pod_numbers) == pods

    # End-to-end traffic across the most distant pair of hosts.
    all_hosts = fabric.host_list()
    if len(all_hosts) >= 2:
        src, dst = all_hosts[0], all_hosts[-1]
        UdpEchoServer(dst, 7)
        pinger = UdpPinger(src, dst.ip)
        pinger.ping()
        sim.run(until=sim.now + 1.0)
        assert pinger.answered == 1
