"""Unit tests for the fabric manager's multicast tree computation."""

from repro.net.addresses import IPv4Address
from repro.portland.multicast import MulticastManager
from repro.portland.messages import SwitchLevel

from tests.portland.test_faults import make_fat_tree_view

GROUP = IPv4Address.parse("239.1.1.1")
HOST_A = IPv4Address.parse("10.0.0.2")
HOST_B = IPv4Address.parse("10.2.0.2")


class Recorder:
    def __init__(self):
        self.installed = {}
        self.removed = []

    def install(self, switch_id, group, ports):
        self.installed[switch_id] = ports

    def remove(self, switch_id, group):
        self.installed.pop(switch_id, None)
        self.removed.append(switch_id)


def manager():
    rec = Recorder()
    return MulticastManager(rec.install, rec.remove), rec


def test_single_pod_tree_still_uses_core():
    mgr, rec = manager()
    view = make_fat_tree_view()
    mgr.on_membership(view, edge_id=100, port=0, group=GROUP, join=True,
                      host_ip=HOST_A)
    # Tree: edge 100 (host port + uplink), one agg in pod0, one core.
    assert 100 in rec.installed
    assert 0 in rec.installed[100]  # member host port
    agg_ids = [sid for sid in rec.installed if 200 <= sid < 300]
    core_ids = [sid for sid in rec.installed if sid >= 300]
    assert len(agg_ids) == 1 and len(core_ids) == 1


def test_two_pod_tree_spans_via_one_core():
    mgr, rec = manager()
    view = make_fat_tree_view()
    mgr.on_membership(view, 100, 0, GROUP, True, HOST_A)
    mgr.on_membership(view, 104, 1, GROUP, True, HOST_B)  # pod 2
    core_ids = [sid for sid in rec.installed if sid >= 300]
    assert len(core_ids) == 1
    core_ports = rec.installed[core_ids[0]]
    assert len(core_ports) == 2  # fans to both member pods
    assert 0 in rec.installed[100] and 1 in rec.installed[104]


def test_sender_only_pod_gets_uplink_path():
    mgr, rec = manager()
    view = make_fat_tree_view()
    mgr.on_membership(view, 100, 0, GROUP, True, HOST_A)
    mgr.on_sender(view, 106, GROUP)  # sender in pod 3, no receivers there
    assert 106 in rec.installed
    # Sender edge entry points up only (no host ports).
    assert all(p >= 2 for p in rec.installed[106])


def test_leave_prunes_and_empties():
    mgr, rec = manager()
    view = make_fat_tree_view()
    mgr.on_membership(view, 100, 0, GROUP, True, HOST_A)
    mgr.on_membership(view, 104, 1, GROUP, True, HOST_B)
    mgr.on_membership(view, 104, 1, GROUP, False, HOST_B)
    assert 104 not in rec.installed
    mgr.on_membership(view, 100, 0, GROUP, False, HOST_A)
    assert rec.installed == {}


def test_fault_moves_tree_to_alive_core():
    mgr, rec = manager()
    view = make_fat_tree_view()
    mgr.on_membership(view, 100, 0, GROUP, True, HOST_A)
    mgr.on_membership(view, 104, 1, GROUP, True, HOST_B)
    old_core = [sid for sid in rec.installed if sid >= 300][0]
    old_aggs = {sid for sid in rec.installed if 200 <= sid < 300}

    # Fail the link from the chosen core into pod 0's member agg.
    pod0_agg = next(iter(old_aggs & {200, 201}))
    failed_view = make_fat_tree_view(failed=[(old_core, pod0_agg)])
    mgr.on_topology_change(failed_view)

    new_core = [sid for sid in rec.installed if sid >= 300][0]
    assert new_core != old_core
    # Both member edges still on the tree with their host ports.
    assert 0 in rec.installed[100] and 1 in rec.installed[104]


def test_partition_removes_all_entries():
    mgr, rec = manager()
    view = make_fat_tree_view()
    mgr.on_membership(view, 100, 0, GROUP, True, HOST_A)
    # Fail every agg-core link of pod 0: no core can reach the members.
    failures = [(200, 300), (200, 301), (201, 302), (201, 303)]
    mgr.on_topology_change(make_fat_tree_view(failed=failures))
    assert rec.installed == {}


def test_multiple_members_same_edge_share_entry():
    mgr, rec = manager()
    view = make_fat_tree_view()
    mgr.on_membership(view, 100, 0, GROUP, True, HOST_A)
    mgr.on_membership(view, 100, 1, GROUP, True, HOST_B)
    assert {0, 1} <= set(rec.installed[100])


def test_duplicate_join_same_host_is_stable():
    mgr, rec = manager()
    view = make_fat_tree_view()
    mgr.on_membership(view, 100, 0, GROUP, True, HOST_A)
    snapshot = dict(rec.installed)
    mgr.on_membership(view, 100, 0, GROUP, True, HOST_A)
    assert rec.installed == snapshot
