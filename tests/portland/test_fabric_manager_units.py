"""Direct unit tests for fabric-manager request handling."""

from repro.net.addresses import IPv4Address, MacAddress
from repro.portland.config import PortlandConfig
from repro.portland.fabric_manager import FabricManager
from repro.portland.messages import (
    ArpQuery,
    NeighborReport,
    PodRequest,
    RegisterHost,
    SwitchLevel,
)
from repro.sim import Simulator

EDGE_A = 0x020000000001
EDGE_B = 0x020000000002
IP_1 = IPv4Address.parse("10.0.0.2")
AMAC_1 = MacAddress.parse("02:00:00:00:00:01")
PMAC_1 = MacAddress.parse("00:00:00:00:00:01")
PMAC_2 = MacAddress.parse("00:01:00:01:00:01")


def make_fm():
    sim = Simulator(seed=1)
    fm = FabricManager(sim, PortlandConfig())
    sent = []
    fm.send_to_switch = lambda sid, msg: sent.append((sid, msg))
    return sim, fm, sent


def test_pod_assignment_is_idempotent_and_monotone():
    _sim, fm, sent = make_fm()
    fm._dispatch(PodRequest(EDGE_A))
    fm._dispatch(PodRequest(EDGE_A))  # same switch asks twice
    fm._dispatch(PodRequest(EDGE_B))
    pods = [msg.pod for _sid, msg in sent]
    assert pods == [0, 0, 1]


def test_arp_query_hit_and_miss():
    _sim, fm, sent = make_fm()
    fm._dispatch(RegisterHost(EDGE_A, 0, AMAC_1, IP_1, PMAC_1))
    fm._dispatch(ArpQuery(7, EDGE_B, IPv4Address.parse("10.0.1.2"),
                          PMAC_2, IP_1))
    sid, response = sent[-1]
    assert sid == EDGE_B
    assert response.found and response.pmac == PMAC_1
    assert fm.arp_misses == 0

    # Miss: not-found response to the asker plus a flood to every edge.
    fm._on_neighbor_report(NeighborReport(EDGE_A, SwitchLevel.EDGE, 0, 0, ()))
    fm._on_neighbor_report(NeighborReport(EDGE_B, SwitchLevel.EDGE, 1, 0, ()))
    sent.clear()
    fm._dispatch(ArpQuery(8, EDGE_B, IPv4Address.parse("10.0.1.2"),
                          PMAC_2, IPv4Address.parse("10.9.9.9")))
    assert fm.arp_misses == 1
    kinds = [type(msg).__name__ for _sid, msg in sent]
    assert kinds.count("ArpResponse") == 1
    assert kinds.count("ArpFlood") == 2  # both edges


def test_reregistration_same_place_is_not_migration():
    _sim, fm, sent = make_fm()
    fm._dispatch(RegisterHost(EDGE_A, 0, AMAC_1, IP_1, PMAC_1))
    sent.clear()
    fm._dispatch(RegisterHost(EDGE_A, 0, AMAC_1, IP_1, PMAC_1))
    assert sent == []  # no Invalidate for a soft-state refresh


def test_move_triggers_invalidate_to_old_edge():
    _sim, fm, sent = make_fm()
    fm._dispatch(RegisterHost(EDGE_A, 0, AMAC_1, IP_1, PMAC_1))
    sent.clear()
    fm._dispatch(RegisterHost(EDGE_B, 1, AMAC_1, IP_1, PMAC_2))
    assert len(sent) == 1
    sid, msg = sent[0]
    assert sid == EDGE_A
    assert type(msg).__name__ == "Invalidate"
    assert msg.old_pmac == PMAC_1 and msg.new_pmac == PMAC_2
    assert fm.hosts_by_ip[IP_1].edge_id == EDGE_B


def test_duplicate_link_fail_reports_are_idempotent():
    _sim, fm, sent = make_fm()
    fm._on_neighbor_report(NeighborReport(EDGE_A, SwitchLevel.EDGE, 0, 0, ()))
    fm._on_link_change(EDGE_A, EDGE_B, failed=True)
    after_first = len(sent)
    fm._on_link_change(EDGE_B, EDGE_A, failed=True)  # other side reports
    assert len(sent) == after_first  # no duplicate fan-out
    assert len(fm.fault_matrix) == 1
    fm._on_link_change(EDGE_A, EDGE_B, failed=False)
    fm._on_link_change(EDGE_A, EDGE_B, failed=False)
    assert len(fm.fault_matrix) == 0


def test_utilization_accounting():
    sim, fm, _sent = make_fm()
    assert fm.utilization(0.0) == 0.0
    fm.busy_time = 0.25
    assert fm.utilization(1.0) == 0.25


def test_neighbor_report_updates_pod_watermark():
    _sim, fm, _sent = make_fm()
    fm._on_neighbor_report(NeighborReport(EDGE_A, SwitchLevel.EDGE, 5, 0, ()))
    assert fm._next_pod == 6
    # UNKNOWN pod sentinel (0xFFFF) must not poison the watermark.
    fm._on_neighbor_report(NeighborReport(EDGE_B, SwitchLevel.EDGE,
                                          0xFFFF, 0xFF, ()))
    assert fm._next_pod == 6
