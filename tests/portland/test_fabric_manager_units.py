"""Direct unit tests for fabric-manager request handling."""

from repro.net.addresses import IPv4Address, MacAddress
from repro.portland.config import PortlandConfig
from repro.portland.fabric_manager import FabricManager
from repro.portland.faults import compute_overrides
from repro.portland.messages import (
    ArpQuery,
    FaultUpdate,
    NeighborReport,
    OverrideReport,
    PodRequest,
    RegisterHost,
    SwitchLevel,
)
from repro.sim import Simulator
from tests.portland.test_faults import make_fat_tree_view

EDGE_A = 0x020000000001
EDGE_B = 0x020000000002
IP_1 = IPv4Address.parse("10.0.0.2")
AMAC_1 = MacAddress.parse("02:00:00:00:00:01")
PMAC_1 = MacAddress.parse("00:00:00:00:00:01")
PMAC_2 = MacAddress.parse("00:01:00:01:00:01")


def make_fm(config=None):
    sim = Simulator(seed=1)
    fm = FabricManager(sim, config or PortlandConfig())
    sent = []
    fm.send_to_switch = lambda sid, msg: sent.append((sid, msg))
    return sim, fm, sent


def load_fat_tree(fm, failed=()):
    """Install the hand-built k=4 view's records into a live FM."""
    view = make_fat_tree_view(k=4, failed=failed)
    fm.switches.update(view.switches)
    fm.fault_matrix |= view.failed


def test_pod_assignment_is_idempotent_and_monotone():
    _sim, fm, sent = make_fm()
    fm._dispatch(PodRequest(EDGE_A))
    fm._dispatch(PodRequest(EDGE_A))  # same switch asks twice
    fm._dispatch(PodRequest(EDGE_B))
    pods = [msg.pod for _sid, msg in sent]
    assert pods == [0, 0, 1]


def test_arp_query_hit_and_miss():
    _sim, fm, sent = make_fm()
    fm._dispatch(RegisterHost(EDGE_A, 0, AMAC_1, IP_1, PMAC_1))
    fm._dispatch(ArpQuery(7, EDGE_B, IPv4Address.parse("10.0.1.2"),
                          PMAC_2, IP_1))
    sid, response = sent[-1]
    assert sid == EDGE_B
    assert response.found and response.pmac == PMAC_1
    assert fm.arp_misses == 0

    # Miss: not-found response to the asker plus a flood to every edge.
    fm._on_neighbor_report(NeighborReport(EDGE_A, SwitchLevel.EDGE, 0, 0, ()))
    fm._on_neighbor_report(NeighborReport(EDGE_B, SwitchLevel.EDGE, 1, 0, ()))
    sent.clear()
    fm._dispatch(ArpQuery(8, EDGE_B, IPv4Address.parse("10.0.1.2"),
                          PMAC_2, IPv4Address.parse("10.9.9.9")))
    assert fm.arp_misses == 1
    kinds = [type(msg).__name__ for _sid, msg in sent]
    assert kinds.count("ArpResponse") == 1
    assert kinds.count("ArpFlood") == 2  # both edges


def test_reregistration_same_place_is_not_migration():
    _sim, fm, sent = make_fm()
    fm._dispatch(RegisterHost(EDGE_A, 0, AMAC_1, IP_1, PMAC_1))
    sent.clear()
    fm._dispatch(RegisterHost(EDGE_A, 0, AMAC_1, IP_1, PMAC_1))
    assert sent == []  # no Invalidate for a soft-state refresh


def test_move_triggers_invalidate_to_old_edge():
    _sim, fm, sent = make_fm()
    fm._dispatch(RegisterHost(EDGE_A, 0, AMAC_1, IP_1, PMAC_1))
    sent.clear()
    fm._dispatch(RegisterHost(EDGE_B, 1, AMAC_1, IP_1, PMAC_2))
    assert len(sent) == 1
    sid, msg = sent[0]
    assert sid == EDGE_A
    assert type(msg).__name__ == "Invalidate"
    assert msg.old_pmac == PMAC_1 and msg.new_pmac == PMAC_2
    assert fm.hosts_by_ip[IP_1].edge_id == EDGE_B


def test_duplicate_link_fail_reports_are_idempotent():
    _sim, fm, sent = make_fm()
    fm._on_neighbor_report(NeighborReport(EDGE_A, SwitchLevel.EDGE, 0, 0, ()))
    fm._on_link_change(EDGE_A, EDGE_B, failed=True)
    after_first = len(sent)
    fm._on_link_change(EDGE_B, EDGE_A, failed=True)  # other side reports
    assert len(sent) == after_first  # no duplicate fan-out
    assert len(fm.fault_matrix) == 1
    fm._on_link_change(EDGE_A, EDGE_B, failed=False)
    fm._on_link_change(EDGE_A, EDGE_B, failed=False)
    assert len(fm.fault_matrix) == 0


def test_utilization_accounting():
    sim, fm, _sent = make_fm()
    assert fm.utilization(0.0) == 0.0
    fm.busy_time = 0.25
    assert fm.utilization(1.0) == 0.25


def test_neighbor_report_updates_pod_watermark():
    _sim, fm, _sent = make_fm()
    fm._on_neighbor_report(NeighborReport(EDGE_A, SwitchLevel.EDGE, 5, 0, ()))
    assert fm._next_pod == 6
    # UNKNOWN pod sentinel (0xFFFF) must not poison the watermark.
    fm._on_neighbor_report(NeighborReport(EDGE_B, SwitchLevel.EDGE,
                                          0xFFFF, 0xFF, ()))
    assert fm._next_pod == 6


# ----------------------------------------------------------------------
# Service-queue accounting


def test_busy_time_charged_on_completion_not_at_schedule():
    sim, fm, sent = make_fm()
    slot = fm.config.fm_service_time_s
    fm.enqueue_internal(PodRequest(EDGE_A))
    # Mid-service: the slot is scheduled but not finished — no charge yet.
    sim.run(until=slot / 2)
    assert fm.busy_time == 0.0 and sent == []
    sim.run(until=slot * 2)
    assert fm.busy_time == slot
    assert len(sent) == 1


def test_service_event_scheduled_before_restart_is_dead():
    """Regression: a ``_service_one`` event in flight across ``restart()``
    must not service the new instance's queue.

    Without the epoch guard the stale event starts a second service
    chain: the first post-restart message is handled one event early and
    ``busy_time`` is charged by both chains.
    """
    sim, fm, sent = make_fm()
    slot = fm.config.fm_service_time_s
    fm.enqueue_internal(PodRequest(EDGE_A))   # chain scheduled at +slot
    fm.restart()                              # ...crashes before it fires
    fm.enqueue_internal(PodRequest(EDGE_B))   # new instance, new chain
    sim.run(until=1.0)
    # Pre-restart message died with the queue; post-restart message is
    # serviced exactly once, charging exactly one slot.
    assert [sid for sid, _msg in sent] == [EDGE_B]
    assert fm.busy_time == slot
    assert not fm._busy


def test_restart_mid_service_discards_queue_without_charge():
    sim, fm, sent = make_fm()
    fm.enqueue_internal(PodRequest(EDGE_A))
    fm.enqueue_internal(PodRequest(EDGE_B))
    sim.run(until=fm.config.fm_service_time_s / 2)
    fm.restart()
    sim.run(until=1.0)
    # Neither message completed service: nothing sent, nothing charged.
    assert sent == [] and fm.busy_time == 0.0


# ----------------------------------------------------------------------
# Override push: batching, incremental recompute, reconciliation


LINK_A = (200, 300)  # pod0 agg <-> core, in the hand-built k=4 view
LINK_B = (202, 300)  # pod1 agg <-> same core


def test_batching_coalesces_a_burst_into_one_push():
    config = PortlandConfig(fm_batch_interval_s=0.02)
    sim, fm, sent = make_fm(config)
    load_fat_tree(fm)
    fm._on_link_change(*LINK_A, failed=True)
    fm._on_link_change(*LINK_B, failed=True)
    # Inside the window: nothing recomputed or pushed yet (the DisableLink
    # unicasts to the endpoints are not override traffic).
    assert fm.override_recomputes == 0
    assert not any(isinstance(m, FaultUpdate) for _s, m in sent)
    sim.run(until=0.05)
    assert fm.override_batches == 1
    assert fm.override_recomputes == 1
    pushed = {(sid, m.prefix, m.prefix_len, m.avoid_neighbor_ids)
              for sid, m in sent if isinstance(m, FaultUpdate)}
    # The single push carries the combined two-failure override set.
    expected = compute_overrides(fm.view())
    want = {(sid, MacAddress(value), bits, tuple(sorted(avoid)))
            for sid, rows in expected.items()
            for (value, bits), avoid in rows.items()}
    assert pushed == want


def test_flap_inside_batch_window_pushes_nothing():
    config = PortlandConfig(fm_batch_interval_s=0.02)
    sim, fm, sent = make_fm(config)
    load_fat_tree(fm)
    fm._on_link_change(*LINK_A, failed=True)
    fm._on_link_change(*LINK_A, failed=True)  # duplicate report: idempotent
    sim.run(until=0.01)
    fm._on_link_change(*LINK_A, failed=False)
    sim.run(until=0.05)
    assert fm.override_batches == 1
    assert fm.override_updates_sent == 0
    assert fm.override_clears_sent == 0


def test_incremental_push_matches_full_recompute():
    config = PortlandConfig(fm_incremental=True)
    sim, fm, sent = make_fm(config)
    load_fat_tree(fm)
    for link, failed in ((LINK_A, True), (LINK_B, True), ((101, 201), True),
                         (LINK_A, False), ((101, 201), False)):
        fm._on_link_change(*link, failed=failed)
        assert fm._sent_overrides == compute_overrides(fm.view())
    # The incremental path did real incremental work, not hidden fulls.
    assert fm._computer.incremental_updates > 0
    assert fm._computer.full_recomputes == 1  # priming only


def test_override_report_reconciles_restart_hole():
    _sim, fm, sent = make_fm()
    prefix_stale = (0x000200000000, 16)
    prefix_lost = (0x000100000000, 16)
    fm._sent_overrides = {EDGE_A: {prefix_lost: {5}}}
    # The switch holds a prefix the (restarted) FM no longer believes in,
    # and is missing one the FM thinks it sent.
    fm._dispatch(OverrideReport(EDGE_A, (prefix_stale,)))
    kinds = {type(m).__name__: (sid, m) for sid, m in sent}
    sid, clear = kinds["FaultClear"]
    assert sid == EDGE_A and clear.prefix == MacAddress(prefix_stale[0])
    sid, update = kinds["FaultUpdate"]
    assert sid == EDGE_A and update.prefix == MacAddress(prefix_lost[0])
    assert update.avoid_neighbor_ids == (5,)
    # A report that matches _sent_overrides is a no-op.
    sent.clear()
    fm._dispatch(OverrideReport(EDGE_A, (prefix_lost,)))
    assert sent == []
