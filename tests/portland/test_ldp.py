"""LDP behaviour tests on real (small) fabrics."""

from collections import Counter

from repro.portland.messages import SwitchLevel
from repro.sim import Simulator
from repro.topology import build_portland_fabric
from repro.topology.builder import LinkParams
from repro.topology.multirooted import build_multirooted_tree


def converged_fabric(sim, **kwargs):
    fabric = build_portland_fabric(sim, **kwargs)
    fabric.start()
    fabric.run_until_located()
    return fabric


def test_levels_discovered_correctly():
    sim = Simulator(seed=1)
    fabric = converged_fabric(sim, k=4)
    levels = Counter(a.level for a in fabric.agents.values())
    assert levels[SwitchLevel.EDGE] == 8
    assert levels[SwitchLevel.AGGREGATION] == 8
    assert levels[SwitchLevel.CORE] == 4
    # Physical roles match discovered roles.
    for name, agent in fabric.agents.items():
        expected = {"edge": SwitchLevel.EDGE, "agg": SwitchLevel.AGGREGATION,
                    "core": SwitchLevel.CORE}[name.split("-")[0]]
        assert agent.level is expected


def test_positions_unique_within_pod():
    sim = Simulator(seed=2)
    fabric = converged_fabric(sim, k=4)
    by_pod = {}
    for agent in fabric.agents.values():
        if agent.level is SwitchLevel.EDGE:
            by_pod.setdefault(agent.ldp.pod, []).append(agent.ldp.position)
    assert len(by_pod) == 4
    for pod, positions in by_pod.items():
        assert sorted(positions) == [0, 1]


def test_pods_grouped_by_physical_pod():
    sim = Simulator(seed=3)
    fabric = converged_fabric(sim, k=4)
    for physical_pod in range(4):
        pods = {fabric.agents[f"edge-p{physical_pod}-s{s}"].ldp.pod
                for s in range(2)}
        pods |= {fabric.agents[f"agg-p{physical_pod}-s{s}"].ldp.pod
                 for s in range(2)}
        assert len(pods) == 1  # every switch in a physical pod agrees


def test_host_ports_identified():
    sim = Simulator(seed=4)
    fabric = converged_fabric(sim, k=4)
    for name, agent in fabric.agents.items():
        if agent.level is SwitchLevel.EDGE:
            assert agent.ldp.host_ports == {0, 1}
            assert sorted(agent.ldp.up_ports()) == [2, 3]


def test_discovery_is_deterministic_per_seed():
    def snapshot(seed):
        sim = Simulator(seed=seed)
        fabric = converged_fabric(sim, k=4)
        return {name: (a.level, a.ldp.pod, a.ldp.position)
                for name, a in fabric.agents.items()}

    assert snapshot(5) == snapshot(5)


def test_ldp_timeout_detects_silent_failure():
    sim = Simulator(seed=6)
    fabric = converged_fabric(sim, k=4,
                              link_params=LinkParams(carrier_detect=False))
    agent = fabric.agents["agg-p0-s0"]
    config = agent.config
    neighbors_before = len(agent.ldp.neighbors)
    fabric.link_between("agg-p0-s0", "core-0").fail()
    fail_time = sim.now
    # Detection takes miss_threshold periods (plus one check interval).
    sim.run(until=fail_time + config.ldm_period_s * (config.miss_threshold + 2))
    assert len(agent.ldp.neighbors) == neighbors_before - 1
    fm = fabric.fabric_manager
    sim.run(until=sim.now + 0.01)
    assert len(fm.fault_matrix) == 1


def test_carrier_detection_is_immediate():
    sim = Simulator(seed=6)
    fabric = converged_fabric(sim, k=4,
                              link_params=LinkParams(carrier_detect=True))
    agent = fabric.agents["agg-p0-s0"]
    before = len(agent.ldp.neighbors)
    fabric.link_between("agg-p0-s0", "core-0").fail()
    sim.run(until=sim.now + 0.002)
    assert len(agent.ldp.neighbors) == before - 1


def test_recovery_clears_fault_matrix_and_rediscovers():
    sim = Simulator(seed=7)
    fabric = converged_fabric(sim, k=4,
                              link_params=LinkParams(carrier_detect=False))
    link = fabric.link_between("agg-p0-s0", "core-0")
    link.fail()
    sim.run(until=sim.now + 0.2)
    assert len(fabric.fabric_manager.fault_matrix) == 1
    link.recover()
    sim.run(until=sim.now + 0.2)
    assert len(fabric.fabric_manager.fault_matrix) == 0
    agent = fabric.agents["agg-p0-s0"]
    assert len(agent.ldp.up_ports()) == 2


def test_ldp_on_irregular_multirooted_tree():
    sim = Simulator(seed=8)
    tree = build_multirooted_tree(num_pods=3, edges_per_pod=2,
                                  aggs_per_pod=2, cores_per_group=1,
                                  hosts_per_edge=2)
    fabric = build_portland_fabric(sim, tree=tree)
    fabric.start()
    fabric.run_until_located()
    levels = Counter(a.level for a in fabric.agents.values())
    assert levels[SwitchLevel.EDGE] == 6
    assert levels[SwitchLevel.AGGREGATION] == 6
    assert levels[SwitchLevel.CORE] == 2
    fabric.announce_hosts()
    fabric.run_until_registered()
