"""Codec roundtrips for every LDP and fabric-manager message."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.net.addresses import IPv4Address, MacAddress
from repro.portland.messages import (
    ArpFlood,
    BroadcastRelay,
    DisableLink,
    EnableLink,
    ArpQuery,
    ArpResponse,
    FaultClear,
    FaultUpdate,
    GratuitousArp,
    IgmpRelay,
    Invalidate,
    LinkFail,
    LinkRecover,
    LocationDiscoveryMessage,
    McastInstall,
    McastMiss,
    McastRemove,
    NeighborReport,
    PodReply,
    PodRequest,
    PositionAck,
    PositionProposal,
    RegisterHost,
    SwitchLevel,
    decode_fabric,
    decode_ldp,
)

MAC = MacAddress(0x0011_2233_4455)
IP = IPv4Address.parse("10.1.2.3")
GROUP = IPv4Address.parse("239.0.0.7")
SID = 0xAABB_CCDD_EEFF


def test_ldm_roundtrip():
    ldm = LocationDiscoveryMessage(SID, SwitchLevel.AGGREGATION, 3, 1, 42)
    decoded = decode_ldp(ldm.encode())
    assert decoded == ldm
    assert decoded.wire_length() == len(ldm.encode())


def test_position_messages_roundtrip():
    assert decode_ldp(PositionProposal(SID, 2).encode()) == PositionProposal(SID, 2)
    assert decode_ldp(PositionAck(SID, 2, True).encode()) == PositionAck(SID, 2, True)
    assert decode_ldp(PositionAck(SID, 2, False).encode()).granted is False


def test_ldp_decode_rejects_unknown():
    with pytest.raises(CodecError):
        decode_ldp(b"\xff\x00")
    with pytest.raises(CodecError):
        decode_ldp(b"")


FABRIC_MESSAGES = [
    RegisterHost(SID, 3, MAC, IP, MacAddress(0x0001_0203_0405)),
    ArpQuery(77, SID, IP, MAC, IPv4Address.parse("10.9.9.9")),
    ArpResponse(77, IP, MAC, True),
    ArpResponse(78, IP, MacAddress(0), False),
    ArpFlood(IP, IPv4Address.parse("10.4.4.4"), MAC),
    PodRequest(SID),
    PodReply(13),
    NeighborReport(SID, SwitchLevel.EDGE, 3, 1,
                   ((2, 0x1111, SwitchLevel.AGGREGATION),
                    (3, 0x2222, SwitchLevel.AGGREGATION))),
    NeighborReport(SID, SwitchLevel.CORE, 0xFFFF, 0xFF, ()),
    LinkFail(SID, 2, 0x3333),
    LinkRecover(SID, 2, 0x3333),
    FaultUpdate(MAC, 24, (0x111, 0x222, 0x333)),
    FaultUpdate(MAC, 16, ()),
    FaultClear(MAC, 24),
    McastInstall(GROUP.multicast_mac(), (0, 2, 3)),
    McastInstall(GROUP.multicast_mac(), ()),
    McastRemove(GROUP.multicast_mac()),
    IgmpRelay(SID, 1, GROUP, True, IP),
    IgmpRelay(SID, 1, GROUP, False, IP),
    McastMiss(SID, GROUP),
    Invalidate(IP, MAC, MacAddress(0x0001_0203_0405)),
    GratuitousArp(IP, MAC),
    DisableLink(SID),
    EnableLink(SID),
    BroadcastRelay(SID, MAC, 0x0800, b"\x01\x02\x03"),
    BroadcastRelay(SID, MAC, 0x0800, b""),
]


@pytest.mark.parametrize("message", FABRIC_MESSAGES,
                         ids=lambda m: type(m).__name__ + str(id(m) % 97))
def test_fabric_message_roundtrip(message):
    raw = message.encode()
    assert len(raw) == message.wire_length()
    decoded = decode_fabric(raw)
    assert decoded == message
    assert type(decoded) is type(message)


def test_fabric_decode_rejects_unknown_type():
    with pytest.raises(CodecError):
        decode_fabric(b"\xf0abc")
    with pytest.raises(CodecError):
        decode_fabric(b"")


@given(request_id=st.integers(0, 2**32 - 1),
       sid=st.integers(0, 2**48 - 1),
       target=st.integers(0, 2**32 - 1))
def test_arp_query_roundtrip_property(request_id, sid, target):
    query = ArpQuery(request_id, sid, IP, MAC, IPv4Address(target))
    decoded = decode_fabric(query.encode())
    assert decoded == query


@given(ports=st.lists(st.integers(0, 255), max_size=40, unique=True))
def test_mcast_install_roundtrip_property(ports):
    message = McastInstall(GROUP.multicast_mac(), tuple(ports))
    assert decode_fabric(message.encode()) == message
