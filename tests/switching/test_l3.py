"""Tests for the link-state L3 baseline: LSDB, SPF/ECMP, router fabric."""

from repro.net import AppData
from repro.sim import Simulator
from repro.switching.linkstate import (
    HelloMessage,
    LinkStateDatabase,
    Lsa,
    shortest_paths,
)
from repro.topology.baselines import build_l3_fabric


# ----------------------------------------------------------------------
# Message codecs


def test_hello_roundtrip():
    decoded = HelloMessage.decode(HelloMessage(42).encode())
    assert decoded.router_id == 42


def test_lsa_roundtrip():
    lsa = Lsa(origin=7, seq=3, neighbors=((1, 1), (2, 4)),
              prefixes=((0x0A000000, 24), (0x0A000100, 24)))
    decoded = Lsa.decode(lsa.encode())
    assert decoded == lsa
    assert decoded.wire_length() == len(lsa.encode())


# ----------------------------------------------------------------------
# LSDB and SPF


def test_lsdb_keeps_freshest():
    db = LinkStateDatabase()
    assert db.consider(Lsa(1, 1, (), ()))
    assert not db.consider(Lsa(1, 1, (), ()))  # same seq: ignored
    assert db.consider(Lsa(1, 2, ((2, 1),), ()))
    assert db.get(1).seq == 2
    assert len(db) == 1


def diamond_db():
    """1 -- {2,3} -- 4 with unit costs (classic ECMP diamond)."""
    db = LinkStateDatabase()
    db.consider(Lsa(1, 1, ((2, 1), (3, 1)), ()))
    db.consider(Lsa(2, 1, ((1, 1), (4, 1)), ()))
    db.consider(Lsa(3, 1, ((1, 1), (4, 1)), ()))
    db.consider(Lsa(4, 1, ((2, 1), (3, 1)), ()))
    return db


def test_spf_finds_ecmp_next_hops():
    hops = shortest_paths(diamond_db(), source=1)
    assert hops[2] == {2}
    assert hops[3] == {3}
    assert hops[4] == {2, 3}  # both paths are shortest


def test_spf_requires_two_way_adjacency():
    db = diamond_db()
    # Node 5 claims a link to 1, but 1 does not claim it back.
    db.consider(Lsa(5, 1, ((1, 1),), ()))
    hops = shortest_paths(db, source=1)
    assert 5 not in hops


def test_spf_unreachable_nodes_absent():
    db = diamond_db()
    db.consider(Lsa(9, 1, ((8, 1),), ()))
    db.consider(Lsa(8, 1, ((9, 1),), ()))
    hops = shortest_paths(db, source=1)
    assert 9 not in hops and 8 not in hops


# ----------------------------------------------------------------------
# Full L3 fabric


def test_l3_fabric_converges_and_delivers():
    sim = Simulator(seed=9)
    fabric = build_l3_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_converged()
    hosts = fabric.host_list()
    inbox = hosts[-1].udp_socket(5000)
    hosts[0].udp_socket().sendto(hosts[-1].ip, 5000, AppData(32))
    sim.run(until=sim.now + 1.0)
    assert len(inbox.inbox) == 1


def test_l3_state_is_per_subnet_not_per_host():
    sim = Simulator(seed=9)
    fabric = build_l3_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_converged()
    edge = fabric.routers["edge-p0-s0"]
    # 8 subnets total in a k=4 tree: 7 remote prefixes + 1 local + margin.
    assert edge.route_table_size() <= 10
    assert fabric.total_config_lines() == 16  # 8 edges x 2 host ports


def test_l3_reroutes_after_failure_with_carrier():
    sim = Simulator(seed=9)
    fabric = build_l3_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_converged()
    hosts = fabric.host_list()
    inbox = hosts[-1].udp_socket(5000)
    sender = hosts[0].udp_socket()
    sender.sendto(hosts[-1].ip, 5000, AppData(32))
    sim.run(until=sim.now + 1.0)
    assert len(inbox.inbox) == 1
    # Fail one of the two agg-core links used by pod 0.
    fabric.link_between("agg-p0-s0", "core-0").fail()
    sim.run(until=sim.now + 1.0)  # carrier + LSA flood + SPF
    for _ in range(5):
        sender.sendto(hosts[-1].ip, 5000, AppData(32))
    sim.run(until=sim.now + 1.0)
    assert len(inbox.inbox) == 6


def test_l3_detects_silent_failure_via_hello_timeout():
    sim = Simulator(seed=9)
    from repro.topology.builder import LinkParams

    fabric = build_l3_fabric(sim, k=4,
                             link_params=LinkParams(carrier_detect=False),
                             hello_s=0.2, dead_s=0.6)
    fabric.start()
    fabric.run_until_converged()
    router = fabric.routers["agg-p0-s0"]
    neighbors_before = len(router._neighbors)
    fabric.link_between("agg-p0-s0", "core-0").fail()
    sim.run(until=sim.now + 2.0)
    assert len(router._neighbors) == neighbors_before - 1
