"""Unit tests for matches, actions, flow tables, and flow hashing."""

from repro.net import AppData, EthernetFrame, IPv4Packet, TcpSegment, UdpDatagram, mac
from repro.net.addresses import IPv4Address, MacAddress
from repro.net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4
from repro.net.ipv4 import IPPROTO_IGMP, IPPROTO_TCP, IPPROTO_UDP
from repro.switching.flow_table import (
    FlowTable,
    Match,
    Output,
    ToAgent,
    flow_hash,
    mac_prefix_mask,
)


def frame(dst="00:00:00:00:00:02", src="00:00:00:00:00:01",
          ethertype=ETHERTYPE_IPV4, payload=None):
    return EthernetFrame(mac(dst), mac(src), ethertype,
                         payload if payload is not None else AppData(10))


def test_wildcard_match_matches_everything():
    assert Match().matches(frame(), in_port=3)


def test_in_port_and_ethertype_matching():
    m = Match(in_port=1, ethertype=ETHERTYPE_ARP)
    assert m.matches(frame(ethertype=ETHERTYPE_ARP), 1)
    assert not m.matches(frame(ethertype=ETHERTYPE_ARP), 2)
    assert not m.matches(frame(ethertype=ETHERTYPE_IPV4), 1)


def test_masked_dst_prefix_matching():
    # 16-bit prefix: match everything in "pod" 0x0102.
    prefix = mac("01:02:00:00:00:00")
    m = Match(eth_dst=prefix, eth_dst_mask=mac_prefix_mask(16))
    assert m.matches(frame(dst="01:02:aa:bb:cc:dd"), 0)
    assert not m.matches(frame(dst="01:03:aa:bb:cc:dd"), 0)


def test_mask_boundaries():
    assert mac_prefix_mask(0) == 0
    assert mac_prefix_mask(48) == (1 << 48) - 1
    import pytest
    from repro.errors import SwitchError
    with pytest.raises(SwitchError):
        mac_prefix_mask(49)


def test_ip_proto_matching_decodes_payload():
    packet = IPv4Packet(IPv4Address(1), IPv4Address(2), IPPROTO_IGMP, b"")
    f = frame(payload=packet)
    assert Match(ip_proto=IPPROTO_IGMP).matches(f, 0)
    assert not Match(ip_proto=IPPROTO_UDP).matches(f, 0)
    # Non-IP frames never match an ip_proto filter.
    assert not Match(ip_proto=IPPROTO_IGMP).matches(
        frame(ethertype=ETHERTYPE_ARP), 0)


def test_table_priority_and_insertion_order():
    table = FlowTable()
    low = table.install(Match(), (Output(1),), priority=10, name="low")
    high = table.install(Match(), (Output(2),), priority=20, name="high")
    same = table.install(Match(), (Output(3),), priority=20, name="high2")
    found = table.lookup(frame(), 0)
    assert found is high  # highest priority, earliest install wins
    table.remove(high)
    assert table.lookup(frame(), 0) is same
    assert len(table) == 2


def test_remove_by_name_and_where():
    table = FlowTable()
    table.install(Match(), (), name="a")
    table.install(Match(), (), name="a")
    table.install(Match(), (), name="b")
    assert table.remove_by_name("a") == 2
    assert table.remove_where(lambda e: e.name == "b") == 1
    assert len(table) == 0
    assert table.remove(table.install(Match(), ())) is True


def test_lookup_skip_punts():
    table = FlowTable()
    table.install(Match(), (ToAgent("x"),), priority=50, name="punt")
    fallback = table.install(Match(), (Output(1),), priority=10, name="out")
    assert table.lookup(frame(), 0).name == "punt"
    assert table.lookup(frame(), 0, skip_punts=True) is fallback


def test_counters_touch():
    table = FlowTable()
    entry = table.install(Match(), (Output(1),))
    f = frame()
    entry.touch(f)
    assert entry.packets == 1
    assert entry.bytes == f.wire_length()


def test_flow_hash_stable_per_flow_and_spreads():
    packet = IPv4Packet(IPv4Address(1), IPv4Address(2), IPPROTO_TCP,
                        TcpSegment(1000, 80, 0, 0, 0, 100))
    f1 = frame(payload=packet)
    f2 = frame(payload=packet.copy())
    assert flow_hash(f1) == flow_hash(f2)

    hashes = set()
    for sport in range(100):
        p = IPv4Packet(IPv4Address(1), IPv4Address(2), IPPROTO_UDP,
                       UdpDatagram(sport + 1, 80, b""))
        hashes.add(flow_hash(frame(payload=p)) % 4)
    assert hashes == {0, 1, 2, 3}  # ECMP uses all four uplinks


def test_flow_hash_survives_encoded_payloads():
    packet = IPv4Packet(IPv4Address(1), IPv4Address(2), IPPROTO_UDP,
                        UdpDatagram(5, 80, b"abc"))
    as_object = frame(payload=packet)
    as_bytes = frame(payload=packet.encode())
    assert flow_hash(as_object) == flow_hash(as_bytes)
