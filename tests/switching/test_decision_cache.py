"""Unit tests for the forwarding decision cache and its table hooks."""

import pytest

from repro.net import AppData, EthernetFrame, IPv4Packet, UdpDatagram, mac
from repro.net.addresses import IPv4Address
from repro.net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4
from repro.net.ipv4 import IPPROTO_UDP
from repro.switching.decision_cache import DecisionCache
from repro.switching.flow_table import (
    FlowTable,
    Match,
    Output,
    SelectByHash,
    decision_key,
    flow_hash,
    mac_prefix_mask,
    resolve_actions,
)


def _udp_frame(dst: str, src_port: int = 1234) -> EthernetFrame:
    packet = IPv4Packet(IPv4Address(1), IPv4Address(2), IPPROTO_UDP,
                        UdpDatagram(src_port, 80, AppData(64)))
    return EthernetFrame(mac(dst), mac("00:07:00:01:00:00"),
                         ETHERTYPE_IPV4, packet)


def _pmac_table() -> FlowTable:
    table = FlowTable()
    table.install(Match(ethertype=ETHERTYPE_ARP), (Output(9),), 500, "arp")
    table.install(Match(eth_dst=mac("00:03:00:01:00:00")), (Output(1),),
                  400, "host")
    table.install(Match(eth_dst=mac("00:03:00:00:00:00"),
                        eth_dst_mask=mac_prefix_mask(24)), (), 200, "drop")
    table.install(Match(), (SelectByHash((2, 3)),), 100, "up")
    return table


# ----------------------------------------------------------------------
# Key / resolution helpers


def test_decision_key_separates_flows_and_protocols():
    a = _udp_frame("00:03:00:01:00:00", src_port=1000)
    b = _udp_frame("00:03:00:01:00:00", src_port=2000)
    arp = EthernetFrame(mac("00:03:00:01:00:00"), mac("00:07:00:01:00:00"),
                        ETHERTYPE_ARP, None)
    assert decision_key(a) != decision_key(b)  # different transport flow
    assert decision_key(a)[:3] == decision_key(b)[:3]  # same (dst, type, proto)
    assert decision_key(arp)[1] == ETHERTYPE_ARP
    assert decision_key(arp)[2] is None


def test_decision_key_hash_component_is_flow_hash():
    frame = _udp_frame("00:03:00:01:00:00")
    assert decision_key(frame)[3] == flow_hash(frame)


def test_resolve_actions_pins_ecmp_choice():
    frame = _udp_frame("00:03:00:07:00:00")
    fhash = flow_hash(frame)
    resolved = resolve_actions((SelectByHash((2, 3, 4)),), fhash)
    assert resolved == (Output((2, 3, 4)[fhash % 3]),)
    # Empty ECMP group (prefix unreachable) resolves to no action = drop.
    assert resolve_actions((SelectByHash(()),), fhash) == ()


# ----------------------------------------------------------------------
# Cache behaviour


def test_cache_hit_returns_same_decision_as_walk():
    table = _pmac_table()
    cache = DecisionCache(table)
    frame = _udp_frame("00:03:00:01:00:00")
    key = decision_key(frame)
    assert cache.lookup(key) is None
    entry = table.lookup(frame, 0)
    decision = cache.install(key, entry)
    assert cache.lookup(key) == decision
    assert decision[0] is entry
    assert cache.hits == 1 and cache.misses == 1 and cache.installs == 1


def test_any_table_mutation_flushes_cache():
    table = _pmac_table()
    cache = DecisionCache(table)
    frame = _udp_frame("00:03:00:01:00:00")
    key = decision_key(frame)
    cache.install(key, table.lookup(frame, 0))

    table.install(Match(), (Output(5),), 50, "extra")
    assert cache.lookup(key) is None, "install did not invalidate"

    cache.install(key, table.lookup(frame, 0))
    table.remove_by_name("extra")
    assert cache.lookup(key) is None, "remove_by_name did not invalidate"

    cache.install(key, table.lookup(frame, 0))
    table.remove_where(lambda e: e.name == "up")
    assert cache.lookup(key) is None, "remove_where did not invalidate"

    table.install(Match(), (SelectByHash((2, 3)),), 100, "up")
    cache.install(key, table.lookup(frame, 0))
    table.clear()
    assert cache.lookup(key) is None, "clear did not invalidate"
    assert cache.flushes >= 4


def test_noop_removals_do_not_bump_version():
    table = _pmac_table()
    version = table.version
    assert table.remove_by_name("no-such-entry") == 0
    assert table.remove_where(lambda e: False) == 0
    assert table.version == version


def test_cache_safe_tracks_non_key_matches():
    table = _pmac_table()
    assert table.cache_safe
    entry = table.install(Match(in_port=3), (Output(1),), 300, "port-match")
    assert not table.cache_safe
    table.remove(entry)
    assert table.cache_safe
    table.install(Match(eth_src=mac("00:01:00:00:00:01")), (Output(1),),
                  300, "src-match")
    assert not table.cache_safe
    table.remove_by_name("src-match")
    assert table.cache_safe


def test_capacity_eviction_is_fifo_and_bounded():
    table = _pmac_table()
    cache = DecisionCache(table, capacity=4)
    frames = [_udp_frame("00:03:00:01:00:00", src_port=p)
              for p in range(1000, 1006)]
    keys = [decision_key(f) for f in frames]
    for frame, key in zip(frames, keys):
        cache.install(key, table.lookup(frame, 0))
    assert len(cache) == 4
    assert cache.evictions == 2
    assert cache.lookup(keys[0]) is None  # oldest two evicted
    assert cache.lookup(keys[-1]) is not None


def test_cache_rejects_bad_capacity():
    with pytest.raises(ValueError):
        DecisionCache(FlowTable(), capacity=0)


def test_stats_snapshot_and_hit_rate():
    table = _pmac_table()
    cache = DecisionCache(table)
    frame = _udp_frame("00:03:00:01:00:00")
    key = decision_key(frame)
    cache.lookup(key)
    cache.install(key, table.lookup(frame, 0))
    cache.lookup(key)
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["entries"] == 1
    assert cache.hit_rate == 0.5
