"""Tests for the flat-L2 baseline: MAC learning, flooding, spanning tree."""

import pytest

from repro.host import Host
from repro.net import AppData, EthernetFrame, Link, ip, mac
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.sim import Simulator
from repro.switching.learning import LearningSwitch
from repro.switching.stp import Bpdu, BridgeId, PortState
from repro.topology.baselines import build_l2_fabric


def hosts_on_switch(sim, switch, count):
    hosts = []
    for i in range(count):
        host = Host(sim, f"h{i}", mac(f"00:00:00:00:00:{i + 1:02x}"),
                    ip(f"10.0.0.{i + 1}"))
        Link(sim, host.nic, switch.port(i), carrier_detect=False)
        hosts.append(host)
    return hosts


def test_flood_unknown_then_learn():
    sim = Simulator()
    switch = LearningSwitch(sim, "sw", 4)
    h = hosts_on_switch(sim, switch, 3)
    sock2 = h[1].udp_socket(5000)
    sock3 = h[2].udp_socket(5000)
    h[0].udp_socket().sendto(h[1].ip, 5000, AppData(10))
    sim.run(until=0.1)
    assert len(sock2.inbox) == 1
    assert sock3.inbox == []  # unicast reply was learned, not flooded
    assert switch.mac_table_size() == 2
    assert switch.flooded_frames >= 1  # the initial ARP broadcast


def test_mac_entries_age_out():
    sim = Simulator()
    switch = LearningSwitch(sim, "sw", 4, mac_aging_s=1.0)
    h = hosts_on_switch(sim, switch, 2)
    h[0].gratuitous_arp()
    sim.run(until=0.1)
    assert switch.mac_table_size() == 1
    sim.run(until=2.0)
    assert switch.mac_table_size() == 0


def test_port_down_flushes_entries():
    sim = Simulator()
    switch = LearningSwitch(sim, "sw", 4)
    h = hosts_on_switch(sim, switch, 2)
    h[0].gratuitous_arp()
    sim.run(until=0.1)
    assert switch.mac_table_size() == 1
    switch.on_port_down(switch.port(0))
    assert switch.mac_table_size() == 0


def test_bpdu_codec_roundtrip():
    bpdu = Bpdu(BridgeId(32768, 0xAABBCCDDEEFF), 8,
                BridgeId(4096, 0x112233445566), 3)
    decoded = Bpdu.decode(bpdu.encode())
    assert decoded == bpdu
    assert decoded.priority_vector() == bpdu.priority_vector()


def test_bridge_id_ordering():
    assert BridgeId(100, 5) < BridgeId(200, 1)
    assert BridgeId(100, 1) < BridgeId(100, 5)


def test_stp_elects_single_root_and_blocks_loops():
    sim = Simulator(seed=7)
    fabric = build_l2_fabric(sim, k=4)
    fabric.run_until_stp_converged()
    roots = {s.stp.root_id for s in fabric.switches.values()}
    assert len(roots) == 1
    root_bridges = [s for s in fabric.switches.values() if s.stp.is_root]
    assert len(root_bridges) == 1
    # A fat tree has loops, so some ports must be blocking.
    blocking = sum(
        1 for s in fabric.switches.values() for p in s.ports
        if p.link is not None and s.stp.port_state(p.index) is PortState.BLOCKING
    )
    assert blocking > 0
    # The forwarding subgraph is a spanning tree: edges = nodes - 1.
    forwarding_links = set()
    for name, s in fabric.switches.items():
        for p in s.ports:
            if p.link is None or p.peer is None:
                continue
            peer_node = p.peer.node
            if not isinstance(peer_node, LearningSwitch):
                continue
            if (s.stp.can_forward(p.index)
                    and peer_node.stp.can_forward(p.peer.index)):
                forwarding_links.add(frozenset((name, peer_node.name)))
    assert len(forwarding_links) == len(fabric.switches) - 1


def test_stp_fabric_delivers_end_to_end():
    sim = Simulator(seed=7)
    fabric = build_l2_fabric(sim, k=4)
    fabric.run_until_stp_converged()
    hosts = fabric.host_list()
    inbox = hosts[-1].udp_socket(5000)
    hosts[0].udp_socket().sendto(hosts[-1].ip, 5000, AppData(20))
    sim.run(until=sim.now + 2.0)
    assert len(inbox.inbox) == 1


@pytest.mark.slow
def test_stp_reconverges_after_root_path_failure():
    sim = Simulator(seed=7)
    fabric = build_l2_fabric(sim, k=4)
    fabric.run_until_stp_converged()
    hosts = fabric.host_list()
    inbox = hosts[-1].udp_socket(5000)
    sender = hosts[0].udp_socket()
    sender.sendto(hosts[-1].ip, 5000, AppData(20))
    sim.run(until=sim.now + 1.0)
    assert len(inbox.inbox) == 1

    # Fail a link on the current forwarding path: pick the edge uplink in
    # use at the destination edge switch.
    dst_edge_name = fabric.tree.hosts[-1].edge_switch
    dst_edge = fabric.switches[dst_edge_name]
    up_ports = [p for p in dst_edge.ports
                if p.link is not None and p.index >= fabric.tree.k // 2]
    active = [p for p in up_ports if dst_edge.stp.can_forward(p.index)]
    assert active
    active[0].link.fail()
    # STP needs max_age + 2*forward_delay in the worst case.
    fabric.run_until_stp_converged(timeout_s=120.0)
    sender.sendto(hosts[-1].ip, 5000, AppData(20))
    sim.run(until=sim.now + 2.0)
    assert len(inbox.inbox) == 2
