"""Decision-layer hop walker on a non-tree (Jellyfish) fabric.

The walker predates the topology abstraction and was only ever
exercised on fat trees, where ECMP groups sit at fixed uplink ports and
paths have a known shape. On a random regular graph the ``route:``
entries hash over arbitrary neighbor sets, so two regressions matter:

* tie-breaking must be *deterministic per flow hash* — the walker must
  pick exactly the ``SelectByHash`` member the live data path would
  (``flow_hash(frame) % len(ports)``), every time;
* a link failed mid-path with ``require_live=True`` must dead-end *at
  the transmitting port* — hops before the dead wire are reported, the
  dead hop itself is not, and no phantom delivery is claimed.
"""

import pytest

from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.sim import Simulator
from repro.switching.flow_table import SelectByHash, flow_hash
from repro.switching.hop_walk import walk_decision_path
from repro.topology import build_portland_fabric
from repro.topology.jellyfish import build_jellyfish
from repro.topology.scheme import JellyfishScheme


@pytest.fixture(scope="module")
def jellyfish_fabric():
    scheme = JellyfishScheme(build_jellyfish(
        8, 3, hosts_per_switch=1, seed=42, spare_host_ports=1))
    fabric = build_portland_fabric(Simulator(seed=9), scheme=scheme)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def _frame_toward(fabric, dst_host):
    record = fabric.fabric_manager.hosts_by_ip[dst_host.ip]
    return EthernetFrame(record.pmac, fabric.host_list()[0].mac,
                         ETHERTYPE_IPV4, None)


def _walk_from(fabric, src_host, frame, require_live=False):
    attach = src_host.nic.peer
    return walk_decision_path(attach.node, attach.index, frame,
                              require_live=require_live)


def _pair_at_distance(fabric, hops_wanted):
    scheme = fabric.routing_scheme()
    by_edge = {spec.edge_switch: spec.name for spec in fabric.tree.hosts}
    for (src, dst), distance in sorted(
            (pair, scheme._dist[pair[0]][pair[1]])
            for pair in scheme._next_hops):
        if distance == hops_wanted:
            return fabric.hosts[by_edge[src]], fabric.hosts[by_edge[dst]]
    raise AssertionError(f"no pair at distance {hops_wanted}")


def test_walk_delivers_and_breaks_ties_by_flow_hash(jellyfish_fabric):
    fabric = jellyfish_fabric
    hosts = fabric.host_list()
    ecmp_checked = 0
    for src in hosts:
        for dst in hosts:
            if src is dst:
                continue
            frame = _frame_toward(fabric, dst)
            hops, final = _walk_from(fabric, src, frame)
            assert final is not None, f"{src.name}->{dst.name} dead-ended"
            assert final.node is dst
            # Re-walk: byte-identical traversal, pure query.
            again, _final = _walk_from(fabric, src, frame)
            assert ([(h.node.name, h.out_index) for h in hops]
                    == [(h.node.name, h.out_index) for h in again])
            # Every hash-selected hop picked the member the modulo rule
            # demands — no positional or iteration-order tie-breaking.
            for hop in hops:
                for action in hop.entry.actions:
                    if isinstance(action, SelectByHash) and action.ports:
                        expected = action.ports[
                            flow_hash(frame) % len(action.ports)]
                        assert hop.out_index == expected
                        if len(action.ports) > 1:
                            ecmp_checked += 1
    assert ecmp_checked > 0, "no multi-member ECMP group was ever walked"


def test_dead_link_mid_walk_drops_at_tx_port(jellyfish_fabric):
    fabric = jellyfish_fabric
    src, dst = _pair_at_distance(fabric, 2)
    frame = _frame_toward(fabric, dst)
    hops, final = _walk_from(fabric, src, frame)
    assert final is not None and len(hops) == 3  # src edge, middle, dst edge

    dead = hops[1].out_port.link
    dead.fail()
    try:
        # No sim time passes: tables still point at the dead wire, which
        # is exactly the window the walker must not claim delivery in.
        truncated, outcome = _walk_from(fabric, src, frame,
                                        require_live=True)
        assert outcome is None
        assert [(h.node.name, h.out_index) for h in truncated] \
            == [(h.node.name, h.out_index) for h in hops[:1]]
        # Without the liveness requirement the pure table query is
        # unchanged — liveness is the caller's opt-in, not a side effect.
        full, final_again = _walk_from(fabric, src, frame)
        assert final_again is final
        assert len(full) == len(hops)
    finally:
        dead.recover()
