"""Unit tests for the FlowSwitch chassis and its agent hook."""

from repro.net import AppData, EthernetFrame, Link, mac
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.net.node import Node
from repro.sim import Simulator
from repro.switching.flow_table import (
    Match,
    Output,
    OutputMany,
    SelectByHash,
    SetEthDst,
    SetEthSrc,
    ToAgent,
)
from repro.switching.switch import FlowSwitch, SwitchAgent


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name, 1)
        self.received = []

    def receive(self, frame, in_port):
        self.received.append(frame)


class RecordingAgent(SwitchAgent):
    def __init__(self, switch):
        super().__init__(switch)
        self.punted = []
        self.downs = []
        self.ups = []

    def on_packet_in(self, frame, in_port, reason):
        self.punted.append((frame, in_port.index, reason))

    def on_port_down(self, port):
        self.downs.append(port.index)

    def on_port_up(self, port):
        self.ups.append(port.index)


def build(sim, ports=4):
    switch = FlowSwitch(sim, "sw", ports, agent_delay_s=1e-6)
    sinks = []
    for i in range(ports):
        sink = Sink(sim, f"s{i}")
        Link(sim, switch.port(i), sink.port(0), carrier_detect=False)
        sinks.append(sink)
    return switch, sinks


def frame(dst="00:00:00:00:00:aa"):
    return EthernetFrame(mac(dst), mac("00:00:00:00:00:01"),
                         ETHERTYPE_IPV4, AppData(10))


def test_output_action_forwards():
    sim = Simulator()
    switch, sinks = build(sim)
    switch.table.install(Match(), (Output(2),))
    switch.receive(frame(), switch.port(0))
    sim.run()
    assert len(sinks[2].received) == 1
    assert sinks[0].received == []


def test_miss_drops_by_default():
    sim = Simulator()
    switch, sinks = build(sim)
    switch.receive(frame(), switch.port(0))
    sim.run()
    assert switch.miss_drops == 1
    assert all(not s.received for s in sinks)


def test_miss_to_agent_punts():
    sim = Simulator()
    switch, _ = build(sim)
    switch.miss_to_agent = True
    agent = RecordingAgent(switch)
    switch.attach_agent(agent)
    switch.receive(frame(), switch.port(0))
    sim.run()
    assert agent.punted[0][2] == "table-miss"


def test_rewrite_then_output():
    sim = Simulator()
    switch, sinks = build(sim)
    new_dst = mac("00:00:00:00:00:99")
    new_src = mac("00:00:00:00:00:77")
    switch.table.install(Match(), (SetEthDst(new_dst), SetEthSrc(new_src),
                                   Output(1)))
    original = frame()
    switch.receive(original, switch.port(0))
    sim.run()
    out = sinks[1].received[0]
    assert out.dst == new_dst and out.src == new_src
    # The original frame object is untouched (copy-on-write).
    assert original.dst == mac("00:00:00:00:00:aa")


def test_output_many_excludes_ingress():
    sim = Simulator()
    switch, sinks = build(sim)
    switch.table.install(Match(), (OutputMany((0, 1, 2, 3)),))
    switch.receive(frame(), switch.port(1))
    sim.run()
    assert [len(s.received) for s in sinks] == [1, 0, 1, 1]


def test_select_by_hash_is_deterministic_and_ignores_liveness():
    sim = Simulator()
    switch, sinks = build(sim)
    switch.table.install(Match(), (SelectByHash((1, 2, 3)),))
    f = frame()
    switch.receive(f, switch.port(0))
    switch.receive(f.copy(), switch.port(0))
    sim.run()
    deliveries = [len(s.received) for s in sinks]
    assert sum(deliveries) == 2
    assert deliveries.count(2) == 1  # same flow -> same port

    # A failed link does NOT change the selection (silent blackhole).
    chosen = deliveries.index(2)
    switch.port(chosen).link.fail()
    switch.receive(f.copy(), switch.port(0))
    sim.run()
    assert [len(s.received) for s in sinks] == deliveries


def test_to_agent_action_with_reason():
    sim = Simulator()
    switch, _ = build(sim)
    agent = RecordingAgent(switch)
    switch.attach_agent(agent)
    switch.table.install(Match(), (ToAgent("why"),))
    switch.receive(frame(), switch.port(0))
    sim.run()
    assert agent.punted[0][2] == "why"


def test_agent_delay_applies():
    sim = Simulator()
    switch = FlowSwitch(sim, "sw", 2, agent_delay_s=0.005)
    agent = RecordingAgent(switch)
    switch.attach_agent(agent)
    switch.table.install(Match(), (ToAgent("slow"),))
    times = []
    agent.on_packet_in = lambda f, p, r: times.append(sim.now)
    switch.receive(frame(), switch.port(0))
    sim.run()
    assert times == [0.005]


def test_carrier_events_reach_agent():
    sim = Simulator()
    switch, sinks = build(sim)
    agent = RecordingAgent(switch)
    switch.attach_agent(agent)
    link = switch.port(2).link
    link.carrier_detect = True
    link.fail()
    sim.run()
    assert 2 in agent.downs
    link.recover()
    sim.run()
    assert 2 in agent.ups


def test_flood_respects_allowed_set():
    sim = Simulator()
    switch, sinks = build(sim)
    switch.flood(frame(), switch.port(0), allowed={1, 3})
    sim.run()
    assert [len(s.received) for s in sinks] == [0, 1, 0, 1]
