"""Unit tests for the fabric-level compiled-path cache.

These drive :class:`~repro.switching.path_cache.PathCache` directly on a
converged fabric: compilation and cut-through delivery, negative
verdicts, FIFO eviction, every invalidation trigger (table change,
explicit flush, link carrier change), and the in-flight revalidation
semantics (table-only invalidation delivers; a dead link drops and is
counted at the transmitting port).
"""

import pytest

from repro.host.apps import UdpStreamReceiver, UdpStreamSender
from repro.net import AppData, EthernetFrame, mac
from repro.net.ethernet import ETHERTYPE_ARP
from repro.portland.config import PortlandConfig
from repro.sim import Simulator
from repro.switching.flow_table import Match
from repro.topology import build_portland_fabric
from repro.workloads.replay import all_to_all_frames, decision_signature


def _converged(seed=1234, path_entries=256, k=4):
    sim = Simulator(seed=seed)
    fabric = build_portland_fabric(
        sim, k=k, config=PortlandConfig(path_cache_entries=path_entries))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


@pytest.fixture
def pc_fabric():
    return _converged()


def _cross_pod_item(fabric):
    """A workload triple whose path crosses the core (>= 4 hops)."""
    for node, in_index, frame in all_to_all_frames(fabric, flows_per_pair=1):
        if len(decision_signature(node, in_index, frame)) >= 4:
            return node, in_index, frame
    raise AssertionError("no cross-pod pair in the workload")


def test_compile_records_full_path_and_rewrites(pc_fabric):
    cache = pc_fabric.path_cache
    node, in_index, frame = _cross_pod_item(pc_fabric)
    path = cache.resolve(node, frame, in_index)
    assert path is not None and path.compiled
    assert [(h.switch_name, h.out_index) for h in path.hops] == list(
        decision_signature(node, in_index, frame))
    # edge -> agg -> core -> agg -> edge: 5 switches, 5 links, host egress.
    assert len(path.hops) == len(path.links) == len(path.entries) == 5
    assert not isinstance(path.final_port.node, type(node))
    # The egress edge rewrites PMAC back to the destination's real MAC.
    assert path.final_dst is not None and path.final_dst != frame.dst
    # Second resolve is a pure dict hit.
    before = cache.stats()
    assert cache.resolve(node, frame, in_index) is path
    assert cache.stats()["hits"] == before["hits"] + 1
    assert cache.stats()["compiles"] == before["compiles"]


def test_cut_through_delivers_end_to_end():
    fabric = _converged()
    sim = fabric.sim
    hosts = fabric.host_list()
    receiver = UdpStreamReceiver(hosts[-1], 7100)
    UdpStreamSender(hosts[0], hosts[-1].ip, 7100, rate_pps=1000.0).start()
    sim.run(until=sim.now + 0.2)
    stats = fabric.path_cache_stats()
    assert stats["compiles"] > 0
    assert stats["launches"] > 0
    assert stats["delivered"] > 0
    assert stats["dropped_in_flight"] == 0
    assert len(receiver.arrivals) > 100, "stream did not flow cut-through"
    # In-order, no duplicates: the composite event preserves semantics.
    seqs = [seq for _t, seq, _d in receiver.arrivals]
    assert seqs == sorted(set(seqs))


def test_uncompilable_frame_gets_negative_verdict(pc_fabric):
    cache = pc_fabric.path_cache
    edge = pc_fabric.switches["edge-p0-s0"]
    hosts = pc_fabric.host_list()
    # An ARP broadcast punts to the agent: never compiled.
    arp = EthernetFrame(mac("ff:ff:ff:ff:ff:ff"), hosts[0].mac,
                        ETHERTYPE_ARP, AppData(28))
    assert cache.resolve(edge, arp, 0) is None
    assert cache.compile_failures == 1
    # The sentinel is cached: the retry is a cheap negative hit.
    before = cache.stats()
    assert cache.resolve(edge, arp, 0) is None
    after = cache.stats()
    assert after["no_path_hits"] == before["no_path_hits"] + 1
    assert after["compiles"] == before["compiles"]


def test_fifo_eviction_bounds_the_table():
    fabric = _converged(path_entries=2)
    cache = fabric.path_cache
    workload = all_to_all_frames(fabric, flows_per_pair=1)
    # All flows entering one ingress switch.
    node = workload[0][0]
    mine = [item for item in workload if item[0] is node]
    assert len(mine) >= 3
    for ingress, in_index, frame in mine:
        cache.resolve(ingress, frame, in_index)
    assert len(node._path_table) <= 2
    assert cache.evictions >= len(mine) - 2


def test_table_change_on_any_hop_invalidates(pc_fabric):
    cache = pc_fabric.path_cache
    node, in_index, frame = _cross_pod_item(pc_fabric)
    path = cache.resolve(node, frame, in_index)
    mid = path.switches[2]  # the core switch
    # Any mutation of a traversed switch's table kills the path.
    mid.table.install(Match(ethertype=0x86DD), (), priority=1, name="noop")
    assert not path.alive
    assert path.key not in node._path_table
    assert cache.invalidated >= 1


def test_explicit_flush_invalidates(pc_fabric):
    cache = pc_fabric.path_cache
    node, in_index, frame = _cross_pod_item(pc_fabric)
    path = cache.resolve(node, frame, in_index)
    # flush_decisions is what FaultUpdate/FaultClear/Disable/EnableLink
    # call; it must fan out to the path cache.
    path.switches[1].flush_decisions("test")
    assert not path.alive
    assert path.key not in node._path_table


def test_link_state_change_invalidates_and_recompiles(pc_fabric):
    cache = pc_fabric.path_cache
    node, in_index, frame = _cross_pod_item(pc_fabric)
    path = cache.resolve(node, frame, in_index)
    link = path.links[2]
    link.fail()
    assert not path.alive
    link.recover()  # also a carrier change: nothing stale to kill, but
    before = cache.compiles  # the key must recompile on next resolve
    again = cache.resolve(node, frame, in_index)
    assert again is not None and again is not path
    assert cache.compiles == before + 1


def test_in_flight_frame_dropped_when_link_dies(pc_fabric):
    cache = pc_fabric.path_cache
    sim = pc_fabric.sim
    node, in_index, frame = _cross_pod_item(pc_fabric)
    path = cache.resolve(node, frame, in_index)
    victim = path.hops[2]
    drops_before = victim.out_port.counters.drops
    cache.launch(path, frame)
    victim.link.fail()  # before the composite delivery event runs
    sim.run(until=sim.now + 0.01)
    assert cache.dropped_in_flight == 1
    assert cache.delivered == 0
    # The drop is charged at the dead hop's transmit port (plus whatever
    # control frames the link swallowed during the settle window).
    assert victim.out_port.counters.drops > drops_before


def test_in_flight_frame_survives_table_only_invalidation(pc_fabric):
    cache = pc_fabric.path_cache
    sim = pc_fabric.sim
    node, in_index, frame = _cross_pod_item(pc_fabric)
    path = cache.resolve(node, frame, in_index)
    cache.launch(path, frame)
    path.switches[1].flush_decisions("test")  # links all still up
    assert not path.alive
    sim.run(until=sim.now + 0.01)
    assert cache.delivered == 1
    assert cache.dropped_in_flight == 0


def test_port_and_entry_accounting_matches_hops(pc_fabric):
    cache = pc_fabric.path_cache
    node, in_index, frame = _cross_pod_item(pc_fabric)
    path = cache.resolve(node, frame, in_index)
    tx_before = [c.tx_frames for c in path.tx_counters]
    entries_before = [e.packets for e in path.entries]
    cache.launch(path, frame)
    assert [c.tx_frames for c in path.tx_counters] == [
        n + 1 for n in tx_before]
    assert [e.packets for e in path.entries] == [
        n + 1 for n in entries_before]


def test_disabled_by_default(fabric):
    # The default config must leave the cache off: compiled transit skips
    # queueing/drop fidelity and existing timing tests depend on it.
    assert fabric.path_cache is None
    assert fabric.path_cache_stats() == {}
