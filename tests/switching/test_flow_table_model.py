"""Model-based property test: FlowTable vs. a brute-force reference.

Random sequences of install/remove operations followed by random
lookups must agree with an obviously-correct reference implementation
(sort everything on every lookup).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import AppData, EthernetFrame
from repro.net.addresses import MacAddress
from repro.net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4
from repro.switching.flow_table import FlowTable, Match, Output, mac_prefix_mask

MACS = st.integers(min_value=0, max_value=15).map(
    lambda v: MacAddress(0x0200_0000_0000 + v))
ETHERTYPES = st.sampled_from([ETHERTYPE_IPV4, ETHERTYPE_ARP, None])
PREFIX_LENS = st.sampled_from([0, 16, 24, 48])

MATCHES = st.builds(
    lambda dst, plen, etype, in_port: Match(
        in_port=in_port,
        eth_dst=dst,
        eth_dst_mask=mac_prefix_mask(plen),
        ethertype=etype,
    ),
    dst=MACS, plen=PREFIX_LENS, etype=ETHERTYPES,
    in_port=st.sampled_from([None, 0, 1, 2]),
)

OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("install"), MATCHES, st.integers(0, 5),
                  st.sampled_from(["a", "b", "c"])),
        st.tuples(st.just("remove_by_name"), st.sampled_from(["a", "b", "c"])),
    ),
    min_size=1, max_size=25,
)

FRAMES = st.builds(
    lambda dst, etype, in_port: (
        EthernetFrame(dst, MacAddress(1), etype, AppData(4)), in_port),
    dst=MACS, etype=st.sampled_from([ETHERTYPE_IPV4, ETHERTYPE_ARP]),
    in_port=st.sampled_from([0, 1, 2, 3]),
)


class ReferenceTable:
    """Obviously-correct flow table: stable-sort by priority per lookup."""

    def __init__(self):
        self._entries = []  # (insert_seq, priority, match, name)
        self._seq = 0

    def install(self, match, priority, name):
        self._entries.append((self._seq, priority, match, name))
        self._seq += 1

    def remove_by_name(self, name):
        self._entries = [e for e in self._entries if e[3] != name]

    def lookup(self, frame, in_port):
        ordered = sorted(self._entries, key=lambda e: (-e[1], e[0]))
        for _seq, _prio, match, name in ordered:
            if match.matches(frame, in_port):
                return (_prio, name, match)
        return None


@settings(max_examples=200, deadline=None)
@given(operations=OPERATIONS, probes=st.lists(FRAMES, min_size=1, max_size=10))
def test_flow_table_matches_reference(operations, probes):
    table = FlowTable()
    reference = ReferenceTable()
    for op in operations:
        if op[0] == "install":
            _kind, match, priority, name = op
            table.install(match, (Output(0),), priority, name)
            reference.install(match, priority, name)
        else:
            table.remove_by_name(op[1])
            reference.remove_by_name(op[1])

    assert len(table) == len(reference._entries)
    for frame, in_port in probes:
        found = table.lookup(frame, in_port)
        expected = reference.lookup(frame, in_port)
        if expected is None:
            assert found is None
        else:
            assert found is not None
            assert (found.priority, found.name) == expected[:2]
            assert found.match == expected[2]
