"""Tier-1 performance smoke: the compiled-path fast path must stay
meaningfully faster than interpreted per-hop forwarding.

A reduced-iteration cousin of ``benchmarks/bench_sim_kernel.py``'s
acceptance test (k=4 instead of k=8, a handful of timing repeats, no
JSON artifact) so plain ``pytest`` — and therefore CI — catches a fast
path that silently stopped being fast. The gate is deliberately looser
than the benchmark's (1.5x vs 3x): this is a smoke alarm, not the
measurement.

Also runnable alone via ``make bench-smoke``.
"""

import timeit

from repro.portland.config import PortlandConfig
from repro.sim import Simulator
from repro.topology import build_portland_fabric
from repro.workloads.replay import (
    all_to_all_frames,
    compile_paths,
    compiled_signature,
    decision_signature,
    replay_compiled,
    replay_decisions,
)

SMOKE_SPEEDUP_FLOOR = 1.5
REPEATS = 3


def _converged_k4(path_cache_entries: int):
    sim = Simulator(seed=99)
    fabric = build_portland_fabric(
        sim, k=4, config=PortlandConfig(decision_cache_entries=4096,
                                        path_cache_entries=path_cache_entries))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def test_compiled_replay_beats_decision_replay():
    baseline = _converged_k4(path_cache_entries=0)
    compiled = _converged_k4(path_cache_entries=4096)
    workload_base = all_to_all_frames(baseline)
    workload_compiled = all_to_all_frames(compiled)

    # Warm both layers; every flow must compile and match the
    # interpreted walk hop for hop.
    replay_decisions(workload_base)
    assert compile_paths(compiled, workload_compiled) == len(workload_compiled)
    for node, in_index, frame in workload_compiled:
        assert (compiled_signature(node, in_index, frame)
                == decision_signature(node, in_index, frame))
    assert replay_compiled(workload_compiled) == replay_decisions(
        workload_compiled)

    base_s = min(timeit.repeat(lambda: replay_decisions(workload_base),
                               number=1, repeat=REPEATS))
    compiled_s = min(timeit.repeat(lambda: replay_compiled(workload_compiled),
                                   number=1, repeat=REPEATS))
    speedup = base_s / compiled_s
    assert speedup >= SMOKE_SPEEDUP_FLOOR, (
        f"compiled-path replay only {speedup:.2f}x faster than the "
        f"decision-cached walk (floor {SMOKE_SPEEDUP_FLOOR}x) — the fast "
        "path has regressed; run 'make bench-kernel' for the full numbers")


# ----------------------------------------------------------------------
# BENCH_*.json artifact schema (see repro.metrics.benchout)

#: Every `make bench-*` lane and the artifact it must commit.
EXPECTED_BENCHES = ("sim_kernel", "flows", "hybrid", "topo", "parallel",
                    "policy")


def test_bench_payload_roundtrip():
    from repro.metrics.benchout import (bench_payload,
                                        validate_bench_payload,
                                        write_bench_json)

    payload = bench_payload("demo", ratio=2.5, events=1000, wall_s=0.5,
                            config={"k": 4}, extra_series=[1, 2, 3])
    validate_bench_payload(payload)
    assert payload["schema"] == 1
    assert payload["extra_series"] == [1, 2, 3]

    import json
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = write_bench_json("demo", payload, root=Path(tmp))
        assert path.name == "BENCH_demo.json"
        assert json.loads(path.read_text()) == payload


def test_bench_payload_rejects_schema_drift():
    import pytest

    from repro.metrics.benchout import bench_payload, validate_bench_payload

    good = bench_payload("demo", ratio=1.0, events=1, wall_s=0.1, config={})
    for key in ("bench", "ratio", "events", "wall_s", "config"):
        broken = dict(good)
        del broken[key]
        with pytest.raises(ValueError):
            validate_bench_payload(broken)
    with pytest.raises(ValueError):
        validate_bench_payload({**good, "schema": 99})
    with pytest.raises(ValueError):
        validate_bench_payload({**good, "ratio": "fast"})


def test_committed_bench_artifacts_conform():
    """Every committed BENCH_<name>.json validates, and every bench lane
    has committed one."""
    import json

    from repro.metrics.benchout import find_bench_files, validate_bench_payload

    found = find_bench_files()
    for name in EXPECTED_BENCHES:
        assert name in found, (
            f"BENCH_{name}.json missing at the repo root — run its "
            f"`make bench-*` target and commit the artifact")
    for name, path in found.items():
        payload = json.loads(path.read_text())
        validate_bench_payload(payload)
        assert payload["bench"] == name
