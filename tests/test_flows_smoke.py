"""Tier-1 flow-mode smoke: fluid simulation must agree with the frame
path and must be dramatically cheaper in simulator events.

A reduced-scale cousin of ``benchmarks/bench_flows.py``'s acceptance
run (k=4 instead of k=8, shorter windows, no JSON artifact) so plain
``pytest`` — and therefore CI — catches a fluid engine that drifted
away from frame-path semantics. Two properties are gated:

* **agreement** — the same permutation of CBR flows run in frame mode
  (real UDP senders) and in flow mode (fluid rates) must place the same
  bytes on the same links (every link within 2%) and deliver the same
  per-flow rate (within 5% of the frame-mode receiver's goodput). The
  fluid engine resolves paths from a *representative frame* with the
  flow's real 5-tuple, so the ECMP choice — and hence the per-link
  placement — must match exactly, not just statistically;
* **event reduction** — a finite permutation shuffle must cost at
  least 10x fewer *workload* simulator events to complete in flow mode
  than the frame path needs, after subtracting each mode's idle
  LDP-beacon background over its own completion window (the k=8
  benchmark gates the paper number, 20x);
* **FCT agreement** — the same shuffle's mean flow completion time must
  agree between modes within 10%: the RTT-aware fluid TCP model
  (handshake setup, cwnd ramp, FIN drain — see docs/FLOWS.md) has to
  reproduce what the frame path's real TCP stack measures, not just
  move the same bytes.

Also runnable alone via ``make bench-flows-smoke``.
"""

from repro.host.apps.udp_stream import UdpStreamReceiver, UdpStreamSender
from repro.metrics.utilization import snapshot, usage_since
from repro.portland.config import PortlandConfig
from repro.sim import Simulator
from repro.topology import build_portland_fabric
from repro.workloads.shuffle import FluidShuffleWorkload, ShuffleWorkload
from repro.workloads.traffic import random_permutation_pairs

LINK_BYTES_TOLERANCE = 0.02
RATE_TOLERANCE = 0.05
EVENT_REDUCTION_FLOOR = 10.0
FCT_DIVERGENCE_FLOOR = 0.10

#: Per-link absolute slack (bytes) on top of the 2% relative gate —
#: covers the one-shot ARP resolution frames the frame path sends and
#: the fluid path never does, plus ±1 in-flight frame per flow.
LINK_BYTES_SLACK = 6_000

WINDOW_S = 0.25
RATE_PPS = 2000.0
PAYLOAD = 1000


def _converged(seed: int, flow_mode: bool):
    sim = Simulator(seed=seed)
    config = PortlandConfig(flow_mode=True) if flow_mode else PortlandConfig(
        path_cache_entries=4096)
    fabric = build_portland_fabric(sim, k=4, config=config)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def _pair_names(fabric):
    rng = fabric.sim.random.stream("flows-smoke")
    return [(a.name, b.name)
            for a, b in random_permutation_pairs(fabric.host_list(), rng)]


def test_fluid_rates_and_link_bytes_agree_with_frame_path():
    frame_fab = _converged(99, flow_mode=False)
    fluid_fab = _converged(99, flow_mode=True)
    # Same seed, same topology, same RNG stream: identical permutation.
    pairs = _pair_names(frame_fab)
    assert pairs == _pair_names(fluid_fab)

    # Frame mode: real CBR UDP senders.
    senders, receivers = [], []
    for i, (src_name, dst_name) in enumerate(pairs):
        src = frame_fab.hosts[src_name]
        dst = frame_fab.hosts[dst_name]
        receivers.append(UdpStreamReceiver(dst, 6000 + i))
        sender = UdpStreamSender(src, dst.ip, 6000 + i,
                                 rate_pps=RATE_PPS, payload_bytes=PAYLOAD)
        sender.start()
        senders.append(sender)
    frame_base = snapshot(frame_fab.links)
    t0 = frame_fab.sim.now
    frame_fab.sim.run(until=t0 + WINDOW_S)
    frame_usage = {u.name: u for u in usage_since(frame_fab.links, frame_base)}

    # Flow mode: the same permutation as fluid flows with the same
    # demand AND the same 5-tuple — sport copied from the frame-mode
    # sender's ephemeral socket, so decision_key (hence ECMP) matches.
    flows = []
    engine = fluid_fab.flow_engine
    for i, (src_name, dst_name) in enumerate(pairs):
        src = fluid_fab.hosts[src_name]
        dst = fluid_fab.hosts[dst_name]
        flows.append(engine.start_flow(
            src, dst.ip, demand_bps=RATE_PPS * PAYLOAD * 8,
            sport=senders[i].socket.port, dport=6000 + i,
            payload_bytes=PAYLOAD))
    fluid_base = snapshot(fluid_fab.links)
    t0 = fluid_fab.sim.now
    fluid_fab.sim.run(until=t0 + WINDOW_S)
    engine.settle_now()
    fluid_usage = {u.name: u for u in usage_since(fluid_fab.links, fluid_base)}

    # Per-flow rates: fluid allocation vs what the receiver measured.
    for i, flow in enumerate(flows):
        frame_goodput = len(receivers[i].arrivals) * PAYLOAD * 8 / WINDOW_S
        assert frame_goodput > 0
        fluid_rate = flow.average_rate_bps(fluid_fab.sim.now)
        assert abs(fluid_rate - frame_goodput) <= RATE_TOLERANCE * frame_goodput, (
            f"flow {flow.name}: fluid {fluid_rate:.0f} bps vs frame "
            f"{frame_goodput:.0f} bps")

    # Per-link bytes: every link, both directions summed. Same ECMP
    # placement means the same links are hot in both modes.
    assert frame_usage.keys() == fluid_usage.keys()
    mismatches = [
        (name, frame_usage[name].bytes_total, fluid_usage[name].bytes_total)
        for name in frame_usage
        if abs(frame_usage[name].bytes_total - fluid_usage[name].bytes_total)
        > LINK_BYTES_TOLERANCE * max(frame_usage[name].bytes_total,
                                     fluid_usage[name].bytes_total)
        + LINK_BYTES_SLACK
    ]
    assert not mismatches, f"per-link byte divergence: {mismatches[:5]}"
    # And the comparison is not vacuous: data actually crossed the core.
    hot = [u for u in fluid_usage.values() if u.bytes_total > 100_000]
    assert len(hot) >= len(pairs)


def _idle_event_rate(fabric, window_s: float = 0.05) -> float:
    """Events/s the converged fabric burns with no workload running."""
    before = fabric.sim.events_executed
    t0 = fabric.sim.now
    fabric.sim.run(until=t0 + window_s)
    return (fabric.sim.events_executed - before) / window_s


def test_fluid_shuffle_needs_far_fewer_events():
    frame_fab = _converged(99, flow_mode=False)
    fluid_fab = _converged(99, flow_mode=True)
    pairs = _pair_names(frame_fab)

    frame_pairs = [(frame_fab.hosts[a], frame_fab.hosts[b]) for a, b in pairs]
    frame_idle = _idle_event_rate(frame_fab)
    before = frame_fab.sim.events_executed
    t0 = frame_fab.sim.now
    frame_shuffle = ShuffleWorkload(frame_fab.sim, frame_fab.host_list(),
                                    pairs=frame_pairs, bytes_per_flow=200_000)
    frame_shuffle.start()
    frame_shuffle.run_until_done(timeout_s=30.0)
    frame_events = frame_fab.sim.events_executed - before
    frame_workload = frame_events - frame_idle * (frame_fab.sim.now - t0)

    fluid_pairs = [(fluid_fab.hosts[a], fluid_fab.hosts[b]) for a, b in pairs]
    fluid_idle = _idle_event_rate(fluid_fab)
    before = fluid_fab.sim.events_executed
    t0 = fluid_fab.sim.now
    fluid_shuffle = FluidShuffleWorkload(fluid_fab, pairs=fluid_pairs,
                                         bytes_per_flow=200_000)
    fluid_shuffle.start()
    fluid_shuffle.run_until_done(timeout_s=30.0)
    fluid_events = fluid_fab.sim.events_executed - before
    fluid_workload = max(1.0,
                         fluid_events - fluid_idle * (fluid_fab.sim.now - t0))

    assert frame_shuffle.all_done() and fluid_shuffle.all_done()
    # Same payload moved in both modes.
    assert fluid_shuffle.total_bytes_moved() == len(pairs) * 200_000
    reduction = frame_workload / fluid_workload
    assert reduction >= EVENT_REDUCTION_FLOOR, (
        f"flow mode used {fluid_events} events vs {frame_events} frame-mode "
        f"events — only {reduction:.1f}x fewer workload events (floor "
        f"{EVENT_REDUCTION_FLOOR}x); run 'make bench-flows' for full numbers")
    # FCT agreement: the fluid TCP model must reproduce the frame
    # path's completion times, not just its byte totals.
    frame_mean = frame_shuffle.fct_stats().mean
    fluid_mean = fluid_shuffle.fct_stats().mean
    divergence = abs(fluid_mean - frame_mean) / frame_mean
    assert divergence <= FCT_DIVERGENCE_FLOOR, (
        f"fluid fct_mean {fluid_mean * 1e3:.3f}ms vs frame "
        f"{frame_mean * 1e3:.3f}ms — {100 * divergence:.1f}% divergence "
        f"(floor {100 * FCT_DIVERGENCE_FLOOR:.0f}%)")
