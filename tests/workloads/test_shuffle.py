"""Tests for the all-to-all shuffle workload."""

import pytest

from repro.sim import Simulator
from repro.topology import build_portland_fabric
from repro.workloads.shuffle import ShuffleWorkload


@pytest.fixture(scope="module")
def shuffle_run():
    """One completed 4-host shuffle, shared by the assertions below."""
    sim = Simulator(seed=5)
    fabric = build_portland_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    hosts = fabric.host_list()[:4]  # keep it light: 12 flows
    shuffle = ShuffleWorkload(sim, hosts, bytes_per_flow=20_000)
    start = sim.now
    shuffle.start()
    end = shuffle.run_until_done(timeout_s=30.0)
    return shuffle, start, end


def test_all_flows_complete(shuffle_run):
    shuffle, _start, _end = shuffle_run
    assert shuffle.num_flows == 12
    assert shuffle.completed() == 12
    assert shuffle.all_done()


def test_every_pair_covered_once(shuffle_run):
    shuffle, _s, _e = shuffle_run
    pairs = {(r.src, r.dst) for r in shuffle.results}
    assert len(pairs) == 12
    assert all(src != dst for src, dst in pairs)


def test_bytes_and_fct_sane(shuffle_run):
    shuffle, start, end = shuffle_run
    assert shuffle.total_bytes_moved() == 12 * 20_000
    stats = shuffle.fct_stats()
    assert 0 < stats.minimum <= stats.p50 <= stats.p99 <= stats.maximum
    assert stats.maximum < (end - start) + 1e-9
    assert stats.p50 < 0.2  # 20 KB at ~Gb/s is milliseconds
    assert shuffle.aggregate_goodput_bps(end - start) > 0


def test_double_start_rejected(shuffle_run):
    shuffle, _s, _e = shuffle_run
    with pytest.raises(RuntimeError):
        shuffle.start()


def test_timeout_raises():
    sim = Simulator(seed=6)
    fabric = build_portland_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    hosts = fabric.host_list()[:3]
    # Cut a host off so its flows can never complete.
    spec = fabric.tree.hosts[0]
    fabric.link_between(spec.name, spec.edge_switch).fail()
    shuffle = ShuffleWorkload(sim, hosts, bytes_per_flow=10_000)
    shuffle.start()
    with pytest.raises(TimeoutError):
        shuffle.run_until_done(timeout_s=2.0)
