"""Unit tests for workload generators and measurement helpers."""

import random

import pytest

from repro.errors import TopologyError
from repro.host.apps.udp_stream import UdpStreamReceiver
from repro.metrics.convergence import (
    convergence_time,
    mean_affected_outage,
    measure_outages,
)
from repro.metrics.tables import format_series, format_table
from repro.sim import Simulator
from repro.topology.fattree import build_fat_tree
from repro.workloads.failures import (
    pick_failures,
    switch_link_names,
    valley_free_connected,
)
from repro.workloads.traffic import random_permutation_pairs, stride_pairs


class FakeHost:
    def __init__(self, name):
        self.name = name


def test_random_permutation_is_a_derangement():
    rng = random.Random(1)
    hosts = [FakeHost(f"h{i}") for i in range(10)]
    pairs = random_permutation_pairs(hosts, rng)
    assert len(pairs) == 10
    assert all(src is not dst for src, dst in pairs)
    receivers = [dst for _src, dst in pairs]
    assert len(set(id(r) for r in receivers)) == 10  # a permutation


def test_permutation_of_tiny_lists():
    rng = random.Random(1)
    assert random_permutation_pairs([], rng) == []
    assert random_permutation_pairs([FakeHost("x")], rng) == []
    a, b = FakeHost("a"), FakeHost("b")
    assert random_permutation_pairs([a, b], rng) == [(a, b), (b, a)]


def test_stride_pairs():
    hosts = [FakeHost(f"h{i}") for i in range(4)]
    pairs = stride_pairs(hosts, 2)
    assert pairs[0] == (hosts[0], hosts[2])
    assert pairs[3] == (hosts[3], hosts[1])
    assert stride_pairs([FakeHost("x")], 1) == []


def test_switch_link_names_by_kind():
    tree = build_fat_tree(4)
    edge_agg = switch_link_names(tree, ("edge-agg",))
    agg_core = switch_link_names(tree, ("agg-core",))
    assert len(edge_agg) == 16
    assert len(agg_core) == 16
    both = switch_link_names(tree)
    assert len(both) == 32


def test_valley_free_detects_unroutable_combination():
    tree = build_fat_tree(4)
    # Destination edge keeps only group-0 connectivity, source keeps only
    # group-1: connected as a graph, unroutable up*-down*.
    failed = {
        frozenset(("edge-p3-s0", "agg-p3-s1")),
        frozenset(("edge-p0-s0", "agg-p0-s0")),
    }
    assert not valley_free_connected(tree, failed)
    assert valley_free_connected(tree, set())


def test_pick_failures_respects_reachability():
    tree = build_fat_tree(4)
    rng = random.Random(7)
    for count in (1, 4, 8):
        links = pick_failures(tree, count, rng, keep_connected=True)
        assert len(links) == count
        assert valley_free_connected(tree, {frozenset(l) for l in links})


def test_pick_failures_rejects_impossible_counts():
    tree = build_fat_tree(4)
    with pytest.raises(TopologyError):
        pick_failures(tree, 999, random.Random(1))


def make_receiver_with_arrivals(times):
    sim = Simulator()
    from repro.host import Host
    from repro.net import ip, mac

    host = Host(sim, "h", mac("00:00:00:00:00:01"), ip("10.0.0.1"))
    rx = UdpStreamReceiver(host, 5000)
    for i, t in enumerate(times):
        rx.arrivals.append((t, i, 0.0))
    return rx


def test_measure_outages_finds_gap():
    times = [i * 0.001 for i in range(100)] + \
            [0.2 + i * 0.001 for i in range(100)]
    rx = make_receiver_with_arrivals(times)
    outages = measure_outages([rx], 0.0, 0.3, nominal_interval_s=0.001)
    assert outages[0].affected
    assert outages[0].gap_s == pytest.approx(0.101, abs=1e-6)
    assert convergence_time(outages, 0.001) == pytest.approx(0.1, abs=1e-6)


def test_unaffected_flow_reports_none():
    times = [i * 0.001 for i in range(300)]
    rx = make_receiver_with_arrivals(times)
    outages = measure_outages([rx], 0.0, 0.3, nominal_interval_s=0.001)
    assert not outages[0].affected
    assert convergence_time(outages, 0.001) is None
    assert mean_affected_outage(outages, 0.001) is None


def test_mean_affected_outage_averages():
    tail = [0.25 + i * 0.001 for i in range(50)]
    rx1 = make_receiver_with_arrivals(
        [0.0, 0.001, 0.101, 0.102] + tail)  # 148 ms then 100 ms gap
    rx2 = make_receiver_with_arrivals(
        [0.0, 0.001, 0.201, 0.202] + tail)  # 200 ms gap dominates
    outages = measure_outages([rx1, rx2], 0.0, 0.3, 0.001)
    mean = mean_affected_outage(outages, 0.001)
    # rx1 worst gap 0.148, rx2 worst gap 0.200 -> mean minus interval.
    assert mean == pytest.approx((0.147 + 0.199) / 2, abs=0.001)


def test_format_table_alignment_and_types():
    text = format_table(["name", "value"],
                        [["alpha", 1.5], ["b", 123456.0], ["c", 0.0001]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "alpha" in lines[3]
    assert "1.23e+05" in text
    assert "0.0001" in text


def test_format_series():
    text = format_series("s", [(1.0, 2.0), (3.0, 4.5)], "x", "y")
    assert "x" in text and "4.5" in text


def test_format_ascii_plot_shape():
    from repro.metrics.tables import format_ascii_plot

    points = [(i * 0.1, float(i % 5)) for i in range(30)]
    text = format_ascii_plot(points, height=5, y_label="rate")
    lines = text.splitlines()
    assert lines[0].strip() == "rate"
    assert len(lines) == 5 + 3  # label + rows + axis + footer
    assert "#" in text
    assert format_ascii_plot([]) == "(empty series)"
    # All-zero series must not divide by zero.
    flat = format_ascii_plot([(0.0, 0.0), (1.0, 0.0)], height=3)
    assert "#" not in flat


def test_mean_confidence_interval():
    from repro.metrics.convergence import mean_confidence_interval

    mean, half = mean_confidence_interval([1.0, 1.0, 1.0])
    assert mean == 1.0 and half == pytest.approx(0.0)
    mean, half = mean_confidence_interval([1.0])
    assert (mean, half) == (1.0, 0.0)
    mean, half = mean_confidence_interval([1.0, 3.0])
    assert mean == 2.0 and half > 0
    with pytest.raises(ValueError):
        mean_confidence_interval([])
