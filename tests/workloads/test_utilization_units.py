"""Unit tests for link-utilization accounting (synthetic data)."""

import pytest

from repro.metrics.utilization import LinkUsage, by_layer, imbalance


def usage(a, b, nbytes):
    return LinkUsage(name=f"{a}<->{b}", a=a, b=b, bytes_total=nbytes,
                     frames_total=nbytes // 100)


def test_by_layer_aggregates_symmetrically():
    usages = [
        usage("host-p0-e0-0", "edge-p0-s0", 100),
        usage("edge-p0-s0", "agg-p0-s0", 60),
        usage("agg-p0-s0", "edge-p0-s1", 40),  # reversed order, same layer
        usage("agg-p0-s0", "core-0", 30),
    ]
    layers = by_layer(usages)
    assert layers["edge-host"] == 100
    assert layers["agg-edge"] == 100
    assert layers["agg-core"] == 30


def test_imbalance_perfectly_balanced_is_one():
    usages = [usage("agg-p0-s0", "core-0", 50),
              usage("agg-p0-s1", "core-1", 50)]
    assert imbalance(usages, "agg-core") == pytest.approx(1.0)


def test_imbalance_detects_hotspot():
    usages = [usage("agg-p0-s0", "core-0", 90),
              usage("agg-p0-s1", "core-1", 10)]
    assert imbalance(usages, "agg-core") == pytest.approx(1.8)


def test_imbalance_empty_layer_is_neutral():
    assert imbalance([], "agg-core") == 1.0
    assert imbalance([usage("a-x", "b-y", 0)], "a-b") == 1.0


def test_utilization_fraction():
    u = usage("host-p0-e0-0", "edge-p0-s0", 125_000)  # 1 Mbit total
    # 1 Mbit over 1 s on a 1 Mb/s link = 50% of the 2x duplex capacity.
    assert u.utilization(1.0, 1e6) == pytest.approx(0.5)
    assert u.utilization(0.0, 1e6) == 0.0
