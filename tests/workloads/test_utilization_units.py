"""Unit tests for link-utilization accounting (synthetic data)."""

import pytest

from repro.metrics.utilization import (
    LinkUsage,
    by_layer,
    imbalance,
    snapshot,
    usage_since,
)
from repro.net.link import PortCounters


def usage(a, b, nbytes):
    return LinkUsage(name=f"{a}<->{b}", a=a, b=b, bytes_total=nbytes,
                     frames_total=nbytes // 100)


class _FakeEnd:
    def __init__(self):
        self.counters = PortCounters()


class _FakeLink:
    """Just enough of Link for the counter-summation helpers."""

    def __init__(self, a_name, b_name):
        self.name = f"{a_name}<->{b_name}"
        self.a = _FakeEnd()
        self.b = _FakeEnd()

    def tx(self, end, frames, nbytes):
        end.counters.tx_frames += frames
        end.counters.tx_bytes += nbytes


def test_by_layer_aggregates_symmetrically():
    usages = [
        usage("host-p0-e0-0", "edge-p0-s0", 100),
        usage("edge-p0-s0", "agg-p0-s0", 60),
        usage("agg-p0-s0", "edge-p0-s1", 40),  # reversed order, same layer
        usage("agg-p0-s0", "core-0", 30),
    ]
    layers = by_layer(usages)
    assert layers["edge-host"] == 100
    assert layers["agg-edge"] == 100
    assert layers["agg-core"] == 30


def test_imbalance_perfectly_balanced_is_one():
    usages = [usage("agg-p0-s0", "core-0", 50),
              usage("agg-p0-s1", "core-1", 50)]
    assert imbalance(usages, "agg-core") == pytest.approx(1.0)


def test_imbalance_detects_hotspot():
    usages = [usage("agg-p0-s0", "core-0", 90),
              usage("agg-p0-s1", "core-1", 10)]
    assert imbalance(usages, "agg-core") == pytest.approx(1.8)


def test_imbalance_empty_layer_is_neutral():
    assert imbalance([], "agg-core") == 1.0
    assert imbalance([usage("a-x", "b-y", 0)], "a-b") == 1.0


def test_utilization_fraction():
    u = usage("host-p0-e0-0", "edge-p0-s0", 125_000)  # 1 Mbit total
    # 1 Mbit over 1 s on a 1 Mb/s link = 50% of the 2x duplex capacity.
    assert u.utilization(1.0, 1e6) == pytest.approx(0.5)
    assert u.utilization(0.0, 1e6) == 0.0


def test_snapshot_roundtrip_is_zero_delta():
    link = _FakeLink("host-p0-e0-0", "edge-p0-s0")
    link.tx(link.a, 3, 300)
    link.tx(link.b, 1, 100)
    links = {("host-p0-e0-0", "edge-p0-s0"): link}
    base = snapshot(links)
    assert base[("host-p0-e0-0", "edge-p0-s0")] == (400, 4)
    [u] = usage_since(links, base)
    assert (u.bytes_total, u.frames_total) == (0, 0)
    assert not u.new_since_baseline


def test_usage_since_measures_the_window_both_directions():
    link = _FakeLink("edge-p0-s0", "agg-p0-s0")
    link.tx(link.a, 5, 500)
    base = snapshot({("edge-p0-s0", "agg-p0-s0"): link})
    link.tx(link.a, 2, 200)
    link.tx(link.b, 1, 100)
    [u] = usage_since({("edge-p0-s0", "agg-p0-s0"): link}, base)
    assert (u.bytes_total, u.frames_total) == (300, 3)
    assert not u.new_since_baseline


def test_usage_since_flags_links_added_after_baseline():
    old = _FakeLink("edge-p0-s0", "agg-p0-s0")
    base = snapshot({("edge-p0-s0", "agg-p0-s0"): old})
    # A migration re-home attaches a brand-new host link mid-window.
    new = _FakeLink("host-p1-e0-0", "edge-p1-s0")
    new.tx(new.a, 7, 700)
    usages = usage_since(
        {("edge-p0-s0", "agg-p0-s0"): old,
         ("host-p1-e0-0", "edge-p1-s0"): new},
        base)
    flagged = {u.name: u.new_since_baseline for u in usages}
    assert flagged == {"edge-p0-s0<->agg-p0-s0": False,
                       "host-p1-e0-0<->edge-p1-s0": True}
    by_name = {u.name: u for u in usages}
    # The new link reports its whole lifetime, counted from zero.
    assert by_name["host-p1-e0-0<->edge-p1-s0"].bytes_total == 700
    # Descending-bytes ordering puts the busy new link first.
    assert usages[0].name == "host-p1-e0-0<->edge-p1-s0"
