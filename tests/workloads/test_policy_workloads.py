"""Scenario-pack smoke tests: incast mice, elephant rehashing, and the
fluid engine's per-class water-filling (docs/POLICY.md)."""

import pytest

from repro.policy import CLASS_PRIORITY, DSCP_EF
from repro.portland.config import PortlandConfig
from repro.sim import Simulator
from repro.topology import LinkParams, build_portland_fabric
from repro.workloads import ElephantMiceWorkload, IncastWorkload


def converged(sim, flow_mode=False, priority_queues=True):
    config = PortlandConfig(flow_mode=flow_mode)
    fabric = build_portland_fabric(
        sim, k=4, config=config,
        link_params=LinkParams(carrier_detect=True,
                               priority_queues=priority_queues))
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def run_incast(priority_queues, seed=61):
    sim = Simulator(seed=seed)
    fabric = converged(sim, priority_queues=priority_queues)
    hosts = fabric.host_list()
    reducer = hosts[0]
    senders = [h for h in hosts if h.name.split("-")[1] != "p0"][:6]
    workload = IncastWorkload(sim, senders, reducer, mice_count=60)
    workload.start()
    workload.run()
    return workload


def test_incast_priority_vs_fifo():
    prio = run_incast(True)
    fifo = run_incast(False)
    assert prio.mice_received == prio.mice_sent == 60
    assert prio.mice_lost == 0
    # Same fabric, same load, one knob: FIFO queues the mice behind the
    # elephant backlog (the bench gates 2x at k=8; at this small scale
    # the gap is already well past it, assert a conservative floor).
    assert fifo.mice_stats().p99 > 2 * prio.mice_stats().p99
    # Elephants ran in both arms.
    assert prio.elephant_bytes() > 0
    assert fifo.elephant_bytes() > 0


def test_incast_rejects_empty_senders():
    sim = Simulator(seed=62)
    with pytest.raises(ValueError):
        IncastWorkload(sim, [], reducer=None)


def test_elephant_mice_completes_and_rehashes():
    sim = Simulator(seed=63)
    fabric = converged(sim, flow_mode=True)
    hosts = fabric.host_list()
    # Four cross-pod elephants hammered onto paths via the same two
    # core-facing uplinks collide often at k=4; an absurdly high rehash
    # threshold forces every check to re-place them until the budget
    # runs out, exercising stop + restart-remainder.
    elephants = [(hosts[i], hosts[8 + i]) for i in range(4)]
    mice = [(hosts[4 + i], hosts[12 + i]) for i in range(4)]
    workload = ElephantMiceWorkload(
        fabric, elephants, mice,
        elephant_bytes=400_000, mouse_bytes=20_000,
        check_interval_s=0.002, rehash_below_bps=10e9, max_rehashes=2)
    workload.start()
    workload.run_until_done(timeout_s=20.0)
    assert workload.all_done()
    assert workload.rehashes > 0
    assert workload.elephant_fct_stats().count == 4
    assert workload.mice_fct_stats().count == 4
    # FCT spans the whole transfer across restarts: every elephant's
    # completion is after its start.
    for result in workload.elephant_results:
        assert result.fct > 0


def test_elephant_mice_requires_flow_engine():
    sim = Simulator(seed=64)
    fabric = converged(sim, flow_mode=False)
    hosts = fabric.host_list()
    with pytest.raises(ValueError):
        ElephantMiceWorkload(fabric, [(hosts[0], hosts[8])],
                             [(hosts[1], hosts[9])])


def test_fluid_water_filling_serves_priority_class_first():
    """The fluid analogue of strict priority: on a shared bottleneck a
    priority-class flow takes its demand first and the bulk class gets
    the leftovers."""
    sim = Simulator(seed=65)
    fabric = converged(sim, flow_mode=True)
    engine = fabric.flow_engine
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]
    # Two greedy flows from the same host: the uplink is the shared
    # bottleneck. Without classes they would split it evenly.
    bulk = engine.start_flow(src, dst.ip, size_bytes=None, sport=8001,
                             dport=8001, name="bulk")
    prio = engine.start_flow(src, dst.ip, size_bytes=None, sport=8002,
                             dport=8002, dscp=DSCP_EF, name="prio")
    assert prio.tclass == CLASS_PRIORITY and bulk.tclass == 0
    sim.run(until=sim.now + 0.5)
    engine.settle_now()
    assert prio.rate_bps > 0
    # Strict priority, not fair sharing: the EF flow holds (nearly) the
    # whole bottleneck; the bulk flow is squeezed to a trickle.
    assert prio.rate_bps > 5 * max(bulk.rate_bps, 1.0)


def test_single_class_allocation_matches_classless():
    """Bit-identity cross-check at the engine level: all flows in class
    0 must allocate exactly as the pre-policy engine did (one fair
    split, no class partitioning artifacts)."""
    sim = Simulator(seed=66)
    fabric = converged(sim, flow_mode=True)
    engine = fabric.flow_engine
    hosts = fabric.host_list()
    src, dst = hosts[0], hosts[-1]
    a = engine.start_flow(src, dst.ip, size_bytes=None, sport=8003,
                          dport=8003, name="a")
    b = engine.start_flow(src, dst.ip, size_bytes=None, sport=8004,
                          dport=8004, name="b")
    sim.run(until=sim.now + 0.5)
    engine.settle_now()
    assert a.rate_bps == pytest.approx(b.rate_bps)
    assert a.rate_bps > 0
