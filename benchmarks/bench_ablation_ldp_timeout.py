"""Ablation — LDP keepalive period vs. convergence and overhead.

Fig. 10's convergence floor is the failure-detection timeout
(``ldm_period × miss_threshold``). Sweeping the LDM period trades
control-plane overhead (LDMs/sec fabric-wide) against detection speed —
the knob an operator actually turns.
"""

from common import converged_portland, print_header, run_once, save_results

from repro import PortlandConfig
from repro.host.apps import UdpStreamReceiver, UdpStreamSender
from repro.metrics.convergence import convergence_time, measure_outages
from repro.metrics.tables import format_table

PERIODS_MS = (5.0, 10.0, 20.0, 40.0)
MISS_THRESHOLD = 5
RATE_PPS = 1000.0


def one_run(period_ms: float, seed: int):
    config = PortlandConfig(ldm_period_s=period_ms / 1000.0,
                            miss_threshold=MISS_THRESHOLD)
    fabric = converged_portland(seed, k=4, config=config)
    sim = fabric.sim

    hosts = fabric.host_list()
    rx = UdpStreamReceiver(hosts[12], 5001)
    UdpStreamSender(hosts[0], hosts[12].ip, 5001, rate_pps=RATE_PPS).start()
    ldms_before = sum(a.ldp.ldms_sent for a in fabric.agents.values())
    start = sim.now
    sim.run(until=start + 1.0)
    ldm_rate = sum(a.ldp.ldms_sent for a in fabric.agents.values()) - ldms_before

    # Fail the edge's active uplink (locally detected via timeout).
    edge = fabric.switches["edge-p0-s0"]
    uplink = max((2, 3), key=lambda i: edge.ports[i].counters.tx_frames)
    fabric.link_between("edge-p0-s0", f"agg-p0-s{uplink - 2}").fail()
    sim.run(until=start + 2.5)
    outages = measure_outages([rx], start + 0.9, start + 2.5, 1 / RATE_PPS)
    return convergence_time(outages, 1 / RATE_PPS), ldm_rate


def test_ablation_ldp_timeout_sweep(benchmark):
    results = []

    def run():
        for period in PERIODS_MS:
            conv, ldm_rate = one_run(period, seed=int(800 + period))
            results.append((period, conv, ldm_rate))

    run_once(benchmark, run)

    rows = []
    for period, conv, ldm_rate in results:
        detect = period * MISS_THRESHOLD
        rows.append([f"{period:.0f}", f"{detect:.0f}",
                     f"{conv * 1000:.0f}" if conv else "-",
                     f"{ldm_rate:.0f}"])
    print_header("ABLATION - LDM period vs convergence and overhead "
                 f"(miss threshold = {MISS_THRESHOLD})")
    print(format_table(
        ["LDM period (ms)", "detection bound (ms)", "convergence (ms)",
         "LDMs/s fabric-wide"], rows))
    print("\nconvergence tracks the detection timeout almost 1:1; overhead"
          " scales inversely with the period.")

    save_results("ablation_ldp_timeout", {"results": results})
    # Shape assertions: monotone-ish convergence with period; inverse
    # overhead.
    convs = [conv for _p, conv, _r in results]
    assert all(conv is not None for conv in convs)
    assert convs[-1] > convs[0], "slower keepalives -> slower convergence"
    for (period, conv, _r) in results:
        detect_s = period * MISS_THRESHOLD / 1000.0
        assert 0.5 * detect_s <= conv <= detect_s + 0.15
    rates = [rate for _p, _c, rate in results]
    assert rates[0] > 2.5 * rates[-1], "overhead should drop with period"
