"""Hybrid fluid+frame execution at scale: a k=16 fabric carrying a
10k-flow fluid background sea under a frame-level TCP foreground.

The experiment the hybrid mode exists for (docs/FLOWS.md, "Hybrid
execution"): 10,240 open-ended CBR background flows (10 per host,
16 Mb/s each — ~164 Gb/s aggregate) run as fluid rates, while 32
foreground 500 kB TCP transfers run at frame level through the same
links, with three agg-core faults injected (and recovered) inside the
foreground window. Gates:

* **scale** — ≥10,240 background fluid flows admitted and allocated,
  ≥32 frame-level foreground transfers completed;
* **event reduction** — the hybrid run must cost ≥20x fewer *workload*
  simulator events over the foreground completion window than an
  all-frame execution of the identical offered load. The all-frame arm
  is measured as a steady-state rate sample (see below), because
  actually running 10,240 UDP senders at 2,000 pkt/s for the full
  window (~5 million packets) would take hours of wall clock — the
  same reason the hybrid mode exists;
* **soundness** — an `InvariantOracle` watches every foreground frame
  hop and every fluid path re-resolution through the fault sequence,
  plus a post-hoc static walk scoped to the workload's host pairs
  (the full 1024x1023 all-pairs walk is a multi-minute affair at this
  scale); zero violations.

**All-frame arm methodology.** A frame-mode fabric of the same seed
and degree runs the identical workload (10,240 UDP CBR senders at
2,000 pkt/s x 1,000 B plus the same 32-flow TCP foreground). After a
short ramp, the steady event rate is sampled over a 2 ms slice and the
idle (beacon) rate subtracted; the all-frame cost over the hybrid's
measured foreground window is then `workload_rate x window` — an
extrapolation, reported as such in `BENCH_hybrid.json`. The sampled
rate is the *floor* of the true cost: it excludes the foreground's
retransmission tail under faults, which only adds events.

Writes ``BENCH_hybrid.json`` (schema: `repro.metrics.benchout`).
Run via ``make bench-hybrid``.
"""

import time

from common import (
    bench_payload,
    converged_portland,
    print_header,
    run_once,
    save_results,
    write_bench_json,
)
from repro.portland.config import PortlandConfig
from repro.verify import InvariantOracle
from repro.workloads.hybrid import HybridWorkload
from repro.workloads.shuffle import ShuffleWorkload
from repro.workloads.traffic import UdpFlowSet

K = 16
SEED = 77
BG_PER_HOST = 10
BG_RATE_BPS = 16e6
BG_PAYLOAD = 1000
FG_FLOWS = 32
FG_BYTES = 500_000
EVENT_REDUCTION_FLOOR = 20.0

#: Idle (LDP beacon) baseline measurement window, simulated seconds.
IDLE_WINDOW_S = 0.02
#: All-frame arm: stagger-ramp then steady-rate sample windows.
RAMP_S = 0.0045
SAMPLE_S = 0.002

#: Three agg-core faults inside the foreground window, recovered while
#: the foreground is still running (offsets from foreground start).
FAULTS = (
    (0.005, "agg-p0-s0", "core-0"),
    (0.005, "agg-p3-s1", "core-12"),
    (0.006, "agg-p7-s4", "core-37"),
)
RECOVER_AFTER_S = 0.015


def _pairs(hosts):
    """Deterministic stride traffic matrices (no RNG draws: the same
    pairs land on both arms without coupling their seed streams)."""
    n = len(hosts)
    bg = [(hosts[i], hosts[(i + 97 * (j + 1)) % n])
          for i in range(n) for j in range(BG_PER_HOST)]
    bg = [(s, d) for s, d in bg if s is not d]
    fg = [(hosts[(i * 31) % n], hosts[(i * 31 + 517) % n])
          for i in range(FG_FLOWS)]
    return bg, fg


def _idle_event_rate(fabric) -> float:
    before = fabric.sim.events_executed
    t0 = fabric.sim.now
    fabric.sim.run(until=t0 + IDLE_WINDOW_S)
    return (fabric.sim.events_executed - before) / IDLE_WINDOW_S


def _schedule_faults(fabric, at_base: float):
    sim = fabric.sim
    for offset, agg, core in FAULTS:
        link = fabric.link_between(agg, core)
        sim.schedule(at_base + offset, link.fail)
        sim.schedule(at_base + offset + RECOVER_AFTER_S, link.recover)


def test_hybrid_sea_under_frame_foreground(benchmark):
    # ------------------------------------------------------------------
    # Hybrid arm: fluid background sea + frame foreground + faults.
    wall0 = time.perf_counter()
    fabric = converged_portland(
        SEED, k=K, carrier=True, timeout_s=10.0,
        config=PortlandConfig(flow_mode="hybrid", path_cache_entries=32768))
    sim = fabric.sim
    hosts = fabric.host_list()
    bg_pairs, fg_pairs = _pairs(hosts)
    assert len(bg_pairs) >= 10_240 and len(fg_pairs) >= 32

    idle_rate = _idle_event_rate(fabric)

    # Attached before admission, so every one of the 10k+ initial fluid
    # path resolutions is invariant-checked, not just the fault-window
    # re-resolutions.
    oracle = InvariantOracle(fabric)

    workload = HybridWorkload(fabric, bg_pairs, fg_pairs,
                              background_bps=BG_RATE_BPS,
                              payload_bytes=BG_PAYLOAD,
                              bytes_per_flow=FG_BYTES)
    workload.start_background()
    sim.run(until=sim.now + 0.08)  # 8 batches x 5 ms + settle
    engine = fabric.flow_engine
    admit_stats = engine.stats()
    assert admit_stats["flows_active"] >= 10_240
    bg_rate = workload.background_rate_bps()

    def hybrid_foreground():
        fg_start = sim.now
        events_before = sim.events_executed
        _schedule_faults(fabric, at_base=0.0)
        workload.start_foreground()
        done = workload.run_until_foreground_done(timeout_s=30.0,
                                                  step_s=0.005)
        return done - fg_start, sim.events_executed - events_before

    t0 = time.perf_counter()
    window_s, hybrid_events = run_once(benchmark, hybrid_foreground)
    hybrid_wall = time.perf_counter() - t0
    hybrid_workload_events = max(1.0, hybrid_events - idle_rate * window_s)
    fct = workload.fct_stats()
    bg_delivered = workload.background_delivered_bytes()

    # Post-hoc static checks scoped to the workload's own pairs (the
    # full all-pairs walk is ~1M table walks at k=16). Runtime hop and
    # flow-path checks covered the whole fault sequence above.
    scoped = [(s, d) for s, d in fg_pairs] + \
             [(d, s) for s, d in fg_pairs] + bg_pairs[:128]
    oracle.check_now(pairs=scoped)
    assert oracle.violations == [], oracle.violations[:3]
    assert oracle.hops > 0 and oracle.flow_paths >= len(bg_pairs)
    oracle.close()
    hybrid_total_wall = time.perf_counter() - wall0

    # ------------------------------------------------------------------
    # All-frame arm: identical offered load, steady-rate sample.
    frame_fab = converged_portland(
        SEED, k=K, carrier=True, timeout_s=10.0,
        config=PortlandConfig(path_cache_entries=32768))
    fhosts = frame_fab.host_list()
    fbg, ffg = _pairs(fhosts)
    frame_idle = _idle_event_rate(frame_fab)
    udp = UdpFlowSet(fbg, rate_pps=BG_RATE_BPS / (BG_PAYLOAD * 8),
                     payload_bytes=BG_PAYLOAD, base_port=20000)
    fg_shuffle = ShuffleWorkload(frame_fab.sim, hosts=[], pairs=ffg,
                                 bytes_per_flow=FG_BYTES, base_port=31000,
                                 stagger_s=0.001)
    udp.start(stagger=RAMP_S * 0.9 / len(fbg))
    fg_shuffle.start()
    frame_fab.sim.run(until=frame_fab.sim.now + RAMP_S)
    events_before = frame_fab.sim.events_executed
    ts = frame_fab.sim.now
    t0 = time.perf_counter()
    frame_fab.sim.run(until=ts + SAMPLE_S)
    sample_wall = time.perf_counter() - t0
    frame_rate = (frame_fab.sim.events_executed - events_before) / SAMPLE_S
    frame_workload_rate = frame_rate - frame_idle
    projected_frame_events = frame_workload_rate * window_s
    udp.stop()

    reduction = projected_frame_events / hybrid_workload_events

    # ------------------------------------------------------------------
    print_header(
        f"hybrid fluid+frame execution, k={K} "
        f"({len(bg_pairs)} background fluid + {len(fg_pairs)} frame TCP)")
    print(f"background: {admit_stats['flows_active']} fluid flows, "
          f"{bg_rate / 1e9:.2f} Gb/s allocated, "
          f"{admit_stats['recomputes']} recomputes to admit, "
          f"{bg_delivered / 1e6:.0f} MB delivered")
    print(f"foreground: {len(fg_pairs)} x {FG_BYTES // 1000} kB TCP, "
          f"window {window_s * 1e3:.1f} ms, "
          f"FCT mean/p99 {fct.mean * 1e3:.2f}/{fct.p99 * 1e3:.2f} ms, "
          f"{len(FAULTS)} agg-core faults injected+recovered")
    print(f"oracle: {oracle.hops} frame hops, {oracle.flow_paths} fluid "
          f"paths checked, {len(oracle.violations)} violations")
    print(f"hybrid events over window: {hybrid_events} "
          f"({hybrid_workload_events:.0f} after idle baseline "
          f"{idle_rate:.0f} ev/s); wall {hybrid_wall:.1f} s")
    print(f"all-frame steady rate: {frame_workload_rate:.0f} workload ev/s "
          f"(sampled {SAMPLE_S * 1e3:.0f} ms in {sample_wall:.1f} s wall) "
          f"-> projected {projected_frame_events:.0f} events over the "
          f"same window")
    print(f"event reduction: {reduction:.0f}x (floor "
          f"{EVENT_REDUCTION_FLOOR:.0f}x)")

    assert fg_shuffle.num_flows == len(ffg)
    assert workload.foreground.all_done()
    assert reduction >= EVENT_REDUCTION_FLOOR, (
        f"hybrid execution only {reduction:.1f}x cheaper than the "
        f"projected all-frame cost (floor {EVENT_REDUCTION_FLOOR}x)")

    payload = bench_payload(
        "hybrid",
        ratio=round(reduction, 1),
        events=int(hybrid_workload_events),
        wall_s=round(hybrid_total_wall, 2),
        config={
            "k": K, "seed": SEED,
            "background_flows": len(bg_pairs),
            "background_bps": BG_RATE_BPS,
            "foreground_flows": len(fg_pairs),
            "foreground_bytes": FG_BYTES,
            "faults": [f"{agg}~{core}" for _t, agg, core in FAULTS],
        },
        foreground_window_ms=round(window_s * 1e3, 1),
        fct_mean_ms=round(fct.mean * 1e3, 2),
        fct_p99_ms=round(fct.p99 * 1e3, 2),
        background_rate_gbps=round(bg_rate / 1e9, 2),
        background_delivered_mb=round(bg_delivered / 1e6, 1),
        idle_event_rate=round(idle_rate),
        allframe_workload_event_rate=round(frame_workload_rate),
        allframe_projection=(
            "allframe events = steady workload rate x hybrid foreground "
            "window (full all-frame run is infeasible; rate excludes the "
            "fault retransmission tail, so the ratio is a floor)"),
        oracle={"hops": oracle.hops, "flow_paths": oracle.flow_paths,
                "violations": len(oracle.violations)},
    )
    save_results("hybrid", payload)
    write_bench_json("hybrid", payload)
