"""Fig. 13 — TCP flow throughput across a live VM migration.

The paper migrates a VM (15 s apart in their timeline; compressed here)
while a TCP flow streams into it: throughput drops to zero for the
stop-and-copy downtime, then resumes within about one (backed-off) RTO
of the gratuitous-ARP repoint — the connection itself survives.
"""

from common import converged_portland, print_header, run_once, save_results

from repro.host.apps import TcpBulkSender, TcpSink
from repro.metrics.tables import format_ascii_plot, format_series
from repro.portland.migration import VmMigration
from repro.topology import build_fat_tree

BIN_S = 0.05
MIGRATE_AT = 1.0
DOWNTIME = 0.2


def run_experiment(seed=501):
    fabric = converged_portland(seed, carrier=True,
                                tree=build_fat_tree(4, hosts_per_edge=1))
    sim = fabric.sim
    hosts = fabric.host_list()
    vm, sender = hosts[7], hosts[0]
    sink = TcpSink(vm, 9000, rate_bin_s=BIN_S)
    bulk = TcpBulkSender(sender, vm.ip, 9000)
    sim.run(until=MIGRATE_AT)
    migration = VmMigration(fabric, vm.name, new_edge="edge-p1-s0",
                            new_port=1, downtime_s=DOWNTIME)
    migration.start()
    sim.run(until=3.0)
    return fabric, sink, bulk, migration


def test_fig13_tcp_flow_across_migration(benchmark):
    result = {}

    def run():
        (result["fabric"], result["sink"], result["bulk"],
         result["migration"]) = run_experiment()

    run_once(benchmark, run)
    sink, bulk, migration = result["sink"], result["bulk"], result["migration"]

    series = [(t, v * 8 / 1e6) for t, v in sink.goodput_series(0.5, 3.0)]
    print_header("FIG 13 - TCP goodput across a VM migration "
                 f"(detach at t={MIGRATE_AT:.1f}s, {DOWNTIME * 1000:.0f} ms"
                 " stop-and-copy, cross-pod)")
    print(format_ascii_plot(series, height=8, y_label="goodput (Mb/s)"))
    print()
    print(format_series("goodput timeline", series,
                        x_label="t (s)", y_label="Mb/s"))
    events = migration.events
    print(f"\nmilestones: detached {events.started_at:.2f}s, reattached "
          f"{events.attached_at:.2f}s, gratuitous ARP {events.announced_at:.2f}s")
    print("paper: throughput gap spans the migration downtime plus ~one"
          " TCP retransmission backoff; the connection survives and"
          " traffic follows the VM to its new pod.")

    save_results("fig13_vm_migration",
                 {"series_mbps": series,
                  "milestones": {"started": events.started_at,
                                 "attached": events.attached_at,
                                 "announced": events.announced_at}})
    # Shape assertions.
    assert bulk.conn.state.value == "ESTABLISHED"
    outage_bins = [t for t, v in series if v == 0.0 and t >= MIGRATE_AT]
    outage = len(outage_bins) * BIN_S
    assert DOWNTIME <= outage <= 1.2, f"outage {outage:.2f}s out of band"
    tail = [v for t, v in series if t >= 2.5]
    assert sum(tail) / len(tail) > 300, "flow must recover after migration"
    # Traffic really lands at the new location.
    fm = result["fabric"].fabric_manager
    vm_ip = result["fabric"].tree.hosts[7].ip
    new_edge_id = result["fabric"].agents["edge-p1-s0"].switch_id
    assert fm.hosts_by_ip[vm_ip].edge_id == new_edge_id
