"""Sharded parallel kernel acceptance benchmark.

One k=16 all-to-all workload (128 hosts, every ordered pair a CBR flow)
run twice: through the single-process reference kernel and through the
sharded kernel (:mod:`repro.sim.parallel`) with process-backed shards.
Two things are gated, and determinism always comes first:

* **equivalence** — the sharded run must be oracle-equivalent to the
  single-process run: identical ``(time, seq)`` delivery tuples per
  flow, identical per-link byte/frame/drop totals. A fast wrong kernel
  is worthless, so this asserts before any timing gate.
* **performance** — with >= 4 CPUs: >= 2x wall-clock speedup at 4
  workers. On smaller boxes (1-core CI): a 1-worker sharded run must
  stay within 1.3x of the single-process wall — the protocol overhead
  bound that makes the speedup claim credible where it can't be
  measured directly.

Writes ``BENCH_parallel.json`` (common schema; ``ratio`` is the
measured single/sharded wall ratio, i.e. speedup, on either path).
"""

import multiprocessing

from common import bench_payload, print_header, run_once, save_results, \
    write_bench_json

from repro.sim.parallel import (
    ParallelRunSpec,
    diff_results,
    run_sharded,
    run_single,
)
from repro.workloads.partition import PodWorkloadSpec

K = 16
DURATION_S = 0.05
RATE_PPS = 100.0
SPEEDUP_GATE = 2.0       # >= 4 CPUs, 4 workers
OVERHEAD_GATE = 1.3      # 1-CPU fallback, 1 worker
MANY_CORES = 4


def _spec() -> ParallelRunSpec:
    return ParallelRunSpec(
        k=K, hosts_per_edge=1, seed=401, duration_s=DURATION_S,
        workload=PodWorkloadSpec(kind="all_to_all", rate_pps=RATE_PPS,
                                 stagger_s=0.0),
        # The invariant oracle is exercised by the tier-1 equivalence
        # tests; here it would only tax both kernels equally.
        check_invariants=False)


def test_parallel_kernel(benchmark):
    cpus = multiprocessing.cpu_count()
    workers = MANY_CORES if cpus >= MANY_CORES else 1

    def run():
        spec = _spec()
        single = run_single(spec)
        sharded = run_sharded(spec, workers=workers, backend="process")
        return single, sharded

    single, sharded = run_once(benchmark, run)

    # Determinism before speed: the merged sharded view must match the
    # reference exactly.
    diffs = diff_results(single, sharded)
    assert diffs == [], f"sharded run diverged from reference: {diffs[:5]}"
    assert single.delivered > 0

    speedup = single.wall_s / max(1e-9, sharded.wall_s)
    print_header(
        f"PARALLEL - k={K} all-to-all, {len(single.sent):,} flows, "
        f"{single.events_total:,} events: single {single.wall_s:.2f}s vs "
        f"sharded[{workers}w+fm] {sharded.wall_s:.2f}s "
        f"({speedup:.2f}x, {sharded.rounds} windows, {cpus} CPUs)")
    print(f"delivered {single.delivered:,} frames identically; "
          f"shard events {sharded.shard_events}")

    payload = bench_payload(
        "parallel",
        ratio=speedup,
        events=single.events_total,
        wall_s=sharded.wall_s,
        config={"k": K, "duration_s": DURATION_S, "rate_pps": RATE_PPS,
                "workers": workers, "backend": "process",
                "cpu_count": cpus,
                "gate": (f"speedup >= {SPEEDUP_GATE}" if workers > 1
                         else f"overhead <= {OVERHEAD_GATE}x")},
        single_wall_s=single.wall_s,
        rounds=sharded.rounds,
        delivered=single.delivered,
        shard_events=list(sharded.shard_events))
    save_results("bench_parallel", payload)
    write_bench_json("parallel", payload)

    if workers >= MANY_CORES:
        assert speedup >= SPEEDUP_GATE, (
            f"sharded speedup {speedup:.2f}x below the "
            f"{SPEEDUP_GATE}x floor with {workers} workers")
    else:
        assert sharded.wall_s <= OVERHEAD_GATE * single.wall_s, (
            f"1-worker sharded overhead {sharded.wall_s / single.wall_s:.2f}x "
            f"exceeds the {OVERHEAD_GATE}x bound")
