"""Shared helpers for the benchmark harnesses.

Each benchmark regenerates one table or figure of the PortLand paper:
it runs the experiment inside ``benchmark.pedantic`` (so
``pytest benchmarks/ --benchmark-only`` times one full run), prints the
same rows/series the paper reports, and asserts the *shape* of the
result (who wins, by roughly what factor) rather than absolute numbers.
"""

from __future__ import annotations

from repro import LinkParams, Simulator, build_portland_fabric
from repro.metrics.benchout import (  # noqa: F401  (re-exported for benches)
    bench_payload,
    validate_bench_payload,
    write_bench_json,
)
from repro.topology.builder import PortlandFabric


def converge(fabric: PortlandFabric,
             timeout_s: float = 5.0) -> tuple[float, float]:
    """Start a built fabric and run it to full discovery + registration.

    Returns (located_at, registered_at) in simulated seconds — the
    bring-up timeline the scalability sweep reports.
    """
    fabric.start()
    located = fabric.run_until_located(timeout_s=timeout_s)
    fabric.announce_hosts()
    registered = fabric.run_until_registered(timeout_s=timeout_s)
    return located, registered


def converged_portland(seed: int, k: int = 4, carrier: bool = False,
                       tree=None, config=None, link_params=None,
                       timeout_s: float = 5.0) -> PortlandFabric:
    """A fully discovered + registered PortLand fabric.

    ``link_params`` overrides the default ``LinkParams`` wholesale (and
    then ``carrier`` is ignored) — used by arms that vary a physical
    knob like ``priority_queues``.
    """
    sim = Simulator(seed=seed)
    fabric = build_portland_fabric(
        sim, k=k, config=config,
        link_params=link_params or LinkParams(carrier_detect=carrier),
        tree=tree)
    converge(fabric, timeout_s=timeout_s)
    return fabric


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def update_bench_fm(section: str, data: dict,
                    headline: dict | None = None) -> None:
    """Merge one bench's contribution into ``BENCH_fm.json``.

    Figs. 14 and 15 both feed the fabric-manager artifact and may run in
    either order (or alone): read whatever is committed, replace this
    bench's section, and rewrite the headline fields (ratio/events/
    wall_s/config) only when this caller owns them — fig14's batching
    message reduction is the headline ratio.
    """
    import json
    from pathlib import Path

    path = Path(__file__).parent.parent / "BENCH_fm.json"
    try:
        payload = json.loads(path.read_text())
        validate_bench_payload(payload)
    except (OSError, ValueError):
        payload = bench_payload("fm", ratio=1.0, events=0, wall_s=0.0,
                                config={})
    payload[section] = data
    if headline:
        payload.update(headline)
    write_bench_json("fm", payload)


def save_results(name: str, payload: dict) -> None:
    """Persist a bench's data as ``results/<name>.json``.

    The printed tables are for humans; this is the machine-readable copy
    (plotting scripts, regression tracking). Best-effort: an unwritable
    directory must never fail a benchmark.
    """
    import json
    from pathlib import Path

    try:
        out_dir = Path(__file__).parent.parent / "results"
        out_dir.mkdir(exist_ok=True)
        path = out_dir / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    except OSError:
        pass
