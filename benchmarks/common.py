"""Shared helpers for the benchmark harnesses.

Each benchmark regenerates one table or figure of the PortLand paper:
it runs the experiment inside ``benchmark.pedantic`` (so
``pytest benchmarks/ --benchmark-only`` times one full run), prints the
same rows/series the paper reports, and asserts the *shape* of the
result (who wins, by roughly what factor) rather than absolute numbers.
"""

from __future__ import annotations

from repro import LinkParams, Simulator, build_portland_fabric
from repro.topology.builder import PortlandFabric


def converged_portland(seed: int, k: int = 4, carrier: bool = False,
                       tree=None) -> PortlandFabric:
    """A fully discovered + registered PortLand fabric."""
    sim = Simulator(seed=seed)
    fabric = build_portland_fabric(
        sim, k=k, link_params=LinkParams(carrier_detect=carrier), tree=tree)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def save_results(name: str, payload: dict) -> None:
    """Persist a bench's data as ``results/<name>.json``.

    The printed tables are for humans; this is the machine-readable copy
    (plotting scripts, regression tracking). Best-effort: an unwritable
    directory must never fail a benchmark.
    """
    import json
    from pathlib import Path

    try:
        out_dir = Path(__file__).parent.parent / "results"
        out_dir.mkdir(exist_ok=True)
        path = out_dir / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    except OSError:
        pass
