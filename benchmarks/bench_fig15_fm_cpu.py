"""Fig. 15 — CPU requirement of the fabric manager vs. fabric size.

The paper measures its fabric manager's ARP service rate and derives
how many cores a full 27,648-host data center needs. Here the *actual*
Python ARP handler is micro-benchmarked (registry lookup + response
construction + encoding) against a full-scale 27,648-entry registry,
and the paper's core-count table is derived from the measured per-query
service time. Absolute core counts differ from the paper's C
implementation — the shape (linear in aggregate ARP rate, modest
absolute need) is the reproduced claim.

A second phase measures the simulated-queue utilization (busy time per
``fm_service_time_s`` slot, charged on service completion) of the
classic single fabric manager against a 4-way shard cluster under the
same ARP storm, gating the per-server CPU reduction sharding buys.
Merges its section into ``BENCH_fm.json``.
"""

from common import converged_portland, print_header, run_once, \
    save_results, update_bench_fm

from repro import PortlandConfig, Simulator
from repro.workloads.arp_workload import ArpStorm
from repro.metrics.tables import format_table
from repro.net.addresses import IPv4Address, MacAddress
from repro.portland.fabric_manager import FabricManager, FmHostRecord
from repro.portland.messages import ArpQuery
from repro.portland.pmac import Pmac

PAPER_HOSTS = (128, 1024, 4096, 16384, 27648)
BATCH = 2000

STORM_RATE = 200.0
STORM_S = 1.0
SHARDS = 4


def measure_utilization(seed: int, shards: int) -> dict:
    """Busy-slot utilization of every FM server under an ARP storm."""
    config = PortlandConfig(fm_shards=shards)
    fabric = converged_portland(seed, k=4, carrier=True, config=config)
    sim = fabric.sim
    fm = fabric.fabric_manager
    servers = getattr(fm, "servers", [fm])
    busy0 = {server.name: server.busy_time for server in servers}
    storm = ArpStorm(sim, fabric.host_list(), STORM_RATE,
                     sim.random.stream("fig15"))
    storm.start()
    start = sim.now
    sim.run(until=start + STORM_S)
    storm.stop()
    elapsed = sim.now - start
    return {server.name: (server.busy_time - busy0[server.name]) / elapsed
            for server in servers}


def build_loaded_fm(num_hosts: int) -> tuple[FabricManager, list[ArpQuery]]:
    sim = Simulator(seed=1)
    fm = FabricManager(sim, PortlandConfig())
    edge_id = 0x020000000001
    fm.attach_switch(edge_id)
    rng = sim.random.stream("fig15")
    ips = []
    for i in range(num_hosts):
        ip = IPv4Address(0x0A000000 + i)
        pod = (i // 128) % 250
        pmac = Pmac(pod, (i // 16) % 256, i % 16, i % 65536).to_mac()
        fm.hosts_by_ip[ip] = FmHostRecord(
            ip, MacAddress(0x020000000000 + i), pmac, edge_id, i % 16)
        ips.append(ip)
    requester = ips[0]
    queries = [
        ArpQuery(i, edge_id, requester, MacAddress(1),
                 ips[rng.randrange(num_hosts)])
        for i in range(BATCH)
    ]
    return fm, queries


def test_fig15_fm_cpu_requirements(benchmark):
    fm, queries = build_loaded_fm(PAPER_HOSTS[-1])

    def serve_batch():
        for query in queries:
            fm._dispatch(query)

    benchmark(serve_batch)
    per_query_s = benchmark.stats.stats.mean / BATCH
    rate_capacity = 1.0 / per_query_s

    rows = []
    for hosts in PAPER_HOSTS:
        for per_host in (25, 100):
            aggregate = hosts * per_host
            cores = aggregate * per_query_s
            rows.append([hosts, per_host, f"{aggregate:,}", f"{cores:.2f}"])

    print_header("FIG 15 - fabric manager CPU requirement "
                 f"(measured service time: {per_query_s * 1e6:.1f} us/query"
                 f" on a {PAPER_HOSTS[-1]:,}-host registry -> "
                 f"{rate_capacity:,.0f} queries/s/core)")
    print(format_table(
        ["hosts", "ARPs/s/host", "aggregate ARPs/s", "cores needed"], rows))
    print("\npaper: linear in the aggregate ARP rate; tens of cores at the"
          " extreme 27,648-host x 100 ARPs/s point (their constant differs:"
          " C implementation vs this Python handler).")

    single = measure_utilization(701, shards=0)
    sharded = measure_utilization(701, shards=SHARDS)
    single_util = max(single.values())
    sharded_util = max(sharded.values())
    cpu_ratio = single_util / max(sharded_util, 1e-12)
    print()
    print(format_table(
        ["server", "utilization"],
        [[name, f"{util:.4f}"] for name, util in
         [("fm (single)", single_util)] + sorted(sharded.items())],
        title=(f"simulated-queue utilization, {STORM_RATE:.0f} ARPs/s/host"
               f" storm on k=4: sharding {SHARDS} ways cuts the busiest"
               f" server {cpu_ratio:.1f}x"),
    ))

    save_results("fig15_fm_cpu", {"per_query_s": per_query_s,
                                  "rows": rows,
                                  "utilization": {"single": single,
                                                  "sharded": sharded}})
    update_bench_fm(
        "cpu", {
            "per_query_s": per_query_s,
            "storm_rate_per_host": STORM_RATE,
            "single_utilization": single_util,
            "sharded_max_utilization": sharded_util,
            "sharded_utilization": sharded,
            "utilization_ratio": cpu_ratio,
            "shards": SHARDS,
        })
    # Shape assertions: sane service time and linearity by construction.
    assert per_query_s < 500e-6, "ARP service must be sub-half-millisecond"
    # Sharding gate: the busiest shard serves materially less than the
    # single FM under the identical storm (pod-local requests stay on
    # their home shard; only cross-pod lookups cost a forward).
    assert cpu_ratio >= 1.3, f"sharded CPU reduction {cpu_ratio:.2f}x < 1.3x"
    cores_small = PAPER_HOSTS[0] * 25 * per_query_s
    cores_large = PAPER_HOSTS[-1] * 25 * per_query_s
    expected_ratio = PAPER_HOSTS[-1] / PAPER_HOSTS[0]
    assert abs(cores_large / cores_small - expected_ratio) < 1e-6
    assert cores_small < 1.0, "a small fabric needs a fraction of one core"
