"""Make ``benchmarks/`` importable as a flat directory and force -s-like
output so the regenerated tables are visible in the bench log."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
