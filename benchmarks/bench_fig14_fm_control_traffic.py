"""Fig. 14 — control traffic to the fabric manager vs. fabric size.

The paper estimates the ARP control load on the fabric manager as the
fabric scales to 27,648 hosts, each issuing 25 (and 100) ARP misses per
second, and concludes a commodity NIC handles it.

Here the per-request control cost is *measured* on real (simulated)
fabrics of increasing size — every ARP miss becomes an actual
ArpQuery/ArpResponse exchange in wire bytes on the control network —
then the paper's host-count sweep is reproduced from the measured
per-request byte cost (the load is exactly linear in request rate, as
the measurement across three fabric sizes confirms).

A second phase goes beyond the paper: a correlated fault-churn workload
(bursts of near-simultaneous link failures and recoveries) compares the
override push traffic of the classic immediate FM against the batched
coordinator (``fm_batch_interval_s``) and the incremental override
recomputation (``fm_incremental``), gating the control-message and
recompute-work reductions. Writes the headline of ``BENCH_fm.json``.
"""

import time

from common import converged_portland, print_header, run_once, \
    save_results, update_bench_fm

from repro import PortlandConfig
from repro.metrics.tables import format_table
from repro.workloads.arp_workload import ArpStorm

PER_HOST_RATE = 25.0
MEASURE_S = 1.0
#: The paper's sweep.
PAPER_HOSTS = (128, 1024, 4096, 16384, 27648)

#: Fault-churn phase: rounds of near-simultaneous bursts plus one
#: flapping link (fail + recover inside a single batching window).
CHURN_ROUNDS = 4
CHURN_BURST = 3
CHURN_SPACING_S = 0.004
CHURN_FLAP_S = 0.010
CHURN_SETTLE_S = 0.3
BATCH_INTERVAL_S = 0.02


def measure_fabric(seed: int, k: int):
    fabric = converged_portland(seed, k=k, carrier=True)
    sim = fabric.sim
    fm = fabric.fabric_manager
    hosts = fabric.host_list()
    rx0, tx0 = fm.bytes_received, fm.bytes_sent
    q0 = fm.arp_queries
    storm = ArpStorm(sim, hosts, PER_HOST_RATE, sim.random.stream("fig14"))
    storm.start()
    start = sim.now
    sim.run(until=start + MEASURE_S)
    storm.stop()
    queries = fm.arp_queries - q0
    total_bytes = (fm.bytes_received - rx0) + (fm.bytes_sent - tx0)
    return len(hosts), queries, total_bytes


def measure_churn(seed: int, batch_s: float, incremental: bool) -> dict:
    """Run the correlated fault-churn workload against one FM config.

    Each round fails CHURN_BURST edge-agg links (one per pod) a few
    milliseconds apart — well inside the batching window — flaps one
    more link (fail then recover CHURN_FLAP_S later, also inside one
    window), settles, then recovers the burst the same way. Edge-agg
    faults keep the incremental relevance scope small; the flap is the
    canonical event batching coalesces away entirely.
    """
    config = PortlandConfig(fm_batch_interval_s=batch_s,
                            fm_incremental=incremental)
    fabric = converged_portland(seed, k=4, carrier=True, config=config)
    sim = fabric.sim
    fm = fabric.fabric_manager
    candidates = sorted(fabric.routing_scheme().fault_candidate_links())
    picked, seen_pods = [], set()
    for a, b in candidates:
        if not a.startswith("edge"):
            continue
        pod = a.split("-")[1]
        if pod in seen_pods:
            continue
        seen_pods.add(pod)
        picked.append(fabric.link_between(a, b))
        if len(picked) > CHURN_BURST:
            break
    burst, flapper = picked[:CHURN_BURST], picked[CHURN_BURST]
    for _ in range(CHURN_ROUNDS):
        for i, link in enumerate(burst):
            sim.schedule(CHURN_SPACING_S * i, link.fail)
        sim.run(until=sim.now + CHURN_SETTLE_S)
        flapper.fail()
        sim.schedule(CHURN_FLAP_S, flapper.recover)
        sim.run(until=sim.now + CHURN_SETTLE_S)
        for i, link in enumerate(burst):
            sim.schedule(CHURN_SPACING_S * i, link.recover)
        sim.run(until=sim.now + CHURN_SETTLE_S)
    return {
        "messages": fm.override_updates_sent + fm.override_clears_sent,
        "recomputes": fm.override_recomputes,
        "edges_examined": fm.override_edges_examined,
        "events": sim.queue_stats()["pops"],
    }


def test_fig14_fm_control_traffic(benchmark):
    measured = []
    churn = {}

    def run():
        for k, seed in ((4, 601), (6, 602), (8, 603)):
            measured.append(measure_fabric(seed, k))
        churn["immediate"] = measure_churn(611, 0.0, False)
        churn["batched"] = measure_churn(611, BATCH_INTERVAL_S, False)
        churn["incremental"] = measure_churn(611, BATCH_INTERVAL_S, True)

    start = time.perf_counter()
    run_once(benchmark, run)
    wall_s = time.perf_counter() - start

    rows = []
    per_request = []
    for hosts, queries, total_bytes in measured:
        rate = queries / MEASURE_S
        mbps = total_bytes * 8 / MEASURE_S / 1e6
        per_request.append(total_bytes / max(queries, 1))
        rows.append([hosts, f"{rate:.0f}", f"{mbps:.2f}",
                     f"{total_bytes / max(queries, 1):.0f}"])

    print_header("FIG 14 (measured) - fabric-manager control traffic, "
                 f"{PER_HOST_RATE:.0f} ARPs/sec/host")
    print(format_table(
        ["hosts", "ARP queries/s", "control Mb/s", "bytes/request"], rows))

    cost = sum(per_request) / len(per_request)
    paper_rows = []
    for hosts in PAPER_HOSTS:
        for rate in (25, 100):
            mbps = hosts * rate * cost * 8 / 1e6
            paper_rows.append([hosts, rate, f"{mbps:.0f}"])
    print()
    print(format_table(
        ["hosts", "ARPs/s/host", "projected control Mb/s"],
        paper_rows,
        title=("FIG 14 (projected to the paper's sweep, from the measured "
               f"per-request cost of {cost:.0f} wire bytes)"),
    ))
    print("\npaper's point: even at 27,648 hosts x 100 ARPs/s the control"
          " load fits comfortably on commodity NICs.")

    msg_ratio = churn["immediate"]["messages"] / max(
        churn["batched"]["messages"], 1)
    edge_ratio = churn["batched"]["edges_examined"] / max(
        churn["incremental"]["edges_examined"], 1)
    print()
    print(format_table(
        ["fm config", "override msgs", "recomputes", "edges examined"],
        [[name, c["messages"], c["recomputes"], c["edges_examined"]]
         for name, c in churn.items()],
        title=(f"fault churn ({CHURN_ROUNDS} rounds x {CHURN_BURST}-link "
               f"bursts): batching cuts override messages "
               f"{msg_ratio:.1f}x, incremental recompute examines "
               f"{edge_ratio:.1f}x fewer edges"),
    ))

    save_results("fig14_fm_control_traffic",
                 {"measured": measured, "bytes_per_request": cost,
                  "churn": churn})
    update_bench_fm(
        "override_churn", churn,
        headline={
            "ratio": msg_ratio,
            "events": sum(c["events"] for c in churn.values()),
            "wall_s": wall_s,
            "config": {"k": 4, "rounds": CHURN_ROUNDS,
                       "burst": CHURN_BURST,
                       "burst_spacing_s": CHURN_SPACING_S,
                       "fm_batch_interval_s": BATCH_INTERVAL_S},
            "edges_examined_ratio": edge_ratio,
        })
    # Shape assertions: per-request cost is constant (linear scaling) and
    # the full-scale projection stays below ~10 Gb/s.
    assert max(per_request) / min(per_request) < 1.3
    worst = PAPER_HOSTS[-1] * 100 * cost * 8
    assert worst < 10e9
    # And at the paper's 25 ARPs/s operating point: under ~2 Gb/s.
    assert PAPER_HOSTS[-1] * 25 * cost * 8 < 2e9
    # Fault-churn gates: a burst coalesces into fewer override pushes
    # under batching, and incremental recomputation touches a strict
    # subset of the edges a full recompute walks. Incremental must not
    # change *what* is pushed — only how much work derives it.
    assert msg_ratio >= 1.3, f"batching reduction {msg_ratio:.2f}x < 1.3x"
    assert edge_ratio >= 1.5, f"incremental work {edge_ratio:.2f}x < 1.5x"
    assert churn["incremental"]["messages"] == churn["batched"]["messages"]
