"""Fig. 14 — control traffic to the fabric manager vs. fabric size.

The paper estimates the ARP control load on the fabric manager as the
fabric scales to 27,648 hosts, each issuing 25 (and 100) ARP misses per
second, and concludes a commodity NIC handles it.

Here the per-request control cost is *measured* on real (simulated)
fabrics of increasing size — every ARP miss becomes an actual
ArpQuery/ArpResponse exchange in wire bytes on the control network —
then the paper's host-count sweep is reproduced from the measured
per-request byte cost (the load is exactly linear in request rate, as
the measurement across three fabric sizes confirms).
"""

from common import converged_portland, print_header, run_once, save_results

from repro.metrics.tables import format_table
from repro.workloads.arp_workload import ArpStorm

PER_HOST_RATE = 25.0
MEASURE_S = 1.0
#: The paper's sweep.
PAPER_HOSTS = (128, 1024, 4096, 16384, 27648)


def measure_fabric(seed: int, k: int):
    fabric = converged_portland(seed, k=k, carrier=True)
    sim = fabric.sim
    fm = fabric.fabric_manager
    hosts = fabric.host_list()
    rx0, tx0 = fm.bytes_received, fm.bytes_sent
    q0 = fm.arp_queries
    storm = ArpStorm(sim, hosts, PER_HOST_RATE, sim.random.stream("fig14"))
    storm.start()
    start = sim.now
    sim.run(until=start + MEASURE_S)
    storm.stop()
    queries = fm.arp_queries - q0
    total_bytes = (fm.bytes_received - rx0) + (fm.bytes_sent - tx0)
    return len(hosts), queries, total_bytes


def test_fig14_fm_control_traffic(benchmark):
    measured = []

    def run():
        for k, seed in ((4, 601), (6, 602), (8, 603)):
            measured.append(measure_fabric(seed, k))

    run_once(benchmark, run)

    rows = []
    per_request = []
    for hosts, queries, total_bytes in measured:
        rate = queries / MEASURE_S
        mbps = total_bytes * 8 / MEASURE_S / 1e6
        per_request.append(total_bytes / max(queries, 1))
        rows.append([hosts, f"{rate:.0f}", f"{mbps:.2f}",
                     f"{total_bytes / max(queries, 1):.0f}"])

    print_header("FIG 14 (measured) - fabric-manager control traffic, "
                 f"{PER_HOST_RATE:.0f} ARPs/sec/host")
    print(format_table(
        ["hosts", "ARP queries/s", "control Mb/s", "bytes/request"], rows))

    cost = sum(per_request) / len(per_request)
    paper_rows = []
    for hosts in PAPER_HOSTS:
        for rate in (25, 100):
            mbps = hosts * rate * cost * 8 / 1e6
            paper_rows.append([hosts, rate, f"{mbps:.0f}"])
    print()
    print(format_table(
        ["hosts", "ARPs/s/host", "projected control Mb/s"],
        paper_rows,
        title=("FIG 14 (projected to the paper's sweep, from the measured "
               f"per-request cost of {cost:.0f} wire bytes)"),
    ))
    print("\npaper's point: even at 27,648 hosts x 100 ARPs/s the control"
          " load fits comfortably on commodity NICs.")

    save_results("fig14_fm_control_traffic",
                 {"measured": measured, "bytes_per_request": cost})
    # Shape assertions: per-request cost is constant (linear scaling) and
    # the full-scale projection stays below ~10 Gb/s.
    assert max(per_request) / min(per_request) < 1.3
    worst = PAPER_HOSTS[-1] * 100 * cost * 8
    assert worst < 10e9
    # And at the paper's 25 ARPs/s operating point: under ~2 Gb/s.
    assert PAPER_HOSTS[-1] * 25 * cost * 8 < 2e9
