"""Flow-level (fluid) engine acceptance benchmark.

Two measurements, one artifact (``BENCH_flows.json`` at the repo root,
plus the usual ``results/flows.json`` copy):

* **speedup** — a k=8 random-permutation shuffle (128 hosts, one bulk
  transfer each) run to completion in frame mode (TCP senders over the
  compiled-path fast path — the *fastest* frame configuration) and in
  flow mode (fluid rates). Gate: flow mode completes the shuffle with
  at least 20x fewer simulator events.
* **agreement** — the k=4 CBR permutation from the tier-1 smoke test,
  re-measured here with its divergence numbers recorded: worst per-link
  byte divergence (gate 2%) and worst per-flow rate divergence vs the
  frame-mode receiver's goodput (gate 5%).

Event counts are compared over *completion windows* (finite transfers),
not fixed durations: the LDP beacon background runs in both modes and
would otherwise dominate the ratio. Because the two windows differ in
length (the staggered fluid shuffle finishes sooner), each mode's idle
event rate — measured on its own converged-but-quiet fabric — is
subtracted from its count first, so the gate compares *workload* events
rather than beacon background.
"""

import time

from common import (bench_payload, converged_portland, print_header,
                    run_once, save_results, write_bench_json)

from repro.host.apps.udp_stream import UdpStreamReceiver, UdpStreamSender
from repro.metrics.utilization import snapshot, usage_since
from repro.portland.config import PortlandConfig
from repro.workloads.shuffle import FluidShuffleWorkload, ShuffleWorkload
from repro.workloads.traffic import random_permutation_pairs

K = 8
BYTES_PER_FLOW = 500_000
EVENT_REDUCTION_GATE = 20.0
#: Fluid mean FCT must land within this of the frame path's (the
#: RTT-aware fluid TCP model — handshake, cwnd ramp, FIN drain — is
#: what closes the gap; without it the fluid shuffle finishes ~86%
#: early because rates jump instantly to max-min).
FCT_DIVERGENCE_GATE = 0.10
#: Idle-baseline sampling window (converged fabric, no workload).
IDLE_WINDOW_S = 0.05

AGREEMENT_WINDOW_S = 0.25
AGREEMENT_RATE_PPS = 2000.0
AGREEMENT_PAYLOAD = 1000
LINK_BYTES_GATE = 0.02
RATE_GATE = 0.05
#: Absolute per-link slack (bytes): one-shot ARP frames + ±1 in-flight
#: frame per flow, which the relative gate cannot absorb on idle links.
LINK_BYTES_SLACK = 6_000


def _pair_names(fabric):
    rng = fabric.sim.random.stream("bench-flows")
    return [(a.name, b.name)
            for a, b in random_permutation_pairs(fabric.host_list(), rng)]


def _idle_event_rate(fabric) -> float:
    """Events/s a converged fabric burns with no workload (LDP beacons,
    liveness bookkeeping) — the background both modes pay regardless."""
    before = fabric.sim.events_executed
    t0 = fabric.sim.now
    fabric.sim.run(until=t0 + IDLE_WINDOW_S)
    return (fabric.sim.events_executed - before) / IDLE_WINDOW_S


def _shuffle_run(fabric, pairs_by_name, fluid: bool) -> dict:
    pairs = [(fabric.hosts[a], fabric.hosts[b]) for a, b in pairs_by_name]
    idle_rate = _idle_event_rate(fabric)
    wall0 = time.perf_counter()
    t0 = fabric.sim.now
    events0 = fabric.sim.events_executed
    if fluid:
        shuffle = FluidShuffleWorkload(fabric, pairs=pairs,
                                       bytes_per_flow=BYTES_PER_FLOW)
        shuffle.start()
        done_at = shuffle.run_until_done(timeout_s=60.0, step_s=0.001)
    else:
        shuffle = ShuffleWorkload(fabric.sim, fabric.host_list(), pairs=pairs,
                                  bytes_per_flow=BYTES_PER_FLOW)
        shuffle.start()
        done_at = shuffle.run_until_done(timeout_s=60.0)
    stats = shuffle.fct_stats()
    events = fabric.sim.events_executed - events0
    window_s = fabric.sim.now - t0
    return {
        "flows": len(shuffle.results),
        "bytes_per_flow": BYTES_PER_FLOW,
        "events": events,
        "idle_rate_eps": idle_rate,
        "window_s": window_s,
        # Events the *workload* cost: raw count minus the beacon
        # background the same window would have burned anyway.
        "workload_events": max(1.0, events - idle_rate * window_s),
        "wall_s": time.perf_counter() - wall0,
        "completion_s": done_at - (shuffle.results[0].started_at
                                   if shuffle.results else done_at),
        "fct_mean_s": stats.mean,
        "fct_p99_s": stats.p99,
        "goodput_bps": shuffle.aggregate_goodput_bps(
            done_at - shuffle.results[0].started_at),
    }


def _measure_agreement() -> dict:
    """The tier-1 k=4 CBR agreement check, with numbers kept."""
    frame_fab = converged_portland(
        99, k=4, carrier=True, config=PortlandConfig(path_cache_entries=4096))
    fluid_fab = converged_portland(
        99, k=4, carrier=True, config=PortlandConfig(flow_mode=True))
    rng = frame_fab.sim.random.stream("agreement")
    pairs = [(a.name, b.name) for a, b in
             random_permutation_pairs(frame_fab.host_list(), rng)]

    senders, receivers = [], []
    for i, (src_name, dst_name) in enumerate(pairs):
        src, dst = frame_fab.hosts[src_name], frame_fab.hosts[dst_name]
        receivers.append(UdpStreamReceiver(dst, 6000 + i))
        sender = UdpStreamSender(src, dst.ip, 6000 + i,
                                 rate_pps=AGREEMENT_RATE_PPS,
                                 payload_bytes=AGREEMENT_PAYLOAD)
        sender.start()
        senders.append(sender)
    frame_base = snapshot(frame_fab.links)
    frame_fab.sim.run(until=frame_fab.sim.now + AGREEMENT_WINDOW_S)
    frame_usage = {u.name: u.bytes_total
                   for u in usage_since(frame_fab.links, frame_base)}

    engine = fluid_fab.flow_engine
    flows = []
    for i, (src_name, dst_name) in enumerate(pairs):
        src, dst = fluid_fab.hosts[src_name], fluid_fab.hosts[dst_name]
        flows.append(engine.start_flow(
            src, dst.ip, demand_bps=AGREEMENT_RATE_PPS * AGREEMENT_PAYLOAD * 8,
            sport=senders[i].socket.port, dport=6000 + i,
            payload_bytes=AGREEMENT_PAYLOAD))
    fluid_base = snapshot(fluid_fab.links)
    fluid_fab.sim.run(until=fluid_fab.sim.now + AGREEMENT_WINDOW_S)
    engine.settle_now()
    fluid_usage = {u.name: u.bytes_total
                   for u in usage_since(fluid_fab.links, fluid_base)}

    max_rate_div = 0.0
    for i, flow in enumerate(flows):
        goodput = len(receivers[i].arrivals) * AGREEMENT_PAYLOAD * 8 \
            / AGREEMENT_WINDOW_S
        max_rate_div = max(max_rate_div, abs(
            flow.average_rate_bps(fluid_fab.sim.now) - goodput) / goodput)

    max_link_div = 0.0
    for name in frame_usage:
        a, b = frame_usage[name], fluid_usage[name]
        gap = abs(a - b)
        if gap <= LINK_BYTES_SLACK:
            continue
        max_link_div = max(max_link_div, gap / max(a, b))

    return {
        "k": 4,
        "flows": len(pairs),
        "window_s": AGREEMENT_WINDOW_S,
        "links_compared": len(frame_usage),
        "max_link_bytes_divergence": max_link_div,
        "link_bytes_gate": LINK_BYTES_GATE,
        "max_flow_rate_divergence": max_rate_div,
        "flow_rate_gate": RATE_GATE,
    }


def test_fluid_shuffle_event_reduction(benchmark):
    def run():
        frame_fab = converged_portland(
            31, k=K, carrier=True,
            config=PortlandConfig(path_cache_entries=65536), timeout_s=10.0)
        fluid_fab = converged_portland(
            31, k=K, carrier=True,
            config=PortlandConfig(flow_mode=True), timeout_s=10.0)
        pairs = _pair_names(frame_fab)
        frame = _shuffle_run(frame_fab, pairs, fluid=False)
        fluid = _shuffle_run(fluid_fab, pairs, fluid=True)
        agreement = _measure_agreement()
        return {
            "k": K,
            "frame": frame,
            "fluid": fluid,
            "event_reduction": (frame["workload_events"]
                                / fluid["workload_events"]),
            "raw_event_reduction": frame["events"] / max(1, fluid["events"]),
            "event_reduction_gate": EVENT_REDUCTION_GATE,
            "fct_divergence": abs(fluid["fct_mean_s"] - frame["fct_mean_s"])
            / frame["fct_mean_s"],
            "fct_divergence_gate": FCT_DIVERGENCE_GATE,
            "wall_clock_speedup": frame["wall_s"] / max(1e-9, fluid["wall_s"]),
            "agreement": agreement,
        }

    result = run_once(benchmark, run)

    print_header(
        f"FLOW MODE - k={K} permutation shuffle, "
        f"{result['frame']['flows']} x {BYTES_PER_FLOW // 1000} kB")
    print(f"{'mode':8} {'events':>10} {'wall':>8} {'mean FCT':>10} "
          f"{'goodput':>12}")
    for mode in ("frame", "fluid"):
        r = result[mode]
        print(f"{mode:8} {r['events']:>10,} {r['wall_s']:>7.2f}s "
              f"{r['fct_mean_s'] * 1000:>8.2f}ms "
              f"{r['goodput_bps'] / 1e9:>10.2f}Gb/s")
    print(f"\nevent reduction: {result['event_reduction']:.1f}x workload "
          f"({result['raw_event_reduction']:.1f}x raw, gate "
          f"{EVENT_REDUCTION_GATE:.0f}x), wall-clock speedup "
          f"{result['wall_clock_speedup']:.1f}x")
    print(f"fluid TCP fct_mean divergence: "
          f"{100 * result['fct_divergence']:.2f}% "
          f"(gate {100 * FCT_DIVERGENCE_GATE:.0f}%)")
    agreement = result["agreement"]
    print(f"agreement (k=4 CBR): worst link bytes "
          f"{100 * agreement['max_link_bytes_divergence']:.2f}% "
          f"(gate {100 * LINK_BYTES_GATE:.0f}%), worst flow rate "
          f"{100 * agreement['max_flow_rate_divergence']:.2f}% "
          f"(gate {100 * RATE_GATE:.0f}%)")

    save_results("flows", result)
    write_bench_json("flows", bench_payload(
        "flows",
        ratio=result["event_reduction"],
        events=result["frame"]["events"] + result["fluid"]["events"],
        wall_s=result["frame"]["wall_s"] + result["fluid"]["wall_s"],
        config={"k": K, "bytes_per_flow": BYTES_PER_FLOW,
                "event_reduction_gate": EVENT_REDUCTION_GATE,
                "fct_divergence_gate": FCT_DIVERGENCE_GATE},
        frame=result["frame"], fluid=result["fluid"],
        agreement=agreement,
        fct_divergence=result["fct_divergence"],
        raw_event_reduction=result["raw_event_reduction"],
        wall_clock_speedup=result["wall_clock_speedup"]))

    assert result["event_reduction"] >= EVENT_REDUCTION_GATE
    assert result["fct_divergence"] <= FCT_DIVERGENCE_GATE
    assert agreement["max_link_bytes_divergence"] <= LINK_BYTES_GATE
    assert agreement["max_flow_rate_divergence"] <= RATE_GATE
    # Both modes moved the same payload to completion.
    assert result["frame"]["flows"] == result["fluid"]["flows"] == K ** 3 // 4
