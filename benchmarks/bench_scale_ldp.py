"""Scalability sweep — bring-up and state vs. fabric size (§5 claims).

The paper argues PortLand's mechanisms scale because discovery is
local, forwarding state is O(k), and the only central component does
O(1) work per event. This sweep grows the fat tree and measures all
three on live fabrics.
"""

from common import converge, print_header, run_once, save_results

from repro import Simulator, build_portland_fabric
from repro.metrics.tables import format_table


def measure(k: int, seed: int):
    sim = Simulator(seed=seed)
    fabric = build_portland_fabric(sim, k=k)
    located, registered = converge(fabric, timeout_s=10.0)
    max_state = max(len(s.table) + len(s.rewrite_table)
                    for s in fabric.switches.values())
    fm = fabric.fabric_manager
    return {
        "k": k,
        "switches": len(fabric.switches),
        "hosts": len(fabric.hosts),
        "located_ms": located * 1000,
        "registered_ms": registered * 1000,
        "max_state": max_state,
        "fm_messages": fm.messages_received,
    }


def test_scale_sweep(benchmark):
    results = []

    def run():
        for k, seed in ((4, 11), (6, 12), (8, 13), (10, 14)):
            results.append(measure(k, seed))

    run_once(benchmark, run)

    print_header("SCALABILITY - zero-config bring-up and per-switch state "
                 "vs fabric size")
    print(format_table(
        ["k", "switches", "hosts", "LDP converged (ms)",
         "hosts registered (ms)", "max fwd entries/switch",
         "FM messages during bring-up"],
        [[r["k"], r["switches"], r["hosts"], f"{r['located_ms']:.0f}",
          f"{r['registered_ms']:.0f}", r["max_state"], r["fm_messages"]]
         for r in results],
    ))
    print("\nclaims: discovery time is O(1) in fabric size (local"
          " exchanges), state is O(k), and fabric-manager load during"
          " bring-up is O(#switches + #hosts).")

    save_results("scale_ldp", {"results": results})
    # Discovery time must not grow with the fabric (same timers dominate).
    times = [r["located_ms"] for r in results]
    assert max(times) < 3 * min(times)
    assert max(times) < 500
    # State grows like k, not like hosts (hosts grow ~15x across sweep).
    small, large = results[0], results[-1]
    host_growth = large["hosts"] / small["hosts"]
    state_growth = large["max_state"] / small["max_state"]
    assert state_growth < host_growth / 3
    # FM bring-up load is roughly linear in fabric size, not quadratic.
    msg_growth = large["fm_messages"] / small["fm_messages"]
    element_growth = ((large["switches"] + large["hosts"])
                      / (small["switches"] + small["hosts"]))
    assert msg_growth < 3 * element_growth
