"""Ablation — failure convergence: PortLand vs. L3 link-state vs. STP.

The quantitative version of the paper's motivation: the same single
link failure on the same fat tree costs milliseconds under PortLand,
seconds under link-state routing (hello dead-interval + SPF), and tens
of seconds under spanning tree (max-age + 2x forward-delay).
"""

from common import converged_portland, print_header, run_once, save_results

from repro import LinkParams, Simulator, build_l2_fabric, build_l3_fabric
from repro.host.apps import UdpStreamReceiver, UdpStreamSender
from repro.metrics.tables import format_table

RATE_PPS = 200.0
INTERVAL = 1.0 / RATE_PPS
FLOW = (0, 12)


def portland_outage() -> float:
    fabric = converged_portland(901, k=4, carrier=False)
    sim = fabric.sim
    hosts = fabric.host_list()
    rx = UdpStreamReceiver(hosts[FLOW[1]], 5001)
    UdpStreamSender(hosts[FLOW[0]], hosts[FLOW[1]].ip, 5001,
                    rate_pps=RATE_PPS).start()
    start = sim.now
    sim.run(until=start + 1.0)
    edge = fabric.switches["edge-p0-s0"]
    uplink = max((2, 3), key=lambda i: edge.ports[i].counters.tx_frames)
    fabric.link_between("edge-p0-s0", f"agg-p0-s{uplink - 2}").fail()
    sim.run(until=start + 3.0)
    gap, _s, _e = rx.max_gap(start + 0.9, start + 3.0)
    return gap


def l3_outage() -> float:
    sim = Simulator(seed=901)
    fabric = build_l3_fabric(sim, k=4,
                             link_params=LinkParams(carrier_detect=False))
    fabric.start()
    fabric.run_until_converged()
    hosts = fabric.host_list()
    rx = UdpStreamReceiver(hosts[FLOW[1]], 5001)
    UdpStreamSender(hosts[FLOW[0]], hosts[FLOW[1]].ip, 5001,
                    rate_pps=RATE_PPS).start()
    start = sim.now
    sim.run(until=start + 1.0)
    router = fabric.routers["edge-p0-s0"]
    active = max((i for i in router._neighbors),
                 key=lambda i: router.ports[i].counters.tx_frames)
    peer = router.ports[active].peer.node.name
    fabric.link_between("edge-p0-s0", peer).fail()
    sim.run(until=start + 12.0)
    gap, _s, _e = rx.max_gap(start + 0.9, start + 12.0)
    return gap


def stp_outage() -> float:
    sim = Simulator(seed=901)
    fabric = build_l2_fabric(sim, k=4)
    fabric.run_until_stp_converged()
    hosts = fabric.host_list()
    rx = UdpStreamReceiver(hosts[FLOW[1]], 5001)
    UdpStreamSender(hosts[FLOW[0]], hosts[FLOW[1]].ip, 5001,
                    rate_pps=RATE_PPS).start()
    start = sim.now
    sim.run(until=start + 1.0)
    # Fail the destination edge's uplink that actually carries the flow
    # (the spanning tree may run through either one), silently: STP must
    # wait for max-age expiry before reacting.
    edge_name = fabric.tree.hosts[FLOW[1]].edge_switch
    edge = fabric.switches[edge_name]
    up_ports = [p for p in edge.ports if p.link is not None and p.index >= 2]
    active = max(up_ports, key=lambda p: p.counters.rx_frames)
    active.link.carrier_detect = False
    peer = active.peer.node.name
    fabric.link_between(edge_name, peer).fail()
    sim.run(until=start + 80.0)
    gap, _s, _e = rx.max_gap(start + 0.9, start + 80.0)
    return gap


def test_ablation_convergence_across_designs(benchmark):
    result = {}

    def run():
        result["portland"] = portland_outage()
        result["l3"] = l3_outage()
        result["stp"] = stp_outage()

    run_once(benchmark, run)

    print_header("ABLATION - single silent link failure, same fat tree, "
                 "three control planes")
    print(format_table(
        ["design", "traffic outage", "dominated by"],
        [
            ["PortLand", f"{result['portland'] * 1000:.0f} ms",
             "LDP keepalive timeout (50 ms)"],
            ["L3 link-state", f"{result['l3']:.1f} s",
             "hello dead interval (3 s) + SPF"],
            ["Flat L2 + STP", f"{result['stp']:.1f} s",
             "max-age (20 s) + 2x forward delay (30 s)"],
        ],
    ))
    print("\npaper's motivation: existing control planes converge orders of"
          " magnitude slower than PortLand's fabric-manager-assisted"
          " recovery.")

    save_results("ablation_baselines", result)
    assert result["portland"] < 0.3
    assert 1.0 < result["l3"] < 10.0
    assert result["stp"] > 15.0
    assert result["l3"] > 10 * result["portland"]
    assert result["stp"] > 5 * result["l3"]
