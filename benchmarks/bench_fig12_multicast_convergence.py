"""Fig. 12 — multicast fault recovery.

The paper streams UDP to a multicast group with receivers in several
pods, fails a link on the installed tree, and shows the fabric manager
recomputing and reinstalling the tree: receivers behind the failed link
see a bounded loss window; receivers elsewhere see nothing.
"""

from common import converged_portland, print_header, run_once, save_results

from repro.host.apps import MulticastReceiver, MulticastSender
from repro.metrics.tables import format_table
from repro.net import ip as mkip

GROUP = mkip("239.3.3.3")
PORT = 7600
RATE = 1000.0
FAIL_AT = 1.0


def run_experiment(seed=401):
    fabric = converged_portland(seed, k=4, carrier=False)
    sim = fabric.sim
    hosts = fabric.host_list()
    member_hosts = [hosts[5], hosts[9], hosts[13]]  # pods 1, 2, 3
    receivers = [MulticastReceiver(h, GROUP, PORT) for h in member_hosts]
    sim.run(until=sim.now + 0.2)
    sender = MulticastSender(hosts[0], GROUP, PORT, rate_pps=RATE)
    sender.start()
    sim.run(until=FAIL_AT)

    fm = fabric.fabric_manager
    state = fm.multicast.groups[GROUP]
    id_to_name = {a.switch_id: n for n, a in fabric.agents.items()}
    core_name = id_to_name[state.core]
    victim_agg = next(id_to_name[sid] for sid in state.installed
                      if id_to_name[sid].startswith("agg-p3"))
    fabric.link_between(core_name, victim_agg).fail()
    sim.run(until=2.5)
    return fabric, receivers, (core_name, victim_agg)


def test_fig12_multicast_fault_recovery(benchmark):
    result = {}

    def run():
        result["fabric"], result["receivers"], result["cut"] = run_experiment()

    run_once(benchmark, run)
    fabric, receivers = result["fabric"], result["receivers"]

    rows = []
    gaps = []
    for rx in receivers:
        gap, start, _end = rx.max_gap(0.9, 2.5)
        affected = gap > 0.01
        gaps.append((rx.host.name, gap, affected))
        rows.append([rx.host.name, rx.received, f"{gap * 1000:.1f}",
                     "yes" if affected else "no"])

    print_header("FIG 12 - multicast convergence after a tree-link failure "
                 f"(cut {result['cut'][0]} <-> {result['cut'][1]} at "
                 f"t={FAIL_AT:.1f}s)")
    print(format_table(
        ["receiver", "datagrams", "max loss window (ms)", "affected"], rows))
    print("\npaper: the subtree behind the failed link loses ~100-200 ms of"
          " traffic while the fabric manager recomputes the tree;"
          " other receivers are untouched.")

    save_results("fig12_multicast_convergence",
                 {"receivers": [{"name": n, "gap_s": g, "affected": a}
                                for n, g, a in gaps]})
    affected = [g for _n, g, a in gaps if a]
    unaffected = [g for _n, g, a in gaps if not a]
    assert affected, "the cut must hit at least one receiver"
    for gap in affected:
        assert 0.02 <= gap <= 0.4
    assert unaffected, "receivers off the failed subtree must see no loss"
    # Delivery resumed for everyone.
    for rx in receivers:
        late = [t for t in rx.arrival_times() if t > 2.3]
        assert len(late) > RATE * 0.15
