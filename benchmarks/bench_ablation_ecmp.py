"""Ablation — ECMP hashing vs. a deterministic single uplink.

PortLand's default-up route hashes flows across all uplinks. This
ablation pins every switch to its first uplink instead and measures
aggregate goodput under permutation traffic: multipath spreading is
where the fat tree's bisection bandwidth comes from.
"""

from common import converged_portland, print_header, run_once, save_results

from repro.host.apps import TcpBulkSender, TcpSink
from repro.metrics.tables import format_table
from repro.portland import forwarding as fwd

MEASURE_S = 0.3
#: Deterministic cross-pod pairs chosen to collide on a single uplink
#: when ECMP is disabled (both senders share edge-p0-s0).
PAIRS = [(0, 12), (1, 14)]


def pin_single_uplink(fabric):
    """Replace every default-up ECMP group with its first port only."""
    for agent in fabric.agents.values():
        up = agent.ldp.up_ports()
        if up:
            spec = fwd.default_up((up[0],))
            agent.switch.table.remove_by_name("default-up")
            agent.switch.table.install(spec[0], spec[1], spec[2], spec[3])


def run_variant(seed: int, ecmp: bool) -> float:
    fabric = converged_portland(seed, k=4, carrier=True)
    sim = fabric.sim
    if not ecmp:
        pin_single_uplink(fabric)
    hosts = fabric.host_list()
    sinks = []
    for i, (src, dst) in enumerate(PAIRS):
        sink = TcpSink(hosts[dst], 9100 + i, rate_bin_s=0.05)
        TcpBulkSender(hosts[src], hosts[dst].ip, 9100 + i)
        sinks.append(sink)
    start = sim.now
    sim.run(until=start + MEASURE_S)
    return sum(s.total_bytes for s in sinks) * 8 / MEASURE_S


def test_ablation_ecmp_vs_single_path(benchmark):
    result = {}

    def run():
        result["ecmp"] = run_variant(701, ecmp=True)
        result["single"] = run_variant(701, ecmp=False)

    run_once(benchmark, run)
    ecmp_bps, single_bps = result["ecmp"], result["single"]

    print_header("ABLATION - ECMP hashing vs deterministic single uplink "
                 "(two colliding cross-pod TCP flows from one edge switch)")
    print(format_table(
        ["uplink selection", "aggregate goodput (Gb/s)"],
        [["ECMP (flow hash)", f"{ecmp_bps / 1e9:.2f}"],
         ["first uplink only", f"{single_bps / 1e9:.2f}"]],
    ))
    gain = ecmp_bps / single_bps
    print(f"\nECMP gain: {gain:.2f}x — without hashing, both flows share"
          " one 1 Gb/s uplink.")

    save_results("ablation_ecmp", result)
    assert single_bps < 1.2e9  # two flows squeezed through one link
    assert ecmp_bps > 1.5e9  # ECMP uses both uplinks
    assert gain > 1.4
