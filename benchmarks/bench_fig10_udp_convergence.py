"""Fig. 10 — UDP convergence time vs. number of simultaneous failures.

The paper's experiment: CBR UDP flows cross the (k=4, 16-host) testbed;
N random links fail at once; convergence is the receiver-side outage
(last packet before the failure to first packet after recovery).
Detection is LDP-timeout-based (their switches gave no carrier signal
to the OpenFlow layer), so links here are built with
``carrier_detect=False``.

Shape targets: tens of milliseconds (LDP detection ≈ 50 ms dominates),
growing mildly with the number of failures — versus seconds for
link-state routing and tens of seconds for spanning tree (see the
baseline ablation).
"""

from common import converged_portland, print_header, run_once, save_results

from repro.metrics.convergence import (convergence_time,
    mean_confidence_interval, measure_outages)
from repro.metrics.tables import format_table
from repro.workloads.failures import FailureInjector, pick_failures
from repro.workloads.traffic import UdpFlowSet, random_permutation_pairs

RATE_PPS = 1000.0
INTERVAL = 1.0 / RATE_PPS
FAILURE_COUNTS = (1, 2, 4, 6, 8)
REPEATS = 3


def one_trial(seed: int, failures: int) -> float | None:
    fabric = converged_portland(seed, k=4, carrier=False)
    sim = fabric.sim
    hosts = fabric.host_list()
    rng = sim.random.stream("fig10")
    flows = UdpFlowSet(random_permutation_pairs(hosts, rng),
                       rate_pps=RATE_PPS, payload_bytes=64)
    flows.start(stagger=INTERVAL / len(hosts))
    sim.run(until=1.0)

    links = pick_failures(fabric.tree, failures, rng, keep_connected=True)
    injector = FailureInjector(sim, fabric.link_between)
    injector.fail_at(1.0, links)
    sim.run(until=2.5)
    flows.stop()

    outages = measure_outages(flows.receivers(), 0.9, 2.5, INTERVAL)
    return convergence_time(outages, INTERVAL)


def test_fig10_udp_convergence_vs_failures(benchmark):
    rows = []
    by_count: dict[int, list[float]] = {}

    def run():
        for failures in FAILURE_COUNTS:
            samples = []
            for rep in range(REPEATS):
                conv = one_trial(100 + 13 * rep + failures, failures)
                if conv is not None:
                    samples.append(conv)
            by_count[failures] = samples
            if samples:
                mean, half_width = mean_confidence_interval(samples)
                rows.append([
                    failures,
                    f"{1000 * mean:.0f} ± {1000 * half_width:.0f}",
                    f"{1000 * min(samples):.0f}",
                    f"{1000 * max(samples):.0f}",
                    len(samples),
                ])

    run_once(benchmark, run)

    print_header("FIG 10 - UDP convergence time vs number of failures "
                 "(k=4, permutation traffic, silent failures)")
    print(format_table(
        ["failures", "mean ± 95% CI (ms)", "min (ms)", "max (ms)", "trials"],
        rows,
    ))
    print("\npaper (testbed): ~65-110 ms across 1..16 failures;"
          " dominated by the LDP detection timeout.")
    save_results("fig10_udp_convergence",
                 {failures: samples for failures, samples in by_count.items()})

    # Shape assertions.
    assert by_count[1], "single-failure trials must hit at least one flow"
    for failures, samples in by_count.items():
        for conv in samples:
            assert 0.02 <= conv <= 0.5, (
                f"{failures} failures: convergence {conv * 1000:.0f} ms "
                "outside the tens-to-hundreds-of-ms band")
    mean_1 = sum(by_count[1]) / len(by_count[1])
    worst_8 = max(by_count[8]) if by_count[8] else 0
    assert worst_8 <= 6 * mean_1 + 0.2, "growth with failures should be mild"
