"""QoS headline: k=8 incast, strict-priority queues vs FIFO.

The experiment the policy subsystem exists for (docs/POLICY.md): 16
bulk TCP senders converge on one reducer — the classic
partition/aggregate incast — saturating the reducer's edge downlink,
while small ``DSCP_EF``-marked UDP mice cross the same bottleneck. The
arms differ in exactly one bit, ``LinkParams(priority_queues=...)``:

* **priority** — strict-priority egress queues; every mouse overtakes
  the queued elephant backlog at each port;
* **fifo** — a single drop-tail queue per port; every mouse waits
  behind whatever elephant bytes got there first (and may be
  tail-dropped with them).

Gates:

* **latency protection** — mice one-way p99 must improve >=2x with
  priority queues (it is typically >100x: the FIFO arm's p99 is a
  full drop-tail queue drain, the priority arm's is near-propagation);
* **no starvation accounting** — the elephants must deliver the same
  bytes in both arms (mice are ~0.01% of offered load; strict priority
  must not distort bulk throughput), and the per-class counters
  (`repro.metrics.utilization.class_totals`) must show both classes on
  the wire in the priority arm;
* **loss polarity** — the priority arm loses no mice.

Writes ``BENCH_policy.json`` (schema: `repro.metrics.benchout`).
Run via ``make bench-policy``.
"""

import time

from common import (
    bench_payload,
    converged_portland,
    print_header,
    run_once,
    save_results,
    write_bench_json,
)
from repro import LinkParams
from repro.metrics.utilization import class_drop_totals, class_totals
from repro.policy import CLASS_PRIORITY
from repro.workloads.incast import IncastWorkload

K = 8
SEED = 77
SENDERS = 16
P99_IMPROVEMENT_FLOOR = 2.0


def _run_incast(priority_queues: bool):
    """One converged k=8 fabric + incast run; returns (workload, fabric,
    wall seconds)."""
    t0 = time.perf_counter()
    fabric = converged_portland(
        SEED, k=K, timeout_s=10.0,
        link_params=LinkParams(carrier_detect=True,
                               priority_queues=priority_queues))
    hosts = fabric.host_list()
    reducer = hosts[0]
    reducer_pod = reducer.name.split("-")[1]
    senders = [h for h in hosts
               if h.name.split("-")[1] != reducer_pod][:SENDERS]
    workload = IncastWorkload(fabric.sim, senders, reducer)
    workload.start()
    workload.run()
    return workload, fabric, time.perf_counter() - t0


def test_incast_priority_protects_mice(benchmark):
    prio, prio_fabric, prio_wall = run_once(
        benchmark, lambda: _run_incast(priority_queues=True))
    fifo, _fifo_fabric, fifo_wall = _run_incast(priority_queues=False)

    prio_stats = prio.mice_stats()
    fifo_stats = fifo.mice_stats()
    improvement = fifo_stats.p99 / prio_stats.p99
    tx_by_class = class_totals(prio_fabric.links)
    drops_by_class = class_drop_totals(prio_fabric.links)

    print_header(
        f"incast mice under elephants, k={K} "
        f"({SENDERS} TCP bulks -> 1 reducer, {prio.mice_sent} EF mice)")
    print(f"priority arm: mice p99 {prio_stats.p99 * 1e6:.1f} us "
          f"(mean {prio_stats.mean * 1e6:.1f} us), "
          f"{prio.mice_lost} lost, "
          f"elephants {prio.elephant_bytes() / 1e6:.1f} MB; "
          f"wall {prio_wall:.1f} s")
    print(f"fifo arm:     mice p99 {fifo_stats.p99 * 1e6:.1f} us "
          f"(mean {fifo_stats.mean * 1e6:.1f} us), "
          f"{fifo.mice_lost} lost, "
          f"elephants {fifo.elephant_bytes() / 1e6:.1f} MB; "
          f"wall {fifo_wall:.1f} s")
    print(f"mice p99 improvement: {improvement:.1f}x "
          f"(floor {P99_IMPROVEMENT_FLOOR:.0f}x)")
    print(f"priority-arm class bytes: {tx_by_class}, "
          f"class drops: {drops_by_class}")

    assert improvement >= P99_IMPROVEMENT_FLOOR, (
        f"strict-priority queues only improved mice p99 by "
        f"{improvement:.2f}x over FIFO (floor {P99_IMPROVEMENT_FLOOR}x) — "
        f"the priority path has regressed")
    assert prio.mice_lost == 0, (
        f"priority arm tail-dropped {prio.mice_lost} mice — EF traffic "
        f"should never queue long enough to hit the drop-tail budget here")
    assert prio.mice_received == prio.mice_sent
    # Both classes actually rode the wire in the priority arm, and the
    # bulk class got no free ride from the mice being prioritized.
    assert tx_by_class.get(CLASS_PRIORITY, 0) > 0
    low, high = sorted((prio.elephant_bytes(), fifo.elephant_bytes()))
    assert low > 0 and low / high > 0.95, (
        f"elephant delivery diverged between arms: {low} vs {high} bytes")

    payload = bench_payload(
        "policy",
        ratio=round(improvement, 1),
        events=prio.mice_sent,
        wall_s=round(prio_wall + fifo_wall, 2),
        config={
            "k": K, "seed": SEED, "senders": SENDERS,
            "mice": prio.mice_sent,
            "mice_payload_bytes": prio.mice_payload_bytes,
            "mice_dscp": prio.mice_dscp,
        },
        priority_p99_us=round(prio_stats.p99 * 1e6, 1),
        priority_mean_us=round(prio_stats.mean * 1e6, 1),
        fifo_p99_us=round(fifo_stats.p99 * 1e6, 1),
        fifo_mean_us=round(fifo_stats.mean * 1e6, 1),
        priority_mice_lost=prio.mice_lost,
        fifo_mice_lost=fifo.mice_lost,
        elephant_mb=round(prio.elephant_bytes() / 1e6, 1),
        class_tx_bytes={str(c): b for c, b in sorted(tx_by_class.items())},
        class_drops={str(c): n for c, n in sorted(drops_by_class.items())},
    )
    save_results("policy", payload)
    write_bench_json("policy", payload)
