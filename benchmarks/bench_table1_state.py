"""Table 1 — comparison of layer-2/layer-3/PortLand fabric techniques.

The paper's Table 1 is qualitative; this harness backs each cell with a
measurement on the same k-ary fat tree under all three designs:

* per-switch forwarding state (flat L2 grows with hosts; L3 and
  PortLand stay O(k)/O(#subnets)),
* operator configuration lines (only L3 needs any),
* plug-and-play / seamless-migration properties exercised elsewhere in
  the suite and summarized here.
"""

from common import converged_portland, print_header, run_once, save_results

from repro import Simulator, build_l2_fabric, build_l3_fabric
from repro.host.apps import UdpEchoServer, UdpPinger
from repro.metrics.tables import format_table
from repro.workloads.traffic import UdpFlowSet, stride_pairs


def warm_l2(seed, k):
    sim = Simulator(seed=seed)
    fabric = build_l2_fabric(sim, k=k)
    fabric.run_until_stp_converged()
    hosts = fabric.host_list()
    # All-pairs-ish warmup so MAC tables actually fill (stride traffic).
    flows = UdpFlowSet(stride_pairs(hosts, len(hosts) // 2 + 1),
                       rate_pps=50, payload_bytes=32)
    flows.start(stagger=0.001)
    sim.run(until=sim.now + 1.0)
    flows.stop()
    return fabric


def warm_l3(seed, k):
    sim = Simulator(seed=seed)
    fabric = build_l3_fabric(sim, k=k)
    fabric.start()
    fabric.run_until_converged()
    return fabric


def warm_portland(seed, k):
    fabric = converged_portland(seed, k=k, carrier=True)
    sim = fabric.sim
    hosts = fabric.host_list()
    flows = UdpFlowSet(stride_pairs(hosts, len(hosts) // 2 + 1),
                       rate_pps=50, payload_bytes=32)
    flows.start(stagger=0.001)
    sim.run(until=sim.now + 1.0)
    flows.stop()
    return fabric


def collect(k: int):
    l2 = warm_l2(1, k)
    l3 = warm_l3(1, k)
    pl = warm_portland(1, k)
    hosts = len(l2.tree.hosts)
    rows = []
    l2_state = max(s.mac_table_size() for s in l2.switches.values())
    rows.append(["Flat L2 (STP)", k, hosts, l2_state, 0, "yes", "no ECMP",
                 "yes"])
    l3_state = max(r.route_table_size() for r in l3.routers.values())
    rows.append(["L3 link-state", k, hosts, l3_state,
                 l3.total_config_lines(), "no", "yes", "no (IP=loc)"])
    pl_state = max(len(s.table) + len(s.rewrite_table)
                   for s in pl.switches.values())
    rows.append(["PortLand", k, hosts, pl_state, 0, "yes", "yes", "yes"])
    return rows, l2_state, pl_state


def test_table1_requirements_comparison(benchmark):
    all_rows = []
    shapes = {}

    def run():
        for k in (4, 6, 8):
            rows, l2_state, pl_state = collect(k)
            all_rows.extend(rows)
            shapes[k] = (l2_state, pl_state)

    run_once(benchmark, run)

    print_header(
        "TABLE 1 - fabric technique comparison (measured on k-ary fat trees)")
    print(format_table(
        ["technique", "k", "hosts", "max fwd entries/switch",
         "config lines", "plug&play", "multipath", "seamless VM migration"],
        all_rows,
    ))
    print("\npaper's claim: flat-L2 state grows with hosts; PortLand stays"
          " O(k) with zero configuration.")
    save_results("table1_state", {"rows": all_rows})

    # Shape assertions: PortLand state must NOT grow with host count the
    # way flat L2 does.
    l2_k4, pl_k4 = shapes[4]
    l2_k8, pl_k8 = shapes[8]
    assert l2_k8 >= l2_k4 * 3  # flat L2 tracks host count (8x more hosts)
    assert pl_k8 <= pl_k4 * 3  # PortLand tracks k, not hosts
    assert pl_k8 < l2_k8  # and is strictly smaller at scale
