"""Cross-backend smoke: path diversity and workload completion.

Builds each topology backend (fat tree, Jellyfish, generated two-level
fat tree) at the comparable k=4 scale, converges it through the one
shared pipeline, and compares:

* **path diversity** — mean shortest-path (ECMP) count and mean
  8-shortest simple-path count over all edge pairs, straight from the
  scheme's :meth:`enumerate_paths` oracle. This is the number Jellyfish
  was designed to win (random graphs trade structure for diversity).
* **completion time** — a fluid permutation shuffle over every host,
  same bytes per flow everywhere.

Ratios are *logged, not gated*: the backends deliberately differ in
host count and bisection, so the assertion is only that every backend
converges, finishes the shuffle, and offers at least one path per pair.
"""

from common import (bench_payload, print_header, run_once, save_results,
                    write_bench_json)

from repro import LinkParams, Simulator, build_portland_fabric
from repro.metrics.tables import format_table
from repro.portland.config import PortlandConfig
from repro.topology.scheme import BACKEND_NAMES, scheme_for_backend
from repro.workloads.shuffle import FluidShuffleWorkload
from repro.workloads.traffic import random_permutation_pairs

K = 4
BYTES_PER_FLOW = 250_000
PATH_LIMIT = 8


def converged_backend(backend: str, seed: int):
    sim = Simulator(seed=seed)
    scheme = scheme_for_backend(backend, k=K)
    config = PortlandConfig(flow_mode=True)
    fabric = build_portland_fabric(
        sim, k=K, config=config, scheme=scheme,
        link_params=LinkParams(carrier_detect=True))
    fabric.start()
    located = fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric, located


def diversity(fabric) -> tuple[float, float]:
    """Mean (ECMP paths, 8-shortest simple paths) over all edge pairs."""
    scheme = fabric.routing_scheme()
    edges = fabric.tree.edge_names
    ecmp_counts, ksp_counts = [], []
    for src in edges:
        for dst in edges:
            if src == dst:
                continue
            ecmp_counts.append(len(scheme.enumerate_paths(src, dst)))
            ksp_counts.append(len(scheme.enumerate_paths(
                src, dst, limit=PATH_LIMIT)))
    pairs = max(1, len(ecmp_counts))
    return sum(ecmp_counts) / pairs, sum(ksp_counts) / pairs


def run_backend(backend: str) -> dict:
    fabric, located = converged_backend(backend, seed=701)
    sim = fabric.sim
    ecmp, ksp = diversity(fabric)
    pairs = random_permutation_pairs(fabric.host_list(),
                                     sim.random.stream("bench-topo"))
    shuffle = FluidShuffleWorkload(fabric, pairs=pairs,
                                   bytes_per_flow=BYTES_PER_FLOW)
    shuffle.start()
    done_at = shuffle.run_until_done(timeout_s=30.0)
    elapsed = done_at - shuffle.started_at
    return {
        "backend": backend,
        "switches": len(fabric.switches),
        "hosts": len(fabric.hosts),
        "located_ms": located * 1000,
        "ecmp_paths": ecmp,
        "ksp_paths": ksp,
        "shuffle_ms": elapsed * 1000,
        "events": sim.events_executed,
    }


def test_topology_backends(benchmark):
    rows = run_once(benchmark, lambda: [run_backend(b) for b in BACKEND_NAMES])

    print_header("topology backends: diversity + fluid shuffle (k=4 scale)")
    base = rows[0]
    print(format_table(
        ["backend", "switches", "hosts", "bring-up",
         "mean ECMP paths", f"mean {PATH_LIMIT}-shortest", "shuffle",
         "shuffle vs fattree"],
        [[r["backend"], r["switches"], r["hosts"],
          f"{r['located_ms']:.0f} ms",
          f"{r['ecmp_paths']:.2f}", f"{r['ksp_paths']:.2f}",
          f"{r['shuffle_ms']:.2f} ms",
          f"{r['shuffle_ms'] / base['shuffle_ms']:.2f}x"]
         for r in rows],
        title="one routing abstraction, three fabrics",
    ))
    save_results("bench_topologies", {"k": K, "bytes": BYTES_PER_FLOW,
                                      "backends": rows})
    write_bench_json("topo", bench_payload(
        "topo",
        # Headline: the fat tree's mean ECMP path diversity (paths per
        # edge pair vs a single-path fabric) — the multipath factor the
        # other backends are compared against in the printed table.
        ratio=base["ecmp_paths"],
        events=sum(r["events"] for r in rows),
        wall_s=benchmark.stats.stats.total,
        config={"k": K, "bytes_per_flow": BYTES_PER_FLOW,
                "path_limit": PATH_LIMIT,
                "backends": list(BACKEND_NAMES)},
        backends=rows))

    # Shape only: everything converged, finished, and is multipath-capable.
    for r in rows:
        assert r["shuffle_ms"] > 0
        assert r["ecmp_paths"] >= 1
        assert r["ksp_paths"] >= r["ecmp_paths"] - 1e-9
