"""Fig. 11 — TCP convergence after a single link failure.

The paper plots a TCP flow's progress around a failure: the fabric
converges in tens of milliseconds, but the flow resumes only at its
retransmission timeout (~200 ms, the Linux minimum RTO) — i.e. network
convergence is *faster than TCP can notice*, and the connection never
resets.
"""

from common import converged_portland, print_header, run_once, save_results

from repro.host.apps import TcpBulkSender, TcpSink
from repro.metrics.tables import format_ascii_plot, format_series

BIN_S = 0.025
FAIL_AT = 1.0


def run_timeline(seed=301):
    fabric = converged_portland(seed, k=4, carrier=False)
    sim = fabric.sim
    hosts = fabric.host_list()
    sink = TcpSink(hosts[12], 9000, rate_bin_s=BIN_S)
    bulk = TcpBulkSender(hosts[0], hosts[12].ip, 9000)
    sim.run(until=FAIL_AT)

    # Cut the agg->core hop the flow is using.
    edge = fabric.switches["edge-p0-s0"]
    uplink = max((2, 3), key=lambda i: edge.ports[i].counters.tx_frames)
    agg_name = f"agg-p0-s{uplink - 2}"
    agg = fabric.switches[agg_name]
    core_port = max((2, 3), key=lambda i: agg.ports[i].counters.tx_frames)
    core_name = f"core-{(uplink - 2) * 2 + (core_port - 2)}"
    fabric.link_between(agg_name, core_name).fail()
    sim.run(until=2.0)
    return fabric, sink, bulk


def test_fig11_tcp_convergence_timeline(benchmark):
    result = {}

    def run():
        result["fabric"], result["sink"], result["bulk"] = run_timeline()

    run_once(benchmark, run)
    sink, bulk = result["sink"], result["bulk"]
    series = [(t, v * 8 / 1e6) for t, v in sink.goodput_series(0.8, 2.0)]

    print_header("FIG 11 - TCP flow goodput around a single silent failure "
                 f"(failure at t={FAIL_AT:.1f}s)")
    print(format_ascii_plot(series, height=8, y_label="goodput (Mb/s)"))
    print()
    print(format_series("goodput timeline", series,
                        x_label="t (s)", y_label="Mb/s"))

    # Shape assertions: outage exists, is RTO-bounded, and flow recovers.
    outage_bins = [t for t, v in series if v == 0.0 and FAIL_AT <= t < 2.0]
    assert outage_bins, "the failure must interrupt the flow"
    outage = len(outage_bins) * BIN_S
    print(f"\nmeasured outage ≈ {outage * 1000:.0f} ms "
          "(fabric converged in ~50 ms; TCP waited for its RTO)")
    print("paper: flow resumes after one ~200 ms retransmission timeout;"
          " the connection survives.")
    save_results("fig11_tcp_convergence",
                 {"series_mbps": series, "outage_s": outage})
    assert 0.10 <= outage <= 0.60
    assert bulk.conn.state.value == "ESTABLISHED"
    tail = [v for t, v in series if t >= 1.8]
    assert sum(tail) / len(tail) > 400, "goodput must recover after the RTO"
    # Convergence was *not* the bottleneck: the fabric healed before TCP
    # retried (fault matrix populated well before the RTO fired).
    assert len(result["fabric"].fabric_manager.fault_matrix) == 1
