"""Simulator micro-benchmarks — the substrate's own performance.

Not a paper artifact: these measure the discrete-event kernel and the
switch fast path so regressions in the simulation substrate (which
every experiment stands on) are visible. Real repeated-round
pytest-benchmark measurements, unlike the single-shot experiment
harnesses.
"""

import timeit

from common import (bench_payload, converged_portland, print_header,
                    write_bench_json)

from repro.net import AppData, EthernetFrame, IPv4Packet, UdpDatagram, mac
from repro.net.addresses import IPv4Address
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.net.ipv4 import IPPROTO_UDP
from repro.portland.config import PortlandConfig
from repro.sim import Simulator
from repro.switching.flow_table import (
    FlowTable,
    Match,
    Output,
    SelectByHash,
    flow_hash,
    mac_prefix_mask,
)
from repro.topology.fattree import build_fat_tree
from repro.workloads.replay import (
    all_to_all_frames,
    compile_paths,
    compiled_signature,
    decision_signature,
    replay_compiled,
    replay_decisions,
)

EVENTS = 20_000


def test_kernel_event_throughput(benchmark):
    def run():
        sim = Simulator()

        def chain(remaining: int) -> None:
            if remaining:
                sim.schedule(1e-6, chain, remaining - 1)

        sim.schedule(0.0, chain, EVENTS)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == EVENTS + 1
    rate = EVENTS / benchmark.stats.stats.mean
    print_header(f"KERNEL - {rate:,.0f} events/second "
                 "(schedule + heap pop + dispatch)")
    assert rate > 100_000  # sanity floor for every experiment's runtime


def _pmac_style_table() -> FlowTable:
    """A realistic PortLand edge table: intercepts, hosts, prefixes."""
    table = FlowTable()
    table.install(Match(ethertype=0x0806), (Output(9),), 500, "arp")
    for i in range(2):
        table.install(Match(eth_dst=mac(f"00:03:00:0{i}:00:00")),
                      (Output(i),), 400, f"host{i}")
    table.install(Match(eth_dst=mac("00:03:00:00:00:00"),
                        eth_dst_mask=mac_prefix_mask(24)), (), 200, "drop")
    table.install(Match(), (SelectByHash((2, 3)),), 100, "up")
    return table


def test_flow_table_lookup_rate(benchmark):
    table = _pmac_style_table()
    frame = EthernetFrame(mac("00:07:00:01:00:00"), mac("00:03:00:00:00:00"),
                          ETHERTYPE_IPV4, AppData(64))

    def run():
        entry = None
        for _ in range(1000):
            entry = table.lookup(frame, 0)
        return entry

    entry = benchmark(run)
    assert entry is not None and entry.name == "up"
    rate = 1000 / benchmark.stats.stats.mean
    print_header(f"FLOW TABLE - {rate:,.0f} lookups/second on a "
                 f"{len(table)}-entry PortLand edge table")


def test_flow_hash_rate(benchmark):
    packet = IPv4Packet(IPv4Address(1), IPv4Address(2), IPPROTO_UDP,
                        UdpDatagram(1234, 80, AppData(64)))
    frame = EthernetFrame(mac("00:07:00:01:00:00"), mac("00:03:00:00:00:00"),
                          ETHERTYPE_IPV4, packet)

    def run():
        h = 0
        for _ in range(1000):
            h = flow_hash(frame)
        return h

    benchmark(run)
    rate = 1000 / benchmark.stats.stats.mean
    print_header(f"ECMP HASH - {rate:,.0f} five-tuple hashes/second")


# ----------------------------------------------------------------------
# Forwarding fast path: k=8 all-to-all through the real switch pipeline


def _converged_k8_fabric(decision_cache_entries: int,
                         path_cache_entries: int = 0):
    """A registered k=8 fabric (32 hosts, one per edge switch)."""
    return converged_portland(
        99, carrier=True, tree=build_fat_tree(8, hosts_per_edge=1),
        config=PortlandConfig(decision_cache_entries=decision_cache_entries,
                              path_cache_entries=path_cache_entries))


def test_forwarding_fast_path_k8_all_to_all(benchmark):
    """Decision-cache acceptance: >= 1.5x packet-forwarding throughput on
    a k=8 all-to-all workload, with identical forwarding decisions."""
    baseline = _converged_k8_fabric(decision_cache_entries=0)
    cached = _converged_k8_fabric(decision_cache_entries=4096)
    workload_base = all_to_all_frames(baseline)
    workload_cached = all_to_all_frames(cached)

    # Warm both (fills the caches) and cross-check every path end-to-end.
    result_base = replay_decisions(workload_base)
    result_cached = replay_decisions(workload_cached)
    assert result_base == result_cached, "cache changed forwarding behaviour"
    hops, delivered = result_cached
    assert delivered == len(workload_cached), "all-to-all not fully delivered"

    base_s = min(timeit.repeat(lambda: replay_decisions(workload_base),
                               number=1, repeat=5))
    benchmark(lambda: replay_decisions(workload_cached))
    cached_s = benchmark.stats.stats.min
    speedup = base_s / cached_s
    final = cached.decision_cache_stats()
    assert final["hits"] > 0 and final["entries"] > 0, "cache never engaged"
    hit_rate = final["hits"] / (final["hits"] + final["misses"])
    print_header(
        f"FORWARDING - k=8 all-to-all, {len(workload_cached):,} flows, "
        f"{hops:,} hops: {hops / cached_s:,.0f} hops/s cached vs "
        f"{hops / base_s:,.0f} uncached ({speedup:.2f}x, "
        f"hit rate {hit_rate:.1%})")
    assert speedup >= 1.5, (
        f"decision cache speedup {speedup:.2f}x below the 1.5x floor")


def test_compiled_path_fast_path_k8_all_to_all(benchmark):
    """PathCache acceptance: >= 3x over the decision-cached (PR-3)
    baseline on the same k=8 all-to-all replay, with every compiled hop
    sequence identical to the per-switch decision walk."""
    cached = _converged_k8_fabric(decision_cache_entries=4096)
    compiled = _converged_k8_fabric(decision_cache_entries=4096,
                                    path_cache_entries=4096)
    workload_cached = all_to_all_frames(cached)
    workload_compiled = all_to_all_frames(compiled)

    # Warm both layers, then cross-check every flow's compiled hop
    # sequence against the interpreted decision walk on the same fabric.
    replay_decisions(workload_cached)
    assert compile_paths(compiled, workload_compiled) == len(workload_compiled)
    for node, in_index, frame in workload_compiled:
        assert (compiled_signature(node, in_index, frame)
                == decision_signature(node, in_index, frame)), (
            "compiled path diverges from the per-switch decision walk")
    result_compiled = replay_compiled(workload_compiled)
    assert result_compiled == replay_decisions(workload_compiled)
    hops, delivered = result_compiled
    assert delivered == len(workload_compiled)

    base_s = min(timeit.repeat(lambda: replay_decisions(workload_cached),
                               number=1, repeat=5))
    benchmark(lambda: replay_compiled(workload_compiled))
    compiled_s = benchmark.stats.stats.min
    speedup = base_s / compiled_s
    stats = compiled.path_cache_stats()
    assert stats["compiles"] > 0, "path cache never engaged"
    print_header(
        f"CUT-THROUGH - k=8 all-to-all, {len(workload_compiled):,} flows, "
        f"{hops:,} hops: {hops / compiled_s:,.0f} hops/s compiled vs "
        f"{hops / base_s:,.0f} decision-cached ({speedup:.2f}x)")
    write_bench_json("sim_kernel", bench_payload(
        "sim_kernel",
        # Headline: compiled-path replay speedup over the decision-cached
        # walk on the same k=8 all-to-all workload.
        ratio=speedup,
        events=hops,
        wall_s=compiled_s,
        config={"k": 8, "flows": len(workload_compiled),
                "decision_cache_entries": 4096, "path_cache_entries": 4096,
                "speedup_gate": 3.0},
        baseline_wall_s=base_s,
        compiled_hops_per_s=hops / compiled_s,
        baseline_hops_per_s=hops / base_s))
    assert speedup >= 3.0, (
        f"compiled-path speedup {speedup:.2f}x below the 3x floor")
