"""Simulator micro-benchmarks — the substrate's own performance.

Not a paper artifact: these measure the discrete-event kernel and the
switch fast path so regressions in the simulation substrate (which
every experiment stands on) are visible. Real repeated-round
pytest-benchmark measurements, unlike the single-shot experiment
harnesses.
"""

from common import print_header

from repro.net import AppData, EthernetFrame, IPv4Packet, UdpDatagram, mac
from repro.net.addresses import IPv4Address
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.net.ipv4 import IPPROTO_UDP
from repro.sim import Simulator
from repro.switching.flow_table import (
    FlowTable,
    Match,
    Output,
    SelectByHash,
    flow_hash,
    mac_prefix_mask,
)

EVENTS = 20_000


def test_kernel_event_throughput(benchmark):
    def run():
        sim = Simulator()

        def chain(remaining: int) -> None:
            if remaining:
                sim.schedule(1e-6, chain, remaining - 1)

        sim.schedule(0.0, chain, EVENTS)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == EVENTS + 1
    rate = EVENTS / benchmark.stats.stats.mean
    print_header(f"KERNEL - {rate:,.0f} events/second "
                 "(schedule + heap pop + dispatch)")
    assert rate > 100_000  # sanity floor for every experiment's runtime


def _pmac_style_table() -> FlowTable:
    """A realistic PortLand edge table: intercepts, hosts, prefixes."""
    table = FlowTable()
    table.install(Match(ethertype=0x0806), (Output(9),), 500, "arp")
    for i in range(2):
        table.install(Match(eth_dst=mac(f"00:03:00:0{i}:00:00")),
                      (Output(i),), 400, f"host{i}")
    table.install(Match(eth_dst=mac("00:03:00:00:00:00"),
                        eth_dst_mask=mac_prefix_mask(24)), (), 200, "drop")
    table.install(Match(), (SelectByHash((2, 3)),), 100, "up")
    return table


def test_flow_table_lookup_rate(benchmark):
    table = _pmac_style_table()
    frame = EthernetFrame(mac("00:07:00:01:00:00"), mac("00:03:00:00:00:00"),
                          ETHERTYPE_IPV4, AppData(64))

    def run():
        entry = None
        for _ in range(1000):
            entry = table.lookup(frame, 0)
        return entry

    entry = benchmark(run)
    assert entry is not None and entry.name == "up"
    rate = 1000 / benchmark.stats.stats.mean
    print_header(f"FLOW TABLE - {rate:,.0f} lookups/second on a "
                 f"{len(table)}-entry PortLand edge table")


def test_flow_hash_rate(benchmark):
    packet = IPv4Packet(IPv4Address(1), IPv4Address(2), IPPROTO_UDP,
                        UdpDatagram(1234, 80, AppData(64)))
    frame = EthernetFrame(mac("00:07:00:01:00:00"), mac("00:03:00:00:00:00"),
                          ETHERTYPE_IPV4, packet)

    def run():
        h = 0
        for _ in range(1000):
            h = flow_hash(frame)
        return h

    benchmark(run)
    rate = 1000 / benchmark.stats.stats.mean
    print_header(f"ECMP HASH - {rate:,.0f} five-tuple hashes/second")
