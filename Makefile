# Convenience targets for the PortLand reproduction.

.PHONY: install test bench examples lint-clean all

install:
	pip install -e .

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

all: install test bench
