# Convenience targets for the PortLand reproduction.

.PHONY: install test bench examples lint-clean verify all

install:
	pip install -e .

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

# Fixed-seed invariant fault campaign (see docs/VERIFY.md).
verify:
	PYTHONPATH=src python -m repro.cli --seed 7 verify --scenarios 25

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

all: install test bench
