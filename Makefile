# Convenience targets for the PortLand reproduction.

.PHONY: install test bench bench-kernel bench-smoke examples lint-clean verify all

install:
	pip install -e .

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

# Simulator-substrate benchmarks (event kernel, flow table, decision
# cache); machine-readable results land in BENCH_sim_kernel.json.
bench-kernel:
	PYTHONPATH=src pytest benchmarks/bench_sim_kernel.py --benchmark-only \
		--benchmark-json=BENCH_sim_kernel.json

# Reduced-iteration fast-path ratio gate (no JSON artifact). Also part
# of the plain tier-1 test run, since it lives under tests/.
bench-smoke:
	PYTHONPATH=src pytest tests/test_bench_smoke.py -q

# Fixed-seed invariant fault campaign (see docs/VERIFY.md).
verify:
	PYTHONPATH=src python -m repro.cli --seed 7 verify --scenarios 25

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

all: install test bench
