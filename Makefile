# Convenience targets for the PortLand reproduction.

.PHONY: install test bench bench-kernel bench-smoke bench-flows bench-flows-smoke bench-hybrid bench-hybrid-smoke bench-topo bench-parallel bench-fm bench-policy examples lint-clean verify verify-flows verify-hybrid verify-topo verify-parallel verify-fm verify-policy test-topo all

install:
	pip install -e .

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

# Simulator-substrate benchmarks (event kernel, flow table, decision
# cache); writes BENCH_sim_kernel.json (common schema, see
# repro.metrics.benchout).
bench-kernel:
	PYTHONPATH=src pytest benchmarks/bench_sim_kernel.py --benchmark-only

# Reduced-iteration fast-path ratio gate (no JSON artifact). Also part
# of the plain tier-1 test run, since it lives under tests/.
bench-smoke:
	PYTHONPATH=src pytest tests/test_bench_smoke.py -q

# Flow-level (fluid) engine acceptance: k=8 shuffle in both execution
# modes + k=4 agreement numbers; writes BENCH_flows.json (docs/FLOWS.md).
bench-flows:
	PYTHONPATH=src pytest benchmarks/bench_flows.py --benchmark-only -q

# Reduced-scale flow-mode agreement/event gates (tier-1 cousin).
bench-flows-smoke:
	PYTHONPATH=src pytest tests/test_flows_smoke.py -q

# Hybrid fluid+frame acceptance: k=16 fluid background sea under a
# frame TCP foreground with mid-window faults; writes BENCH_hybrid.json
# (docs/FLOWS.md, hybrid section).
bench-hybrid:
	PYTHONPATH=src pytest benchmarks/bench_hybrid.py --benchmark-only -q

# Reduced-scale hybrid coupling gates (tier-1 cousin).
bench-hybrid-smoke:
	PYTHONPATH=src pytest tests/test_hybrid_smoke.py -q

# Fixed-seed invariant fault campaign (see docs/VERIFY.md).
verify:
	PYTHONPATH=src python -m repro.cli --seed 7 verify --scenarios 25

# The same campaign over the fluid engine: the oracle checks every
# resolved flow path instead of per-frame hops (docs/FLOWS.md).
verify-flows:
	PYTHONPATH=src python -m repro.cli --seed 7 verify --scenarios 25 --flow-mode

# The campaign in hybrid fluid+frame mode: probe pairs alternate
# between fluid flows and frame UDP streams on capacity-coupled links,
# so the oracle checks frame hops and fluid paths in the same scenario.
verify-hybrid:
	PYTHONPATH=src python -m repro.cli --seed 7 verify --scenarios 25 --hybrid

# The same 25-scenario campaign on every topology backend — the
# cross-fabric conformance gate (docs/TOPOLOGIES.md).
verify-topo:
	for b in fattree jellyfish twolayer; do \
		echo "== backend $$b"; \
		PYTHONPATH=src python -m repro.cli --seed 7 verify \
			--scenarios 25 --backend $$b || exit 1; \
	done

# Full cross-fabric conformance matrix (tier-1 runs only its smoke rows).
test-topo:
	PYTHONPATH=src pytest tests/conformance tests/topology -q -m ""

# Cross-backend diversity/completion smoke (ratio-logged, not gated);
# writes BENCH_topo.json.
bench-topo:
	PYTHONPATH=src pytest benchmarks/bench_topologies.py --benchmark-only -q

# Sharded parallel kernel: k=16 all-to-all, sharded vs single-process,
# determinism asserted then speedup/overhead gated; writes
# BENCH_parallel.json (docs/PERF.md).
bench-parallel:
	PYTHONPATH=src pytest benchmarks/bench_parallel.py --benchmark-only -q

# The fixed-seed campaign sharded over 4 worker processes — results are
# identical to `make verify`, only wall time changes.
verify-parallel:
	PYTHONPATH=src python -m repro.cli --seed 7 verify --scenarios 25 --parallel 4

# Sharded fabric manager under fire: the 25-scenario campaign with a
# 4-way FM shard cluster, batched + incremental override pushes, and
# fm-restart / fm-partition steps mixed into the op schedule
# (docs/PROTOCOLS.md, fabric-manager section). The second lane repeats
# at k=8 under host churn: a background ARP storm plus a
# migration-weighted op mix stress soft-state refresh and the shard
# registry at scale.
verify-fm:
	PYTHONPATH=src python -m repro.cli --seed 7 verify --scenarios 25 \
		--fm-shards 4 --fm-ops --fm-batch 0.02 --fm-incremental
	PYTHONPATH=src python -m repro.cli --seed 7 verify --scenarios 5 \
		--k 8 --fm-shards 4 --fm-ops --fm-batch 0.02 --fm-incremental \
		--churn

# The 25-scenario campaign with acl-install/acl-revoke steps mixed in:
# the oracle additionally checks that every drop on an ACL'd pair is
# justified, that no frame leaks across an installed ACL, and that
# strict-priority ports never let bulk bytes ahead of priority frames
# (docs/POLICY.md).
verify-policy:
	PYTHONPATH=src python -m repro.cli --seed 7 verify --scenarios 25 \
		--policy

# Fabric-manager control-plane benches (Figs. 14/15 extended to the
# sharded FM): batching/incremental gates; writes BENCH_fm.json.
bench-fm:
	PYTHONPATH=src pytest benchmarks/bench_fig14_fm_control_traffic.py \
		benchmarks/bench_fig15_fm_cpu.py --benchmark-only -q

# QoS headline: k=8 incast, strict-priority vs FIFO queues — gates a
# >=2x mice p99 one-way-latency win for priority queueing and writes
# BENCH_policy.json (docs/POLICY.md).
bench-policy:
	PYTHONPATH=src pytest benchmarks/bench_policy.py --benchmark-only -q

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

all: install test bench
