"""Host-side ARP cache with entry timeout.

PortLand's scalability argument (Figs. 14–15) hinges on ARP behaviour:
cache misses become unicast queries to the fabric manager instead of
fabric-wide broadcasts. The cache itself is the standard host mechanism
and identical for all designs.
"""

from __future__ import annotations

from repro.net.addresses import IPv4Address, MacAddress

#: Default entry lifetime. Linux defaults are in the 30–60 s range.
DEFAULT_ARP_TIMEOUT_S = 60.0


class ArpCache:
    """IP → MAC mapping with per-entry expiry."""

    def __init__(self, timeout_s: float = DEFAULT_ARP_TIMEOUT_S) -> None:
        self.timeout_s = timeout_s
        self._entries: dict[IPv4Address, tuple[MacAddress, float]] = {}
        #: Cumulative counters for measurement.
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, ip: IPv4Address, now: float) -> MacAddress | None:
        """Return the cached MAC for ``ip`` or ``None`` if absent/expired."""
        entry = self._entries.get(ip)
        if entry is None:
            self.misses += 1
            return None
        mac, learned_at = entry
        if now - learned_at > self.timeout_s:
            del self._entries[ip]
            self.misses += 1
            return None
        self.hits += 1
        return mac

    def insert(self, ip: IPv4Address, mac: MacAddress, now: float) -> None:
        """Learn (or refresh) a mapping."""
        self._entries[ip] = (mac, now)

    def invalidate(self, ip: IPv4Address) -> bool:
        """Forget ``ip``. Returns True if an entry was present."""
        return self._entries.pop(ip, None) is not None

    def entries(self, now: float) -> dict[IPv4Address, MacAddress]:
        """A snapshot of all live (non-expired) entries."""
        return {
            ip: mac
            for ip, (mac, learned_at) in self._entries.items()
            if now - learned_at <= self.timeout_s
        }
