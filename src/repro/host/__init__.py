"""End-host stack: ARP, IPv4, UDP, TCP, IGMP, and traffic apps."""

from repro.host.arp_cache import ArpCache
from repro.host.host import Host
from repro.host.hypervisor import Hypervisor
from repro.host.tcp import TcpConnection, TcpListener, TcpStack, TcpState
from repro.host.udp_socket import UdpSocket

__all__ = [
    "ArpCache",
    "Host",
    "Hypervisor",
    "TcpConnection",
    "TcpListener",
    "TcpStack",
    "TcpState",
    "UdpSocket",
]
