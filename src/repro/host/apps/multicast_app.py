"""Multicast sender and receiver apps (Fig. 12 workload)."""

from __future__ import annotations

from repro.host.apps.udp_stream import UdpStreamReceiver
from repro.host.host import Host
from repro.net.addresses import IPv4Address
from repro.net.packet import AppData
from repro.sim.process import PeriodicTask


class MulticastSender:
    """Streams sequenced datagrams to a multicast group."""

    def __init__(
        self,
        host: Host,
        group: IPv4Address,
        port: int,
        rate_pps: float = 1000.0,
        payload_bytes: int = 64,
    ) -> None:
        if not group.is_multicast:
            raise ValueError(f"{group} is not a multicast group")
        self.host = host
        self.group = group
        self.port = port
        self.payload_bytes = payload_bytes
        self.flow_id = f"{host.name}->mc:{group}"
        self.socket = host.udp_socket()
        self.next_seq = 0
        self._task = PeriodicTask(host.sim, 1.0 / rate_pps, self._tick,
                                  rng_name=f"mcast/{self.flow_id}")

    def start(self, first_delay: float = 0.0) -> None:
        """Begin streaming to the group."""
        self._task.start(first_delay)

    def stop(self) -> None:
        """Stop streaming."""
        self._task.stop()

    def _tick(self) -> None:
        payload = AppData(self.payload_bytes, flow_id=self.flow_id,
                          seq=self.next_seq, sent_at=self.host.sim.now)
        self.next_seq += 1
        self.socket.sendto(self.group, self.port, payload)


class MulticastReceiver(UdpStreamReceiver):
    """Joins a group via IGMP and records every delivered datagram."""

    def __init__(self, host: Host, group: IPv4Address, port: int,
                 rate_bin_s: float = 0.01) -> None:
        super().__init__(host, port, rate_bin_s)
        self.group = group
        host.join_group(group)

    def leave(self) -> None:
        """Leave the group (emits an IGMP leave)."""
        self.host.leave_group(self.group)
