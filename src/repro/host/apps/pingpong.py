"""UDP request/response ("ping") app for RTT and reachability probes."""

from __future__ import annotations

from repro.host.host import Host
from repro.net.addresses import IPv4Address
from repro.net.packet import AppData, Packet


class UdpEchoServer:
    """Echoes every datagram back to its sender."""

    def __init__(self, host: Host, port: int = 7) -> None:
        self.host = host
        self.socket = host.udp_socket(port)
        self.socket.on_datagram = self._on_datagram
        self.echoed = 0

    def _on_datagram(self, src_ip: IPv4Address, src_port: int,
                     payload: "Packet | bytes", now: float) -> None:
        self.echoed += 1
        self.socket.sendto(src_ip, src_port, payload)


class UdpPinger:
    """Sends probes and records round-trip times."""

    def __init__(self, host: Host, dst_ip: IPv4Address, dst_port: int = 7,
                 payload_bytes: int = 56) -> None:
        self.host = host
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.payload_bytes = payload_bytes
        self.socket = host.udp_socket()
        self.socket.on_datagram = self._on_reply
        self._outstanding: dict[int, float] = {}
        self._next_seq = 0
        #: (seq, rtt) for every answered probe.
        self.rtts: list[tuple[int, float]] = []

    def ping(self) -> int:
        """Send one probe; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        self._outstanding[seq] = self.host.sim.now
        payload = AppData(self.payload_bytes, flow_id=f"ping/{self.host.name}",
                          seq=seq, sent_at=self.host.sim.now)
        self.socket.sendto(self.dst_ip, self.dst_port, payload)
        return seq

    def _on_reply(self, src_ip: IPv4Address, src_port: int,
                  payload: "Packet | bytes", now: float) -> None:
        if not isinstance(payload, AppData):
            return
        sent_at = self._outstanding.pop(payload.seq, None)
        if sent_at is not None:
            self.rtts.append((payload.seq, now - sent_at))

    @property
    def answered(self) -> int:
        """Probes that came back."""
        return len(self.rtts)

    @property
    def lost(self) -> int:
        """Probes still unanswered."""
        return len(self._outstanding)
