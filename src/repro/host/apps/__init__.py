"""Application-layer traffic sources and sinks used by the experiments."""

from repro.host.apps.multicast_app import MulticastReceiver, MulticastSender
from repro.host.apps.pingpong import UdpEchoServer, UdpPinger
from repro.host.apps.tcp_bulk import TcpBulkSender, TcpSink
from repro.host.apps.udp_stream import UdpStreamReceiver, UdpStreamSender

__all__ = [
    "MulticastReceiver",
    "MulticastSender",
    "TcpBulkSender",
    "TcpSink",
    "UdpEchoServer",
    "UdpPinger",
    "UdpStreamReceiver",
    "UdpStreamSender",
]
