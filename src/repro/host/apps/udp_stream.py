"""Constant-bit-rate UDP stream sender and measuring receiver.

This is the workload behind the convergence experiments (Figs. 10 and
12): a sender emits sequenced datagrams at a fixed rate; the receiver
records every arrival so the analysis can locate loss windows.
"""

from __future__ import annotations

from repro.host.host import Host
from repro.net.addresses import IPv4Address
from repro.net.packet import AppData, Packet
from repro.sim.process import PeriodicTask
from repro.sim.stats import RateMeter


class UdpStreamSender:
    """Sends ``payload_bytes`` datagrams at ``rate_pps`` to one target."""

    def __init__(
        self,
        host: Host,
        dst_ip: IPv4Address,
        dst_port: int,
        rate_pps: float = 1000.0,
        payload_bytes: int = 64,
        flow_id: str | None = None,
    ) -> None:
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        self.host = host
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.payload_bytes = payload_bytes
        self.flow_id = flow_id or f"{host.name}->{dst_ip}:{dst_port}"
        self.socket = host.udp_socket()
        self.next_seq = 0
        self._task = PeriodicTask(
            host.sim, 1.0 / rate_pps, self._tick,
            jitter=0.0, rng_name=f"udpstream/{self.flow_id}",
        )

    def start(self, first_delay: float = 0.0) -> None:
        """Begin streaming after ``first_delay`` seconds."""
        self._task.start(first_delay)

    def stop(self) -> None:
        """Stop streaming."""
        self._task.stop()

    def _tick(self) -> None:
        payload = AppData(self.payload_bytes, flow_id=self.flow_id,
                          seq=self.next_seq, sent_at=self.host.sim.now)
        self.next_seq += 1
        self.socket.sendto(self.dst_ip, self.dst_port, payload)


class UdpStreamReceiver:
    """Records arrival time and sequence number of every datagram."""

    def __init__(self, host: Host, port: int, rate_bin_s: float = 0.01) -> None:
        self.host = host
        self.socket = host.udp_socket(port)
        self.socket.on_datagram = self._on_datagram
        #: (arrival_time, seq, one_way_delay) per datagram, in arrival order.
        self.arrivals: list[tuple[float, int, float]] = []
        self.rate = RateMeter(rate_bin_s, name=f"{host.name}:{port}")
        #: Arrivals per flow_id, for multi-flow experiments.
        self.by_flow: dict[str, list[tuple[float, int]]] = {}

    def _on_datagram(self, src_ip: IPv4Address, src_port: int,
                     payload: "Packet | bytes", now: float) -> None:
        if isinstance(payload, AppData):
            seq = payload.seq
            delay = now - payload.sent_at
            self.rate.record(now, payload.length)
            self.by_flow.setdefault(payload.flow_id, []).append((now, seq))
        else:
            seq = -1
            delay = 0.0
            self.rate.record(now, len(payload) if payload else 0)
        self.arrivals.append((now, seq, delay))

    @property
    def received(self) -> int:
        """Total datagrams received."""
        return len(self.arrivals)

    def arrival_times(self) -> list[float]:
        """All arrival timestamps, in order."""
        return [t for t, _seq, _d in self.arrivals]

    def max_gap(self, start: float, end: float) -> tuple[float, float, float]:
        """Largest inter-arrival gap overlapping [start, end).

        Returns ``(gap_length, gap_start, gap_end)``. This is the paper's
        convergence metric: with a CBR flow, the outage appears as the
        longest silence at the receiver around the failure instant.
        """
        times = [t for t in self.arrival_times() if start <= t < end]
        if len(times) < 2:
            return (end - start, start, end)
        best = (0.0, start, start)
        edges = [start] + times + [end]
        for i in range(1, len(edges)):
            gap = edges[i] - edges[i - 1]
            if gap > best[0]:
                best = (gap, edges[i - 1], edges[i])
        return best
