"""Bulk TCP transfer apps: a greedy sender and a measuring sink.

Used for the TCP convergence (Fig. 11) and VM migration (Fig. 13)
timelines: the sink's rate meter is the "throughput vs. time" series the
paper plots.
"""

from __future__ import annotations

from repro.host.host import Host
from repro.host.tcp.connection import TcpConnection
from repro.net.addresses import IPv4Address
from repro.sim.stats import RateMeter, TimeSeries

#: Amount the sender keeps queued so the connection is never app-limited.
REFILL_CHUNK = 4 * 1024 * 1024


class TcpBulkSender:
    """Opens a connection and keeps its send buffer permanently full."""

    def __init__(self, host: Host, dst_ip: IPv4Address, dst_port: int,
                 total_bytes: int | None = None,
                 min_rto_s: float | None = None) -> None:
        self.host = host
        self.total_bytes = total_bytes
        self._pushed = 0
        self.conn: TcpConnection = host.tcp.connect(dst_ip, dst_port,
                                                    min_rto_s=min_rto_s)
        self.conn.on_established = self._refill
        #: (time, snd_una) samples recorded on every refill check — a
        #: coarse sender-side progress curve.
        self.progress = TimeSeries(f"{host.name}-progress")
        self._refill_pending = False

    def _refill(self) -> None:
        self._refill_pending = False
        self.progress.record(self.host.sim.now,
                             float(self.conn.snd_una - self.conn.iss))
        if self.conn.state.value not in ("ESTABLISHED", "CLOSE_WAIT"):
            return
        want = REFILL_CHUNK
        if self.total_bytes is not None:
            want = min(want, self.total_bytes - self._pushed)
        backlog = self.conn.unsent_bytes
        if want > 0 and backlog < REFILL_CHUNK // 2:
            self.conn.send(want)
            self._pushed += want
        if self.total_bytes is not None and self._pushed >= self.total_bytes:
            # Every byte is queued: close now, so the FIN rides right
            # behind the data (the connection defers it until the send
            # buffer drains). Waiting for the next poll tick here would
            # quantize every finite transfer's FCT up to the 10 ms timer.
            self.conn.close()
            return
        if not self._refill_pending:
            self._refill_pending = True
            self.host.sim.schedule(0.01, self._refill)

    @property
    def acked_bytes(self) -> int:
        """Bytes the receiver has cumulatively acknowledged."""
        return self.conn.bytes_acked


class TcpSink:
    """Listens on a port, accepts connections, meters goodput."""

    def __init__(self, host: Host, port: int, rate_bin_s: float = 0.01) -> None:
        self.host = host
        self.rate = RateMeter(rate_bin_s, name=f"{host.name}:{port}")
        self.total_bytes = 0
        self.connections: list[TcpConnection] = []
        self.listener = host.tcp.listen(port, self._on_accept)

    def _on_accept(self, conn: TcpConnection) -> None:
        self.connections.append(conn)
        conn.on_receive = self._on_receive
        # A sink has nothing more to say once the sender finishes.
        conn.on_closed = lambda reason: conn.close()

    def _on_receive(self, nbytes: int, now: float) -> None:
        self.total_bytes += nbytes
        self.rate.record(now, nbytes)

    def goodput_series(self, start: float = 0.0,
                       end: float | None = None) -> list[tuple[float, float]]:
        """(bin_start, bytes/sec) goodput timeline."""
        return self.rate.series(start, end, bytes_per_sec=True)
