"""The TCP connection state machine.

Implements enough of RFC 793/5681/6298 to reproduce the paper's
transport-level timelines (Figs. 11 and 13): three-way handshake,
cumulative ACKs with out-of-order reassembly, retransmission timeout
with exponential backoff and a 200 ms floor, fast retransmit / NewReno
fast recovery, and orderly close. Payload bytes are synthetic — the
application deals in byte *counts*.

Deliberate simplifications (documented, none affect the reproduced
figures): no delayed ACKs (every data segment is acknowledged
immediately), no window scaling (the simulated bandwidth-delay product
is far below 64 KiB), no SACK, no Nagle.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable

from repro.errors import HostError
from repro.host.tcp.congestion import DEFAULT_MSS, RenoCongestionControl
from repro.host.tcp.reassembly import ReassemblyBuffer
from repro.host.tcp.rto import RtoEstimator
from repro.host.tcp.seqnum import unwrap, wire
from repro.net.addresses import IPv4Address
from repro.net.packet import AppData
from repro.net.tcp_wire import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    TcpSegment,
)
from repro.sim.process import Timer

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.tcp.stack import TcpStack

#: Fixed advertised receive window (no window scaling).
RECEIVE_WINDOW = 65535
#: 2*MSL for TIME_WAIT; shortened relative to real stacks so simulations
#: and tests do not idle for minutes.
TIME_WAIT_S = 2.0
DUPACK_THRESHOLD = 3
#: Give up after this many consecutive RTO expiries.
MAX_RETRIES = 15


class TcpState(enum.Enum):
    """RFC 793 connection states (LISTEN lives in the stack)."""

    CLOSED = "CLOSED"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


class TcpConnection:
    """One TCP connection; also the application-facing socket object.

    Applications interact through :meth:`send`, :meth:`close` and the
    ``on_established`` / ``on_receive`` / ``on_closed`` callbacks.
    """

    def __init__(
        self,
        stack: "TcpStack",
        local_port: int,
        remote_ip: IPv4Address,
        remote_port: int,
        mss: int = DEFAULT_MSS,
        min_rto_s: float | None = None,
        delayed_ack_s: float | None = None,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.state = TcpState.CLOSED
        self.mss = mss
        self.cc = RenoCongestionControl(mss)
        self.rto = RtoEstimator() if min_rto_s is None else RtoEstimator(min_rto_s=min_rto_s)

        # Send side (absolute sequence positions).
        self.iss = self._pick_iss()
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.snd_wnd = RECEIVE_WINDOW
        self.unsent_bytes = 0
        self.fin_queued = False
        self.fin_seq: int | None = None  # sequence number consumed by our FIN
        self._dupacks = 0
        self._recover = self.iss  # NewReno recovery point
        self._rto_recover: int | None = None  # go-back-N point after RTO
        self._retries = 0
        # RTT sampling (Karn): (absolute end-seq being timed, send time).
        self._rtt_probe: tuple[int, float] | None = None
        self._retransmitted_since_probe = False

        # Receive side, initialised on SYN.
        self.irs: int | None = None
        self.reassembly: ReassemblyBuffer | None = None
        self._peer_fin_seq: int | None = None

        self._rtx_timer = Timer(self.sim, self._on_rto)
        self._time_wait_timer = Timer(self.sim, self._on_time_wait_done)
        self._close_notified = False
        #: Delayed-ACK interval (RFC 1122 §4.2.3.2); ``None`` disables
        #: (the default — acks are immediate, which keeps the reproduced
        #: timelines clean). When set, acks coalesce to every second
        #: full segment or the timer, whichever first; out-of-order data
        #: still acks immediately (RFC 5681 dupack requirement).
        self.delayed_ack_s = delayed_ack_s
        self._delack_timer = Timer(self.sim, self._delack_fire)
        self._segs_unacked = 0

        # Application callbacks.
        self.on_established: Callable[[], None] | None = None
        self.on_receive: Callable[[int, float], None] | None = None
        self.on_closed: Callable[[str], None] | None = None
        #: Fires once when our FIN is acknowledged — i.e. every byte we
        #: sent has been delivered and acked (flow-completion instant).
        self.on_finished: Callable[[], None] | None = None
        self._finish_notified = False

        # Measurement counters.
        self.bytes_sent = 0
        self.bytes_acked = 0
        self.bytes_received = 0
        self.segments_retransmitted = 0

    # ------------------------------------------------------------------
    # Public API

    @property
    def key(self) -> tuple[int, IPv4Address, int]:
        """Demux key within the owning host: (lport, raddr, rport)."""
        return (self.local_port, self.remote_ip, self.remote_port)

    @property
    def flight_size(self) -> int:
        """Bytes sent but not yet cumulatively acknowledged."""
        return self.snd_nxt - self.snd_una

    def open_active(self) -> None:
        """Client side: emit SYN and enter SYN_SENT."""
        if self.state is not TcpState.CLOSED:
            raise HostError(f"open_active in state {self.state}")
        self.state = TcpState.SYN_SENT
        self.snd_nxt = self.iss + 1
        self._emit(seq=self.iss, flags=FLAG_SYN)
        self._arm_rtx()

    def open_passive(self, syn: TcpSegment) -> None:
        """Server side: we received a SYN; reply SYN|ACK, enter SYN_RCVD."""
        if self.state is not TcpState.CLOSED:
            raise HostError(f"open_passive in state {self.state}")
        self.irs = syn.seq
        self.reassembly = ReassemblyBuffer(syn.seq + 1)
        self.snd_wnd = syn.window
        self.state = TcpState.SYN_RCVD
        self.snd_nxt = self.iss + 1
        self._emit(seq=self.iss, flags=FLAG_SYN | FLAG_ACK)
        self._arm_rtx()

    def send(self, nbytes: int) -> None:
        """Queue ``nbytes`` of application data for transmission."""
        if nbytes < 0:
            raise ValueError(f"cannot send {nbytes} bytes")
        if self.state not in (TcpState.SYN_SENT, TcpState.SYN_RCVD,
                              TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            raise HostError(f"send() in state {self.state}")
        if self.fin_queued:
            raise HostError("send() after close()")
        self.unsent_bytes += nbytes
        self._try_send()

    def close(self) -> None:
        """Orderly close: FIN after all queued data drains."""
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT):
            return
        if self.fin_queued:
            return
        self.fin_queued = True
        if self.state is TcpState.SYN_SENT:
            self._abort("closed before establishment")
            return
        self._try_send()

    def abort(self) -> None:
        """Hard reset: send RST, drop all state."""
        if self.state is TcpState.CLOSED:
            return
        self._emit(seq=self.snd_nxt, flags=FLAG_RST | FLAG_ACK)
        self._abort("local abort")

    # ------------------------------------------------------------------
    # Segment arrival

    def segment_arrives(self, seg: TcpSegment) -> None:
        """Main RFC-793 style dispatch for an inbound segment."""
        if seg.flags & FLAG_RST:
            self._handle_rst(seg)
            return
        if self.state is TcpState.SYN_SENT:
            self._arrives_syn_sent(seg)
            return
        if self.state is TcpState.CLOSED:
            return
        self._arrives_synchronized(seg)

    def _arrives_syn_sent(self, seg: TcpSegment) -> None:
        if not (seg.flags & FLAG_SYN and seg.flags & FLAG_ACK):
            return
        ack_abs = unwrap(seg.ack, self.snd_nxt)
        if ack_abs != self.iss + 1:
            return
        self.irs = seg.seq
        self.reassembly = ReassemblyBuffer(seg.seq + 1)
        self.snd_una = ack_abs
        self.snd_wnd = seg.window
        self._retries = 0
        self._rtx_timer.stop()
        self.state = TcpState.ESTABLISHED
        self._emit_ack()
        if self.on_established is not None:
            self.on_established()
        self._try_send()

    def _arrives_synchronized(self, seg: TcpSegment) -> None:
        assert self.reassembly is not None
        if seg.flags & FLAG_SYN:
            # Retransmitted SYN on the passive side: re-ack it.
            if self.state is TcpState.SYN_RCVD:
                self._emit(seq=self.iss, flags=FLAG_SYN | FLAG_ACK)
            return

        if seg.flags & FLAG_ACK:
            self._process_ack(seg)

        delivered = 0
        if seg.payload_length > 0:
            seq_abs = unwrap(seg.seq, self.reassembly.rcv_nxt)
            delivered = self.reassembly.offer(seq_abs, seg.payload_length)
            self.bytes_received += delivered

        fin_advanced = False
        if seg.flags & FLAG_FIN:
            seq_abs = unwrap(seg.seq, self.reassembly.rcv_nxt)
            fin_seq = seq_abs + seg.payload_length
            self._peer_fin_seq = fin_seq
        if (self._peer_fin_seq is not None
                and self.reassembly.rcv_nxt == self._peer_fin_seq):
            self.reassembly.rcv_nxt += 1
            self._peer_fin_seq = None
            fin_advanced = True

        if delivered and self.on_receive is not None:
            self.on_receive(delivered, self.sim.now)

        if fin_advanced:
            self._handle_peer_fin()
        elif seg.flags & FLAG_FIN:
            self._emit_ack()
        elif seg.payload_length > 0:
            self._ack_data(delivered)

    def _ack_data(self, delivered: int) -> None:
        """Acknowledge received data, coalescing when delayed ACKs are
        enabled. Out-of-order arrivals (delivered == 0) always ack
        immediately so the sender's dupack machinery works."""
        if self.delayed_ack_s is None or delivered == 0:
            self._emit_ack()
            return
        self._segs_unacked += 1
        if self._segs_unacked >= 2:
            self._emit_ack()
        elif not self._delack_timer.armed:
            self._delack_timer.start(self.delayed_ack_s)

    def _delack_fire(self) -> None:
        if self._segs_unacked > 0:
            self._emit_ack()

    def _handle_peer_fin(self) -> None:
        self._emit_ack()
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
        elif self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.CLOSING
        elif self.state is TcpState.FIN_WAIT_2:
            self._enter_time_wait()
        if self.state is TcpState.CLOSE_WAIT:
            self._notify_closed("peer closed")

    def _handle_rst(self, seg: TcpSegment) -> None:
        if self.state is TcpState.SYN_SENT:
            ack_abs = unwrap(seg.ack, self.snd_nxt)
            if seg.flags & FLAG_ACK and ack_abs != self.iss + 1:
                return  # RST for something else
        self._abort("reset by peer")

    # ------------------------------------------------------------------
    # ACK processing / congestion control

    def _process_ack(self, seg: TcpSegment) -> None:
        ack_abs = unwrap(seg.ack, self.snd_nxt)
        self.snd_wnd = seg.window

        if ack_abs > self.snd_nxt:
            return  # acks data we never sent; ignore
        if ack_abs > self.snd_una:
            self._on_new_ack(ack_abs)
        elif (ack_abs == self.snd_una and seg.payload_length == 0
              and not seg.flags & (FLAG_SYN | FLAG_FIN)
              and self.flight_size > 0):
            self._on_dupack()
        self._try_send()

    def _on_new_ack(self, ack_abs: int) -> None:
        acked = ack_abs - self.snd_una
        self.snd_una = ack_abs
        self.bytes_acked += acked
        self._retries = 0
        self.rto.reset_backoff()
        self._dupacks = 0

        # RTT sample (Karn's rule: skip when a retransmission intervened).
        if self._rtt_probe is not None:
            probe_seq, sent_at = self._rtt_probe
            if ack_abs >= probe_seq:
                if not self._retransmitted_since_probe:
                    self.rto.sample(self.sim.now - sent_at)
                self._rtt_probe = None
                self._retransmitted_since_probe = False

        if self.cc.in_fast_recovery:
            if ack_abs >= self._recover:
                self.cc.exit_fast_recovery()
            else:
                # NewReno partial ACK: retransmit next hole immediately.
                self.cc.on_partial_ack(acked)
                self._retransmit_head()
        else:
            self.cc.on_new_ack(acked)

        # After an RTO, lost in-flight data is recovered go-back-N style,
        # paced by the (slow-start) congestion window: each ACK that does
        # not yet cover the pre-timeout snd_nxt triggers retransmission of
        # the next cwnd's worth of the hole.
        if self._rto_recover is not None:
            if ack_abs >= self._rto_recover:
                self._rto_recover = None
            else:
                self._retransmit_gap()

        # Connection-establishment and close bookkeeping.
        if self.state is TcpState.SYN_RCVD and ack_abs >= self.iss + 1:
            self.state = TcpState.ESTABLISHED
            if self.on_established is not None:
                self.on_established()
        if self.fin_seq is not None and ack_abs >= self.fin_seq + 1:
            self._on_fin_acked()

        if self.flight_size == 0:
            self._rtx_timer.stop()
        else:
            self._arm_rtx()

    def _on_dupack(self) -> None:
        self._dupacks += 1
        if self.cc.in_fast_recovery:
            self.cc.on_dupack_in_recovery()
            return
        if self._dupacks == DUPACK_THRESHOLD:
            self._recover = self.snd_nxt
            self.cc.enter_fast_recovery(self.flight_size)
            self._retransmit_head()

    def _on_fin_acked(self) -> None:
        if not self._finish_notified:
            self._finish_notified = True
            if self.on_finished is not None:
                self.on_finished()
        if self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.FIN_WAIT_2
        elif self.state is TcpState.CLOSING:
            self._enter_time_wait()
        elif self.state is TcpState.LAST_ACK:
            self._teardown("closed")

    # ------------------------------------------------------------------
    # Transmission

    def _usable_window(self) -> int:
        window = min(int(self.cc.cwnd), self.snd_wnd)
        return max(0, window - self.flight_size)

    def _try_send(self) -> None:
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT,
                              TcpState.FIN_WAIT_1, TcpState.CLOSING,
                              TcpState.LAST_ACK):
            return
        sent_any = False
        while self.unsent_bytes > 0:
            room = self._usable_window()
            if room <= 0:
                break
            length = min(self.mss, self.unsent_bytes)
            if length > room and self.flight_size > 0:
                # Sender-side silly-window avoidance (RFC 1122 §4.2.3.4):
                # never emit a runt while a full segment is pending —
                # wait for the window to open by at least one MSS.
                break
            length = min(length, room)
            self._emit_data(self.snd_nxt, length)
            self.snd_nxt += length
            self.unsent_bytes -= length
            self.bytes_sent += length
            sent_any = True
        if (self.fin_queued and self.unsent_bytes == 0 and self.fin_seq is None
                and self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)):
            self._send_fin()
            sent_any = True
        if sent_any:
            self._arm_rtx()

    def _send_fin(self) -> None:
        self.fin_seq = self.snd_nxt
        self._emit(seq=self.snd_nxt, flags=FLAG_FIN | FLAG_ACK)
        self.snd_nxt += 1
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT_1
        elif self.state is TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK

    def _emit_data(self, seq_abs: int, length: int) -> None:
        payload = AppData(length, flow_id=f"{self.stack.host.name}:{self.local_port}",
                          seq=seq_abs, sent_at=self.sim.now)
        self._emit(seq=seq_abs, flags=FLAG_ACK | FLAG_PSH, payload=payload)
        if self._rtt_probe is None:
            self._rtt_probe = (seq_abs + length, self.sim.now)
            self._retransmitted_since_probe = False

    def _emit_ack(self) -> None:
        self._segs_unacked = 0
        self._delack_timer.stop()
        self._emit(seq=self.snd_nxt, flags=FLAG_ACK)

    def _emit(self, seq: int, flags: int, payload: AppData | None = None) -> None:
        ack_wire = 0
        if flags & FLAG_ACK and self.reassembly is not None:
            ack_wire = wire(self.reassembly.rcv_nxt)
        segment = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=wire(seq),
            ack=ack_wire,
            flags=flags,
            window=RECEIVE_WINDOW,
            payload=payload,
        )
        self.stack.transmit(self.remote_ip, segment)

    # ------------------------------------------------------------------
    # Retransmission

    def _arm_rtx(self) -> None:
        self._rtx_timer.start(self.rto.rto)

    def _on_rto(self) -> None:
        if self.state is TcpState.CLOSED:
            return
        if self.flight_size == 0 and self.fin_seq is None:
            return
        self._retries += 1
        if self._retries > MAX_RETRIES:
            self._abort("too many retransmissions")
            return
        if self.flight_size > 0:
            self._rto_recover = self.snd_nxt
        self.cc.on_timeout(self.flight_size)
        self.rto.backoff()
        self._dupacks = 0
        self._retransmit_head()
        self._arm_rtx()

    def _retransmit_gap(self) -> None:
        """Retransmit up to one cwnd of the post-timeout hole."""
        assert self._rto_recover is not None
        data_end = self._rto_recover
        if self.fin_seq is not None:
            data_end = min(data_end, self.fin_seq)
        limit = max(min(int(self.cc.cwnd), self.snd_wnd), self.mss)
        offset = 0
        while offset < limit:
            start = self.snd_una + offset
            if start >= data_end:
                break
            length = min(self.mss, data_end - start)
            payload = AppData(length,
                              flow_id=f"{self.stack.host.name}:{self.local_port}",
                              seq=start, sent_at=self.sim.now)
            self._emit(seq=start, flags=FLAG_ACK | FLAG_PSH, payload=payload)
            self.segments_retransmitted += 1
            self._retransmitted_since_probe = True
            offset += length
        self._arm_rtx()

    def _retransmit_head(self) -> None:
        """Retransmit the earliest unacknowledged item (SYN, data, or FIN)."""
        self.segments_retransmitted += 1
        self._retransmitted_since_probe = True
        if self.state is TcpState.SYN_SENT:
            self._emit(seq=self.iss, flags=FLAG_SYN)
            return
        if self.state is TcpState.SYN_RCVD:
            self._emit(seq=self.iss, flags=FLAG_SYN | FLAG_ACK)
            return
        if self.fin_seq is not None and self.snd_una == self.fin_seq:
            self._emit(seq=self.fin_seq, flags=FLAG_FIN | FLAG_ACK)
            return
        data_end = self.snd_nxt if self.fin_seq is None else self.fin_seq
        length = min(self.mss, data_end - self.snd_una)
        if length > 0:
            payload = AppData(length, flow_id=f"{self.stack.host.name}:{self.local_port}",
                              seq=self.snd_una, sent_at=self.sim.now)
            self._emit(seq=self.snd_una, flags=FLAG_ACK | FLAG_PSH, payload=payload)

    # ------------------------------------------------------------------
    # Teardown

    def _enter_time_wait(self) -> None:
        self.state = TcpState.TIME_WAIT
        self._rtx_timer.stop()
        self._time_wait_timer.start(TIME_WAIT_S)

    def _on_time_wait_done(self) -> None:
        self._teardown("closed")

    def _abort(self, reason: str) -> None:
        self._teardown(reason)

    def _teardown(self, reason: str) -> None:
        already_closed = self.state is TcpState.CLOSED
        self.state = TcpState.CLOSED
        self._rtx_timer.stop()
        self._time_wait_timer.stop()
        self._delack_timer.stop()
        self.stack.forget(self)
        if not already_closed:
            self._notify_closed(reason)

    def _notify_closed(self, reason: str) -> None:
        """Invoke on_closed exactly once per connection."""
        if self._close_notified:
            return
        self._close_notified = True
        if self.on_closed is not None:
            self.on_closed(reason)

    def _pick_iss(self) -> int:
        rng = self.sim.random.stream(f"tcp-iss/{self.stack.host.name}")
        return rng.randrange(0, 1 << 32)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpConnection {self.stack.host.name}:{self.local_port} -> "
            f"{self.remote_ip}:{self.remote_port} {self.state.value}>"
        )
