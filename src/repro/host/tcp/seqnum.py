"""32-bit sequence-number arithmetic helpers.

Internally the connection tracks *absolute* 64-bit sequence positions
(immune to wrap); the wire carries the low 32 bits. ``unwrap`` recovers
the absolute position of a wire value given a nearby reference.
"""

from __future__ import annotations

SEQ_MOD = 1 << 32
_HALF = 1 << 31


def wire(seq_abs: int) -> int:
    """Low 32 bits of an absolute sequence position."""
    return seq_abs & (SEQ_MOD - 1)


def unwrap(seq_wire: int, reference_abs: int) -> int:
    """Absolute position of ``seq_wire`` closest to ``reference_abs``.

    Works for any offset within ±2^31 of the reference, which is far more
    than any in-flight window.
    """
    base = reference_abs - (reference_abs & (SEQ_MOD - 1))
    candidate = base + seq_wire
    if candidate - reference_abs > _HALF:
        candidate -= SEQ_MOD
    elif reference_abs - candidate > _HALF:
        candidate += SEQ_MOD
    return candidate
