"""Receive-side reassembly: cumulative delivery over out-of-order arrivals.

Payload bytes are synthetic (zeros), so the buffer tracks *ranges* of
absolute sequence space rather than data. ``offer`` returns how many new
bytes became deliverable in order, which the connection reports to the
application.
"""

from __future__ import annotations

import bisect


class ReassemblyBuffer:
    """Tracks received sequence ranges above ``rcv_nxt``."""

    def __init__(self, rcv_nxt: int) -> None:
        self.rcv_nxt = rcv_nxt
        # Sorted, disjoint, non-adjacent [start, end) ranges, all > rcv_nxt.
        self._ranges: list[tuple[int, int]] = []

    @property
    def out_of_order_bytes(self) -> int:
        """Bytes buffered above the in-order point."""
        return sum(end - start for start, end in self._ranges)

    def offer(self, seq: int, length: int) -> int:
        """Accept ``length`` bytes at absolute ``seq``.

        Returns the number of bytes newly delivered in order (``rcv_nxt``
        advances by exactly this amount). Duplicate and overlapping
        arrivals are handled.
        """
        if length < 0:
            raise ValueError(f"negative segment length: {length}")
        start, end = seq, seq + length
        # Clip anything already delivered.
        if end <= self.rcv_nxt:
            return 0
        start = max(start, self.rcv_nxt)
        if start < end:
            self._insert(start, end)
        return self._advance()

    def _insert(self, start: int, end: int) -> None:
        # Splice into the sorted range list in O(log n + merged) instead
        # of rebuilding and re-sorting it per segment: find the leftmost
        # range that touches [start, end), absorb every overlapping or
        # adjacent neighbour, and replace that slice with the union.
        ranges = self._ranges
        lo = bisect.bisect_left(ranges, (start, start))
        if lo > 0 and ranges[lo - 1][1] >= start:
            lo -= 1
        hi = lo
        while hi < len(ranges) and ranges[hi][0] <= end:
            start = min(start, ranges[hi][0])
            end = max(end, ranges[hi][1])
            hi += 1
        ranges[lo:hi] = [(start, end)]

    def _advance(self) -> int:
        delivered = 0
        while self._ranges and self._ranges[0][0] <= self.rcv_nxt:
            r_start, r_end = self._ranges.pop(0)
            if r_end > self.rcv_nxt:
                delivered += r_end - self.rcv_nxt
                self.rcv_nxt = r_end
        return delivered
