"""Retransmission-timeout estimation per RFC 6298.

The 200 ms *minimum* RTO matters for reproducing Fig. 11: the paper's
TCP flow resumes roughly one Linux min-RTO after a failure, because
fabric convergence (tens of ms) finishes well inside the first timeout.
"""

from __future__ import annotations

#: Linux's effective minimum RTO, and the constant visible in Fig. 11.
DEFAULT_MIN_RTO_S = 0.200
DEFAULT_MAX_RTO_S = 60.0
#: RFC 6298 initial RTO before any sample.
DEFAULT_INITIAL_RTO_S = 1.0

_ALPHA = 1 / 8
_BETA = 1 / 4
#: Clock granularity term in the RTO formula.
_GRANULARITY_S = 0.001


class RtoEstimator:
    """Tracks SRTT/RTTVAR and produces the current RTO with backoff."""

    def __init__(
        self,
        min_rto_s: float = DEFAULT_MIN_RTO_S,
        max_rto_s: float = DEFAULT_MAX_RTO_S,
        initial_rto_s: float = DEFAULT_INITIAL_RTO_S,
    ) -> None:
        self.min_rto_s = min_rto_s
        self.max_rto_s = max_rto_s
        self.srtt: float | None = None
        self.rttvar: float | None = None
        self._base_rto = initial_rto_s
        self._backoff = 1

    @property
    def rto(self) -> float:
        """Current timeout value, including exponential backoff."""
        return min(self._base_rto * self._backoff, self.max_rto_s)

    def sample(self, rtt: float) -> None:
        """Feed one round-trip measurement (never from a retransmitted
        segment — Karn's algorithm is the caller's job)."""
        if rtt < 0:
            raise ValueError(f"negative RTT sample: {rtt}")
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            assert self.rttvar is not None
            self.rttvar = (1 - _BETA) * self.rttvar + _BETA * abs(self.srtt - rtt)
            self.srtt = (1 - _ALPHA) * self.srtt + _ALPHA * rtt
        self._base_rto = max(
            self.min_rto_s,
            self.srtt + max(_GRANULARITY_S, 4 * self.rttvar),
        )
        self._backoff = 1

    def backoff(self) -> None:
        """Double the timeout after a retransmission timer expiry."""
        self._backoff = min(self._backoff * 2, 64)

    def reset_backoff(self) -> None:
        """Clear backoff (on any new ACK progress)."""
        self._backoff = 1
