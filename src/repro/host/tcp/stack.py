"""Per-host TCP stack: demultiplexing, listeners, and connection setup."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import HostError
from repro.host.tcp.connection import TcpConnection
from repro.net.addresses import IPv4Address
from repro.net.ipv4 import IPPROTO_TCP, IPv4Packet
from repro.net.packet import coerce
from repro.net.tcp_wire import FLAG_ACK, FLAG_RST, FLAG_SYN, TcpSegment

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.host import Host

AcceptHandler = Callable[[TcpConnection], None]


class TcpListener:
    """A passive socket: accepts inbound connections on a port."""

    def __init__(self, stack: "TcpStack", port: int,
                 on_accept: AcceptHandler | None = None,
                 delayed_ack_s: float | None = None) -> None:
        self.stack = stack
        self.port = port
        self.on_accept = on_accept
        self.delayed_ack_s = delayed_ack_s
        self.accepted: list[TcpConnection] = []

    def close(self) -> None:
        """Stop accepting new connections (existing ones are unaffected)."""
        self.stack.listeners.pop(self.port, None)


class TcpStack:
    """Owns all TCP state of one host."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        self.sim = host.sim
        self.connections: dict[tuple[int, IPv4Address, int], TcpConnection] = {}
        self.listeners: dict[int, TcpListener] = {}
        self._next_port = 33000

    # ------------------------------------------------------------------
    # Application API

    def connect(self, remote_ip: IPv4Address, remote_port: int,
                local_port: int | None = None,
                min_rto_s: float | None = None,
                delayed_ack_s: float | None = None) -> TcpConnection:
        """Open an active connection; returns the socket immediately
        (use ``on_established`` to learn when the handshake completes)."""
        if local_port is None:
            local_port = self._alloc_port(remote_ip, remote_port)
        conn = TcpConnection(self, local_port, remote_ip, remote_port,
                             min_rto_s=min_rto_s, delayed_ack_s=delayed_ack_s)
        key = conn.key
        if key in self.connections:
            raise HostError(f"{self.host.name}: connection {key} already exists")
        self.connections[key] = conn
        conn.open_active()
        return conn

    def listen(self, port: int, on_accept: AcceptHandler | None = None,
               delayed_ack_s: float | None = None) -> TcpListener:
        """Start accepting connections on ``port``. ``delayed_ack_s``
        applies to every accepted connection."""
        if port in self.listeners:
            raise HostError(f"{self.host.name}: TCP port {port} already listening")
        listener = TcpListener(self, port, on_accept, delayed_ack_s)
        self.listeners[port] = listener
        return listener

    # ------------------------------------------------------------------
    # Wiring used by TcpConnection

    def transmit(self, remote_ip: IPv4Address, segment: TcpSegment) -> None:
        """Hand a segment to the host's IP layer."""
        self.host.send_ip(remote_ip, IPPROTO_TCP, segment)

    def forget(self, conn: TcpConnection) -> None:
        """Remove a closed connection from the demux table."""
        self.connections.pop(conn.key, None)

    # ------------------------------------------------------------------
    # Inbound path

    def deliver(self, packet: IPv4Packet) -> None:
        """Demultiplex an inbound TCP/IP packet."""
        segment = coerce(packet.payload, TcpSegment)
        key = (segment.dst_port, packet.src, segment.src_port)
        conn = self.connections.get(key)
        if conn is not None:
            conn.segment_arrives(segment)
            return
        listener = self.listeners.get(segment.dst_port)
        if (listener is not None and segment.flags & FLAG_SYN
                and not segment.flags & FLAG_ACK):
            conn = TcpConnection(self, segment.dst_port, packet.src,
                                 segment.src_port,
                                 delayed_ack_s=listener.delayed_ack_s)
            self.connections[key] = conn
            listener.accepted.append(conn)
            conn.open_passive(segment)
            if listener.on_accept is not None:
                listener.on_accept(conn)
            return
        self._send_rst(packet.src, segment)

    def _send_rst(self, remote_ip: IPv4Address, offending: TcpSegment) -> None:
        if offending.flags & FLAG_RST:
            return  # never reset a reset
        if offending.flags & FLAG_ACK:
            rst = TcpSegment(offending.dst_port, offending.src_port,
                             seq=offending.ack, ack=0, flags=FLAG_RST, window=0)
        else:
            rst = TcpSegment(offending.dst_port, offending.src_port, seq=0,
                             ack=(offending.seq + offending.seg_len) & 0xFFFFFFFF,
                             flags=FLAG_RST | FLAG_ACK, window=0)
        self.transmit(remote_ip, rst)

    def _alloc_port(self, remote_ip: IPv4Address, remote_port: int) -> int:
        port = self._next_port
        while (port, remote_ip, remote_port) in self.connections:
            port += 1
            if port > 0xFFFF:
                raise HostError(f"{self.host.name}: TCP ports exhausted")
        self._next_port = port + 1 if port < 0xFFFF else 33000
        return port
