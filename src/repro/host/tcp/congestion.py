"""TCP Reno congestion control (RFC 5681) with NewReno-style recovery.

Only the *numbers* live here (cwnd, ssthresh); the connection drives the
transitions. Keeping the arithmetic separate makes it unit-testable and
lets ablation benchmarks swap in alternative controllers.
"""

from __future__ import annotations

DEFAULT_MSS = 1460
#: Initial window per RFC 6928 (≈10 segments), matching modern Linux.
INITIAL_WINDOW_SEGMENTS = 10


class RenoCongestionControl:
    """cwnd/ssthresh bookkeeping for Reno with fast recovery."""

    def __init__(self, mss: int = DEFAULT_MSS) -> None:
        self.mss = mss
        self.cwnd = INITIAL_WINDOW_SEGMENTS * mss
        self.ssthresh = float("inf")
        self.in_fast_recovery = False
        #: Diagnostic counters.
        self.timeouts = 0
        self.fast_retransmits = 0

    @property
    def in_slow_start(self) -> bool:
        """Whether cwnd is still below ssthresh."""
        return self.cwnd < self.ssthresh

    def on_new_ack(self, acked_bytes: int) -> None:
        """Grow cwnd for ``acked_bytes`` of newly acknowledged data."""
        if self.in_fast_recovery:
            return  # handled by exit_fast_recovery / on_dupack
        if self.in_slow_start:
            self.cwnd += min(acked_bytes, self.mss)
        else:
            # Congestion avoidance: ~one MSS per RTT.
            self.cwnd += max(1, self.mss * self.mss // int(self.cwnd))

    def on_timeout(self, flight_size: int) -> None:
        """RTO expiry: collapse to one segment (RFC 5681 §3.1)."""
        self.timeouts += 1
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.in_fast_recovery = False

    def enter_fast_recovery(self, flight_size: int) -> None:
        """Third duplicate ACK: halve and inflate (RFC 5681 §3.2)."""
        self.fast_retransmits += 1
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.in_fast_recovery = True

    def on_dupack_in_recovery(self) -> None:
        """Each further dupack inflates cwnd by one MSS."""
        if self.in_fast_recovery:
            self.cwnd += self.mss

    def on_partial_ack(self, acked_bytes: int) -> None:
        """NewReno partial ACK: deflate by the amount acked."""
        if self.in_fast_recovery:
            self.cwnd = max(self.ssthresh, self.cwnd - acked_bytes + self.mss)

    def exit_fast_recovery(self) -> None:
        """Full ACK: deflate to ssthresh (RFC 6582)."""
        if self.in_fast_recovery:
            self.cwnd = int(self.ssthresh)
            self.in_fast_recovery = False
