"""A compact but real TCP: handshake, Reno, RTO per RFC 6298."""

from repro.host.tcp.congestion import DEFAULT_MSS, RenoCongestionControl
from repro.host.tcp.connection import TcpConnection, TcpState
from repro.host.tcp.reassembly import ReassemblyBuffer
from repro.host.tcp.rto import RtoEstimator
from repro.host.tcp.stack import TcpListener, TcpStack

__all__ = [
    "DEFAULT_MSS",
    "ReassemblyBuffer",
    "RenoCongestionControl",
    "RtoEstimator",
    "TcpConnection",
    "TcpListener",
    "TcpStack",
    "TcpState",
]
