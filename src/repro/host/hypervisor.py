"""A hypervisor: several VM endpoints sharing one physical edge port.

This is what the ``vmid`` field of the PMAC exists for (paper §3.2):
multiple virtual machines — each with its own MAC and IP — reachable
through a single edge-switch port. The edge agent needs no changes: it
sees several AMACs on one port and allocates PMACs differing only in
``vmid``.

The hypervisor itself is a minimal learning vswitch: VM-to-VM traffic
is bridged locally; everything else goes out the uplink.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.host.host import Host
from repro.net.addresses import IPv4Address, MacAddress
from repro.net.ethernet import EthernetFrame
from repro.net.link import Link, Port
from repro.net.node import Node
from repro.sim.simulator import Simulator

#: Rate of the internal (software) links between VMs and the vswitch —
#: fast enough that the physical uplink is always the bottleneck.
INTERNAL_RATE_BPS = 10_000_000_000.0
INTERNAL_DELAY_S = 1e-7


class Hypervisor(Node):
    """A vswitch with one uplink (port 0) and one port per VM."""

    def __init__(self, sim: Simulator, name: str, num_vm_slots: int) -> None:
        if num_vm_slots < 1:
            raise TopologyError(f"{name}: need at least one VM slot")
        super().__init__(sim, name, num_ports=1 + num_vm_slots)
        self.vms: list[Host] = []
        self._mac_table: dict[MacAddress, int] = {}

    @property
    def uplink(self) -> Port:
        """The physical port facing the edge switch."""
        return self.ports[0]

    def add_vm(self, name: str, mac: MacAddress, ip: IPv4Address) -> Host:
        """Create a VM and wire it to the next free internal port."""
        slot = len(self.vms) + 1
        if slot >= len(self.ports):
            raise TopologyError(f"{self.name}: all VM slots in use")
        vm = Host(self.sim, name, mac, ip)
        Link(self.sim, vm.nic, self.ports[slot],
             rate_bps=INTERNAL_RATE_BPS, delay_s=INTERNAL_DELAY_S,
             carrier_detect=False)
        self.vms.append(vm)
        self._mac_table[mac] = slot
        return vm

    def receive(self, frame: EthernetFrame, in_port: Port) -> None:
        if in_port.index != 0:
            # From a VM: learn (covers migrated-in VMs too).
            self._mac_table[frame.src] = in_port.index
        slot = self._mac_table.get(frame.dst)
        if frame.dst.is_multicast or slot is None:
            # Broadcast/multicast/unknown: all VMs except ingress, plus
            # the uplink when the frame came from a VM.
            for port in self.ports:
                if port.index == in_port.index or port.link is None:
                    continue
                if port.index == 0 and in_port.index == 0:
                    continue
                port.send(frame.copy())
            return
        if slot == in_port.index:
            return  # destined back out the ingress: filter
        self.ports[slot].send(frame)

    def announce_vms(self) -> None:
        """Gratuitous ARPs from every VM (registers them at the edge)."""
        for vm in self.vms:
            vm.gratuitous_arp()
