"""UDP socket objects bound to a host stack."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import HostError
from repro.net.addresses import IPv4Address
from repro.net.packet import Packet
from repro.net.udp import UdpDatagram

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.host import Host

#: Callback signature: (src_ip, src_port, payload, arrival_time).
DatagramHandler = Callable[[IPv4Address, int, "Packet | bytes", float], None]

EPHEMERAL_PORT_START = 49152


class UdpSocket:
    """A bound UDP endpoint.

    Create via :meth:`repro.host.host.Host.udp_socket`; incoming datagrams
    for the bound port invoke ``on_datagram``.
    """

    def __init__(self, host: "Host", port: int) -> None:
        self._host = host
        self.port = port
        self.on_datagram: DatagramHandler | None = None
        self.closed = False
        #: Datagrams delivered while no handler was set (useful in tests).
        self.inbox: list[tuple[IPv4Address, int, "Packet | bytes", float]] = []

    def sendto(self, dst_ip: IPv4Address, dst_port: int,
               payload: Packet | bytes, dscp: int = 0) -> None:
        """Send one datagram; triggers ARP resolution when needed.

        ``dscp`` marks the IP packet's code point (e.g. ``DSCP_EF`` for
        latency-sensitive mice) — the fabric's priority queues serve the
        derived traffic class ahead of bulk traffic.
        """
        if self.closed:
            raise HostError(f"sendto on closed socket {self._host.name}:{self.port}")
        datagram = UdpDatagram(self.port, dst_port, payload)
        self._host.send_udp(dst_ip, datagram, dscp=dscp)

    def close(self) -> None:
        """Release the port binding."""
        if not self.closed:
            self.closed = True
            self._host.release_udp_port(self.port)

    def deliver(self, src_ip: IPv4Address, src_port: int,
                payload: "Packet | bytes", now: float) -> None:
        """Called by the host stack on datagram arrival."""
        if self.on_datagram is not None:
            self.on_datagram(src_ip, src_port, payload, now)
        else:
            self.inbox.append((src_ip, src_port, payload, now))
