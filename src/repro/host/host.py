"""An end host: single NIC, ARP, IPv4, UDP, TCP, IGMP.

Hosts are deliberately *unmodified* with respect to PortLand: they speak
plain ARP/IP/Ethernet and never see PMACs as anything but opaque MAC
addresses — exactly the paper's requirement that end hosts need no
changes.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import HostError
from repro.host.arp_cache import DEFAULT_ARP_TIMEOUT_S, ArpCache
from repro.host.tcp.stack import TcpStack
from repro.host.udp_socket import EPHEMERAL_PORT_START, UdpSocket
from repro.net.addresses import BROADCAST_MAC, IPv4Address, MacAddress
from repro.net.arp import ARP_REQUEST, ArpPacket
from repro.net.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetFrame,
)
from repro.net.igmp import IgmpMessage
from repro.net.ipv4 import IPPROTO_IGMP, IPPROTO_TCP, IPPROTO_UDP, IPv4Packet
from repro.net.link import Port
from repro.net.node import Node
from repro.net.packet import Packet, coerce
from repro.net.udp import UdpDatagram
from repro.policy import class_of_dscp
from repro.sim.process import Timer
from repro.sim.simulator import Simulator

#: Max queued packets per unresolved next hop (RFC 1122 suggests >= 1).
ARP_QUEUE_LIMIT = 3


class Host(Node):
    """A single-homed end host with a small but real protocol stack."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: MacAddress,
        ip: IPv4Address,
        arp_timeout_s: float = DEFAULT_ARP_TIMEOUT_S,
        arp_retries: int = 3,
        arp_retry_interval_s: float = 1.0,
    ) -> None:
        super().__init__(sim, name, num_ports=1)
        self.mac = mac
        self.ip = ip
        self.arp_cache = ArpCache(arp_timeout_s)
        self.arp_retries = arp_retries
        self.arp_retry_interval_s = arp_retry_interval_s
        self._arp_pending: dict[IPv4Address, list[IPv4Packet]] = {}
        self._arp_timers: dict[IPv4Address, Timer] = {}
        self._arp_attempts: dict[IPv4Address, int] = {}
        self._udp_sockets: dict[int, UdpSocket] = {}
        self._next_ephemeral = EPHEMERAL_PORT_START
        self.joined_groups: set[IPv4Address] = set()
        self.tcp = TcpStack(self)
        #: Packets dropped because ARP resolution ultimately failed.
        self.unresolved_drops = 0
        #: ARP requests transmitted (measurement hook for Fig. 14).
        self.arp_requests_sent = 0
        #: Hook invoked for every IGMP message sent (the edge agent also
        #: sees them on the wire; this is for tests).
        self.on_igmp_sent: Callable[[IgmpMessage], None] | None = None

    # ------------------------------------------------------------------
    # Link layer

    @property
    def nic(self) -> Port:
        """The single network interface."""
        return self.ports[0]

    def receive(self, frame: EthernetFrame, in_port: Port) -> None:
        """NIC receive path: filter on destination MAC, then demux."""
        if not self._accepts(frame.dst):
            return
        if frame.ethertype == ETHERTYPE_ARP:
            self._handle_arp(coerce(frame.payload, ArpPacket))
        elif frame.ethertype == ETHERTYPE_IPV4:
            self._handle_ip(coerce(frame.payload, IPv4Packet))

    def _accepts(self, dst: MacAddress) -> bool:
        if dst == self.mac or dst.is_broadcast:
            return True
        if dst.is_multicast:
            return any(group.multicast_mac() == dst for group in self.joined_groups)
        return False

    def _send_frame(self, dst: MacAddress, ethertype: int,
                    payload: Packet | bytes, tclass: int = 0) -> None:
        self.nic.send(EthernetFrame(dst, self.mac, ethertype, payload,
                                    tclass=tclass))

    # ------------------------------------------------------------------
    # ARP

    def _handle_arp(self, arp: ArpPacket) -> None:
        if arp.sender_ip.value != 0:
            # Learn/refresh from requests, replies, and gratuitous
            # announcements alike; the latter is how VM migration repoints
            # stale caches (Fig. 13).
            self.arp_cache.insert(arp.sender_ip, arp.sender_mac, self.sim.now)
            self._flush_pending(arp.sender_ip, arp.sender_mac)
        if arp.op == ARP_REQUEST and arp.target_ip == self.ip:
            reply = ArpPacket.reply(self.mac, self.ip, arp.sender_mac, arp.sender_ip)
            self._send_frame(arp.sender_mac, ETHERTYPE_ARP, reply)

    def _flush_pending(self, ip: IPv4Address, mac: MacAddress) -> None:
        waiting = self._arp_pending.pop(ip, None)
        timer = self._arp_timers.pop(ip, None)
        if timer is not None:
            timer.stop()
        self._arp_attempts.pop(ip, None)
        if waiting:
            for packet in waiting:
                self._send_frame(mac, ETHERTYPE_IPV4, packet,
                                 tclass=class_of_dscp(packet.dscp))

    def _start_resolution(self, ip: IPv4Address) -> None:
        self._arp_attempts[ip] = 1
        self._emit_arp_request(ip)
        timer = Timer(self.sim, self._arp_retry, ip)
        self._arp_timers[ip] = timer
        timer.start(self.arp_retry_interval_s)

    def _emit_arp_request(self, ip: IPv4Address) -> None:
        self.arp_requests_sent += 1
        request = ArpPacket.request(self.mac, self.ip, ip)
        self._send_frame(BROADCAST_MAC, ETHERTYPE_ARP, request)

    def _arp_retry(self, ip: IPv4Address) -> None:
        if ip not in self._arp_pending:
            return
        attempts = self._arp_attempts.get(ip, 0)
        if attempts >= self.arp_retries:
            dropped = self._arp_pending.pop(ip, [])
            self.unresolved_drops += len(dropped)
            self._arp_timers.pop(ip, None)
            self._arp_attempts.pop(ip, None)
            self.sim.trace.emit(self.sim.now, "host.arp_failed", self.name,
                                target=str(ip), dropped=len(dropped))
            return
        self._arp_attempts[ip] = attempts + 1
        self._emit_arp_request(ip)
        self._arp_timers[ip].start(self.arp_retry_interval_s)

    def gratuitous_arp(self) -> None:
        """Broadcast a gratuitous ARP announcing our IP→MAC binding."""
        self._send_frame(BROADCAST_MAC, ETHERTYPE_ARP,
                         ArpPacket.gratuitous(self.mac, self.ip))

    # ------------------------------------------------------------------
    # IPv4

    def send_ip(self, dst_ip: IPv4Address, protocol: int,
                payload: Packet | bytes, ttl: int | None = None,
                dscp: int = 0) -> None:
        """Send an IPv4 packet, resolving the destination MAC first.

        The fabric is one flat layer-2 domain (PortLand's model), so the
        destination IP is ARPed for directly — there is no default router.
        ``dscp`` marks the packet's code point; the frame's traffic class
        (802.1p, what the fabric's priority queues serve) derives from it.
        """
        kwargs = {} if ttl is None else {"ttl": ttl}
        packet = IPv4Packet(self.ip, dst_ip, protocol, payload,
                            dscp=dscp, **kwargs)
        tclass = class_of_dscp(dscp)
        if dst_ip.is_limited_broadcast:
            self._send_frame(BROADCAST_MAC, ETHERTYPE_IPV4, packet,
                             tclass=tclass)
            return
        if dst_ip.is_multicast:
            self._send_frame(dst_ip.multicast_mac(), ETHERTYPE_IPV4, packet,
                             tclass=tclass)
            return
        mac = self.arp_cache.lookup(dst_ip, self.sim.now)
        if mac is not None:
            self._send_frame(mac, ETHERTYPE_IPV4, packet, tclass=tclass)
            return
        queue = self._arp_pending.setdefault(dst_ip, [])
        if len(queue) >= ARP_QUEUE_LIMIT:
            queue.pop(0)  # keep the newest packets, as Linux does
            self.unresolved_drops += 1
        queue.append(packet)
        if dst_ip not in self._arp_timers:
            self._start_resolution(dst_ip)

    def _handle_ip(self, packet: IPv4Packet) -> None:
        to_us = packet.dst == self.ip
        to_group = packet.dst.is_multicast and packet.dst in self.joined_groups
        if not (to_us or to_group or packet.dst.is_limited_broadcast):
            return
        if packet.dst.is_limited_broadcast and packet.src == self.ip:
            return  # never deliver our own broadcast back to ourselves
        if packet.protocol == IPPROTO_UDP:
            self._deliver_udp(packet)
        elif packet.protocol == IPPROTO_TCP:
            self.tcp.deliver(packet)
        # IGMP to hosts is ignored: the fabric manager is authoritative.

    # ------------------------------------------------------------------
    # UDP

    def udp_socket(self, port: int | None = None) -> UdpSocket:
        """Bind a UDP socket (ephemeral port when ``port`` is ``None``)."""
        if port is None:
            port = self._alloc_ephemeral(self._udp_sockets)
        if port in self._udp_sockets:
            raise HostError(f"{self.name}: UDP port {port} already bound")
        socket = UdpSocket(self, port)
        self._udp_sockets[port] = socket
        return socket

    def release_udp_port(self, port: int) -> None:
        """Unbind a UDP port (called by ``UdpSocket.close``)."""
        self._udp_sockets.pop(port, None)

    def send_udp(self, dst_ip: IPv4Address, datagram: UdpDatagram,
                 dscp: int = 0) -> None:
        """Used by :class:`UdpSocket`; applications should use the socket."""
        self.send_ip(dst_ip, IPPROTO_UDP, datagram, dscp=dscp)

    def _deliver_udp(self, packet: IPv4Packet) -> None:
        datagram = coerce(packet.payload, UdpDatagram)
        socket = self._udp_sockets.get(datagram.dst_port)
        if socket is not None and not socket.closed:
            socket.deliver(packet.src, datagram.src_port, datagram.payload, self.sim.now)

    def _alloc_ephemeral(self, in_use: dict[int, object]) -> int:
        port = self._next_ephemeral
        while port in in_use:
            port += 1
            if port > 0xFFFF:
                raise HostError(f"{self.name}: ephemeral ports exhausted")
        self._next_ephemeral = port + 1
        return port

    # ------------------------------------------------------------------
    # IGMP / multicast

    def join_group(self, group: IPv4Address) -> None:
        """Join a multicast group: remember it and emit an IGMP report."""
        if group in self.joined_groups:
            return
        self.joined_groups.add(group)
        self._send_igmp(IgmpMessage.join(group), group)

    def leave_group(self, group: IPv4Address) -> None:
        """Leave a multicast group: forget it and emit an IGMP leave."""
        if group not in self.joined_groups:
            return
        self.joined_groups.discard(group)
        self._send_igmp(IgmpMessage.leave(group), group)

    def _send_igmp(self, message: IgmpMessage, group: IPv4Address) -> None:
        packet = IPv4Packet(self.ip, group, IPPROTO_IGMP, message, ttl=1)
        self._send_frame(group.multicast_mac(), ETHERTYPE_IPV4, packet)
        if self.on_igmp_sent is not None:
            self.on_igmp_sent(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} ip={self.ip} mac={self.mac}>"
