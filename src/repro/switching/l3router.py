"""The layer-3 ECMP baseline router.

This models the "existing layer 3" column of the paper's Table 1 and
the L3 convergence baseline: OSPF-style link-state routing with ECMP.
Its operational costs are exactly the ones the paper criticizes — every
edge router must be *configured* with its subnet (state the operator
must get right), and host mobility across edge routers breaks transport
connections because the host's IP must change.

To keep end hosts identical across all designs, edge routers answer ARP
for *any* requested IP on host-facing ports (proxy ARP): hosts still
believe they live on one flat LAN.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import BROADCAST_MAC, IPv4Address, MacAddress
from repro.net.arp import ARP_REQUEST, ArpPacket
from repro.net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4, EthernetFrame
from repro.net.ipv4 import IPv4Packet
from repro.net.link import Port
from repro.net.node import Node
from repro.net.packet import coerce
from repro.sim.process import PeriodicTask, Timer
from repro.sim.simulator import Simulator
from repro.switching.flow_table import flow_hash
from repro.switching.linkstate import (
    ETHERTYPE_ROUTING,
    HelloMessage,
    LinkStateDatabase,
    Lsa,
    shortest_paths,
)
from repro.switching.stp import bridge_mac_for

DEFAULT_HELLO_S = 1.0
DEFAULT_DEAD_S = 3.0
#: Debounce between a topology change and the SPF run, like real routers.
DEFAULT_SPF_DELAY_S = 0.050
LINK_COST = 1


@dataclass(frozen=True)
class Subnet:
    """An attached prefix on a set of host-facing ports."""

    network: int
    prefix_len: int

    def contains(self, ip: IPv4Address) -> bool:
        """Whether ``ip`` falls inside this prefix."""
        shift = 32 - self.prefix_len
        return (ip.value >> shift) == (self.network >> shift)

    def key(self) -> tuple[int, int]:
        """(network, prefix_len) pair used in LSAs."""
        return (self.network, self.prefix_len)


class _Neighbor:
    __slots__ = ("router_id", "mac", "last_heard")

    def __init__(self, router_id: int, mac: MacAddress, now: float) -> None:
        self.router_id = router_id
        self.mac = mac
        self.last_heard = now


class L3Router(Node):
    """A link-state ECMP router with proxy-ARP host-facing ports."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        num_ports: int,
        router_id: int,
        hello_s: float = DEFAULT_HELLO_S,
        dead_s: float = DEFAULT_DEAD_S,
        spf_delay_s: float = DEFAULT_SPF_DELAY_S,
    ) -> None:
        super().__init__(sim, name, num_ports)
        self.router_id = router_id
        self.mac = bridge_mac_for(name)
        self.hello_s = hello_s
        self.dead_s = dead_s
        self.spf_delay_s = spf_delay_s

        #: port index -> Subnet for host-facing ports.
        self.host_subnets: dict[int, Subnet] = {}
        #: host table per host-facing port: ip -> mac (learned).
        self._host_macs: dict[IPv4Address, tuple[MacAddress, int]] = {}
        #: router-facing adjacency per port.
        self._neighbors: dict[int, _Neighbor] = {}

        self.lsdb = LinkStateDatabase()
        self._own_seq = 0
        #: destination prefix (net, plen) -> list of (port, neighbor mac);
        #: local subnets are handled separately.
        self._routes: dict[tuple[int, int], list[tuple[int, MacAddress]]] = {}

        self._hello_task = PeriodicTask(sim, hello_s, self._send_hellos,
                                        jitter=0.1, rng_name=f"ls-hello/{name}")
        self._dead_task = PeriodicTask(sim, hello_s / 2, self._check_dead,
                                       jitter=0.1, rng_name=f"ls-dead/{name}")
        self._spf_timer = Timer(sim, self._run_spf)
        self._pending_arp: dict[IPv4Address, list[tuple[IPv4Packet, int]]] = {}

        #: Measurement counters.
        self.lsas_sent = 0
        self.hellos_sent = 0
        self.spf_runs = 0
        self.forwarded = 0
        self.dropped_no_route = 0
        #: Lines of operator configuration this router requires (Table 1):
        #: one per attached subnet, as the paper's L3 column argues.
        self.config_lines = 0

    # ------------------------------------------------------------------
    # Configuration (the part PortLand eliminates)

    def configure_subnet(self, port_index: int, network: int, prefix_len: int) -> None:
        """Statically configure a host-facing subnet on a port."""
        self.host_subnets[port_index] = Subnet(network, prefix_len)
        self.config_lines += 1
        self._originate_lsa()

    def start(self) -> None:
        """Bring the control plane up."""
        self._hello_task.start(0.0)
        self._dead_task.start()
        self._originate_lsa()

    # ------------------------------------------------------------------
    # Control plane

    def _router_ports(self) -> list[Port]:
        return [p for p in self.ports if p.index not in self.host_subnets]

    def _send_hellos(self) -> None:
        for port in self._router_ports():
            if not port.is_up:
                continue
            self.hellos_sent += 1
            frame = EthernetFrame(BROADCAST_MAC, self.mac, ETHERTYPE_ROUTING,
                                  HelloMessage(self.router_id))
            port.send(frame)

    def _check_dead(self) -> None:
        now = self.sim.now
        dead_ports = [index for index, nbr in self._neighbors.items()
                      if now - nbr.last_heard > self.dead_s]
        if dead_ports:
            for index in dead_ports:
                del self._neighbors[index]
            self._originate_lsa()

    def _originate_lsa(self) -> None:
        self._own_seq += 1
        lsa = Lsa(
            origin=self.router_id,
            seq=self._own_seq,
            neighbors=tuple(sorted((n.router_id, LINK_COST)
                                   for n in self._neighbors.values())),
            prefixes=tuple(sorted(s.key() for s in self.host_subnets.values())),
        )
        self.lsdb.consider(lsa)
        self._flood_lsa(lsa, exclude_port=None)
        self._schedule_spf()

    def _flood_lsa(self, lsa: Lsa, exclude_port: int | None) -> None:
        for port in self._router_ports():
            if port.index == exclude_port or not port.is_up:
                continue
            self.lsas_sent += 1
            port.send(EthernetFrame(BROADCAST_MAC, self.mac,
                                    ETHERTYPE_ROUTING, lsa))

    def _schedule_spf(self) -> None:
        if not self._spf_timer.armed:
            self._spf_timer.start(self.spf_delay_s)

    def _run_spf(self) -> None:
        self.spf_runs += 1
        first_hops = shortest_paths(self.lsdb, self.router_id)
        hop_ports: dict[int, list[tuple[int, MacAddress]]] = {}
        for index, nbr in self._neighbors.items():
            hop_ports.setdefault(nbr.router_id, []).append((index, nbr.mac))
        routes: dict[tuple[int, int], list[tuple[int, MacAddress]]] = {}
        for lsa in self.lsdb.all_lsas():
            if lsa.origin == self.router_id:
                continue
            hops = first_hops.get(lsa.origin)
            if not hops:
                continue
            next_hops: list[tuple[int, MacAddress]] = []
            for hop in sorted(hops):
                next_hops.extend(hop_ports.get(hop, []))
            if not next_hops:
                continue
            for prefix in lsa.prefixes:
                routes.setdefault(prefix, []).extend(next_hops)
        self._routes = routes

    def route_table_size(self) -> int:
        """Number of installed prefix routes (Table 1 metric)."""
        return len(self._routes) + len(self.host_subnets)

    # ------------------------------------------------------------------
    # Data plane

    def receive(self, frame: EthernetFrame, in_port: Port) -> None:
        if frame.ethertype == ETHERTYPE_ROUTING:
            self._handle_routing(frame, in_port)
            return
        if frame.ethertype == ETHERTYPE_ARP:
            self._handle_arp(coerce(frame.payload, ArpPacket), in_port)
            return
        if frame.ethertype == ETHERTYPE_IPV4:
            if frame.dst != self.mac and not frame.dst.is_multicast:
                return  # not addressed to this router
            self._forward_ip(coerce(frame.payload, IPv4Packet), in_port)

    def _handle_routing(self, frame: EthernetFrame, in_port: Port) -> None:
        payload = frame.payload
        is_hello = isinstance(payload, HelloMessage) or (
            isinstance(payload, (bytes, bytearray)) and len(payload) > 0
            and payload[0] == 1
        )
        if is_hello:
            hello = coerce(payload, HelloMessage)
            nbr = self._neighbors.get(in_port.index)
            if nbr is None or nbr.router_id != hello.router_id:
                self._neighbors[in_port.index] = _Neighbor(
                    hello.router_id, frame.src, self.sim.now)
                self._originate_lsa()
            else:
                nbr.last_heard = self.sim.now
                nbr.mac = frame.src
            return
        lsa = coerce(payload, Lsa)
        if self.lsdb.consider(lsa):
            self._flood_lsa(lsa, exclude_port=in_port.index)
            self._schedule_spf()

    def _handle_arp(self, arp: ArpPacket, in_port: Port) -> None:
        subnet = self.host_subnets.get(in_port.index)
        if subnet is None:
            return  # no ARP on router-router links
        if arp.sender_ip.value != 0:
            self._host_macs[arp.sender_ip] = (arp.sender_mac, in_port.index)
            self._flush_arp_queue(arp.sender_ip)
        if arp.op == ARP_REQUEST and not subnet.contains(arp.target_ip):
            # Proxy ARP: off-subnet destinations resolve to the router.
            reply = ArpPacket.reply(self.mac, arp.target_ip,
                                    arp.sender_mac, arp.sender_ip)
            in_port.send(EthernetFrame(arp.sender_mac, self.mac,
                                       ETHERTYPE_ARP, reply))
        elif arp.op == ARP_REQUEST and arp.target_ip != arp.sender_ip:
            # Same-subnet resolution: flood to the other host ports of
            # this subnet so the owner can answer directly.
            for port in self.ports:
                if (port.index != in_port.index and port.is_up
                        and self.host_subnets.get(port.index) == subnet):
                    port.send(EthernetFrame(BROADCAST_MAC, arp.sender_mac,
                                            ETHERTYPE_ARP, arp))

    def _forward_ip(self, packet: IPv4Packet, in_port: Port) -> None:
        if packet.ttl <= 1:
            self.dropped_no_route += 1
            return
        # Local delivery into an attached subnet?
        for port_index, subnet in self.host_subnets.items():
            if subnet.contains(packet.dst):
                self._deliver_local(packet, port_index)
                return
        route = self._lookup_route(packet.dst)
        if route is None:
            self.dropped_no_route += 1
            self.sim.trace.emit(self.sim.now, "l3.no_route", self.name,
                                dst=str(packet.dst))
            return
        forwarded = packet.copy()
        forwarded.ttl = packet.ttl - 1
        frame = EthernetFrame(BROADCAST_MAC, self.mac, ETHERTYPE_IPV4, forwarded)
        # The ECMP set is the control plane's *belief*: a dead next hop
        # keeps eating packets until hellos time out (or carrier fires)
        # and SPF removes it — the honest convergence window.
        port_index, nbr_mac = route[flow_hash(frame) % len(route)]
        frame.dst = nbr_mac
        self.forwarded += 1
        self.ports[port_index].send(frame)

    def _lookup_route(self, dst: IPv4Address) -> list[tuple[int, MacAddress]] | None:
        best: tuple[int, list[tuple[int, MacAddress]]] | None = None
        for (network, plen), hops in self._routes.items():
            shift = 32 - plen
            if (dst.value >> shift) == (network >> shift):
                if best is None or plen > best[0]:
                    best = (plen, hops)
        return best[1] if best is not None else None

    def _deliver_local(self, packet: IPv4Packet, port_index: int) -> None:
        entry = self._host_macs.get(packet.dst)
        if entry is not None:
            host_mac, host_port = entry
            delivered = packet.copy()
            delivered.ttl = packet.ttl - 1
            self.forwarded += 1
            self.ports[host_port].send(
                EthernetFrame(host_mac, self.mac, ETHERTYPE_IPV4, delivered))
            return
        # Unknown host: queue and ARP for it on the subnet's ports.
        queue = self._pending_arp.setdefault(packet.dst, [])
        if len(queue) < 3:
            queue.append((packet, port_index))
        subnet = self.host_subnets[port_index]
        request = ArpPacket.request(self.mac,
                                    IPv4Address(subnet.network | 1), packet.dst)
        for port in self.ports:
            if self.host_subnets.get(port.index) == subnet and port.is_up:
                port.send(EthernetFrame(BROADCAST_MAC, self.mac,
                                        ETHERTYPE_ARP, request))

    def _flush_arp_queue(self, ip: IPv4Address) -> None:
        waiting = self._pending_arp.pop(ip, None)
        if not waiting:
            return
        for packet, port_index in waiting:
            self._deliver_local(packet, port_index)

    # ------------------------------------------------------------------
    # Failure handling

    def on_port_down(self, port: Port) -> None:
        if port.index in self._neighbors:
            del self._neighbors[port.index]
            self._originate_lsa()

    def on_port_up(self, port: Port) -> None:
        """Adjacency re-forms via hellos; nothing to do immediately."""
