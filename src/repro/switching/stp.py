"""Simplified IEEE 802.1D spanning tree — the classic-Ethernet baseline.

This is the protocol PortLand's evaluation compares against implicitly:
a flat learning-switch fabric needs a spanning tree for loop freedom,
pays for it with blocked links (no multipath) and tens-of-seconds
convergence (max-age expiry plus two forward-delay transitions).

Faithful parts: bridge election by (root id, cost, bridge id, port id)
vectors, hello origination at the root with relay down the tree, max-age
expiry of stored port information, and the blocking → listening →
learning → forwarding ladder timed by ``forward_delay``.

Simplified parts: no topology-change notification machinery (MAC tables
age out on their own) and message age is approximated by expiring stored
info ``max_age`` after receipt.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from repro.errors import CodecError
from repro.net.addresses import MacAddress
from repro.net.ethernet import EthernetFrame
from repro.net.link import Port
from repro.net.packet import Packet, coerce
from repro.sim.process import PeriodicTask, Timer

if TYPE_CHECKING:  # pragma: no cover
    from repro.switching.learning import LearningSwitch

#: Experimental ethertype used to carry BPDUs in this simulator (real STP
#: rides LLC; the distinction does not matter here).
ETHERTYPE_STP = 0x88B7
#: The standard bridge-group multicast address BPDUs are sent to.
STP_MULTICAST = MacAddress.parse("01:80:c2:00:00:00")

DEFAULT_HELLO_S = 2.0
DEFAULT_MAX_AGE_S = 20.0
DEFAULT_FORWARD_DELAY_S = 15.0
DEFAULT_BRIDGE_PRIORITY = 32768
#: 802.1D-1998 path cost for 1 Gb/s.
PORT_PATH_COST = 4


def bridge_mac_for(name: str) -> MacAddress:
    """A stable, unique bridge MAC derived from the switch name."""
    digest = hashlib.sha256(name.encode()).digest()
    value = int.from_bytes(digest[:6], "big")
    # Clear multicast bit, set locally-administered bit.
    value &= ~(1 << 40)
    value |= 1 << 41
    return MacAddress(value)


@dataclass(frozen=True, order=True)
class BridgeId:
    """(priority, MAC) — lower wins the root election."""

    priority: int
    mac_value: int

    def encode(self) -> bytes:
        return struct.pack("!H", self.priority) + self.mac_value.to_bytes(6, "big")

    @classmethod
    def decode(cls, data: bytes) -> "BridgeId":
        (priority,) = struct.unpack_from("!H", data, 0)
        return cls(priority, int.from_bytes(data[2:8], "big"))


@dataclass(frozen=True)
class Bpdu(Packet):
    """A configuration BPDU (the only kind this model needs)."""

    root: BridgeId
    root_cost: int
    bridge: BridgeId
    port_id: int

    _WIRE = 8 + 4 + 8 + 2

    def priority_vector(self) -> tuple:
        """The comparison key used throughout 802.1D."""
        return (self.root, self.root_cost, self.bridge, self.port_id)

    def encode(self) -> bytes:
        return (self.root.encode() + struct.pack("!I", self.root_cost)
                + self.bridge.encode() + struct.pack("!H", self.port_id))

    def wire_length(self) -> int:
        return self._WIRE

    @classmethod
    def decode(cls, data: bytes) -> "Bpdu":
        if len(data) < cls._WIRE:
            raise CodecError(f"BPDU too short: {len(data)} bytes")
        root = BridgeId.decode(data[0:8])
        (root_cost,) = struct.unpack_from("!I", data, 8)
        bridge = BridgeId.decode(data[12:20])
        (port_id,) = struct.unpack_from("!H", data, 20)
        return cls(root, root_cost, bridge, port_id)


class PortState(Enum):
    """802.1D port states (disabled is modelled by the link layer)."""

    BLOCKING = "blocking"
    LISTENING = "listening"
    LEARNING = "learning"
    FORWARDING = "forwarding"


class _PortInfo:
    """Per-port STP state."""

    __slots__ = ("state", "stored", "expires_at", "transition_timer", "designated")

    def __init__(self) -> None:
        self.state = PortState.BLOCKING
        self.stored: Bpdu | None = None  # best BPDU heard on this segment
        self.expires_at = 0.0
        self.transition_timer: Timer | None = None
        self.designated = False


class StpProcess:
    """Runs spanning tree on one :class:`LearningSwitch`."""

    def __init__(
        self,
        switch: "LearningSwitch",
        priority: int = DEFAULT_BRIDGE_PRIORITY,
        hello_s: float = DEFAULT_HELLO_S,
        max_age_s: float = DEFAULT_MAX_AGE_S,
        forward_delay_s: float = DEFAULT_FORWARD_DELAY_S,
    ) -> None:
        self.switch = switch
        self.sim = switch.sim
        self.bridge_id = BridgeId(priority, bridge_mac_for(switch.name).value)
        self.hello_s = hello_s
        self.max_age_s = max_age_s
        self.forward_delay_s = forward_delay_s
        self._ports: dict[int, _PortInfo] = {
            port.index: _PortInfo() for port in switch.ports
        }
        self.root_id = self.bridge_id
        self.root_cost = 0
        self.root_port: int | None = None
        self._hello_task = PeriodicTask(self.sim, hello_s, self._on_hello,
                                        jitter=0.1, rng_name=f"stp/{switch.name}")
        self._expiry_task = PeriodicTask(self.sim, 1.0, self._check_expiry,
                                         jitter=0.1, rng_name=f"stpx/{switch.name}")
        #: BPDUs transmitted (control-overhead measurement).
        self.bpdus_sent = 0

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        """Begin hellos and expiry checks; recompute initial roles."""
        self._hello_task.start(0.0)
        self._expiry_task.start()
        self._recompute()

    @property
    def is_root(self) -> bool:
        """Whether this bridge currently believes it is the root."""
        return self.root_id == self.bridge_id

    def port_state(self, port_index: int) -> PortState:
        """Current 802.1D state of a port."""
        return self._ports[port_index].state

    def can_forward(self, port_index: int) -> bool:
        """Whether data frames may be sent/received on this port."""
        return self._ports[port_index].state is PortState.FORWARDING

    def can_learn(self, port_index: int) -> bool:
        """Whether source addresses may be learned on this port."""
        return self._ports[port_index].state in (PortState.LEARNING,
                                                 PortState.FORWARDING)

    def forwarding_ports(self) -> set[int]:
        """Indices of all forwarding ports."""
        return {i for i, info in self._ports.items()
                if info.state is PortState.FORWARDING}

    # ------------------------------------------------------------------
    # BPDU handling

    def on_bpdu(self, frame: EthernetFrame, in_port: Port) -> None:
        """Process a received BPDU."""
        bpdu = coerce(frame.payload, Bpdu)
        info = self._ports[in_port.index]
        my_offer = self._designated_bpdu(in_port.index)
        if info.stored is None or bpdu.priority_vector() <= info.stored.priority_vector():
            # Better (or refreshed) info for this segment.
            if bpdu.priority_vector() < my_offer.priority_vector():
                info.stored = bpdu
                info.expires_at = self.sim.now + self.max_age_s
            else:
                # We are (still) the designated bridge on this segment.
                info.stored = None
            self._recompute()
            # Hellos propagate down the tree: refreshed root information
            # arriving on the root port is relayed out designated ports.
            if in_port.index == self.root_port:
                self.relay_from_root_port()
        # Inferior BPDUs on our designated port: reassert by sending ours.
        elif info.designated:
            self._send_bpdu(in_port.index)

    def on_port_down(self, port: Port) -> None:
        """Carrier loss: segment info is instantly invalid."""
        info = self._ports[port.index]
        info.stored = None
        self._set_state(port.index, PortState.BLOCKING)
        self._recompute()

    def on_port_up(self, port: Port) -> None:
        """Carrier restored."""
        self._recompute()

    # ------------------------------------------------------------------
    # Periodic work

    def _on_hello(self) -> None:
        if self.is_root:
            for index, info in self._ports.items():
                if info.designated and self.switch.ports[index].is_up:
                    self._send_bpdu(index)

    def _check_expiry(self) -> None:
        expired = False
        for info in self._ports.values():
            if info.stored is not None and self.sim.now >= info.expires_at:
                info.stored = None
                expired = True
        if expired:
            self._recompute()

    # ------------------------------------------------------------------
    # Role computation

    def _designated_bpdu(self, port_index: int) -> Bpdu:
        """The BPDU we would transmit on ``port_index``."""
        return Bpdu(self.root_id, self.root_cost, self.bridge_id, port_index)

    def _recompute(self) -> None:
        # Elect root: best stored vector vs. ourselves.
        best_port: int | None = None
        best_vector: tuple | None = None
        for index, info in self._ports.items():
            if info.stored is None or not self.switch.ports[index].is_up:
                continue
            candidate = (info.stored.root, info.stored.root_cost + PORT_PATH_COST,
                         info.stored.bridge, info.stored.port_id)
            if best_vector is None or candidate < best_vector:
                best_vector = candidate
                best_port = index
        if best_vector is not None and best_vector[0] < self.bridge_id:
            self.root_id = best_vector[0]
            self.root_cost = best_vector[1]
            self.root_port = best_port
        else:
            self.root_id = self.bridge_id
            self.root_cost = 0
            self.root_port = None

        # Assign roles per port.
        for index, info in self._ports.items():
            port = self.switch.ports[index]
            if not port.is_up:
                info.designated = False
                self._set_state(index, PortState.BLOCKING)
                continue
            if index == self.root_port:
                info.designated = False
                self._begin_forwarding_ladder(index)
                continue
            my_offer = self._designated_bpdu(index)
            if info.stored is None or my_offer.priority_vector() < info.stored.priority_vector():
                was_designated = info.designated
                info.designated = True
                self._begin_forwarding_ladder(index)
                if not was_designated:
                    self._send_bpdu(index)
            else:
                info.designated = False
                self._set_state(index, PortState.BLOCKING)

    def _begin_forwarding_ladder(self, port_index: int) -> None:
        info = self._ports[port_index]
        if info.state in (PortState.LISTENING, PortState.LEARNING,
                          PortState.FORWARDING):
            return  # already climbing or there
        self._set_state(port_index, PortState.LISTENING)
        self._arm_transition(port_index)

    def _arm_transition(self, port_index: int) -> None:
        info = self._ports[port_index]
        if info.transition_timer is None:
            info.transition_timer = Timer(self.sim, self._advance_state, port_index)
        info.transition_timer.start(self.forward_delay_s)

    def _advance_state(self, port_index: int) -> None:
        info = self._ports[port_index]
        if info.state is PortState.LISTENING:
            self._set_state(port_index, PortState.LEARNING)
            self._arm_transition(port_index)
        elif info.state is PortState.LEARNING:
            self._set_state(port_index, PortState.FORWARDING)

    def _set_state(self, port_index: int, state: PortState) -> None:
        info = self._ports[port_index]
        if info.state is state:
            return
        if state is PortState.BLOCKING and info.transition_timer is not None:
            info.transition_timer.stop()
        info.state = state
        self.sim.trace.emit(self.sim.now, "stp.state", self.switch.name,
                            port=port_index, state=state.value)
        if state is PortState.BLOCKING:
            self.switch.flush_mac_table()

    # ------------------------------------------------------------------
    # Transmission / relay

    def _send_bpdu(self, port_index: int) -> None:
        port = self.switch.ports[port_index]
        if not port.is_up:
            return
        bpdu = self._designated_bpdu(port_index)
        frame = EthernetFrame(STP_MULTICAST, bridge_mac_for(self.switch.name),
                              ETHERTYPE_STP, bpdu)
        self.bpdus_sent += 1
        port.send(frame)

    def relay_from_root_port(self) -> None:
        """Called after receiving root-path BPDUs: propagate down the tree."""
        for index, info in self._ports.items():
            if info.designated and self.switch.ports[index].is_up:
                self._send_bpdu(index)
