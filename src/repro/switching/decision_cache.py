"""Exact-match decision cache in front of a flow table's LPM walk.

PortLand's forwarding state is O(k) per switch, but the simulated data
plane used to pay the full longest-prefix walk (priority-ordered ``Match``
evaluation) plus an ECMP hash for every packet at every hop. A
:class:`DecisionCache` memoises the *verdict* of that walk — the matched
entry and its actions with ``SelectByHash`` pre-resolved — keyed by
:func:`~repro.switching.flow_table.decision_key` (dst PMAC, ethertype,
IP protocol, flow hash). Steady-state forwarding then costs one hash +
one dict probe per hop.

Correctness rests on two guarantees:

* **Key sufficiency** — the cache only serves a table whose every match
  is ``key_only`` (``FlowTable.cache_safe``): two frames with equal keys
  are then indistinguishable to every installed entry, so the cached
  verdict is exactly what the walk would return. Per-frame behaviour
  that legitimately depends on the ingress port (``OutputMany``'s
  ingress exclusion, ``send_out``'s no-reflection rule) is re-applied at
  action-execution time, not baked into the cache.
* **Invalidation** — the cache registers itself as a change listener on
  the table, so every install/remove (base entries, fault-override
  diffs, ECMP membership refreshes pushed by the fabric manager) flushes
  all cached verdicts before the next lookup. A whole-cache flush keeps
  the hook O(1); table changes are control-plane-rare next to packets.
"""

from __future__ import annotations

from repro.switching.flow_table import (
    Action,
    DecisionKey,
    FlowEntry,
    FlowTable,
    resolve_actions,
)

#: Default per-switch capacity. A k=48 fabric has ~27k hosts; one edge
#: switch's working set (its hosts' flows) is far smaller.
DEFAULT_CAPACITY = 4096


class DecisionCache:
    """Memoised forwarding decisions for one :class:`FlowTable`."""

    __slots__ = ("_table", "_capacity", "_decisions", "on_flush",
                 "hits", "misses", "installs", "evictions", "flushes")

    def __init__(self, table: FlowTable,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._table = table
        self._capacity = capacity
        self._decisions: dict[
            DecisionKey, tuple[FlowEntry, tuple[Action, ...]]] = {}
        #: Optional ``callback(reason)`` observing flushes (trace hook).
        self.on_flush = None
        self.hits = 0
        self.misses = 0
        self.installs = 0
        self.evictions = 0
        self.flushes = 0
        table.add_change_listener(self._on_table_change)

    def lookup(self, key: DecisionKey):
        """Cached ``(entry, resolved_actions)`` for ``key``, or ``None``."""
        decision = self._decisions.get(key)
        if decision is None:
            self.misses += 1
            return None
        self.hits += 1
        return decision

    def install(self, key: DecisionKey,
                entry: FlowEntry) -> tuple[FlowEntry, tuple[Action, ...]]:
        """Memoise and return the walk verdict for ``key``.

        The caller has just looked ``entry`` up in the table, so the
        resolved actions reflect the table's current version; any later
        mutation flushes them via the change listener.
        """
        if len(self._decisions) >= self._capacity:
            # FIFO eviction: drop the oldest insertion (dict order).
            self._decisions.pop(next(iter(self._decisions)))
            self.evictions += 1
        decision = (entry, resolve_actions(entry.actions, key[3]))
        self._decisions[key] = decision
        self.installs += 1
        return decision

    def invalidate_all(self, reason: str = "table-change") -> None:
        """Drop every cached decision."""
        if self._decisions:
            self._decisions.clear()
        self.flushes += 1
        if self.on_flush is not None:
            self.on_flush(reason)

    def _on_table_change(self) -> None:
        # Cheap when already empty (common during convergence bursts
        # where many entries are installed before any packet flows).
        if self._decisions:
            self.invalidate_all()

    def __len__(self) -> int:
        return len(self._decisions)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, int]:
        """Counter snapshot, aggregatable via ``stats.aggregate_counters``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "installs": self.installs,
            "evictions": self.evictions,
            "flushes": self.flushes,
            "entries": len(self._decisions),
        }
