"""The switch chassis: a flow-table pipeline plus a software agent hook.

Mirrors the paper's hardware/software split: the *pipeline* applies flow
entries at line rate; anything punted via :class:`ToAgent` (or a table
miss, when so configured) reaches the :class:`SwitchAgent` after a small
software-path delay, like an OpenFlow packet-in.
"""

from __future__ import annotations

from typing import Callable

from repro.net.ethernet import EthernetFrame
from repro.net.link import Port
from repro.net.node import Node
from repro.sim.simulator import Simulator
from repro.switching.flow_table import (
    Drop,
    FlowTable,
    Output,
    OutputMany,
    SelectByHash,
    SetEthDst,
    SetEthSrc,
    ToAgent,
    flow_hash,
)

#: Software (packet-in) path latency. OpenFlow-era switch CPUs took on
#: the order of a few hundred microseconds to punt and process a frame.
DEFAULT_AGENT_DELAY_S = 200e-6


class SwitchAgent:
    """Base class for switch-local control software.

    Subclasses (the PortLand agent, the learning-switch logic, STP, the
    L3 control plane) override the hooks they need.
    """

    def __init__(self, switch: "FlowSwitch") -> None:
        self.switch = switch
        self.sim = switch.sim

    def on_packet_in(self, frame: EthernetFrame, in_port: Port, reason: str) -> None:
        """A frame was punted to software. Default: drop."""

    def on_port_down(self, port: Port) -> None:
        """Carrier lost on a port."""

    def on_port_up(self, port: Port) -> None:
        """Carrier restored on a port."""

    def start(self) -> None:
        """Begin periodic protocol activity (beacons, hellos)."""


class FlowSwitch(Node):
    """A switch whose forwarding behaviour is its flow table."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        num_ports: int,
        agent_delay_s: float = DEFAULT_AGENT_DELAY_S,
        miss_to_agent: bool = False,
    ) -> None:
        super().__init__(sim, name, num_ports)
        self.table = FlowTable()
        self.agent: SwitchAgent | None = None
        self.agent_delay_s = agent_delay_s
        #: On table miss: punt to agent (True) or drop (False).
        self.miss_to_agent = miss_to_agent
        #: Frames dropped due to table miss.
        self.miss_drops = 0
        #: Optional tap invoked for every received frame (testing hook).
        self.rx_tap: Callable[[EthernetFrame, Port], None] | None = None

    # ------------------------------------------------------------------
    # Data path

    def receive(self, frame: EthernetFrame, in_port: Port) -> None:
        """Pipeline entry point."""
        if self.rx_tap is not None:
            self.rx_tap(frame, in_port)
        entry = self.table.lookup(frame, in_port.index)
        if entry is None:
            if self.miss_to_agent:
                self.punt_to_agent(frame, in_port, "table-miss")
            else:
                self.miss_drops += 1
                if self.sim.trace.wants("switch.miss"):
                    self.sim.trace.emit(self.sim.now, "switch.miss", self.name,
                                        frame=repr(frame), in_port=in_port.index)
            return
        entry.touch(frame)
        self.apply_actions(frame, in_port, entry.actions)

    def apply_actions(self, frame: EthernetFrame, in_port: Port, actions) -> None:
        """Execute an action list on a frame."""
        current = frame
        for action in actions:
            if isinstance(action, SetEthDst):
                current = current.copy()
                current.dst = action.mac
            elif isinstance(action, SetEthSrc):
                current = current.copy()
                current.src = action.mac
            elif isinstance(action, Output):
                self.send_out(action.port, current, in_port)
            elif isinstance(action, OutputMany):
                for port_index in action.ports:
                    if port_index != in_port.index:
                        self.send_out(port_index, current.copy(), in_port)
            elif isinstance(action, SelectByHash):
                chosen = self.select_ecmp(current, action.ports)
                if chosen is not None:
                    self.send_out(chosen, current, in_port)
            elif isinstance(action, ToAgent):
                self.punt_to_agent(current, in_port, action.reason)
            elif isinstance(action, Drop):
                # Deliberate (policy) discard — recorded so campaigns can
                # prove every ACL drop is justified and nothing else is.
                self.sim.trace.emit(
                    self.sim.now, "verify.policy_drop", self.name,
                    in_port=in_port.index, reason=action.reason,
                    src=current.src.value, dst=current.dst.value,
                    ethertype=current.ethertype, payload=current.payload,
                )
                return

    def select_ecmp(self, frame: EthernetFrame, ports: tuple[int, ...]) -> int | None:
        """Hash-select a port from an ECMP group.

        Deliberately does *not* check link health: the installed group is
        the control plane's current belief, so packets keep flowing into a
        silently failed link until LDP (or carrier detection) updates the
        entry — exactly the window the convergence experiments measure.
        """
        if not ports:
            return None
        return ports[flow_hash(frame) % len(ports)]

    def send_out(self, port_index: int, frame: EthernetFrame, in_port: Port) -> None:
        """Transmit on one port (never reflects back out the ingress)."""
        if port_index == in_port.index:
            return
        if 0 <= port_index < len(self.ports):
            self.ports[port_index].send(frame)

    def flood(self, frame: EthernetFrame, in_port: Port,
              allowed: set[int] | None = None) -> None:
        """Send out every up port except the ingress (optionally limited
        to an ``allowed`` port set, e.g. STP forwarding ports)."""
        for port in self.ports:
            if port.index == in_port.index or not port.is_up:
                continue
            if allowed is not None and port.index not in allowed:
                continue
            port.send(frame.copy())

    # ------------------------------------------------------------------
    # Software path

    def punt_to_agent(self, frame: EthernetFrame, in_port: Port, reason: str) -> None:
        """Deliver a frame to the agent after the software-path delay."""
        if self.agent is None:
            self.miss_drops += 1
            return
        self.sim.schedule(self.agent_delay_s, self.agent.on_packet_in,
                          frame, in_port, reason)

    def on_port_down(self, port: Port) -> None:
        if self.agent is not None:
            self.agent.on_port_down(port)

    def on_port_up(self, port: Port) -> None:
        if self.agent is not None:
            self.agent.on_port_up(port)

    def attach_agent(self, agent: SwitchAgent) -> None:
        """Install the software agent (does not start it)."""
        self.agent = agent
