"""Link-state routing machinery for the layer-3 baseline.

Message formats (hello, LSA), the link-state database, and the ECMP
shortest-path computation. The OSPF-like router node that uses these
lives in :mod:`repro.switching.l3router`.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

from repro.errors import CodecError
from repro.net.packet import Packet

#: Experimental ethertype carrying routing-protocol messages.
ETHERTYPE_ROUTING = 0x88B8

MSG_HELLO = 1
MSG_LSA = 2


@dataclass(frozen=True)
class HelloMessage(Packet):
    """Neighbor discovery/liveness beacon sent on router-router ports."""

    router_id: int

    def encode(self) -> bytes:
        return struct.pack("!BI", MSG_HELLO, self.router_id)

    def wire_length(self) -> int:
        return 5

    @classmethod
    def decode(cls, data: bytes) -> "HelloMessage":
        if len(data) < 5:
            raise CodecError("hello too short")
        kind, router_id = struct.unpack_from("!BI", data, 0)
        if kind != MSG_HELLO:
            raise CodecError(f"not a hello: type={kind}")
        return cls(router_id)


@dataclass(frozen=True)
class Lsa(Packet):
    """A router LSA: adjacencies plus attached prefixes.

    ``neighbors`` is a tuple of ``(router_id, cost)``; ``prefixes`` a
    tuple of ``(network_value, prefix_len)``.
    """

    origin: int
    seq: int
    neighbors: tuple[tuple[int, int], ...]
    prefixes: tuple[tuple[int, int], ...]

    def encode(self) -> bytes:
        head = struct.pack("!BIIHH", MSG_LSA, self.origin, self.seq,
                           len(self.neighbors), len(self.prefixes))
        body = b"".join(struct.pack("!IH", rid, cost) for rid, cost in self.neighbors)
        body += b"".join(struct.pack("!IB", net, plen) for net, plen in self.prefixes)
        return head + body

    def wire_length(self) -> int:
        return 13 + 6 * len(self.neighbors) + 5 * len(self.prefixes)

    @classmethod
    def decode(cls, data: bytes) -> "Lsa":
        if len(data) < 13:
            raise CodecError("LSA too short")
        kind, origin, seq, n_nbr, n_pfx = struct.unpack_from("!BIIHH", data, 0)
        if kind != MSG_LSA:
            raise CodecError(f"not an LSA: type={kind}")
        offset = 13
        neighbors = []
        for _ in range(n_nbr):
            rid, cost = struct.unpack_from("!IH", data, offset)
            neighbors.append((rid, cost))
            offset += 6
        prefixes = []
        for _ in range(n_pfx):
            net, plen = struct.unpack_from("!IB", data, offset)
            prefixes.append((net, plen))
            offset += 5
        return cls(origin, seq, tuple(neighbors), tuple(prefixes))


class LinkStateDatabase:
    """Stores the freshest LSA per origin."""

    def __init__(self) -> None:
        self._lsas: dict[int, Lsa] = {}

    def __len__(self) -> int:
        return len(self._lsas)

    def get(self, origin: int) -> Lsa | None:
        """The stored LSA for ``origin``, if any."""
        return self._lsas.get(origin)

    def consider(self, lsa: Lsa) -> bool:
        """Store ``lsa`` if it is newer than what we have.

        Returns True when the database changed (→ re-flood and re-SPF).
        """
        current = self._lsas.get(lsa.origin)
        if current is not None and current.seq >= lsa.seq:
            return False
        self._lsas[lsa.origin] = lsa
        return True

    def all_lsas(self) -> list[Lsa]:
        """Every stored LSA."""
        return list(self._lsas.values())


def shortest_paths(db: LinkStateDatabase, source: int) -> dict[int, set[int]]:
    """ECMP Dijkstra over the LSA graph.

    Returns ``{router_id: set of first-hop neighbor ids}`` for every
    reachable router. Adjacencies count only when *both* endpoints
    advertise them (two-way check), so a half-dead link never carries
    traffic.
    """
    graph: dict[int, dict[int, int]] = {}
    for lsa in db.all_lsas():
        graph[lsa.origin] = dict(lsa.neighbors)

    def linked(u: int, v: int) -> int | None:
        cost_uv = graph.get(u, {}).get(v)
        cost_vu = graph.get(v, {}).get(u)
        if cost_uv is None or cost_vu is None:
            return None
        return cost_uv

    dist: dict[int, int] = {source: 0}
    first_hops: dict[int, set[int]] = {source: set()}
    heap: list[tuple[int, int]] = [(0, source)]
    visited: set[int] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        for v in graph.get(u, {}):
            cost = linked(u, v)
            if cost is None:
                continue
            nd = d + cost
            if v not in dist or nd < dist[v]:
                dist[v] = nd
                first_hops[v] = {v} if u == source else set(first_hops[u])
                heapq.heappush(heap, (nd, v))
            elif nd == dist[v]:
                extra = {v} if u == source else first_hops[u]
                first_hops.setdefault(v, set()).update(extra)
    first_hops.pop(source, None)
    return first_hops
