"""Shared decision-layer hop walker.

Several layers need to answer the same question — "which switch-by-switch
path would the live decision layer send this frame down?" — without
scheduling simulator events: the replay benchmarks
(:mod:`repro.workloads.replay`), the trace-equivalence tests, and the
flow-level simulation engine's fallback path resolver
(:mod:`repro.flows`). They all used to re-implement the
``Output``/``SelectByHash`` walk; this module is the single copy.

The walk calls ``_forwarding_decision`` — exactly what ``receive`` runs
after the rewrite stage — and follows the chosen output port across the
real wiring until the frame would leave on a host-facing port. It does
*not* apply header rewrites (``SetEthDst``/``SetEthSrc`` only matter on
the final egress hop, after the path is already determined) and it does
not charge any counters: it is a pure query against current state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.switching.flow_table import Output, SelectByHash, flow_hash
from repro.switching.switch import FlowSwitch

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.ethernet import EthernetFrame
    from repro.net.link import Port

#: Walk depth bound: a fat-tree path is at most 5 switches; anything
#: longer is a loop the caller must treat as a dead end.
MAX_WALK_HOPS = 16


class DecisionHop:
    """One switch traversal of a decision-layer walk."""

    __slots__ = ("node", "in_index", "entry", "out_index", "out_port",
                 "rx_port")

    def __init__(self, node, in_index, entry, out_index, out_port,
                 rx_port) -> None:
        self.node = node
        self.in_index = in_index
        self.entry = entry
        self.out_index = out_index
        self.out_port = out_port
        self.rx_port = rx_port


def walk_decision_path(node, in_index: int, frame: "EthernetFrame",
                       require_live: bool = False,
                       ) -> tuple[list[DecisionHop], "Port | None"]:
    """Follow the per-switch decision layer from ``node`` to a host port.

    Returns ``(hops, final_port)`` where ``final_port`` is the host-facing
    receive port the frame would be delivered to, or ``None`` when the
    walk dead-ends: a table miss, a verdict with no unicast output
    (punt, multicast, drop), an unwired output port, a revisited switch
    (forwarding loop), or — with ``require_live`` — a hop whose link
    cannot currently carry the frame. ``hops`` always holds the
    traversals completed before the dead end.
    """
    hops: list[DecisionHop] = []
    visited: set[int] = set()
    for _depth in range(MAX_WALK_HOPS):
        if id(node) in visited:
            return hops, None
        visited.add(id(node))
        entry, actions = node._forwarding_decision(frame, in_index)
        out = None
        for action in actions:
            kind = type(action)
            if kind is Output:
                out = action.port
            elif kind is SelectByHash:
                if action.ports:
                    out = action.ports[flow_hash(frame) % len(action.ports)]
        if out is None:
            return hops, None
        out_port = node.ports[out]
        link = out_port.link
        if link is None:
            return hops, None
        rx_port = link.other_end(out_port)
        if require_live and not (out_port.enabled and rx_port.enabled
                                 and link.can_carry(out_port)):
            return hops, None
        hops.append(DecisionHop(node, in_index, entry, out, out_port,
                                rx_port))
        if isinstance(rx_port.node, FlowSwitch):
            node, in_index = rx_port.node, rx_port.index
            continue
        return hops, rx_port
    return hops, None
