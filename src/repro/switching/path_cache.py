"""Fabric-level compiled-path cache: cut-through transit for cached flows.

PortLand forwarding is deterministic once PMAC prefixes, fault
overrides, and the flow hash are fixed: a frame's entire
edge→agg→core→agg→edge hop sequence is a pure function of fabric state.
The per-switch :class:`~repro.switching.decision_cache.DecisionCache`
already memoises each hop's verdict, but the simulator still pays one
scheduled event and one Python dispatch per switch per frame. A
:class:`PathCache` extends the memo from one switch to the whole path —
the megaflow idea of OpenFlow-style datapaths applied end-to-end.

On the first cache-safe frame of a flow at its ingress edge switch, the
cache *compiles* the path: it dry-walks the per-switch stage-2 verdicts
(warming the decision caches as it goes), recording for every hop the
switch, ingress/egress port indices, matched entry, and traversed link,
plus the net header rewrites (ingress AMAC→PMAC was already applied by
the caller; the egress PMAC→AMAC rewrite is captured from the final
``host:`` entry). Subsequent frames with the same ``(ingress port,
decision key)`` are *launched*: every traversed entry and port counter
is charged, a ``verify.hop`` trace record is synthesized per hop with
the exact timestamp interpreted forwarding would have produced, and one
composite event delivers the frame to the destination host after the
sum of per-link serialization + propagation delays.

What compiled transit deliberately does **not** model is contention
*inside* the fabric: a launched frame never queues behind another frame
on a switch-to-switch link (its latency is the uncongested sum of link
delays), never experiences a drop-tail loss mid-path, and is not
re-examined by intermediate switches. That is the cut-through
approximation; workloads that need queueing fidelity leave the cache
off (it is disabled by default — see ``PortlandConfig.path_cache_entries``).

Compilation refuses (and caches a negative verdict) whenever any hop is
not provably pure: a non-``cache_safe`` table, an rx tap, a mid-path
rewrite-table match, punts/multicast/empty actions, a reflected output,
a down/disabled/unwired port, or a lossy link. Negative verdicts are
registered against everything walked, so the state change that makes the
path compilable retires them too.

Invalidation mirrors the decision cache exactly, per path:

* every flow-table **and** rewrite-table mutation of any switch on the
  path (change listeners);
* explicit agent flushes (``PortlandSwitch.flush_decisions`` fans out to
  ``invalidate_switch`` — FaultUpdate/FaultClear, Disable/EnableLink,
  neighbour loss);
* carrier-state changes of any traversed link
  (``Link.add_state_listener`` — fail, fail_direction, recover, detach).

A frame already launched when its path is invalidated is handled like an
in-flight frame: at delivery time the stored hops are revalidated
against the physical links; if every link is still up the frame arrives
(a table-only change cannot un-send it), otherwise it is dropped and
counted at the first dead hop's transmit port.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.switching.flow_table import (
    Output,
    SetEthDst,
    SetEthSrc,
    decision_key,
    resolve_actions,
)
from repro.switching.switch import FlowSwitch

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.ethernet import EthernetFrame
    from repro.net.link import Port
    from repro.sim.simulator import Simulator

#: Default per-ingress-switch capacity (same sizing as the decision cache).
DEFAULT_PATH_CAPACITY = 4096

#: Dry-walk depth bound. A fat-tree path is at most 5 links end to end;
#: anything longer indicates a loop or a topology this cache should not
#: second-guess.
MAX_PATH_HOPS = 16


class CompiledHop:
    """One traversed switch on a compiled path."""

    __slots__ = ("switch_name", "in_index", "out_index", "entry_name",
                 "link", "out_port", "rx_port")

    def __init__(self, switch_name, in_index, out_index, entry_name,
                 link, out_port, rx_port) -> None:
        self.switch_name = switch_name
        self.in_index = in_index
        self.out_index = out_index
        self.entry_name = entry_name
        self.link = link
        self.out_port = out_port
        self.rx_port = rx_port


class CompiledPath:
    """A fully compiled ingress→host path (or a negative verdict).

    A negative verdict (``final_port is None``) records that this key is
    not compilable under the current fabric state; it is registered
    against everything the failed dry-walk visited so the next relevant
    state change retires it.
    """

    __slots__ = ("key", "ingress", "hops", "links", "entries",
                 "tx_counters", "rx_counters", "switches",
                 "final_port", "final_dst", "final_src", "alive")

    def __init__(self, key, ingress, hops, links, entries, tx_counters,
                 rx_counters, switches, final_port, final_dst,
                 final_src) -> None:
        self.key = key
        self.ingress = ingress
        self.hops = hops
        self.links = links
        self.entries = entries
        self.tx_counters = tx_counters
        self.rx_counters = rx_counters
        self.switches = switches
        self.final_port = final_port
        self.final_dst = final_dst
        self.final_src = final_src
        self.alive = True

    @property
    def compiled(self) -> bool:
        """False for a negative (uncompilable) verdict."""
        return self.final_port is not None


class PathCache:
    """Shared compiled-path cache for one fabric.

    One instance serves every switch of a fabric (the builder wires it
    up); per-ingress lookup tables live on the switches
    (``PortlandSwitch._path_table``) so the hot probe is a plain dict
    access, while registration/invalidation indexes live here.
    """

    def __init__(self, sim: "Simulator",
                 capacity: int = DEFAULT_PATH_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self._capacity = capacity
        # path registration indexes: everything that must die when a
        # switch's tables or a link's carrier state change.
        self._by_switch: dict = {}
        self._by_link: dict = {}
        #: Called as ``listener(source, reason)`` after every invalidation
        #: that killed at least one path. The flow-level engine
        #: (:mod:`repro.flows`) hangs its rate-recompute trigger off this:
        #: any fabric-state change that retires a compiled path — fault
        #: overrides, link disable/enable, carrier loss — must also
        #: re-resolve and re-fill the flows pinned to it.
        self._invalidation_listeners: list = []
        self.hits = 0
        self.misses = 0
        self.no_path_hits = 0
        self.compiles = 0
        self.compile_failures = 0
        self.launches = 0
        self.delivered = 0
        self.dropped_in_flight = 0
        self.invalidated = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Hot path

    def resolve(self, switch, frame: "EthernetFrame",
                in_index: int) -> CompiledPath | None:
        """The compiled path for ``frame`` entering ``switch`` on
        ``in_index``, compiling on first use. ``None`` means this frame
        must take the interpreted per-hop path."""
        key = (in_index, decision_key(frame))
        table = switch._path_table
        path = table.get(key)
        if path is not None:
            if path.final_port is None:
                self.no_path_hits += 1
                return None
            self.hits += 1
            return path
        self.misses += 1
        if not switch.table.cache_safe:
            return None
        path = self._compile(switch, frame, in_index, key)
        if len(table) >= self._capacity:
            self._kill(next(iter(table.values())))
            self.evictions += 1
        table[key] = path
        self._register(path)
        return path if path.final_port is not None else None

    def launch(self, path: CompiledPath, frame: "EthernetFrame") -> None:
        """Send ``frame`` down ``path`` as one composite event.

        Charges every traversed flow entry and port counter now (the
        cut-through equivalent of per-hop ``touch``/tx/rx accounting),
        synthesizes the per-hop ``verify.hop`` records interpreted
        forwarding would have emitted — with identical timestamps, since
        the accumulated time uses the same float operations as
        ``Link._start_transmission`` — and schedules a single delivery at
        the path's total latency.
        """
        wire_len = frame.wire_length()
        for entry in path.entries:
            entry.packets += 1
            entry.bytes += wire_len
        for counters in path.tx_counters:
            counters.tx_frames += 1
            counters.tx_bytes += wire_len
        for counters in path.rx_counters:
            counters.rx_frames += 1
            counters.rx_bytes += wire_len
        sim = self.sim
        trace = sim.trace
        time = sim.now
        if trace.wants("verify.hop"):
            payload = frame.payload
            dst = frame.dst.value
            ethertype = frame.ethertype
            for hop in path.hops:
                trace.emit(time, "verify.hop", hop.switch_name,
                           payload=payload, dst=dst, ethertype=ethertype,
                           entry=hop.entry_name, in_port=hop.in_index)
                time = time + (hop.link.serialization_time(frame, hop.out_port)
                               + hop.link.delay_s)
        else:
            for hop in path.hops:
                time = time + (hop.link.serialization_time(frame, hop.out_port)
                               + hop.link.delay_s)
        self.launches += 1
        sim.schedule_at(time, self._complete, path, frame)

    def _complete(self, path: CompiledPath, frame: "EthernetFrame") -> None:
        """Composite delivery: apply the egress rewrites and hand the
        frame to the destination host.

        If the path was invalidated while this frame was in flight, the
        stored hops are revalidated against the physical links: a dead
        link anywhere drops the frame (counted at that hop's transmit
        port, as interpreted forwarding would); a purely table-driven
        invalidation lets the frame complete, exactly like a frame
        already serialized onto the wire.
        """
        if not path.alive:
            for hop in path.hops:
                link = hop.link
                if (hop.out_port.link is not link or not hop.out_port.enabled
                        or not link.can_carry(hop.out_port)
                        or not hop.rx_port.enabled):
                    hop.out_port.counters.drops += 1
                    self.dropped_in_flight += 1
                    return
        delivered = frame.copy()
        if path.final_dst is not None:
            delivered.dst = path.final_dst
        if path.final_src is not None:
            delivered.src = path.final_src
        self.delivered += 1
        path.final_port.node.receive(delivered, path.final_port)

    # ------------------------------------------------------------------
    # Compilation

    def _compile(self, ingress, frame: "EthernetFrame", in_index: int,
                 key) -> CompiledPath:
        """Dry-walk the per-switch verdicts from ``ingress`` to a host
        port, or return a negative verdict at the first impure hop."""
        self.compiles += 1
        probe = frame.copy()
        start_dst = probe.dst
        start_src = probe.src
        hops: list[CompiledHop] = []
        entries: list = []
        switches = [ingress]
        links: list = []
        node = ingress
        index = in_index
        final_port: "Port | None" = None
        for _depth in range(MAX_PATH_HOPS):
            if (not node.table.cache_safe or node.rx_tap is not None
                    or (node is not ingress
                        and node.rewrite_table.lookup(probe, index) is not None)):
                break
            entry, actions = node._forwarding_decision(probe, index)
            if entry is None:
                break
            actions = resolve_actions(actions, decision_key(probe)[3])
            out = None
            rewrites = []
            pure = True
            last = len(actions) - 1
            for position, action in enumerate(actions):
                kind = type(action)
                if kind is Output:
                    # Must terminate the list: interpreted forwarding
                    # applies actions in order, so a rewrite after the
                    # Output would not be on the transmitted frame.
                    if position != last:
                        pure = False
                    out = action.port
                elif kind is SetEthDst or kind is SetEthSrc:
                    rewrites.append(action)
                else:
                    # ToAgent / OutputMany / unresolved SelectByHash:
                    # software or replication — never compiled.
                    pure = False
                    break
            if not pure or out is None or out == index:
                break
            for action in rewrites:
                if type(action) is SetEthDst:
                    probe.dst = action.mac
                else:
                    probe.src = action.mac
            port = node.ports[out]
            link = port.link
            if (link is None or not port.enabled or not link.can_carry(port)
                    or link.loss_rate > 0):
                break
            rx_port = link.other_end(port)
            if not rx_port.enabled:
                break
            hops.append(CompiledHop(node.name, index, out, entry.name,
                                    link, port, rx_port))
            entries.append(entry)
            links.append(link)
            nxt = rx_port.node
            if isinstance(nxt, FlowSwitch):
                if nxt in switches:  # forwarding loop: never compile
                    break
                if (getattr(nxt, "_forwarding_decision", None) is None
                        or getattr(nxt, "rewrite_table", None) is None):
                    break  # not a two-stage PortLand pipeline
                switches.append(nxt)
                node, index = nxt, rx_port.index
                continue
            final_port = rx_port
            break

        if final_port is None:
            self.compile_failures += 1
            return CompiledPath(key, ingress, (), tuple(links), (), (), (),
                                tuple(switches), None, None, None)
        return CompiledPath(
            key, ingress, tuple(hops), tuple(links), tuple(entries),
            tuple(hop.out_port.counters for hop in hops),
            tuple(hop.rx_port.counters for hop in hops),
            tuple(switches), final_port,
            probe.dst if probe.dst.value != start_dst.value else None,
            probe.src if probe.src.value != start_src.value else None,
        )

    # ------------------------------------------------------------------
    # Registration and invalidation

    def _register(self, path: CompiledPath) -> None:
        for switch in path.switches:
            bucket = self._by_switch.get(switch)
            if bucket is None:
                bucket = self._by_switch[switch] = set()
                switch.table.add_change_listener(
                    lambda s=switch: self._on_switch_change(s))
                switch.rewrite_table.add_change_listener(
                    lambda s=switch: self._on_switch_change(s))
            bucket.add(path)
        for link in path.links:
            bucket = self._by_link.get(link)
            if bucket is None:
                bucket = self._by_link[link] = set()
                link.add_state_listener(
                    lambda l=link: self._on_link_change(l))
            bucket.add(path)

    def _kill(self, path: CompiledPath) -> None:
        path.alive = False
        table = path.ingress._path_table
        if table.get(path.key) is path:
            del table[path.key]
        for switch in path.switches:
            bucket = self._by_switch.get(switch)
            if bucket is not None:
                bucket.discard(path)
        for link in path.links:
            bucket = self._by_link.get(link)
            if bucket is not None:
                bucket.discard(path)

    def invalidate_switch(self, switch, reason: str = "flush") -> int:
        """Retire every path traversing ``switch`` (the
        ``flush_decisions`` fan-out and table-change hook)."""
        return self._invalidate(self._by_switch.get(switch), switch.name,
                                reason)

    def _on_switch_change(self, switch) -> None:
        self._invalidate(self._by_switch.get(switch), switch.name,
                         "table-change")

    def _on_link_change(self, link) -> None:
        self._invalidate(self._by_link.get(link), link.name, "link-state")

    def add_invalidation_listener(self, listener) -> None:
        """Call ``listener(source, reason)`` after every invalidation
        that retired at least one path (positive or negative verdict)."""
        self._invalidation_listeners.append(listener)

    def _invalidate(self, bucket, source: str, reason: str) -> int:
        if not bucket:
            return 0
        killed = len(bucket)
        for path in list(bucket):
            self._kill(path)
        self.invalidated += killed
        trace = self.sim.trace
        if trace.wants("switch.path_flush"):
            trace.emit(self.sim.now, "switch.path_flush", source,
                       reason=reason, killed=killed)
        for listener in self._invalidation_listeners:
            listener(source, reason)
        return killed

    # ------------------------------------------------------------------
    # Observability

    def table_signature(self) -> str:
        """Order-independent digest of every live compiled path.

        Two fabrics with identical compiled state produce identical
        signatures regardless of compile order — the replica-consistency
        probe of the sharded kernel (:mod:`repro.sim.parallel`): shards
        route traffic through *replicated* fabrics, and their compiled
        paths for the same key must agree hop for hop. Negative verdicts
        are included (they are fabric state too).
        """
        import hashlib

        lines = []
        for path in {id(p): p for bucket in self._by_switch.values()
                     for p in bucket}.values():
            hops = tuple((hop.switch_name, hop.in_index, hop.out_index,
                          hop.entry_name) for hop in path.hops)
            lines.append(repr((path.ingress.name, path.key, hops,
                               path.compiled)))
        lines.sort()
        digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
        return f"{len(lines)}:{digest[:16]}"

    def stats(self) -> dict[str, int]:
        """Counter snapshot (aggregatable via ``stats.aggregate_counters``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "no_path_hits": self.no_path_hits,
            "compiles": self.compiles,
            "compile_failures": self.compile_failures,
            "launches": self.launches,
            "delivered": self.delivered,
            "dropped_in_flight": self.dropped_in_flight,
            "invalidated": self.invalidated,
            "evictions": self.evictions,
        }
