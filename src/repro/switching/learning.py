"""The flat layer-2 baseline: MAC learning + flooding (+ optional STP).

This is "existing layer 2" in the paper's Table 1 comparison: fully
plug-and-play, but forwarding state grows with the number of hosts,
every unknown/broadcast destination floods the fabric, and loop freedom
requires a spanning tree that disables most of a fat tree's links.
"""

from __future__ import annotations

from repro.net.addresses import MacAddress
from repro.net.ethernet import EthernetFrame
from repro.net.link import Port
from repro.net.node import Node
from repro.sim.simulator import Simulator
from repro.switching.stp import ETHERTYPE_STP, StpProcess

#: 802.1D default MAC-entry aging time.
DEFAULT_MAC_AGING_S = 300.0


class LearningSwitch(Node):
    """A transparent bridge with source learning and flooding."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        num_ports: int,
        mac_aging_s: float = DEFAULT_MAC_AGING_S,
    ) -> None:
        super().__init__(sim, name, num_ports)
        self.mac_aging_s = mac_aging_s
        self._mac_table: dict[MacAddress, tuple[int, float]] = {}
        self.stp: StpProcess | None = None
        #: Measurement counters.
        self.flooded_frames = 0
        self.forwarded_frames = 0

    # ------------------------------------------------------------------
    # Control-plane attachment

    def enable_stp(self, **stp_kwargs) -> StpProcess:
        """Attach and start a spanning-tree process."""
        self.stp = StpProcess(self, **stp_kwargs)
        self.stp.start()
        return self.stp

    # ------------------------------------------------------------------
    # Data path

    def receive(self, frame: EthernetFrame, in_port: Port) -> None:
        if frame.ethertype == ETHERTYPE_STP:
            if self.stp is not None:
                self.stp.on_bpdu(frame, in_port)
            return
        if self.stp is not None and not self.stp.can_forward(in_port.index):
            # Blocking/listening ports discard data frames; learning-state
            # ports learn but still do not forward.
            if self.stp.can_learn(in_port.index):
                self._learn(frame.src, in_port.index)
            return
        self._learn(frame.src, in_port.index)
        if frame.dst.is_multicast:
            self._flood(frame, in_port)
            return
        destination = self._lookup(frame.dst)
        if destination is None:
            self._flood(frame, in_port)
        elif destination != in_port.index:
            self.forwarded_frames += 1
            self.ports[destination].send(frame)
        # Destination is on the ingress segment: filter (drop).

    def _learn(self, src: MacAddress, port_index: int) -> None:
        if src.is_multicast:
            return
        self._mac_table[src] = (port_index, self.sim.now)

    def _lookup(self, dst: MacAddress) -> int | None:
        entry = self._mac_table.get(dst)
        if entry is None:
            return None
        port_index, learned_at = entry
        if self.sim.now - learned_at > self.mac_aging_s:
            del self._mac_table[dst]
            return None
        if not self.ports[port_index].is_up:
            del self._mac_table[dst]
            return None
        if self.stp is not None and not self.stp.can_forward(port_index):
            return None
        return port_index

    def _flood(self, frame: EthernetFrame, in_port: Port) -> None:
        self.flooded_frames += 1
        allowed = self.stp.forwarding_ports() if self.stp is not None else None
        self.flood_ports(frame, in_port, allowed)

    def flood_ports(self, frame: EthernetFrame, in_port: Port,
                    allowed: set[int] | None) -> None:
        """Replicate ``frame`` out every eligible port except the ingress."""
        for port in self.ports:
            if port.index == in_port.index or not port.is_up:
                continue
            if allowed is not None and port.index not in allowed:
                continue
            port.send(frame.copy())

    # ------------------------------------------------------------------
    # State inspection (Table 1 metrics)

    def mac_table_size(self) -> int:
        """Live (unexpired) MAC-table entries — the per-switch forwarding
        state of the flat-L2 design."""
        now = self.sim.now
        return sum(1 for _p, t in self._mac_table.values()
                   if now - t <= self.mac_aging_s)

    def flush_mac_table(self) -> None:
        """Drop all learned entries (called by STP on state changes)."""
        self._mac_table.clear()

    def on_port_down(self, port: Port) -> None:
        self._mac_table = {
            mac: (p, t) for mac, (p, t) in self._mac_table.items() if p != port.index
        }
        if self.stp is not None:
            self.stp.on_port_down(port)

    def on_port_up(self, port: Port) -> None:
        if self.stp is not None:
            self.stp.on_port_up(port)
