"""OpenFlow-like flow tables: masked matches, priorities, actions.

PortLand's data plane is expressed entirely in this vocabulary, exactly
as the paper implemented it on OpenFlow switches: longest-prefix PMAC
forwarding becomes masked ``eth_dst`` matches at descending priorities;
ARP interception is an ``ethertype`` match whose action is "send to the
local agent"; ECMP is a select-by-hash action over the uplink set.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SwitchError
from repro.net.addresses import MacAddress
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.ipv4 import IPPROTO_TCP, IPPROTO_UDP, IPv4Packet
from repro.net.packet import coerce
from repro.net.tcp_wire import TcpSegment
from repro.net.udp import UdpDatagram

if TYPE_CHECKING:  # pragma: no cover
    pass

MAC_MASK_ALL = (1 << 48) - 1


def mac_prefix_mask(prefix_bits: int) -> int:
    """A mask covering the top ``prefix_bits`` of a 48-bit MAC."""
    if not 0 <= prefix_bits <= 48:
        raise SwitchError(f"bad MAC prefix length: {prefix_bits}")
    if prefix_bits == 0:
        return 0
    return MAC_MASK_ALL ^ ((1 << (48 - prefix_bits)) - 1)


@dataclass(frozen=True)
class Match:
    """Fields a frame must satisfy. ``None`` means wildcard.

    ``eth_dst``/``eth_src`` match under their masks: the frame field is
    AND-ed with the mask and compared to ``value & mask``.
    """

    in_port: int | None = None
    eth_dst: MacAddress | None = None
    eth_dst_mask: int = MAC_MASK_ALL
    eth_src: MacAddress | None = None
    eth_src_mask: int = MAC_MASK_ALL
    ethertype: int | None = None
    ip_proto: int | None = None

    @property
    def key_only(self) -> bool:
        """Whether this match depends only on (eth_dst, ethertype,
        ip_proto) — the fields captured by a :func:`decision_key`.

        Two frames with equal decision keys are indistinguishable to a
        key-only match, which is what makes caching its verdict sound.
        Matches constrained by ``in_port`` or ``eth_src`` can tell such
        frames apart, so one entry of that shape disables the decision
        cache for the whole table (see ``FlowTable.cache_safe``).
        """
        return self.in_port is None and self.eth_src is None

    def matches(self, frame: EthernetFrame, in_port: int) -> bool:
        """Whether ``frame`` arriving on ``in_port`` satisfies this match."""
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.ethertype is not None and frame.ethertype != self.ethertype:
            return False
        if self.eth_dst is not None:
            if (frame.dst.value & self.eth_dst_mask) != (
                self.eth_dst.value & self.eth_dst_mask
            ):
                return False
        if self.eth_src is not None:
            if (frame.src.value & self.eth_src_mask) != (
                self.eth_src.value & self.eth_src_mask
            ):
                return False
        if self.ip_proto is not None:
            if frame.ethertype != ETHERTYPE_IPV4 or frame.payload is None:
                return False
            try:
                packet = coerce(frame.payload, IPv4Packet)
            except Exception:
                return False
            if packet.protocol != self.ip_proto:
                return False
        return True


# ----------------------------------------------------------------------
# Actions


@dataclass(frozen=True)
class Output:
    """Forward out one port."""

    port: int


@dataclass(frozen=True)
class OutputMany:
    """Replicate out a set of ports (multicast/flood entries)."""

    ports: tuple[int, ...]


@dataclass(frozen=True)
class SelectByHash:
    """ECMP: pick one port from ``ports`` by the frame's flow hash."""

    ports: tuple[int, ...]


@dataclass(frozen=True)
class SetEthDst:
    """Rewrite the destination MAC (PMAC→AMAC at egress edge)."""

    mac: MacAddress


@dataclass(frozen=True)
class SetEthSrc:
    """Rewrite the source MAC (AMAC→PMAC at ingress edge)."""

    mac: MacAddress


@dataclass(frozen=True)
class ToAgent:
    """Punt the frame to the switch's software agent (packet-in)."""

    reason: str = ""


@dataclass(frozen=True)
class Drop:
    """Discard the frame deliberately (ACL/policy drop).

    Unlike an empty action list (a guard/override entry, a *routing*
    dead-end), a ``Drop`` is explicit operator intent: the switch emits
    a ``verify.policy_drop`` trace record and the verification oracle
    treats the discarded frame as *justified*, never a blackhole.
    """

    reason: str = ""


Action = (Output | OutputMany | SelectByHash | SetEthDst | SetEthSrc
          | ToAgent | Drop)


@dataclass
class FlowEntry:
    """One table entry: match + priority + action list + counters."""

    match: Match
    priority: int
    actions: tuple[Action, ...]
    name: str = ""
    packets: int = 0
    bytes: int = 0

    def touch(self, frame: EthernetFrame) -> None:
        """Update hit counters."""
        self.packets += 1
        self.bytes += frame.wire_length()


class FlowTable:
    """Priority-ordered flow table with first-match semantics.

    Every mutation bumps ``version`` and fires the registered change
    listeners — the invalidation hooks decision caches hang off so a
    table install/remove (base entries, fault overrides, ECMP membership
    refreshes) immediately retires any cached verdicts derived from the
    old contents.
    """

    def __init__(self) -> None:
        self._entries: list[FlowEntry] = []
        #: Bumped on every mutation; caches compare against it.
        self.version = 0
        self._listeners: list = []
        # Entries whose match inspects fields outside the decision key
        # (in_port / eth_src); any such entry makes cached decisions
        # unsound for this table.
        self._non_key_entries = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def cache_safe(self) -> bool:
        """Whether every installed match is decision-key-only (so a
        decision cache keyed by :func:`decision_key` is sound)."""
        return self._non_key_entries == 0

    def add_change_listener(self, listener) -> None:
        """Call ``listener()`` after every mutation of this table."""
        self._listeners.append(listener)

    def remove_change_listener(self, listener) -> None:
        """Detach a previously registered listener (missing ones ignored)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _changed(self) -> None:
        self.version += 1
        for listener in self._listeners:
            listener()

    def install(
        self,
        match: Match,
        actions: tuple[Action, ...] | list[Action],
        priority: int = 100,
        name: str = "",
    ) -> FlowEntry:
        """Add an entry. Entries with equal priority keep insertion order."""
        entry = FlowEntry(match=match, priority=priority,
                          actions=tuple(actions), name=name)
        # Insert before the first entry with lower priority.
        index = len(self._entries)
        for i, existing in enumerate(self._entries):
            if existing.priority < priority:
                index = i
                break
        self._entries.insert(index, entry)
        if not match.key_only:
            self._non_key_entries += 1
        self._changed()
        return entry

    def remove(self, entry: FlowEntry) -> bool:
        """Remove one entry. Returns False if it was not present."""
        try:
            self._entries.remove(entry)
        except ValueError:
            return False
        if not entry.match.key_only:
            self._non_key_entries -= 1
        self._changed()
        return True

    def remove_by_name(self, name: str) -> int:
        """Remove all entries whose ``name`` equals ``name``; returns count."""
        return self.remove_where(lambda e: e.name == name)

    def remove_where(self, predicate) -> int:
        """Remove all entries for which ``predicate(entry)`` is true."""
        before = len(self._entries)
        self._entries = [e for e in self._entries if not predicate(e)]
        removed = before - len(self._entries)
        if removed:
            self._non_key_entries = sum(
                1 for e in self._entries if not e.match.key_only)
            self._changed()
        return removed

    def clear(self) -> None:
        """Drop every entry."""
        if self._entries:
            self._entries.clear()
            self._non_key_entries = 0
            self._changed()

    def lookup(self, frame: EthernetFrame, in_port: int,
               skip_punts: bool = False) -> FlowEntry | None:
        """Highest-priority entry matching ``frame`` on ``in_port``.

        With ``skip_punts`` true, entries that would punt to the agent are
        passed over — used for agent-*sourced* frames, which must be
        forwarded rather than bounced back into software.
        """
        for entry in self._entries:
            if skip_punts and any(isinstance(a, ToAgent) for a in entry.actions):
                continue
            if entry.match.matches(frame, in_port):
                return entry
        return None


# ----------------------------------------------------------------------
# Flow hashing (for ECMP)


def _hash_and_proto(frame: EthernetFrame) -> tuple[int, int | None]:
    """``(flow hash, IP protocol)`` of a frame; protocol is ``None`` for
    non-IPv4 (or unparseable) payloads."""
    protocol: int | None = None
    material = frame.src.to_bytes() + frame.dst.to_bytes()
    material += frame.ethertype.to_bytes(2, "big")
    if frame.ethertype == ETHERTYPE_IPV4 and frame.payload is not None:
        try:
            packet = coerce(frame.payload, IPv4Packet)
        except Exception:
            packet = None
        if packet is not None:
            protocol = packet.protocol
            material += packet.src.to_bytes() + packet.dst.to_bytes()
            material += bytes([packet.protocol])
            ports = _transport_ports(packet)
            if ports is not None:
                material += ports[0].to_bytes(2, "big") + ports[1].to_bytes(2, "big")
    return zlib.crc32(material), protocol


def flow_hash(frame: EthernetFrame) -> int:
    """Deterministic per-flow hash over L2–L4 headers.

    All packets of a transport flow hash identically, so ECMP never
    reorders a flow — the property the paper relies on for TCP.
    """
    return decision_key(frame)[3]


#: A cache key: (dst MAC value, ethertype, IP protocol, flow hash).
DecisionKey = tuple[int, int, int | None, int]


def decision_key(frame: EthernetFrame) -> DecisionKey:
    """The exact-match key a decision cache indexes by.

    Covers every frame field a ``cache_safe`` table can branch on
    (``eth_dst``, ``ethertype``, ``ip_proto``) plus the flow hash, which
    pins the ECMP member a ``SelectByHash`` action would pick — so one
    cached verdict replays both the LPM walk and the hash selection.

    The key is memoised on the frame: a frame crosses ~5 switches and
    the hash material is identical at each, so recomputing the CRC per
    hop would dominate the fast path. The memo records the (src, dst,
    ethertype) it was derived from and is recomputed whenever any of
    them changed (PMAC/AMAC rewrites, in-place router rewrites); the
    payload needs no check because the library treats payloads as
    immutable once sent.
    """
    memo = frame._fwd_memo
    dst_value = frame.dst.value
    if (memo is not None and memo[0] == frame.src.value
            and (key := memo[1])[0] == dst_value
            and key[1] == frame.ethertype):
        return key
    fhash, protocol = _hash_and_proto(frame)
    key = (dst_value, frame.ethertype, protocol, fhash)
    frame._fwd_memo = (frame.src.value, key)
    return key


def resolve_actions(actions: tuple[Action, ...],
                    fhash: int) -> tuple[Action, ...]:
    """Specialise an action list for one flow hash.

    ``SelectByHash`` collapses to the ``Output`` it would choose (the
    hash is part of the decision key, so the choice is fixed per key);
    everything else — rewrites, punts, ``OutputMany`` with its at-apply
    ingress exclusion — is applied per-frame and passes through as-is.
    """
    resolved: list[Action] = []
    for action in actions:
        if isinstance(action, SelectByHash):
            if action.ports:
                resolved.append(Output(action.ports[fhash % len(action.ports)]))
        else:
            resolved.append(action)
    return tuple(resolved)


def _transport_ports(packet: IPv4Packet) -> tuple[int, int] | None:
    try:
        if packet.protocol == IPPROTO_UDP:
            datagram = coerce(packet.payload, UdpDatagram)
            return (datagram.src_port, datagram.dst_port)
        if packet.protocol == IPPROTO_TCP:
            segment = coerce(packet.payload, TcpSegment)
            return (segment.src_port, segment.dst_port)
    except Exception:
        return None
    return None
