"""Switch substrate: flow tables, chassis, and the baseline designs."""

from repro.switching.flow_table import (
    Action,
    FlowEntry,
    FlowTable,
    Match,
    Output,
    OutputMany,
    SelectByHash,
    SetEthDst,
    SetEthSrc,
    ToAgent,
    flow_hash,
    mac_prefix_mask,
)
from repro.switching.l3router import L3Router, Subnet
from repro.switching.path_cache import CompiledPath, PathCache
from repro.switching.learning import LearningSwitch
from repro.switching.linkstate import LinkStateDatabase, Lsa, shortest_paths
from repro.switching.stp import Bpdu, BridgeId, PortState, StpProcess
from repro.switching.switch import FlowSwitch, SwitchAgent

__all__ = [
    "Action",
    "Bpdu",
    "BridgeId",
    "CompiledPath",
    "FlowEntry",
    "FlowSwitch",
    "FlowTable",
    "L3Router",
    "LearningSwitch",
    "LinkStateDatabase",
    "Lsa",
    "Match",
    "Output",
    "OutputMany",
    "PathCache",
    "PortState",
    "SelectByHash",
    "SetEthDst",
    "SetEthSrc",
    "StpProcess",
    "Subnet",
    "SwitchAgent",
    "ToAgent",
    "flow_hash",
    "mac_prefix_mask",
    "shortest_paths",
]
