"""Command-line interface: run PortLand experiments without writing code.

Installed as the ``portland-sim`` console script::

    portland-sim info --k 8              # topology facts
    portland-sim bringup --k 4           # LDP discovery timeline
    portland-sim convergence --failures 4
    portland-sim arp-load --rate 50
    portland-sim verify --scenarios 25   # invariant fault campaign
    portland-sim flows --k 4             # fluid (flow-level) shuffle
"""

from __future__ import annotations

import argparse
import sys

from repro import LinkParams, Simulator, build_portland_fabric
from repro.metrics.convergence import convergence_time, measure_outages
from repro.metrics.tables import format_table
from repro.portland.messages import SwitchLevel
from repro.topology.fattree import build_fat_tree
from repro.topology.scheme import BACKEND_NAMES
from repro.workloads.arp_workload import ArpStorm
from repro.workloads.failures import FailureInjector, pick_failures
from repro.workloads.traffic import UdpFlowSet, random_permutation_pairs


def _converged_fabric(k: int, seed: int, carrier: bool, config=None):
    sim = Simulator(seed=seed)
    fabric = build_portland_fabric(
        sim, k=k, config=config,
        link_params=LinkParams(carrier_detect=carrier))
    fabric.start()
    located = fabric.run_until_located()
    fabric.announce_hosts()
    registered = fabric.run_until_registered()
    return fabric, located, registered


def cmd_info(args: argparse.Namespace) -> int:
    tree = build_fat_tree(args.k)
    half = args.k // 2
    print(format_table(
        ["property", "value"],
        [
            ["k", args.k],
            ["pods", tree.num_pods],
            ["edge switches", len(tree.edge_names)],
            ["aggregation switches", len(tree.agg_names)],
            ["core switches", len(tree.core_names)],
            ["hosts", tree.num_hosts],
            ["switch-switch links", len(tree.switch_wires)],
            ["host links", len(tree.host_wires)],
            ["ECMP paths between pods", half * half],
        ],
        title=f"k={args.k} fat tree",
    ))
    return 0


def cmd_bringup(args: argparse.Namespace) -> int:
    fabric, located, registered = _converged_fabric(args.k, args.seed, True)
    counts = {level: 0 for level in SwitchLevel}
    for agent in fabric.agents.values():
        counts[agent.level] += 1
    print(format_table(
        ["milestone", "simulated time"],
        [
            ["LDP location discovery complete", f"{located * 1000:.0f} ms"],
            ["all hosts registered with FM", f"{registered * 1000:.0f} ms"],
        ],
        title=f"zero-configuration bring-up, k={args.k}",
    ))
    print(f"\nlevels: {counts[SwitchLevel.EDGE]} edge, "
          f"{counts[SwitchLevel.AGGREGATION]} aggregation, "
          f"{counts[SwitchLevel.CORE]} core")
    return 0


def cmd_convergence(args: argparse.Namespace) -> int:
    fabric, _l, _r = _converged_fabric(args.k, args.seed, False)
    sim = fabric.sim
    hosts = fabric.host_list()
    rng = sim.random.stream("cli")
    flows = UdpFlowSet(random_permutation_pairs(hosts, rng),
                       rate_pps=args.rate)
    flows.start(stagger=0.0001)
    sim.run(until=1.0)
    links = pick_failures(fabric.tree, args.failures, rng)
    FailureInjector(sim, fabric.link_between).fail_at(1.0, links)
    sim.run(until=2.5)
    outages = measure_outages(flows.receivers(), 0.9, 2.5, 1.0 / args.rate)
    conv = convergence_time(outages, 1.0 / args.rate)
    affected = sum(1 for o in outages if o.affected)
    print(format_table(
        ["metric", "value"],
        [
            ["failures injected", args.failures],
            ["flows", len(outages)],
            ["flows affected", affected],
            ["worst-flow convergence",
             f"{conv * 1000:.1f} ms" if conv is not None else "n/a"],
        ],
        title=f"convergence after {args.failures} simultaneous silent "
              f"failures (k={args.k})",
    ))
    return 0


def cmd_arp_load(args: argparse.Namespace) -> int:
    fabric, _l, _r = _converged_fabric(args.k, args.seed, True)
    sim = fabric.sim
    fm = fabric.fabric_manager
    storm = ArpStorm(sim, fabric.host_list(), args.rate,
                     sim.random.stream("cli-storm"))
    storm.start()
    start = sim.now
    q0, b0 = fm.arp_queries, fm.bytes_received + fm.bytes_sent
    sim.run(until=start + args.duration)
    queries = fm.arp_queries - q0
    traffic = fm.bytes_received + fm.bytes_sent - b0
    print(format_table(
        ["metric", "value"],
        [
            ["hosts", len(fabric.hosts)],
            ["per-host ARP rate", f"{args.rate:.0f}/s"],
            ["queries served", queries],
            ["control traffic", f"{traffic * 8 / args.duration / 1e6:.2f} Mb/s"],
            ["FM utilization (1 core)",
             f"{100 * fm.utilization(args.duration):.2f}%"],
        ],
        title="fabric-manager ARP load",
    ))
    return 0


def cmd_flows(args: argparse.Namespace) -> int:
    from repro.portland.config import PortlandConfig
    from repro.workloads.shuffle import FluidShuffleWorkload
    from repro.workloads.traffic import random_permutation_pairs

    fabric, _l, _r = _converged_fabric(
        args.k, args.seed, True, config=PortlandConfig(flow_mode=True))
    sim = fabric.sim
    pairs = random_permutation_pairs(fabric.host_list(),
                                     sim.random.stream("cli-flows"))
    events_before = sim.events_executed
    shuffle = FluidShuffleWorkload(fabric, pairs=pairs,
                                   bytes_per_flow=args.bytes)
    shuffle.start()
    done_at = shuffle.run_until_done(timeout_s=args.timeout)
    elapsed = done_at - shuffle.started_at
    stats = shuffle.fct_stats()
    engine = fabric.flow_engine
    print(format_table(
        ["metric", "value"],
        [
            ["flows", len(shuffle.results)],
            ["bytes per flow", args.bytes],
            ["shuffle completion", f"{elapsed * 1000:.2f} ms"],
            ["mean / p99 FCT",
             f"{stats.mean * 1000:.2f} / {stats.p99 * 1000:.2f} ms"],
            ["aggregate goodput",
             f"{shuffle.aggregate_goodput_bps(elapsed) / 1e9:.2f} Gb/s"],
            ["simulator events", sim.events_executed - events_before],
            ["rate recomputes", engine.recomputes],
            ["path re-resolutions", engine.reresolutions],
        ],
        title=f"flow-level (fluid) permutation shuffle, k={args.k}",
    ))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import CampaignConfig, run_campaign

    flow_mode: bool | str = args.flow_mode
    if getattr(args, "hybrid", False):
        flow_mode = "hybrid"
    config = CampaignConfig(
        scenarios=args.scenarios, seed=args.seed,
        backend=args.backend,
        ks=tuple(args.k), steps=args.steps,
        path_cache_entries=4096 if args.path_cache else 0,
        flow_mode=flow_mode, parallel=args.parallel,
        fm_shards=args.fm_shards, fm_batch_interval_s=args.fm_batch,
        fm_incremental=args.fm_incremental, fm_ops=args.fm_ops,
        policy=args.policy, churn=args.churn)
    report = run_campaign(config, log=print if not args.quiet else None)
    print(format_table(
        ["seed", "k", "steps", "checked", "violations", "verdict"],
        report.summary_rows(),
        title=f"invariant campaign ({config.scenarios} scenarios, "
              f"{config.backend})",
    ))
    if report.ok:
        print("all invariants held")
        return 0
    print(f"{report.violation_count} violation(s); minimal reproducers:")
    for reproducer in report.reproducers:
        print(f"  {reproducer}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="portland-sim",
        description="PortLand (SIGCOMM 2009) reproduction experiments.")
    parser.add_argument("--seed", type=int, default=1, help="master RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="fat-tree topology facts")
    p.add_argument("--k", type=int, default=4)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("bringup", help="zero-config discovery timeline")
    p.add_argument("--k", type=int, default=4)
    p.set_defaults(fn=cmd_bringup)

    p = sub.add_parser("convergence", help="failure-convergence experiment")
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--failures", type=int, default=1)
    p.add_argument("--rate", type=float, default=1000.0,
                   help="probe flow rate (pkt/s)")
    p.set_defaults(fn=cmd_convergence)

    p = sub.add_parser("arp-load", help="fabric-manager ARP load")
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--rate", type=float, default=25.0,
                   help="per-host ARP misses per second")
    p.add_argument("--duration", type=float, default=1.0)
    p.set_defaults(fn=cmd_arp_load)

    p = sub.add_parser(
        "verify", help="property-based fault campaign over fabric invariants")
    p.add_argument("--scenarios", type=int, default=25)
    p.add_argument("--k", type=int, nargs="+", default=[4],
                   help="fat-tree degrees to draw scenarios from")
    p.add_argument("--backend", choices=BACKEND_NAMES, default="fattree",
                   help="topology backend scenarios run on (k scales the "
                        "non-fat-tree backends; see docs/TOPOLOGIES.md)")
    p.add_argument("--path-cache", action="store_true",
                   help="enable the compiled-path (cut-through) fast path "
                        "in every scenario fabric")
    p.add_argument("--flow-mode", action="store_true",
                   help="run scenarios in flow-level (fluid) simulation "
                        "mode: probes become fluid flows and the oracle "
                        "checks every resolved flow path")
    p.add_argument("--hybrid", action="store_true",
                   help="run scenarios in hybrid fluid+frame mode: probe "
                        "pairs alternate between fluid flows and frame "
                        "UDP streams, coupled through shared link "
                        "capacity (implies --flow-mode semantics)")
    p.add_argument("--steps", type=int, default=4,
                   help="random fault/migration steps per scenario")
    p.add_argument("--fm-shards", type=int, default=0, metavar="N",
                   help="shard the fabric manager N ways (0 = single FM)")
    p.add_argument("--fm-batch", type=float, default=0.0, metavar="S",
                   help="coalesce override pushes into S-second rounds")
    p.add_argument("--fm-incremental", action="store_true",
                   help="incremental override recomputation on view changes")
    p.add_argument("--fm-ops", action="store_true",
                   help="add fm-restart/fm-partition steps to the op mix")
    p.add_argument("--policy", action="store_true",
                   help="add acl-install/acl-revoke steps and check the "
                        "policy invariants (justified drops, no acl-leak)")
    p.add_argument("--churn", action="store_true",
                   help="run a background ARP storm and weight the op mix "
                        "toward VM migrations (host-churn stress)")
    p.add_argument("--parallel", type=int, default=1, metavar="N",
                   help="shard scenarios over N worker processes "
                        "(results identical to sequential)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-scenario progress lines")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser(
        "flows", help="flow-level (fluid) permutation shuffle (docs/FLOWS.md)")
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--bytes", type=int, default=1_000_000,
                   help="transfer size per flow")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="simulated-seconds budget for the shuffle")
    p.set_defaults(fn=cmd_flows)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``portland-sim`` console script."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
