"""PortLand reproduction: a scalable fault-tolerant layer-2 data center
network fabric (SIGCOMM 2009), on a from-scratch discrete-event simulator.

Quickstart::

    from repro import Simulator, build_portland_fabric

    sim = Simulator(seed=1)
    fabric = build_portland_fabric(sim, k=4)
    fabric.start()
    fabric.run_until_located()      # zero-config location discovery
    fabric.announce_hosts()
    fabric.run_until_registered()   # fabric manager knows every host
    # ...attach apps from repro.host.apps and sim.run(until=...)
"""

from repro.errors import (
    AddressError,
    CodecError,
    FabricManagerError,
    HostError,
    LinkError,
    ProtocolError,
    ReproError,
    SimulationError,
    SwitchError,
    TopologyError,
)
from repro.host import Host
from repro.net import IPv4Address, Link, MacAddress, ip, mac
from repro.portland import (
    FabricManager,
    Pmac,
    PortlandAgent,
    PortlandConfig,
    PortlandSwitch,
    SwitchLevel,
)
from repro.portland.migration import VmMigration
from repro.sim import Simulator
from repro.topology import LinkParams, build_fat_tree, build_portland_fabric
from repro.topology.baselines import build_l2_fabric, build_l3_fabric
from repro.topology.multirooted import build_multirooted_tree

__version__ = "1.0.0"

__all__ = [
    "AddressError",
    "CodecError",
    "FabricManager",
    "FabricManagerError",
    "Host",
    "HostError",
    "IPv4Address",
    "Link",
    "LinkError",
    "LinkParams",
    "MacAddress",
    "Pmac",
    "PortlandAgent",
    "PortlandConfig",
    "PortlandSwitch",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "Simulator",
    "SwitchError",
    "SwitchLevel",
    "TopologyError",
    "VmMigration",
    "build_fat_tree",
    "build_l2_fabric",
    "build_l3_fabric",
    "build_multirooted_tree",
    "build_portland_fabric",
    "ip",
    "mac",
]
