"""Convergence measurement — the paper's Figs. 10–12 metric.

With constant-rate flows, an outage shows up as the longest silence in
a receiver's arrival timeline around the failure instant. Convergence
time is that silence minus the expected inter-arrival gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.apps.udp_stream import UdpStreamReceiver


@dataclass(frozen=True)
class FlowOutage:
    """One flow's outage measurement."""

    flow_index: int
    gap_s: float
    gap_start: float
    gap_end: float
    affected: bool


def measure_outages(
    receivers: list[UdpStreamReceiver],
    window_start: float,
    window_end: float,
    nominal_interval_s: float,
    affected_factor: float = 5.0,
) -> list[FlowOutage]:
    """Per-flow largest gaps in ``[window_start, window_end)``.

    A flow counts as *affected* when its largest gap exceeds
    ``affected_factor`` nominal inter-arrival intervals — flows whose
    path did not cross a failed link show only jitter-sized gaps.
    """
    outages = []
    threshold = affected_factor * nominal_interval_s
    for i, receiver in enumerate(receivers):
        gap, start, end = receiver.max_gap(window_start, window_end)
        outages.append(FlowOutage(
            flow_index=i,
            gap_s=gap,
            gap_start=start,
            gap_end=end,
            affected=gap > threshold,
        ))
    return outages


def convergence_time(outages: list[FlowOutage],
                     nominal_interval_s: float) -> float | None:
    """The paper's headline number: the worst affected flow's outage,
    corrected for the sampling interval. ``None`` when no flow was
    affected (the failure missed all measured paths)."""
    affected = [o for o in outages if o.affected]
    if not affected:
        return None
    worst = max(o.gap_s for o in affected)
    return max(0.0, worst - nominal_interval_s)


def mean_affected_outage(outages: list[FlowOutage],
                         nominal_interval_s: float) -> float | None:
    """Mean outage across affected flows (the figure's other series)."""
    affected = [o.gap_s - nominal_interval_s for o in outages if o.affected]
    if not affected:
        return None
    return sum(affected) / len(affected)


def mean_confidence_interval(samples: list[float],
                             confidence: float = 0.95) -> tuple[float, float]:
    """Mean and half-width of its t-distribution confidence interval.

    With a single sample the half-width is reported as 0 (degenerate).
    """
    import math

    from scipy import stats as _stats

    if not samples:
        raise ValueError("no samples")
    mean = sum(samples) / len(samples)
    if len(samples) < 2:
        return mean, 0.0
    variance = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
    sem = math.sqrt(variance / len(samples))
    t_crit = _stats.t.ppf((1 + confidence) / 2, df=len(samples) - 1)
    return mean, t_crit * sem
