"""Common schema for root-level ``BENCH_<name>.json`` artifacts.

Every ``make bench-*`` target writes one of these at the repo root so
CI (and humans skimming a checkout) can read headline numbers without
parsing benchmark stdout. The schema is deliberately tiny and versioned:

    {
      "bench":  "<name>",        # matches BENCH_<name>.json
      "schema": 1,
      "ratio":  <number>,        # the headline speedup/reduction ratio
      "events": <int>,           # simulated events behind the headline
      "wall_s": <number>,        # wall-clock seconds behind the headline
      "config": { ... },         # knobs that produced the number
      ...                        # free-form extras per benchmark
    }

``tests/test_bench_smoke.py`` validates every committed artifact against
:func:`validate_bench_payload`, so a benchmark that drifts from the
schema fails tier-1, not just the bench lane.
"""

from __future__ import annotations

import json
from pathlib import Path

SCHEMA_VERSION = 1

#: Keys every payload must carry, with accepted types.
_REQUIRED = {
    "bench": str,
    "schema": int,
    "ratio": (int, float),
    "events": int,
    "wall_s": (int, float),
    "config": dict,
}

_REPO_ROOT = Path(__file__).resolve().parents[3]


def bench_payload(name: str, ratio: float, events: int, wall_s: float,
                  config: dict, **extra) -> dict:
    """Assemble a schema-conformant payload (extras ride along)."""
    payload = {
        "bench": name,
        "schema": SCHEMA_VERSION,
        "ratio": float(ratio),
        "events": int(events),
        "wall_s": float(wall_s),
        "config": dict(config),
    }
    payload.update(extra)
    validate_bench_payload(payload)
    return payload


def validate_bench_payload(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` matches the schema."""
    if not isinstance(payload, dict):
        raise ValueError(f"bench payload must be a dict, got {type(payload)}")
    for key, types in _REQUIRED.items():
        if key not in payload:
            raise ValueError(f"bench payload missing required key {key!r}")
        if not isinstance(payload[key], types):
            raise ValueError(
                f"bench payload key {key!r} has type "
                f"{type(payload[key]).__name__}, expected {types}")
    if isinstance(payload["ratio"], bool) or isinstance(payload["events"], bool):
        raise ValueError("bench payload numerics must not be booleans")
    if payload["schema"] != SCHEMA_VERSION:
        raise ValueError(
            f"bench payload schema {payload['schema']} != {SCHEMA_VERSION}")
    if payload["bench"] == "":
        raise ValueError("bench payload name must be non-empty")


def write_bench_json(name: str, payload: dict,
                     root: Path | None = None) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path."""
    validate_bench_payload(payload)
    if payload["bench"] != name:
        raise ValueError(
            f"payload bench {payload['bench']!r} != file name {name!r}")
    path = (root or _REPO_ROOT) / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def find_bench_files(root: Path | None = None) -> dict[str, Path]:
    """``name -> path`` of every ``BENCH_<name>.json`` at the repo root."""
    base = root or _REPO_ROOT
    return {path.stem.removeprefix("BENCH_"): path
            for path in sorted(base.glob("BENCH_*.json"))}
