"""Link-utilization accounting from port counters.

Answers "where did the bytes go?" for any fabric: per-link byte counts,
per-layer aggregates (host↔edge, edge↔agg, agg↔core), and utilization
relative to capacity over a measurement window. Used by the shuffle
analyses and handy when debugging load imbalance.

Port counters include compiled cut-through traversals: when the path
cache is enabled (see ``docs/PERF.md``), launched frames charge every
traversed port at launch time, so these aggregates stay accurate even
though no per-hop link events ran.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.link import Link


@dataclass(frozen=True)
class LinkUsage:
    """Traffic totals for one link (sum of both directions)."""

    name: str
    a: str
    b: str
    bytes_total: int
    frames_total: int

    def utilization(self, elapsed_s: float, rate_bps: float) -> float:
        """Mean utilization of the link's total (both-direction)
        capacity over ``elapsed_s``."""
        if elapsed_s <= 0 or rate_bps <= 0:
            return 0.0
        return (self.bytes_total * 8) / (2 * rate_bps * elapsed_s)


def _layer_of(node_name: str) -> str:
    return node_name.split("-")[0]


def snapshot(links: dict[tuple[str, str], Link]) -> dict[tuple[str, str], tuple[int, int]]:
    """Capture (bytes, frames) per link — diff two snapshots to measure
    a window."""
    result = {}
    for key, link in links.items():
        tx_bytes = link.a.counters.tx_bytes + link.b.counters.tx_bytes
        tx_frames = link.a.counters.tx_frames + link.b.counters.tx_frames
        result[key] = (tx_bytes, tx_frames)
    return result


def usage_since(links: dict[tuple[str, str], Link],
                baseline: dict[tuple[str, str], tuple[int, int]],
                ) -> list[LinkUsage]:
    """Per-link usage since a :func:`snapshot`, descending by bytes."""
    usages = []
    for (a, b), link in links.items():
        now_bytes = link.a.counters.tx_bytes + link.b.counters.tx_bytes
        now_frames = link.a.counters.tx_frames + link.b.counters.tx_frames
        base_bytes, base_frames = baseline.get((a, b), (0, 0))
        usages.append(LinkUsage(
            name=link.name, a=a, b=b,
            bytes_total=now_bytes - base_bytes,
            frames_total=now_frames - base_frames,
        ))
    usages.sort(key=lambda u: u.bytes_total, reverse=True)
    return usages


def by_layer(usages: list[LinkUsage]) -> dict[str, int]:
    """Aggregate bytes per fabric layer.

    Layers are derived from the node-name conventions used by the
    topology builders (``host-*``, ``edge-*``, ``agg-*``, ``core-*``).
    """
    totals: dict[str, int] = {}
    for usage in usages:
        layers = tuple(sorted((_layer_of(usage.a), _layer_of(usage.b))))
        label = "-".join(layers)
        totals[label] = totals.get(label, 0) + usage.bytes_total
    return totals


def imbalance(usages: list[LinkUsage], layer_pair: str) -> float:
    """max/mean byte ratio across the links of one layer (1.0 = perfectly
    balanced). Quantifies how well ECMP spreads load."""
    selected = [
        u.bytes_total for u in usages
        if "-".join(sorted((_layer_of(u.a), _layer_of(u.b)))) == layer_pair
    ]
    if not selected or sum(selected) == 0:
        return 1.0
    mean = sum(selected) / len(selected)
    return max(selected) / mean
