"""Link-utilization accounting from port counters.

Answers "where did the bytes go?" for any fabric: per-link byte counts,
per-layer aggregates (host↔edge, edge↔agg, agg↔core), and utilization
relative to capacity over a measurement window. Used by the shuffle
analyses and handy when debugging load imbalance.

Port counters include compiled cut-through traversals and fluid-flow
charges: when the path cache is enabled (see ``docs/PERF.md``),
launched frames charge every traversed port at launch time, and in
flow mode (``docs/FLOWS.md``) the engine charges the same counters at
every settlement — so these aggregates stay accurate in every
execution mode even though no per-hop link events ran.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.link import Link


@dataclass(frozen=True)
class LinkUsage:
    """Traffic totals for one link (sum of both directions)."""

    name: str
    a: str
    b: str
    bytes_total: int
    frames_total: int
    #: True when the link was absent from the baseline snapshot (added
    #: after it — e.g. by a VM-migration re-home), so the totals cover
    #: the link's whole lifetime rather than just the window.
    new_since_baseline: bool = False

    def utilization(self, elapsed_s: float, rate_bps: float) -> float:
        """Mean utilization of the link's total (both-direction)
        capacity over ``elapsed_s``."""
        if elapsed_s <= 0 or rate_bps <= 0:
            return 0.0
        return (self.bytes_total * 8) / (2 * rate_bps * elapsed_s)


def _layer_of(node_name: str) -> str:
    return node_name.split("-")[0]


def _link_totals(link: Link) -> tuple[int, int]:
    """(bytes, frames) transmitted on ``link``, both directions summed."""
    return (link.a.counters.tx_bytes + link.b.counters.tx_bytes,
            link.a.counters.tx_frames + link.b.counters.tx_frames)


def snapshot(links: dict[tuple[str, str], Link]) -> dict[tuple[str, str], tuple[int, int]]:
    """Capture (bytes, frames) per link — diff two snapshots to measure
    a window."""
    return {key: _link_totals(link) for key, link in links.items()}


def usage_since(links: dict[tuple[str, str], Link],
                baseline: dict[tuple[str, str], tuple[int, int]],
                ) -> list[LinkUsage]:
    """Per-link usage since a :func:`snapshot`, descending by bytes.

    A link missing from ``baseline`` (attached after the snapshot was
    taken) is counted from zero and flagged
    :attr:`LinkUsage.new_since_baseline` so analyses can tell a
    whole-lifetime total from a window delta.
    """
    usages = []
    for (a, b), link in links.items():
        now_bytes, now_frames = _link_totals(link)
        base = baseline.get((a, b))
        base_bytes, base_frames = base if base is not None else (0, 0)
        usages.append(LinkUsage(
            name=link.name, a=a, b=b,
            bytes_total=now_bytes - base_bytes,
            frames_total=now_frames - base_frames,
            new_since_baseline=base is None,
        ))
    usages.sort(key=lambda u: u.bytes_total, reverse=True)
    return usages


def class_totals(links: dict[tuple[str, str], Link]) -> dict[int, int]:
    """Bytes transmitted per traffic class, both directions of every
    link summed.

    Classes come from the strict-priority egress queues (see
    ``docs/POLICY.md``). Links only meter classed (tclass > 0) frames —
    the default path stays counter-free — so class 0 here is the
    *residual*: total transmitted bytes minus the classed sum (it also
    absorbs fluid-charged and compiled-launch bytes, which are always
    best-effort). Counters are cumulative — snapshot and diff (like
    :func:`snapshot`) to measure a window.
    """
    totals: dict[int, int] = {0: 0}
    for link in links.values():
        for port in (link.a, link.b):
            classed = 0
            for tclass, nbytes in link.class_tx_bytes(port).items():
                totals[tclass] = totals.get(tclass, 0) + nbytes
                classed += nbytes
            totals[0] += port.counters.tx_bytes - classed
    return totals


def class_drop_totals(links: dict[tuple[str, str], Link]) -> dict[int, int]:
    """Drop-tail frame drops per traffic class across every link.

    Under strict priority, drops concentrating in class 0 while class 1
    stays clean is the expected signature of priority protection; drops
    in the top class mean the priority traffic alone oversubscribes the
    port.
    """
    totals: dict[int, int] = {}
    for link in links.values():
        for port in (link.a, link.b):
            for tclass, count in link.class_drops(port).items():
                totals[tclass] = totals.get(tclass, 0) + count
    return totals


def by_layer(usages: list[LinkUsage]) -> dict[str, int]:
    """Aggregate bytes per fabric layer.

    Layers are derived from the node-name conventions used by the
    topology builders (``host-*``, ``edge-*``, ``agg-*``, ``core-*``).
    """
    totals: dict[str, int] = {}
    for usage in usages:
        layers = tuple(sorted((_layer_of(usage.a), _layer_of(usage.b))))
        label = "-".join(layers)
        totals[label] = totals.get(label, 0) + usage.bytes_total
    return totals


def imbalance(usages: list[LinkUsage], layer_pair: str) -> float:
    """max/mean byte ratio across the links of one layer (1.0 = perfectly
    balanced). Quantifies how well ECMP spreads load."""
    selected = [
        u.bytes_total for u in usages
        if "-".join(sorted((_layer_of(u.a), _layer_of(u.b)))) == layer_pair
    ]
    if not selected or sum(selected) == 0:
        return 1.0
    mean = sum(selected) / len(selected)
    return max(selected) / mean
