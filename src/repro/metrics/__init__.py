"""Measurement and reporting helpers."""

from repro.metrics.convergence import (
    FlowOutage,
    convergence_time,
    mean_affected_outage,
    measure_outages,
)
from repro.metrics.tables import format_series, format_table

__all__ = [
    "FlowOutage",
    "convergence_time",
    "format_series",
    "format_table",
    "mean_affected_outage",
    "measure_outages",
]

from repro.metrics.utilization import (
    LinkUsage,
    by_layer,
    class_drop_totals,
    class_totals,
    imbalance,
    snapshot,
    usage_since,
)

__all__ += ["LinkUsage", "by_layer", "class_drop_totals", "class_totals",
            "imbalance", "snapshot", "usage_since"]
