"""Plain-text table rendering for benchmark output.

The benchmark harnesses print the same rows/series the paper reports;
this keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Sequence[tuple[float, float]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render an (x, y) series as two aligned columns."""
    rows = [(f"{x:g}", f"{y:g}") for x, y in points]
    return format_table([x_label, y_label], rows, title=name)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


def format_ascii_plot(points: "Sequence[tuple[float, float]]",
                      height: int = 10, y_label: str = "",
                      x_label: str = "t (s)") -> str:
    """Render an (x, y) series as an ASCII time-series plot.

    Used by the benchmark harnesses so the regenerated *figures* look
    like figures in the log, not just number columns.
    """
    if not points:
        return "(empty series)"
    ys = [y for _x, y in points]
    y_max = max(ys) or 1.0
    lines = []
    for row in range(height, 0, -1):
        threshold = y_max * (row - 0.5) / height
        cells = "".join("#" if y >= threshold else " " for y in ys)
        label = f"{y_max * row / height:10.1f} |" if row in (height, 1) \
            else "           |"
        lines.append(label + cells)
    lines.append("           +" + "-" * len(points))
    x_first, x_last = points[0][0], points[-1][0]
    footer = f"            {x_first:<8.2f}{x_label:^{max(len(points) - 16, 4)}}{x_last:>8.2f}"
    lines.append(footer)
    if y_label:
        lines.insert(0, f"  {y_label}")
    return "\n".join(lines)
