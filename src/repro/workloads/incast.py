"""N-to-1 incast: bulk senders converge on one reducer while small
prioritized mice measure the queueing they cause.

The classic datacenter hot spot (partition/aggregate, MapReduce reduce
phase): every sender pushes a long TCP bulk ("elephant") transfer at the
same reducer, saturating the reducer's edge downlink. Latency-sensitive
mice — single small UDP datagrams marked ``DSCP_EF`` — cross the same
bottleneck; their one-way latency is the workload's headline metric.
With the fabric's strict-priority queues on, mice overtake the queued
elephant bytes at every egress port; with FIFO queues
(``LinkParams(priority_queues=False)``) each mouse waits behind the full
backlog, which is exactly the comparison ``make bench-policy`` runs.
"""

from __future__ import annotations

from collections import deque

from repro.host.apps.tcp_bulk import TcpBulkSender, TcpSink
from repro.host.host import Host
from repro.net.packet import AppData
from repro.policy import DSCP_EF
from repro.sim.simulator import Simulator
from repro.sim.stats import SummaryStats, summarize


class IncastWorkload:
    """N senders → one reducer: elephant TCP bulks plus EF-marked mice.

    Call :meth:`start`, then :meth:`run` (the run window is derived from
    the mice schedule — elephants are open-ended background load), then
    read :meth:`mice_stats` / :attr:`mice_lost`.

    Mice are matched to their send timestamps per (sender IP, UDP source
    port): one socket per sender and one path per 5-tuple keeps each
    sender's mice in FIFO order end to end.
    """

    def __init__(
        self,
        sim: Simulator,
        senders: list[Host],
        reducer: Host,
        mice_count: int = 200,
        mice_payload_bytes: int = 64,
        mice_interval_s: float = 0.0005,
        mice_dscp: int = DSCP_EF,
        warmup_s: float = 0.05,
        base_port: int = 41000,
        mice_port: int = 40900,
    ) -> None:
        if not senders:
            raise ValueError("incast needs at least one sender")
        self.sim = sim
        self.senders = list(senders)
        self.reducer = reducer
        self.mice_count = mice_count
        self.mice_payload_bytes = mice_payload_bytes
        self.mice_interval_s = mice_interval_s
        self.mice_dscp = mice_dscp
        self.warmup_s = warmup_s
        self.base_port = base_port
        self.mice_port = mice_port
        #: One-way mouse latencies (seconds), in arrival order.
        self.mice_latencies: list[float] = []
        self.mice_sent = 0
        self.mice_received = 0
        self._sinks: list[TcpSink] = []
        self._bulks: list[TcpBulkSender] = []
        self._mice_sockets: dict[str, object] = {}
        self._pending: dict[tuple[int, int], deque[float]] = {}
        self._last_send_at = 0.0
        self._started = False

    def start(self) -> None:
        """Open the reducer's sinks, start every elephant, and schedule
        the mice stream (first mouse after ``warmup_s``, so the ARP and
        TCP handshakes are out of the measurement window)."""
        if self._started:
            raise RuntimeError("incast already started")
        self._started = True
        mice_rx = self.reducer.udp_socket(self.mice_port)
        mice_rx.on_datagram = self._on_mouse
        for i, sender in enumerate(self.senders):
            self._sinks.append(TcpSink(self.reducer, self.base_port + i))
            self._bulks.append(TcpBulkSender(sender, self.reducer.ip,
                                             self.base_port + i))
            self._mice_sockets[sender.name] = sender.udp_socket()
        for seq in range(self.mice_count):
            sender = self.senders[seq % len(self.senders)]
            at = self.warmup_s + seq * self.mice_interval_s
            self.sim.schedule(at, self._send_mouse, sender)
            self._last_send_at = self.sim.now + at

    def _send_mouse(self, sender: Host) -> None:
        socket = self._mice_sockets[sender.name]
        key = (sender.ip.value, socket.port)
        self._pending.setdefault(key, deque()).append(self.sim.now)
        self.mice_sent += 1
        socket.sendto(self.reducer.ip, self.mice_port,
                      AppData(self.mice_payload_bytes), dscp=self.mice_dscp)

    def _on_mouse(self, src_ip, src_port, _payload, now: float) -> None:
        queue = self._pending.get((src_ip.value, src_port))
        if not queue:
            return
        self.mice_latencies.append(now - queue.popleft())
        self.mice_received += 1

    # ------------------------------------------------------------------
    # Driving and results

    def run(self, grace_s: float = 0.25) -> float:
        """Run through the whole mice schedule plus ``grace_s`` of
        settling (any mouse still missing then was tail-dropped)."""
        self.sim.run(until=self._last_send_at + grace_s)
        return self.sim.now

    @property
    def mice_lost(self) -> int:
        """Mice sent but never delivered (drop-tail casualties)."""
        return self.mice_sent - self.mice_received

    def mice_stats(self) -> SummaryStats:
        """Summary of one-way mouse latencies (seconds)."""
        return summarize(self.mice_latencies)

    def elephant_bytes(self) -> int:
        """Bulk payload bytes the reducer has absorbed."""
        return sum(sink.total_bytes for sink in self._sinks)
