"""Failure injection for the convergence experiments (Figs. 10–12)."""

from __future__ import annotations

import random

from repro.errors import TopologyError
from repro.net.link import Link
from repro.topology.fattree import FatTree


def switch_link_names(tree: FatTree,
                      kinds: tuple[str, ...] = ("edge-agg", "agg-core"),
                      ) -> list[tuple[str, str]]:
    """Switch-switch link name pairs of the requested kinds."""
    agg_names = set(tree.agg_names)
    core_names = set(tree.core_names)
    edge_names = set(tree.edge_names)
    selected = []
    for wire in tree.switch_wires:
        a, b = wire.node_a, wire.node_b
        if ((a in edge_names and b in agg_names)
                or (a in agg_names and b in edge_names)):
            kind = "edge-agg"
        elif ((a in agg_names and b in core_names)
              or (a in core_names and b in agg_names)):
            kind = "agg-core"
        else:
            kind = "other"
        if kind in kinds:
            selected.append((a, b))
    return selected


def valley_free_connected(tree: FatTree,
                          failed: set[frozenset[str]]) -> bool:
    """Whether every edge-switch pair still has an up*-down* path.

    PortLand forwarding never sends a packet back up once it has started
    descending, so plain graph connectivity is not enough: a fabric can
    be connected yet unroutable ("valley" paths are forbidden). This is
    the reachability notion convergence experiments must preserve.
    """
    def alive(a: str, b: str) -> bool:
        return frozenset((a, b)) not in failed

    # edge -> alive aggs above it; agg -> alive cores above it.
    aggs_of_edge: dict[str, set[str]] = {name: set() for name in tree.edge_names}
    cores_of_agg: dict[str, set[str]] = {name: set() for name in tree.agg_names}
    agg_names = set(tree.agg_names)
    core_names = set(tree.core_names)
    for wire in tree.switch_wires:
        a, b = wire.node_a, wire.node_b
        if not alive(a, b):
            continue
        if a in aggs_of_edge and b in agg_names:
            aggs_of_edge[a].add(b)
        elif b in aggs_of_edge and a in agg_names:
            aggs_of_edge[b].add(a)
        elif a in cores_of_agg and b in core_names:
            cores_of_agg[a].add(b)
        elif b in cores_of_agg and a in core_names:
            cores_of_agg[b].add(a)

    cores_of_edge = {
        edge: {core for agg in aggs for core in cores_of_agg[agg]}
        for edge, aggs in aggs_of_edge.items()
    }
    edges = tree.edge_names
    for i, src in enumerate(edges):
        for dst in edges[i + 1:]:
            if aggs_of_edge[src] & aggs_of_edge[dst]:
                continue  # shared aggregation switch (same pod)
            if not cores_of_edge[src] & cores_of_edge[dst]:
                return False
    return True


def pick_failures(
    tree: FatTree,
    count: int,
    rng: random.Random,
    kinds: tuple[str, ...] = ("edge-agg", "agg-core"),
    keep_connected: bool = True,
) -> list[tuple[str, str]]:
    """Choose ``count`` distinct links to fail.

    With ``keep_connected`` (the paper's implicit assumption — it
    measures *convergence*, which requires an alternative path to
    exist), candidates that would break up*-down* reachability between
    any pair of edge switches are re-drawn.
    """
    candidates = switch_link_names(tree, kinds)
    if count > len(candidates):
        raise TopologyError(
            f"asked for {count} failures but only {len(candidates)} links")

    chosen: list[tuple[str, str]] = []
    failed: set[frozenset[str]] = set()
    pool = candidates[:]
    rng.shuffle(pool)
    for link in pool:
        if len(chosen) == count:
            break
        if not keep_connected:
            chosen.append(link)
            continue
        failed.add(frozenset(link))
        if valley_free_connected(tree, failed):
            chosen.append(link)
        else:
            failed.discard(frozenset(link))
    if len(chosen) < count:
        raise TopologyError(
            f"could only pick {len(chosen)}/{count} failures without "
            "breaking up*-down* reachability")
    return chosen


class FailureInjector:
    """Schedules link failures (and optional recoveries) on a fabric."""

    def __init__(self, sim, link_lookup) -> None:
        """``link_lookup(a, b) -> Link`` resolves names to link objects
        (e.g. ``fabric.link_between``)."""
        self.sim = sim
        self._lookup = link_lookup
        self.failed: list[Link] = []

    def fail_at(self, time_s: float, links: list[tuple[str, str]]) -> None:
        """Fail all ``links`` simultaneously at ``time_s``."""
        self.sim.schedule_at(time_s, self._fail_now, links)

    def recover_at(self, time_s: float) -> None:
        """Recover everything failed so far at ``time_s``."""
        self.sim.schedule_at(time_s, self._recover_now)

    def _fail_now(self, links: list[tuple[str, str]]) -> None:
        for a, b in links:
            link = self._lookup(a, b)
            link.fail()
            self.failed.append(link)

    def _recover_now(self) -> None:
        for link in self.failed:
            link.recover()
        self.failed.clear()
