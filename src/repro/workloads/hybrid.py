"""Hybrid fluid+frame workload: a sea of fluid background flows under a
frame-level foreground.

The hybrid execution mode (``PortlandConfig(flow_mode="hybrid")``, see
``docs/FLOWS.md``) exists for exactly one experiment shape: a handful of
flows whose packet-level behaviour matters (the *foreground* — real TCP
handshakes, queueing, retransmits) embedded in a data center's worth of
steady background traffic that only matters for the bandwidth it takes
up. This module packages that shape:

* **background** — open-ended CBR fluid flows (``demand_bps`` each),
  admitted in a few batches so the engine coalesces their admission
  into a handful of recomputations. Their allocations are pushed onto
  the links and slow frame serialization there.
* **foreground** — a frame-level :class:`ShuffleWorkload` (real TCP
  senders), whose measured per-epoch load shrinks the capacity the
  fluid water-filling distributes.

Results: the foreground's FCT statistics come from the embedded
shuffle's API unchanged; background delivery is read from the fluid
flows' transferred totals.
"""

from __future__ import annotations

from repro.flows.flow import Flow
from repro.host.host import Host
from repro.sim.simulator import Simulator
from repro.sim.stats import SummaryStats
from repro.workloads.shuffle import ShuffleWorkload


class HybridWorkload:
    """Fluid background + frame foreground on one hybrid fabric.

    Call :meth:`start`, then :meth:`run_until_foreground_done`; read
    foreground FCTs via :meth:`fct_stats` (the embedded
    :class:`ShuffleWorkload`'s numbers) and background delivery via
    :meth:`background_delivered_bytes`. Background flows are open-ended;
    :meth:`stop_background` tears them down (bytes stay charged).
    """

    def __init__(
        self,
        fabric,
        background_pairs: list[tuple[Host, Host]],
        foreground_pairs: list[tuple[Host, Host]],
        background_bps: float = 16e6,
        payload_bytes: int = 1000,
        bytes_per_flow: int = 500_000,
        base_port: int = 40000,
        background_batches: int = 8,
        batch_interval_s: float = 0.005,
        foreground_stagger_s: float = 0.001,
    ) -> None:
        engine = fabric.flow_engine
        if engine is None or not engine.hybrid:
            raise ValueError(
                "hybrid workload needs a fabric built with "
                'PortlandConfig(flow_mode="hybrid")')
        self.fabric = fabric
        self.sim: Simulator = fabric.sim
        self.engine = engine
        self.background_pairs = list(background_pairs)
        self.background_bps = background_bps
        self.payload_bytes = payload_bytes
        self.background_batches = max(1, background_batches)
        self.batch_interval_s = batch_interval_s
        self.base_port = base_port
        self.background_flows: list[Flow] = []
        #: Foreground transfers ride the unchanged frame-mode shuffle.
        self.foreground = ShuffleWorkload(
            self.sim, hosts=[], pairs=list(foreground_pairs),
            bytes_per_flow=bytes_per_flow,
            base_port=base_port + len(self.background_pairs),
            stagger_s=foreground_stagger_s)
        self.foreground_started_at: float | None = None
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle

    def start_background(self) -> None:
        """Admit every background flow, in batches: flows admitted at
        one instant coalesce into a single rate recomputation, so the
        whole sea costs ``background_batches`` refills to bring up."""
        per_batch = -(-len(self.background_pairs) // self.background_batches)
        for b in range(self.background_batches):
            chunk = self.background_pairs[b * per_batch:(b + 1) * per_batch]
            if chunk:
                self.sim.schedule(b * self.batch_interval_s,
                                  self._admit_batch, chunk, b * per_batch)

    def _admit_batch(self, chunk, offset: int) -> None:
        for i, (src, dst) in enumerate(chunk):
            self.background_flows.append(self.engine.start_flow(
                src, dst.ip, demand_bps=self.background_bps,
                payload_bytes=self.payload_bytes,
                sport=self.base_port + offset + i,
                dport=self.base_port + offset + i,
                name=f"bg-{offset + i}"))

    def start_foreground(self) -> None:
        """Launch the frame-level foreground transfers (call once the
        background has settled, or immediately for a cold-start mix)."""
        self.foreground_started_at = self.sim.now
        self.foreground.start()

    def start(self) -> None:
        """Background first, foreground once the last batch is in."""
        if self._started:
            raise RuntimeError("hybrid workload already started")
        self._started = True
        self.start_background()
        self.sim.schedule(self.background_batches * self.batch_interval_s,
                          self.start_foreground)

    def run_until_foreground_done(self, timeout_s: float = 60.0,
                                  step_s: float = 0.01) -> float:
        """Drive the simulator until every foreground transfer finishes;
        returns the last completion time (background keeps flowing)."""
        deadline = self.sim.now + timeout_s
        while self.sim.now < deadline:
            if (self.foreground_started_at is not None
                    and self.foreground.all_done()):
                return max(r.completed_at for r in self.foreground.results)

            self.sim.run(until=min(self.sim.now + step_s, deadline))
        if (self.foreground_started_at is None
                or not self.foreground.all_done()):
            raise TimeoutError(
                f"foreground incomplete: {self.foreground.completed()}"
                f"/{self.foreground.num_flows}")
        return max(r.completed_at for r in self.foreground.results)

    def stop_background(self) -> None:
        """Tear down every background flow (delivered bytes stay
        charged to the links they crossed)."""
        for flow in self.background_flows:
            self.engine.stop_flow(flow)

    # ------------------------------------------------------------------
    # Results

    def fct_stats(self) -> SummaryStats:
        """Foreground flow-completion-time statistics."""
        return self.foreground.fct_stats()

    def background_delivered_bytes(self) -> float:
        """Payload bytes the background sea has delivered so far."""
        self.engine.settle_now()
        return sum(f.transferred_bytes for f in self.background_flows)

    def background_rate_bps(self) -> float:
        """Aggregate payload rate currently allocated to the background."""
        return sum(f.rate_bps for f in self.background_flows)
