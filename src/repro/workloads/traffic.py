"""Traffic-matrix generators and flow-set helpers for experiments."""

from __future__ import annotations

import random

from repro.host.apps.udp_stream import UdpStreamReceiver, UdpStreamSender
from repro.host.host import Host


def random_permutation_pairs(hosts: list[Host],
                             rng: random.Random) -> list[tuple[Host, Host]]:
    """A random permutation traffic matrix: every host sends to exactly
    one other host and receives from exactly one (no self-pairs)."""
    if len(hosts) < 2:
        return []
    receivers = hosts[:]
    # Sattolo's algorithm: a uniformly random cyclic permutation, which
    # guarantees no host maps to itself.
    for i in range(len(receivers) - 1, 0, -1):
        j = rng.randrange(i)
        receivers[i], receivers[j] = receivers[j], receivers[i]
    return list(zip(hosts, receivers))


def stride_pairs(hosts: list[Host], stride: int) -> list[tuple[Host, Host]]:
    """Stride traffic: host i sends to host (i + stride) mod N — with
    stride = hosts-per-pod this forces every flow inter-pod."""
    n = len(hosts)
    if n < 2:
        return []
    return [(hosts[i], hosts[(i + stride) % n]) for i in range(n)]


def inter_pod_pairs(hosts_by_pod: dict[int, list[Host]],
                    rng: random.Random,
                    flows: int) -> list[tuple[Host, Host]]:
    """Random sender/receiver pairs guaranteed to cross pods."""
    pods = [p for p, members in hosts_by_pod.items() if members]
    if len(pods) < 2:
        return []
    pairs = []
    for _ in range(flows):
        src_pod, dst_pod = rng.sample(pods, 2)
        pairs.append((rng.choice(hosts_by_pod[src_pod]),
                      rng.choice(hosts_by_pod[dst_pod])))
    return pairs


class UdpFlowSet:
    """A bundle of CBR UDP flows with their measuring receivers."""

    def __init__(self, pairs: list[tuple[Host, Host]], rate_pps: float = 1000.0,
                 payload_bytes: int = 64, base_port: int = 20000) -> None:
        self.flows: list[tuple[UdpStreamSender, UdpStreamReceiver]] = []
        for i, (src, dst) in enumerate(pairs):
            port = base_port + i
            receiver = UdpStreamReceiver(dst, port)
            sender = UdpStreamSender(src, dst.ip, port, rate_pps=rate_pps,
                                     payload_bytes=payload_bytes,
                                     flow_id=f"flow-{i}")
            self.flows.append((sender, receiver))

    def start(self, first_delay: float = 0.0, stagger: float = 0.0) -> None:
        """Start all senders (optionally staggered to avoid phase lock)."""
        for i, (sender, _receiver) in enumerate(self.flows):
            sender.start(first_delay + i * stagger)

    def stop(self) -> None:
        """Stop all senders."""
        for sender, _receiver in self.flows:
            sender.stop()

    def receivers(self) -> list[UdpStreamReceiver]:
        return [receiver for _sender, receiver in self.flows]

    def total_received(self) -> int:
        return sum(r.received for r in self.receivers())
