"""Elephant/mice mix with flow-size-aware rehashing, on the fluid engine.

PortLand (and the flow-scheduling line of work it seeded — Hedera) keeps
ECMP for the many small *mice* but treats long-lived *elephants*
specially: a hash collision that parks two elephants on the same core
link halves both for their whole lifetime, so elephants are worth
re-placing. This workload models the simplest such scheduler the fabric
supports without new switch state: when an elephant's allocated rate
stays under a threshold, the (application-level) scheduler *rehashes*
it — tears the flow down and restarts the remainder on a different UDP
source port, giving the ECMP hash a fresh draw. Mice are never touched
(they are too short to matter and too many to track), which is the
"flow-size-aware" part.

Mice are marked ``DSCP_EF`` by default, so on a policy-enabled fabric
they also exercise the per-class water-filling (the fluid analogue of
the strict-priority queues; see docs/POLICY.md).
"""

from __future__ import annotations

from repro.host.host import Host
from repro.policy import DSCP_EF
from repro.sim.process import Timer
from repro.sim.simulator import Simulator
from repro.sim.stats import SummaryStats, summarize
from repro.workloads.shuffle import FlowResult

#: Source-port step between rehash attempts — coprime to typical ECMP
#: group sizes, so consecutive draws land on different hash buckets.
_REHASH_PORT_STEP = 101


class ElephantMiceWorkload:
    """A few large greedy elephants plus a swarm of small prioritized
    mice, with threshold-triggered elephant rehashing.

    ``elephants`` and ``mice`` are (src, dst) host-pair lists. Requires
    a fabric built with ``PortlandConfig(flow_mode=...)``. Drive with
    :meth:`start` + :meth:`run_until_done`, then read
    :meth:`elephant_fct_stats` / :meth:`mice_fct_stats` /
    :attr:`rehashes`.
    """

    def __init__(
        self,
        fabric,
        elephants: list[tuple[Host, Host]],
        mice: list[tuple[Host, Host]],
        elephant_bytes: int = 2_000_000,
        mouse_bytes: int = 20_000,
        mice_dscp: int = DSCP_EF,
        base_port: int = 42000,
        stagger_s: float = 0.0005,
        check_interval_s: float = 0.05,
        rehash_below_bps: float = 100e6,
        max_rehashes: int = 3,
    ) -> None:
        if fabric.flow_engine is None:
            raise ValueError(
                "fabric has no flow engine — build it with "
                "PortlandConfig(flow_mode=True)")
        self.fabric = fabric
        self.sim: Simulator = fabric.sim
        self.engine = fabric.flow_engine
        self.elephant_pairs = list(elephants)
        self.mice_pairs = list(mice)
        self.elephant_bytes = elephant_bytes
        self.mouse_bytes = mouse_bytes
        self.mice_dscp = mice_dscp
        self.base_port = base_port
        self.stagger_s = stagger_s
        self.check_interval_s = check_interval_s
        self.rehash_below_bps = rehash_below_bps
        self.max_rehashes = max_rehashes
        self.elephant_results: list[FlowResult] = []
        self.mice_results: list[FlowResult] = []
        #: Elephant re-placements performed (across all elephants).
        self.rehashes = 0
        #: index -> (live flow, current sport, rehashes used)
        self._live: dict[int, tuple] = {}
        self._check_timer = Timer(self.sim, self._check)
        self._started = False

    def start(self) -> None:
        """Admit every flow (staggered) and arm the rehash check."""
        if self._started:
            raise RuntimeError("workload already started")
        self._started = True
        for i, (src, dst) in enumerate(self.elephant_pairs):
            result = FlowResult(src=src.name, dst=dst.name,
                                started_at=self.sim.now + i * self.stagger_s)
            self.elephant_results.append(result)
            self.sim.schedule(i * self.stagger_s, self._launch_elephant,
                              i, self.base_port + i, self.elephant_bytes,
                              result)
        offset = len(self.elephant_pairs)
        for j, (src, dst) in enumerate(self.mice_pairs):
            result = FlowResult(src=src.name, dst=dst.name,
                                started_at=self.sim.now + j * self.stagger_s)
            self.mice_results.append(result)
            self.sim.schedule(j * self.stagger_s, self._launch_mouse,
                              j, self.base_port + offset + j, result)
        self._check_timer.start(self.check_interval_s)

    def _launch_elephant(self, i: int, sport: int, size: int,
                         result: FlowResult) -> None:
        src, dst = self.elephant_pairs[i]

        def on_complete(flow, _r=result, _i=i) -> None:
            _r.completed_at = flow.completed_at
            self._live.pop(_i, None)

        used = self._live.pop(i, (None, 0, 0))[2]
        flow = self.engine.start_flow(
            src, dst.ip, size_bytes=size, sport=sport,
            dport=self.base_port + i,
            name=f"elephant-{i}.{sport}", on_complete=on_complete)
        self._live[i] = (flow, sport, used)

    def _launch_mouse(self, j: int, port: int, result: FlowResult) -> None:
        src, dst = self.mice_pairs[j]

        def on_complete(flow, _r=result) -> None:
            _r.completed_at = flow.completed_at

        self.engine.start_flow(
            src, dst.ip, size_bytes=self.mouse_bytes, sport=port, dport=port,
            dscp=self.mice_dscp, name=f"mouse-{j}", on_complete=on_complete)

    # ------------------------------------------------------------------
    # Size-aware rehashing

    def _check(self) -> None:
        """Periodic elephant health check: any live elephant allocated
        under the threshold (and not merely stalled — a pathless flow
        gains nothing from a new hash draw) is restarted from its
        remaining bytes on a fresh source port."""
        self.engine.settle_now()
        for i, (flow, sport, used) in list(self._live.items()):
            if (flow.completed_at is not None or flow.stalled
                    or used >= self.max_rehashes
                    or flow.rate_bps >= self.rehash_below_bps
                    or flow.rate_bps <= 0.0):
                continue
            remaining = flow.remaining_bytes
            if remaining is None or remaining <= 0:
                continue
            self.engine.stop_flow(flow)
            self.rehashes += 1
            self._live[i] = (flow, sport, used + 1)
            self._launch_elephant(i, sport + _REHASH_PORT_STEP,
                                  int(remaining), self.elephant_results[i])
        if self._live:
            self._check_timer.start(self.check_interval_s)

    # ------------------------------------------------------------------
    # Driving and results

    @property
    def num_flows(self) -> int:
        return len(self.elephant_pairs) + len(self.mice_pairs)

    def completed(self) -> int:
        return sum(1 for r in self.elephant_results + self.mice_results
                   if r.completed_at is not None)

    def all_done(self) -> bool:
        return self.completed() == self.num_flows

    def run_until_done(self, timeout_s: float = 60.0,
                       step_s: float = 0.005) -> float:
        """Drive the simulator until every flow completes."""
        deadline = self.sim.now + timeout_s
        while self.sim.now < deadline:
            if self.all_done():
                return self.sim.now
            self.sim.run(until=min(self.sim.now + step_s, deadline))
        if not self.all_done():
            raise TimeoutError(
                f"elephant/mice incomplete: {self.completed()}"
                f"/{self.num_flows}")
        return self.sim.now

    def elephant_fct_stats(self) -> SummaryStats:
        """FCT summary over elephants (start → final segment done)."""
        return summarize([r.fct for r in self.elephant_results
                          if r.fct is not None])

    def mice_fct_stats(self) -> SummaryStats:
        """FCT summary over the mice."""
        return summarize([r.fct for r in self.mice_results
                          if r.fct is not None])
