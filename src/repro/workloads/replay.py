"""Event-loop-free forwarding replay over a converged fabric.

These helpers push synthetic frames through the *decision layer* of a
live fabric without scheduling simulator events: the per-hop variant
calls ``PortlandSwitch._forwarding_decision`` (exactly what ``receive``
runs) and follows output ports across the real wiring; the compiled
variant probes the :class:`~repro.switching.path_cache.PathCache`'s
per-ingress tables. Benchmarks and the tier-1 perf smoke test use them
to measure the steady-state cost of forwarding itself, isolated from
event-kernel and host-stack overhead — and to cross-check that both
layers produce identical paths.
"""

from __future__ import annotations

from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.ipv4 import IPPROTO_UDP, IPv4Packet
from repro.net.packet import AppData
from repro.net.udp import UdpDatagram
from repro.switching.flow_table import decision_key
from repro.switching.hop_walk import walk_decision_path


def all_to_all_frames(fabric, flows_per_pair: int = 4) -> list:
    """(ingress switch, ingress port index, frame) for every ordered host
    pair, ``flows_per_pair`` distinct UDP flows each, addressed to the
    PMAC a proxy-ARP reply would hand the sender."""
    fm = fabric.fabric_manager
    hosts = fabric.host_list()
    workload = []
    for src in hosts:
        for dst in hosts:
            if src is dst:
                continue
            record = fm.hosts_by_ip[dst.ip]
            for flow in range(flows_per_pair):
                packet = IPv4Packet(src.ip, dst.ip, IPPROTO_UDP,
                                    UdpDatagram(10_000 + flow, 80, AppData(64)))
                frame = EthernetFrame(record.pmac, src.mac,
                                      ETHERTYPE_IPV4, packet)
                ingress = src.nic.peer
                workload.append((ingress.node, ingress.index, frame))
    return workload


def replay_decisions(workload) -> tuple[int, int]:
    """Forward every frame hop-by-hop through the real per-switch
    decision path (the shared :func:`walk_decision_path` walker),
    following output ports across the live wiring until the frame leaves
    on a host port. Returns (hops, delivered)."""
    hops = 0
    delivered = 0
    for node, in_index, frame in workload:
        walked, final_port = walk_decision_path(node, in_index, frame)
        hops += len(walked)
        if final_port is not None:
            delivered += 1
    return hops, delivered


def decision_signature(node, in_index: int, frame) -> tuple:
    """The ((switch name, out port), ...) hop sequence the per-switch
    decision path would take for one frame."""
    walked, _final_port = walk_decision_path(node, in_index, frame)
    return tuple((hop.node.name, hop.out_index) for hop in walked)


def compile_paths(fabric, workload) -> int:
    """Warm the fabric's :class:`PathCache` for every workload frame
    (what the first packet of each flow does in a live run). Returns the
    number of frames whose path compiled."""
    path_cache = fabric.path_cache
    compiled = 0
    for node, in_index, frame in workload:
        if path_cache.resolve(node, frame, in_index) is not None:
            compiled += 1
    return compiled


def compiled_signature(node, in_index: int, frame) -> tuple | None:
    """The compiled hop sequence for one frame (None when uncached)."""
    path = node._path_table.get((in_index, decision_key(frame)))
    if path is None or not path.compiled:
        return None
    return tuple((hop.switch_name, hop.out_index) for hop in path.hops)


def replay_compiled(workload) -> tuple[int, int]:
    """Forward every frame through its compiled path — the steady-state
    cut-through cost: one memoised key read plus one dict probe per
    *frame* (not per hop). Returns (hops, delivered), counted from the
    compiled paths so the totals are comparable with
    :func:`replay_decisions`."""
    hops = 0
    delivered = 0
    for node, in_index, frame in workload:
        path = node._path_table[(in_index, decision_key(frame))]
        hops += len(path.hops)
        delivered += 1
    return hops, delivered
