"""Workload generation: traffic matrices, failures, ARP storms."""

from repro.workloads.arp_workload import ArpStorm
from repro.workloads.failures import FailureInjector, pick_failures, switch_link_names
from repro.workloads.traffic import (
    UdpFlowSet,
    inter_pod_pairs,
    random_permutation_pairs,
    stride_pairs,
)

__all__ = [
    "ArpStorm",
    "FailureInjector",
    "UdpFlowSet",
    "inter_pod_pairs",
    "pick_failures",
    "random_permutation_pairs",
    "stride_pairs",
    "switch_link_names",
]

from repro.workloads.hybrid import HybridWorkload
from repro.workloads.shuffle import (
    FlowResult,
    FluidShuffleWorkload,
    ShuffleWorkload,
)

__all__ += ["FlowResult", "FluidShuffleWorkload", "HybridWorkload",
            "ShuffleWorkload"]

from repro.workloads.elephant_mice import ElephantMiceWorkload
from repro.workloads.incast import IncastWorkload

__all__ += ["ElephantMiceWorkload", "IncastWorkload"]

from repro.workloads.replay import (
    all_to_all_frames,
    compile_paths,
    compiled_signature,
    decision_signature,
    replay_compiled,
    replay_decisions,
)

__all__ += [
    "all_to_all_frames",
    "compile_paths",
    "compiled_signature",
    "decision_signature",
    "replay_compiled",
    "replay_decisions",
]
