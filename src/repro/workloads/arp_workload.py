"""ARP load generation for the fabric-manager scalability study
(Figs. 14–15).

The paper's model: every host issues a fixed rate of ARP requests for
random destinations (they evaluate 25 and 100 ARPs/sec/host). In
PortLand each such miss becomes one unicast query to the fabric manager
and one response — the load this workload produces and the counters in
:class:`repro.portland.fabric_manager.FabricManager` measure.
"""

from __future__ import annotations

import random

from repro.host.host import Host
from repro.net.ipv4 import IPPROTO_UDP
from repro.net.packet import AppData
from repro.net.udp import UdpDatagram
from repro.sim.process import PeriodicTask
from repro.sim.simulator import Simulator


class ArpStorm:
    """Drives cache-miss ARP requests from every host at a fixed rate."""

    def __init__(
        self,
        sim: Simulator,
        hosts: list[Host],
        per_host_rate: float,
        rng: random.Random,
    ) -> None:
        if per_host_rate <= 0:
            raise ValueError(f"per_host_rate must be positive: {per_host_rate}")
        self.sim = sim
        self.hosts = hosts
        self.rng = rng
        self.requests_issued = 0
        # One fabric-wide ticker at the aggregate rate, picking a random
        # requester each tick — identical aggregate load to per-host
        # tickers, with far fewer simulator events.
        aggregate = per_host_rate * len(hosts)
        self._task = PeriodicTask(sim, 1.0 / aggregate, self._tick,
                                  jitter=0.5, rng_name="arpstorm")

    def start(self, first_delay: float = 0.0) -> None:
        """Begin the storm."""
        self._task.start(first_delay)

    def stop(self) -> None:
        """Stop the storm."""
        self._task.stop()

    def _tick(self) -> None:
        src = self.rng.choice(self.hosts)
        dst = self.rng.choice(self.hosts)
        if dst is src:
            return
        # Force a miss so the edge switch must query the fabric manager.
        src.arp_cache.invalidate(dst.ip)
        self.requests_issued += 1
        probe = UdpDatagram(12345, 9, AppData(8))  # to the discard port
        src.send_ip(dst.ip, IPPROTO_UDP, probe)
