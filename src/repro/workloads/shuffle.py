"""All-to-all ("shuffle") workloads — the east-west traffic that
motivates the paper's introduction (web search, MapReduce).

Every host sends a fixed-size TCP transfer to every other host; the
workload records per-flow completion times, from which the usual
datacenter metrics (mean/median/p99 FCT, aggregate goodput) fall out.
This is the traffic pattern where the fat tree's multipath — and hence
PortLand's ECMP forwarding — earns its keep.

Both workloads accept an explicit ``pairs`` list (e.g. from
:func:`repro.workloads.traffic.random_permutation_pairs`) in place of
the all-to-all matrix, and :class:`FluidShuffleWorkload` runs the same
shuffle on the flow-level fluid engine (``PortlandConfig.flow_mode``,
see ``docs/FLOWS.md``) with a matching results API, so frame- and
flow-mode runs are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.host.apps.tcp_bulk import TcpBulkSender, TcpSink
from repro.host.host import Host
from repro.sim.simulator import Simulator
from repro.sim.stats import SummaryStats, summarize


@dataclass
class FlowResult:
    """Outcome of one shuffle flow."""

    src: str
    dst: str
    started_at: float
    completed_at: float | None = None

    @property
    def fct(self) -> float | None:
        """Flow completion time, or ``None`` while running."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


@dataclass
class ShuffleWorkload:
    """An N×(N−1) all-to-all TCP transfer (or an explicit pair list).

    Flows start staggered by ``stagger_s`` (grouped per sender) so the
    handshake burst does not synchronize. Call :meth:`start`, run the
    simulator, then read :meth:`completed`/:meth:`fct_stats`. When
    ``pairs`` is given it replaces the all-to-all matrix: one transfer
    per (src, dst) pair, each on its own sink port.
    """

    sim: Simulator
    hosts: list[Host]
    bytes_per_flow: int = 100_000
    base_port: int = 30000
    stagger_s: float = 0.001
    pairs: list[tuple[Host, Host]] | None = None
    results: list[FlowResult] = field(default_factory=list)
    _sinks: list[TcpSink] = field(default_factory=list)
    _started: bool = False

    @property
    def num_flows(self) -> int:
        if self.pairs is not None:
            return len(self.pairs)
        n = len(self.hosts)
        return n * (n - 1)

    def start(self) -> None:
        """Create all sinks and schedule every flow's start."""
        if self._started:
            raise RuntimeError("shuffle already started")
        self._started = True
        if self.pairs is not None:
            # One sink port per pair keeps demux trivial.
            for i, (_src, dst) in enumerate(self.pairs):
                self._sinks.append(TcpSink(dst, self.base_port + i))
            for i, (src, dst) in enumerate(self.pairs):
                self.sim.schedule(i * self.stagger_s,
                                  self._launch, src, dst, i)
            return
        # One sink port per sender on each receiver keeps demux trivial.
        for j, dst in enumerate(self.hosts):
            for i, _src in enumerate(self.hosts):
                if i == j:
                    continue
                self._sinks.append(TcpSink(dst, self.base_port + i))
        for i, src in enumerate(self.hosts):
            delay = i * self.stagger_s
            for j, dst in enumerate(self.hosts):
                if i == j:
                    continue
                self.sim.schedule(delay, self._launch, src, dst, i)

    def _launch(self, src: Host, dst: Host, sender_index: int) -> None:
        result = FlowResult(src=src.name, dst=dst.name,
                            started_at=self.sim.now)
        self.results.append(result)
        bulk = TcpBulkSender(src, dst.ip, self.base_port + sender_index,
                             total_bytes=self.bytes_per_flow)

        def on_finished(_result=result) -> None:
            if _result.completed_at is None:
                _result.completed_at = self.sim.now

        bulk.conn.on_finished = on_finished

    # ------------------------------------------------------------------
    # Results

    def completed(self) -> int:
        """Flows that have fully finished (data delivered + closed)."""
        return sum(1 for r in self.results if r.completed_at is not None)

    def all_done(self) -> bool:
        """Whether every flow completed."""
        return (len(self.results) == self.num_flows
                and self.completed() == self.num_flows)

    def run_until_done(self, timeout_s: float = 60.0,
                       step_s: float = 0.25) -> float:
        """Drive the simulator until the shuffle finishes."""
        deadline = self.sim.now + timeout_s
        while self.sim.now < deadline:
            if self.all_done():
                return self.sim.now
            self.sim.run(until=min(self.sim.now + step_s, deadline))
        if not self.all_done():
            raise TimeoutError(
                f"shuffle incomplete: {self.completed()}/{self.num_flows}")
        return self.sim.now

    def fct_stats(self) -> SummaryStats:
        """Summary statistics of flow completion times (seconds)."""
        fcts = [r.fct for r in self.results if r.fct is not None]
        return summarize(fcts)

    def total_bytes_moved(self) -> int:
        """Payload bytes delivered across all sinks."""
        return sum(sink.total_bytes for sink in self._sinks)

    def aggregate_goodput_bps(self, elapsed_s: float) -> float:
        """Delivered bits per second over ``elapsed_s``."""
        if elapsed_s <= 0:
            return 0.0
        return self.total_bytes_moved() * 8 / elapsed_s


class FluidShuffleWorkload:
    """The same shuffle, run on the fluid flow engine.

    Requires a fabric built with ``PortlandConfig(flow_mode=True)``.
    Each transfer becomes one finite :class:`repro.flows.flow.Flow`
    (greedy — it takes its max-min fair share, like a bulk TCP sender);
    completion callbacks fill in the same :class:`FlowResult` records
    the frame-mode workload produces, and the results API
    (:meth:`completed`/:meth:`run_until_done`/:meth:`fct_stats`/
    :meth:`aggregate_goodput_bps`/:meth:`total_bytes_moved`) matches
    :class:`ShuffleWorkload` so experiments can swap modes.
    """

    def __init__(
        self,
        fabric,
        hosts: list[Host] | None = None,
        pairs: list[tuple[Host, Host]] | None = None,
        bytes_per_flow: int = 100_000,
        base_port: int = 30000,
        payload_bytes: int = 1000,
        stagger_s: float = 0.001,
    ) -> None:
        if fabric.flow_engine is None:
            raise ValueError(
                "fabric has no flow engine — build it with "
                "PortlandConfig(flow_mode=True)")
        self.fabric = fabric
        self.sim: Simulator = fabric.sim
        self.engine = fabric.flow_engine
        if pairs is None:
            if hosts is None:
                hosts = fabric.host_list()
            pairs = [(s, d) for s in hosts for d in hosts if s is not d]
        self.pairs = list(pairs)
        self.bytes_per_flow = bytes_per_flow
        self.base_port = base_port
        self.payload_bytes = payload_bytes
        self.stagger_s = stagger_s
        self.results: list[FlowResult] = []
        self.flows = []
        self.started_at: float | None = None
        self._started = False

    @property
    def num_flows(self) -> int:
        return len(self.pairs)

    def start(self) -> None:
        """Schedule every pair's flow admission, staggered exactly like
        the frame-mode shuffle (same-instant arrivals would coalesce
        into one recomputation, but the comparison to ShuffleWorkload
        demands the same offered-load timeline)."""
        if self._started:
            raise RuntimeError("shuffle already started")
        self._started = True
        self.started_at = self.sim.now
        for i, (src, dst) in enumerate(self.pairs):
            self.sim.schedule(i * self.stagger_s, self._launch, src, dst, i)

    def _launch(self, src: Host, dst: Host, i: int) -> None:
        result = FlowResult(src=src.name, dst=dst.name,
                            started_at=self.sim.now)
        self.results.append(result)

        def on_complete(flow, _result=result) -> None:
            _result.completed_at = flow.completed_at

        self.flows.append(self.engine.start_flow(
            src, dst.ip, size_bytes=self.bytes_per_flow,
            sport=self.base_port + i, dport=self.base_port + i,
            payload_bytes=self.payload_bytes,
            name=f"shuffle-{src.name}->{dst.name}",
            on_complete=on_complete))

    # ------------------------------------------------------------------
    # Results (same shape as ShuffleWorkload)

    def completed(self) -> int:
        """Flows that have delivered their full size."""
        return sum(1 for r in self.results if r.completed_at is not None)

    def all_done(self) -> bool:
        """Whether every flow completed."""
        return (len(self.results) == self.num_flows
                and self.completed() == self.num_flows)

    def run_until_done(self, timeout_s: float = 60.0,
                       step_s: float = 0.005) -> float:
        """Drive the simulator until the shuffle finishes.

        Returns the time of the *last completion* (not the step
        boundary the loop noticed it on), so elapsed-time and goodput
        numbers are exact; the step only bounds how much background
        (LDP beacon) simulation runs past that instant.
        """
        deadline = self.sim.now + timeout_s
        while self.sim.now < deadline:
            if self.all_done():
                return max(r.completed_at for r in self.results)
            self.sim.run(until=min(self.sim.now + step_s, deadline))
        if not self.all_done():
            raise TimeoutError(
                f"shuffle incomplete: {self.completed()}/{self.num_flows}")
        return max(r.completed_at for r in self.results)

    def fct_stats(self) -> SummaryStats:
        """Summary statistics of flow completion times (seconds)."""
        fcts = [r.fct for r in self.results if r.fct is not None]
        return summarize(fcts)

    def total_bytes_moved(self) -> float:
        """Payload bytes delivered across all flows (fluid totals are
        exact integers once a flow completes)."""
        self.engine.settle_now()
        return sum(f.transferred_bytes for f in self.flows)

    def aggregate_goodput_bps(self, elapsed_s: float) -> float:
        """Delivered bits per second over ``elapsed_s``."""
        if elapsed_s <= 0:
            return 0.0
        return self.total_bytes_moved() * 8 / elapsed_s
