"""All-to-all ("shuffle") workloads — the east-west traffic that
motivates the paper's introduction (web search, MapReduce).

Every host sends a fixed-size TCP transfer to every other host; the
workload records per-flow completion times, from which the usual
datacenter metrics (mean/median/p99 FCT, aggregate goodput) fall out.
This is the traffic pattern where the fat tree's multipath — and hence
PortLand's ECMP forwarding — earns its keep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.host.apps.tcp_bulk import TcpBulkSender, TcpSink
from repro.host.host import Host
from repro.sim.simulator import Simulator
from repro.sim.stats import SummaryStats, summarize


@dataclass
class FlowResult:
    """Outcome of one shuffle flow."""

    src: str
    dst: str
    started_at: float
    completed_at: float | None = None

    @property
    def fct(self) -> float | None:
        """Flow completion time, or ``None`` while running."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


@dataclass
class ShuffleWorkload:
    """An N×(N−1) all-to-all TCP transfer.

    Flows start staggered by ``stagger_s`` (grouped per sender) so the
    handshake burst does not synchronize. Call :meth:`start`, run the
    simulator, then read :meth:`completed`/:meth:`fct_stats`.
    """

    sim: Simulator
    hosts: list[Host]
    bytes_per_flow: int = 100_000
    base_port: int = 30000
    stagger_s: float = 0.001
    results: list[FlowResult] = field(default_factory=list)
    _sinks: list[TcpSink] = field(default_factory=list)
    _started: bool = False

    @property
    def num_flows(self) -> int:
        n = len(self.hosts)
        return n * (n - 1)

    def start(self) -> None:
        """Create all sinks and schedule every flow's start."""
        if self._started:
            raise RuntimeError("shuffle already started")
        self._started = True
        # One sink port per sender on each receiver keeps demux trivial.
        for j, dst in enumerate(self.hosts):
            for i, _src in enumerate(self.hosts):
                if i == j:
                    continue
                self._sinks.append(TcpSink(dst, self.base_port + i))
        for i, src in enumerate(self.hosts):
            delay = i * self.stagger_s
            for j, dst in enumerate(self.hosts):
                if i == j:
                    continue
                self.sim.schedule(delay, self._launch, src, dst, i)

    def _launch(self, src: Host, dst: Host, sender_index: int) -> None:
        result = FlowResult(src=src.name, dst=dst.name,
                            started_at=self.sim.now)
        self.results.append(result)
        bulk = TcpBulkSender(src, dst.ip, self.base_port + sender_index,
                             total_bytes=self.bytes_per_flow)

        def on_finished(_result=result) -> None:
            if _result.completed_at is None:
                _result.completed_at = self.sim.now

        bulk.conn.on_finished = on_finished

    # ------------------------------------------------------------------
    # Results

    def completed(self) -> int:
        """Flows that have fully finished (data delivered + closed)."""
        return sum(1 for r in self.results if r.completed_at is not None)

    def all_done(self) -> bool:
        """Whether every flow completed."""
        return (len(self.results) == self.num_flows
                and self.completed() == self.num_flows)

    def run_until_done(self, timeout_s: float = 60.0,
                       step_s: float = 0.25) -> float:
        """Drive the simulator until the shuffle finishes."""
        deadline = self.sim.now + timeout_s
        while self.sim.now < deadline:
            if self.all_done():
                return self.sim.now
            self.sim.run(until=min(self.sim.now + step_s, deadline))
        if not self.all_done():
            raise TimeoutError(
                f"shuffle incomplete: {self.completed()}/{self.num_flows}")
        return self.sim.now

    def fct_stats(self) -> SummaryStats:
        """Summary statistics of flow completion times (seconds)."""
        fcts = [r.fct for r in self.results if r.fct is not None]
        return summarize(fcts)

    def total_bytes_moved(self) -> int:
        """Payload bytes delivered across all sinks."""
        return sum(sink.total_bytes for sink in self._sinks)

    def aggregate_goodput_bps(self, elapsed_s: float) -> float:
        """Delivered bits per second over ``elapsed_s``."""
        if elapsed_s <= 0:
            return 0.0
        return self.total_bytes_moved() * 8 / elapsed_s
