"""Pod-partitioned workloads for the sharded parallel kernel.

The sharded kernel (:mod:`repro.sim.parallel`) runs one full fabric
replica per shard and partitions the *workload* by source pod: a flow is
owned by the shard that owns its sender's pod. For replicas to stay
bit-identical, everything about the traffic matrix must be a pure
function of the run spec — pair order, receiver ports, sender socket
allocation, start stagger. This module derives all of it
deterministically:

* the pair list is built in host-spec order (or from a named simulator
  RNG stream, identical in every replica);
* receivers are created for *every* pair in global order in every
  replica (explicitly bound ports — they never touch the ephemeral
  allocator), so a host's ephemeral-port sequence is the same whether
  its senders are created by the owning shard or by the single-process
  reference;
* sender start offsets are staggered *within each source pod* (position
  in the pod's flow sub-list x ``stagger_s``), so a shard can compute
  its offsets from the global pair list without knowing anything about
  other shards' schedules.

:func:`warm_arp_caches` pre-resolves destination PMACs from the fabric
manager's registry, exactly as a long-warm data center would have them,
so the first workload frame of every flow is already compilable by the
path cache and no cross-flow ARP queueing perturbs determinism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.host.apps.udp_stream import UdpStreamReceiver, UdpStreamSender


@dataclass(frozen=True)
class PodWorkloadSpec:
    """Declarative, picklable description of a pod-partitioned workload.

    ``kind``:
        ``"all_to_all"``  — every ordered host pair (quadratic).
        ``"stride"``      — host i -> host (i + hosts_per_pod) mod N;
                            every flow is inter-pod.
        ``"permutation"`` — Sattolo permutation drawn from the simulator
                            stream ``"parallel/permutation"`` (identical
                            in every replica).
        ``"fluid_stride"``— the stride matrix as finite fluid flows
                            (requires ``flow_mode`` fabrics).
    """

    kind: str = "stride"
    rate_pps: float = 200.0
    payload_bytes: int = 64
    base_port: int = 20000
    #: Start-time offset between senders of the same source pod.
    stagger_s: float = 0.0002
    #: Fluid kinds only: per-flow demand and transfer size. Demand must
    #: stay below any fair share the flow could see — the sharded fluid
    #: contract is only exact for demand-limited flows (see docs/PERF.md).
    demand_bps: float = 20e6
    size_bytes: int = 100_000

    @property
    def fluid(self) -> bool:
        return self.kind.startswith("fluid")


@dataclass
class FlowHandle:
    """One flow of the global matrix, as one replica sees it."""

    index: int
    flow_id: str
    src_name: str
    dst_name: str
    src_pod: int
    port: int
    #: Position among flows sharing this source pod (stagger input).
    pod_position: int
    receiver: UdpStreamReceiver | None = None
    sender: UdpStreamSender | None = None
    fluid_flow: object = None


def host_pods(fabric) -> dict[str, int]:
    """Host name -> pod id (requires a pod-structured topology)."""
    pods = {}
    for spec in fabric.tree.hosts:
        if spec.pod is None:
            raise TopologyError(
                f"host {spec.name} has no pod: the sharded kernel needs a "
                "pod-structured topology (fat tree)")
        pods[spec.name] = spec.pod
    return pods


def make_pairs(fabric, spec: PodWorkloadSpec) -> list[tuple[str, str]]:
    """The global traffic matrix as (src, dst) host names, in an order
    every replica reproduces exactly."""
    hosts = fabric.host_list()
    kind = spec.kind.removeprefix("fluid_")
    if kind == "all_to_all":
        return [(a.name, b.name) for a in hosts for b in hosts if a is not b]
    if kind == "stride":
        per_pod = max(1, len(hosts) // fabric.tree.num_pods)
        n = len(hosts)
        return [(hosts[i].name, hosts[(i + per_pod) % n].name)
                for i in range(n)]
    if kind == "permutation":
        rng = fabric.sim.random.stream("parallel/permutation")
        receivers = hosts[:]
        for i in range(len(receivers) - 1, 0, -1):
            j = rng.randrange(i)
            receivers[i], receivers[j] = receivers[j], receivers[i]
        return [(a.name, b.name) for a, b in zip(hosts, receivers)]
    raise ValueError(f"unknown workload kind {spec.kind!r}")


def warm_arp_caches(fabric, pairs: list[tuple[str, str]]) -> int:
    """Insert each destination's PMAC into its sender's ARP cache from
    the FM registry. Returns the number of entries inserted."""
    fm = fabric.fabric_manager
    now = fabric.sim.now
    warmed = 0
    for src_name, dst_name in pairs:
        src = fabric.hosts[src_name]
        dst = fabric.hosts[dst_name]
        record = fm.hosts_by_ip.get(dst.ip)
        if record is None:
            raise TopologyError(f"{dst_name} not registered with the FM")
        src.arp_cache.insert(dst.ip, record.pmac, now)
        warmed += 1
    return warmed


class PodWorkload:
    """The global flow matrix instantiated in one replica.

    Receivers exist for every flow; senders (or fluid flows) only for
    flows whose source pod is in ``owned_pods``. The single-process
    reference simply owns every pod.
    """

    def __init__(self, fabric, spec: PodWorkloadSpec,
                 owned_pods: tuple[int, ...]) -> None:
        self.fabric = fabric
        self.spec = spec
        self.owned_pods = tuple(owned_pods)
        pods = host_pods(fabric)
        pairs = make_pairs(fabric, spec)
        if not spec.fluid:
            warm_arp_caches(fabric, pairs)
        self.flows: list[FlowHandle] = []
        self.owned: list[FlowHandle] = []
        owned_set = set(owned_pods)
        pod_counts: dict[int, int] = {}
        for i, (src_name, dst_name) in enumerate(pairs):
            src_pod = pods[src_name]
            position = pod_counts.get(src_pod, 0)
            pod_counts[src_pod] = position + 1
            handle = FlowHandle(
                index=i, flow_id=f"pw-{i}-{src_name}>{dst_name}",
                src_name=src_name, dst_name=dst_name, src_pod=src_pod,
                port=spec.base_port + i, pod_position=position)
            self.flows.append(handle)
            if src_pod in owned_set:
                self.owned.append(handle)
        # Pass 1: receivers for every pair, in global order (identical
        # socket layout in every replica). Fluid flows deliver through
        # the engine, not sockets, so they skip this.
        if not spec.fluid:
            for handle in self.flows:
                handle.receiver = UdpStreamReceiver(
                    self.fabric.hosts[handle.dst_name], handle.port)
            # Pass 2: senders only for owned pods. A host's senders all
            # belong to one pod, so its ephemeral-port order is the
            # global pair order restricted to that host — the same
            # whether one shard or the reference creates them.
            for handle in self.owned:
                handle.sender = UdpStreamSender(
                    self.fabric.hosts[handle.src_name],
                    self.fabric.hosts[handle.dst_name].ip,
                    handle.port, rate_pps=spec.rate_pps,
                    payload_bytes=spec.payload_bytes,
                    flow_id=handle.flow_id)

    def start(self) -> None:
        """Start every owned flow at its deterministic pod-stagger offset."""
        spec = self.spec
        if spec.fluid:
            engine = self.fabric.flow_engine
            sim = self.fabric.sim
            for handle in self.owned:
                sim.schedule(handle.pod_position * spec.stagger_s,
                             self._start_fluid, engine, handle)
        else:
            for handle in self.owned:
                handle.sender.start(handle.pod_position * spec.stagger_s)

    def _start_fluid(self, engine, handle: FlowHandle) -> None:
        handle.fluid_flow = engine.start_flow(
            self.fabric.hosts[handle.src_name],
            self.fabric.hosts[handle.dst_name].ip,
            demand_bps=self.spec.demand_bps,
            size_bytes=self.spec.size_bytes,
            dport=handle.port, name=handle.flow_id)

    def stop(self) -> None:
        for handle in self.owned:
            if handle.sender is not None:
                handle.sender.stop()

    # ------------------------------------------------------------------
    # Equivalence artifacts

    def arrivals(self) -> dict[str, tuple]:
        """Owned-flow arrivals as ``flow_id -> ((time, seq), ...)``.

        Read from the *destination* receiver's per-flow log, so it holds
        exactly what was delivered for flows this replica sent.
        """
        out = {}
        for handle in self.owned:
            if handle.receiver is None:
                continue
            log = handle.receiver.by_flow.get(handle.flow_id, ())
            out[handle.flow_id] = tuple(log)
        return out

    def sent(self) -> dict[str, int]:
        """Frames sent (or fluid bytes completed) per owned flow."""
        if self.spec.fluid:
            return {h.flow_id: int(h.fluid_flow.transferred_bytes)
                    for h in self.owned if h.fluid_flow is not None}
        return {h.flow_id: h.sender.next_seq for h in self.owned}

    def fluid_completions(self) -> dict[str, float]:
        """``flow_id -> completed_at`` for finished owned fluid flows."""
        out = {}
        for handle in self.owned:
            flow = handle.fluid_flow
            if flow is not None and flow.completed_at is not None:
                out[handle.flow_id] = flow.completed_at
        return out
