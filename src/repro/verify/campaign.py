"""Seeded property-based fault campaigns with failing-case shrinking.

A *campaign* runs N independent *scenarios*. Each scenario builds a
fresh fabric (its k drawn from a configurable set), converges it,
attaches the runtime :class:`~repro.verify.oracle.InvariantOracle`,
starts a handful of probe flows, and then performs a random sequence of
steps — multi-link failures, whole-switch failures, recoveries, VM
migrations — running the full static invariant suite after each step
settles. Everything derives from the scenario seed, so a reported
failure is replayed bit-for-bit by rerunning with that seed.

When a scenario fails on a set of concurrently failed links, the
campaign *shrinks* it: links are removed one at a time and the static
checks re-run on a fresh fabric, until no single link can be dropped
without the violation disappearing. The result — seed, k, and a minimal
link list — is the reproducer printed in the report (see
``docs/VERIFY.md`` for how to replay one).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.host.apps import UdpStreamReceiver, UdpStreamSender
from repro.portland.migration import VmMigration
from repro.sim.simulator import Simulator
from repro.topology.builder import build_portland_fabric
from repro.topology.fattree import build_fat_tree
from repro.topology.scheme import scheme_for_backend
from repro.verify.invariants import Violation
from repro.verify.oracle import InvariantOracle


@dataclass
class CampaignConfig:
    """Knobs for one campaign run."""

    scenarios: int = 25
    seed: int = 7
    #: Topology backend scenarios run on ("fattree", "jellyfish",
    #: "twolayer"); see :func:`repro.topology.scheme.scheme_for_backend`
    #: for how ``ks`` scales the non-fat-tree backends.
    backend: str = "fattree"
    #: Fat-tree degrees to draw from, one per scenario.
    ks: tuple[int, ...] = (4,)
    #: Random steps per scenario.
    steps: int = 4
    #: Hosts wired per edge switch (fewer than k/2 leaves migration targets).
    hosts_per_edge: int = 1
    #: Settling time after fail/recover steps before invariants are checked.
    settle_s: float = 0.4
    #: Settling time after a migration step (downtime + adoption grace).
    migrate_settle_s: float = 1.2
    #: Probe flows kept running so the runtime oracle sees real traffic.
    probe_pairs: int = 4
    probe_rate_pps: float = 200.0
    #: Max links taken down by a single multi-link failure step.
    max_links_per_failure: int = 3
    #: Allow VM-migration steps.
    migrate: bool = True
    #: Add live Jellyfish-expansion steps to the op mix (jellyfish
    #: backend only): splice a new ToR into the running fabric
    #: (:func:`repro.topology.expansion.expand_jellyfish_live`) and
    #: require the oracle to come back clean once settled. Off by
    #: default so existing campaign draw sequences are unchanged; note
    #: the splice needs an even switch degree, so it engages on odd
    #: ``ks`` (degree ``k-1``) and records a skip otherwise.
    expand: bool = False
    #: Stop a scenario at its first violating step.
    stop_on_violation: bool = True
    #: How many failing scenarios to shrink (shrinking rebuilds fabrics).
    max_shrinks: int = 3
    #: Compiled-path cache capacity for scenario fabrics (0 = interpreted
    #: forwarding only). Campaigns run with it enabled to prove compiled
    #: paths never survive a fault the oracle would flag.
    path_cache_entries: int = 0
    #: Run scenario fabrics in flow-level (fluid) simulation mode: probe
    #: traffic becomes open-ended fluid flows driven by the
    #: :class:`repro.flows.FlowEngine`, and the oracle additionally
    #: checks every ``verify.flow`` hop list (loop freedom, up*-down*
    #: validity, host delivery) — including the re-resolved paths flows
    #: pin after each fault/recovery/migration step. ``"hybrid"`` runs
    #: both executors coupled through shared link capacity
    #: (``PortlandConfig(flow_mode="hybrid")``): probe pairs alternate
    #: between fluid flows and frame-level UDP streams, so every
    #: scenario exercises fluid re-resolution *and* per-frame hop checks
    #: on the same faulted fabric.
    flow_mode: bool | str = False
    #: Payload rate per fluid probe flow (flow-mode scenarios only).
    fluid_probe_bps: float = 50e6
    #: Worker processes scenarios are sharded over (1 = in-process
    #: sequential). Scenarios are independent by construction — each
    #: builds a fresh fabric from its own derived seed — so results are
    #: identical at any worker count; only wall time changes. Shrinking
    #: stays sequential in the parent.
    parallel: int = 1
    #: Fabric-manager shard count for scenario fabrics (0/1 = classic
    #: single FM; see :mod:`repro.portland.fm_shard`).
    fm_shards: int = 0
    #: Override-push batching window for scenario fabrics (0 = immediate).
    fm_batch_interval_s: float = 0.0
    #: Incremental override recomputation for scenario fabrics.
    fm_incremental: bool = False
    #: Add fabric-manager failure steps to the op mix: ``fm-restart``
    #: (crash the FM — or one random cluster server — mid-campaign) and,
    #: on sharded fabrics, ``fm-partition`` (sever one shard's control
    #: links and its cluster-internal delivery for a window, then heal).
    #: Implies a fast soft-state refresh so scenarios heal within
    #: ``fm_settle_s``.
    fm_ops: bool = False
    #: Settle after an FM op (must cover heal + ≥2 refresh cycles).
    fm_settle_s: float = 1.6
    #: Soft-state refresh period used when ``fm_ops`` is on.
    fm_refresh_s: float = 0.5
    #: How long a partitioned shard stays severed before healing.
    fm_partition_s: float = 0.3
    #: Add edge-ACL steps to the op mix: ``acl-install`` blocks a random
    #: host pair through the fabric manager (cluster-routed on sharded
    #: fabrics) and ``acl-revoke`` lifts a previously installed rule.
    #: The static checks then additionally prove every ACL'd pair's
    #: drops are justified (never blackholes) and that no frame is ever
    #: delivered across an installed rule (``acl-leak``).
    policy: bool = False
    #: Host-churn stress: run a background ARP storm for the whole
    #: scenario and weight the op mix toward VM migrations, so the
    #: registry (and, with ``policy``, the ACL re-push machinery) is
    #: exercised under continuous re-registration traffic.
    churn: bool = False
    #: Aggregate ARP-storm rate while ``churn`` is on (queries/s).
    churn_rate_pps: float = 200.0


@dataclass
class ScenarioResult:
    """Outcome of one scenario."""

    seed: int
    k: int
    steps: list[str] = field(default_factory=list)
    #: Switch-switch links failed at the moment of the (first) violation.
    failed_links: list[tuple[str, str]] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)
    hops: int = 0
    #: Compiled-path launches in this scenario (0 when the cache is off).
    path_launches: int = 0
    #: Oracle-checked fluid path resolutions (flow-mode scenarios only).
    flow_paths: int = 0
    #: Fluid-engine counters at scenario end (flow-mode scenarios only).
    flow_stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class Reproducer:
    """A minimal, replayable witness for a failing scenario."""

    scenario_seed: int
    k: int
    links: list[tuple[str, str]]
    kinds: tuple[str, ...]
    #: True when the shrunk link set alone reproduces the violation on a
    #: fresh fabric; False means it was not statically minimised (the
    #: failure is sequence-dependent, or the shrink budget ran out) and
    #: must be replayed from the scenario seed.
    static: bool = True
    #: Topology backend the scenario ran on (replay must match it).
    backend: str = "fattree"

    def __str__(self) -> str:
        tag = "" if self.backend == "fattree" else f" backend={self.backend}"
        if self.static:
            how = " + ".join(f"{a}<->{b}" for a, b in self.links) or "(no links)"
            return (f"seed={self.scenario_seed} k={self.k}{tag} "
                    f"fail[{how}] -> {'/'.join(self.kinds)}")
        return (f"seed={self.scenario_seed} k={self.k}{tag} not statically "
                f"minimised (replay the scenario seed) -> "
                f"{'/'.join(self.kinds)}")


@dataclass
class CampaignReport:
    """Everything a campaign run produced."""

    config: CampaignConfig
    results: list[ScenarioResult] = field(default_factory=list)
    reproducers: list[Reproducer] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def violation_count(self) -> int:
        return sum(len(result.violations) for result in self.results)

    def summary_rows(self) -> list[list]:
        rows = []
        for result in self.results:
            rows.append([
                result.seed, result.k, len(result.steps),
                # Frame-mode scenarios check per-frame hops; flow-mode
                # scenarios check whole resolved flow paths. Exactly one
                # of the two is non-zero, so one column serves both.
                result.hops + result.flow_paths, len(result.violations),
                "ok" if result.ok else ",".join(
                    sorted({v.kind for v in result.violations})),
            ])
        return rows


def scenario_seed_for(config: CampaignConfig, index: int) -> int:
    """The derived seed of scenario ``index`` (stable across runs)."""
    return config.seed * 1000 + index


# ----------------------------------------------------------------------
# One scenario


def _converged_fabric(sim: Simulator, k: int, hosts_per_edge: int,
                      path_cache_entries: int = 0,
                      flow_mode: bool | str = False,
                      backend: str = "fattree", topo_seed: int = 0,
                      fm_shards: int = 0, fm_batch_interval_s: float = 0.0,
                      fm_incremental: bool = False,
                      soft_state_refresh_s: float | None = None):
    from repro.portland.config import PortlandConfig

    config = PortlandConfig(path_cache_entries=path_cache_entries,
                            flow_mode=flow_mode,
                            fm_shards=fm_shards,
                            fm_batch_interval_s=fm_batch_interval_s,
                            fm_incremental=fm_incremental)
    if soft_state_refresh_s is not None:
        config.soft_state_refresh_s = soft_state_refresh_s
    scheme = scheme_for_backend(backend, k=k, hosts_per_edge=hosts_per_edge,
                                topo_seed=topo_seed)
    if scheme is None:
        tree = build_fat_tree(k, hosts_per_edge=hosts_per_edge)
        fabric = build_portland_fabric(sim, tree=tree, config=config)
    else:
        fabric = build_portland_fabric(sim, config=config, scheme=scheme)
    fabric.start()
    fabric.run_until_located()
    fabric.announce_hosts()
    fabric.run_until_registered()
    return fabric


def _start_probes(fabric, rng: random.Random, config: CampaignConfig):
    hosts = fabric.host_list()
    receivers = []
    count = min(config.probe_pairs, len(hosts) // 2)
    shuffled = hosts[:]
    rng.shuffle(shuffled)
    hybrid = config.flow_mode == "hybrid"
    for i in range(count):
        src, dst = shuffled[2 * i], shuffled[2 * i + 1]
        if config.flow_mode and not (hybrid and i % 2):
            # Open-ended fluid flows: they survive the whole scenario,
            # re-resolving (and re-emitting ``verify.flow``) after every
            # fault step — exactly the trajectories the oracle must vet.
            fabric.flow_engine.start_flow(
                src, dst.ip, demand_bps=config.fluid_probe_bps,
                dport=6000 + i, name=f"probe-{i}")
        else:
            # Frame-level probes — all of them in frame mode, every
            # other pair in hybrid mode (both executors under oracle).
            receivers.append(UdpStreamReceiver(dst, 6000 + i))
            UdpStreamSender(src, dst.ip, 6000 + i,
                            rate_pps=config.probe_rate_pps).start()
    return receivers


class _MigrationPlanner:
    """Tracks host attachments and free host-facing edge ports."""

    def __init__(self, fabric) -> None:
        self.fabric = fabric
        scheme = fabric.routing_scheme()
        self.attachment = {spec.name: (spec.edge_switch, spec.edge_port)
                           for spec in fabric.tree.hosts}
        occupied: dict[str, set[int]] = {}
        for edge, port in self.attachment.values():
            occupied.setdefault(edge, set()).add(port)
        self.free: dict[str, set[int]] = {
            edge: scheme.host_port_capacity(edge) - occupied.get(edge, set())
            for edge in fabric.tree.edge_names
        }

    def pick(self, rng: random.Random):
        """A random (host, new_edge, new_port) move, or None."""
        hosts = sorted(self.attachment)
        rng.shuffle(hosts)
        for host in hosts:
            current_edge, _port = self.attachment[host]
            targets = sorted(edge for edge, ports in self.free.items()
                             if ports and edge != current_edge)
            if targets:
                edge = rng.choice(targets)
                port = min(self.free[edge])
                return host, edge, port
        return None

    def commit(self, host: str, edge: str, port: int) -> None:
        old_edge, old_port = self.attachment[host]
        self.free[old_edge].add(old_port)
        self.free[edge].discard(port)
        self.attachment[host] = (edge, port)

    def adopt_switch(self, fabric, expansion) -> None:
        """Register a freshly spliced-in switch and its hosts (live
        Jellyfish expansion) without disturbing tracked migrations."""
        scheme = fabric.routing_scheme()
        new_hosts = {spec.name: (spec.edge_switch, spec.edge_port)
                     for spec in fabric.tree.hosts
                     if spec.name in set(expansion.hosts)}
        self.attachment.update(new_hosts)
        occupied = {port for _edge, port in new_hosts.values()}
        self.free[expansion.new_switch] = (
            scheme.host_port_capacity(expansion.new_switch) - occupied)


def _fm_partition(fabric, rng: random.Random, config: CampaignConfig) -> str:
    """Partition the fabric manager (or one shard of it) from the control
    network for ``config.fm_partition_s`` seconds, then heal.

    Sharded cluster: pick one shard, cut the control links of every switch
    homed on it and mark the shard partitioned (inter-shard traffic to/from
    it drops too); healing un-partitions the shard, which triggers a replica
    resync from the coordinator.  Classic single FM: total control outage.
    """
    control = fabric.control
    fm = fabric.fabric_manager
    sim = fabric.sim

    if hasattr(fm, "servers"):
        shard = rng.choice(fm.shards)
        links = [control.links_by_switch[sid]
                 for sid in sorted(control.links_by_switch)
                 if fm.home_index(sid) == shard.index]
        fm.set_partitioned(shard, True)
        label = f"fm-partition {shard.name}"

        def heal() -> None:
            for link in links:
                link.recover()
            fm.set_partitioned(shard, False)
    else:
        links = [control.links_by_switch[sid]
                 for sid in sorted(control.links_by_switch)]
        label = "fm-partition all"

        def heal() -> None:
            for link in links:
                link.recover()

    for link in links:
        link.fail()
    sim.schedule(config.fm_partition_s, heal)
    return label


def run_scenario(scenario_seed: int, config: CampaignConfig) -> ScenarioResult:
    """Run one seeded scenario; returns its result (never raises on
    violations — they are data)."""
    rng = random.Random(scenario_seed)
    k = rng.choice(tuple(config.ks))
    result = ScenarioResult(seed=scenario_seed, k=k)

    sim = Simulator(seed=scenario_seed)
    fabric = _converged_fabric(
        sim, k, config.hosts_per_edge,
        config.path_cache_entries, config.flow_mode,
        backend=config.backend, topo_seed=scenario_seed,
        fm_shards=config.fm_shards,
        fm_batch_interval_s=config.fm_batch_interval_s,
        fm_incremental=config.fm_incremental,
        soft_state_refresh_s=config.fm_refresh_s if config.fm_ops else None)
    oracle = InvariantOracle(fabric)
    _start_probes(fabric, rng, config)
    if config.churn:
        from repro.workloads.arp_workload import ArpStorm

        ArpStorm(sim, fabric.host_list(),
                 per_host_rate=config.churn_rate_pps
                 / max(1, len(fabric.host_list())),
                 rng=random.Random(scenario_seed ^ 0x5A5A)).start()
    sim.run(until=sim.now + 0.1)

    hosts = fabric.host_list()
    #: (src, dst) host pairs currently ACL-blocked (policy ops only).
    acls: list[tuple] = []

    candidates = fabric.routing_scheme().fault_candidate_links()
    failed: dict[tuple[str, str], object] = {}
    planner = _MigrationPlanner(fabric)
    by_switch: dict[str, list[tuple[str, str]]] = {}
    for a, b in candidates:
        by_switch.setdefault(a, []).append((a, b))
        by_switch.setdefault(b, []).append((a, b))

    for _step in range(config.steps):
        settle = config.settle_s
        alive = [link for link in candidates if link not in failed]
        ops = ["fail", "fail", "fail-switch", "recover"]
        if config.migrate:
            ops.append("migrate")
            if config.churn:
                # Churn scenarios: weight the mix toward re-registration
                # pressure (migrations ride on the background ARP storm).
                ops.append("migrate")
        if config.fm_ops:
            ops.extend(["fm-restart", "fm-partition"])
        if config.expand and config.backend == "jellyfish":
            ops.append("expand")
        if config.policy:
            ops.extend(["acl-install", "acl-install", "acl-revoke"])
        op = rng.choice(ops)
        if op == "recover" and not failed:
            op = "fail"
        if op in ("fail", "fail-switch") and not alive:
            op = "recover"
        if op == "acl-revoke" and not acls:
            op = "acl-install"

        if op == "fail":
            count = rng.randint(1, min(config.max_links_per_failure, len(alive)))
            chosen = rng.sample(alive, count)
            for pair in chosen:
                failed[pair] = fabric.link_between(*pair)
                failed[pair].fail()
            result.steps.append(
                "fail " + " ".join(f"{a}<->{b}" for a, b in chosen))
        elif op == "fail-switch":
            name = rng.choice(sorted(by_switch))
            chosen = [pair for pair in by_switch[name] if pair not in failed]
            for pair in chosen:
                failed[pair] = fabric.link_between(*pair)
                failed[pair].fail()
            result.steps.append(f"fail-switch {name}")
        elif op == "recover":
            pairs = sorted(failed)
            count = rng.randint(1, len(pairs))
            for pair in rng.sample(pairs, count):
                failed.pop(pair).recover()
            result.steps.append(f"recover x{count}")
        elif op == "migrate":
            move = planner.pick(rng)
            if move is None:
                result.steps.append("migrate (no target)")
                continue
            host, edge, port = move
            VmMigration(fabric, host, new_edge=edge, new_port=port,
                        downtime_s=0.1).start()
            planner.commit(host, edge, port)
            settle = config.migrate_settle_s
            result.steps.append(f"migrate {host}->{edge}:{port}")
        elif op == "expand":
            from repro.errors import TopologyError
            from repro.topology.expansion import expand_jellyfish_live

            try:
                expansion = expand_jellyfish_live(
                    fabric, seed=rng.randrange(2 ** 31))
            except TopologyError as exc:
                result.steps.append(f"expand (skipped: {exc})")
                continue
            # Spliced links no longer exist: drop them from the fault
            # bookkeeping and recompute the candidate pool (which now
            # includes the new switch's links).
            for pair in expansion.spliced:
                failed.pop(pair, None)
            candidates = fabric.routing_scheme().fault_candidate_links()
            by_switch = {}
            for a, b in candidates:
                by_switch.setdefault(a, []).append((a, b))
                by_switch.setdefault(b, []).append((a, b))
            planner.adopt_switch(fabric, expansion)
            settle = max(settle, config.migrate_settle_s)
            result.steps.append(
                f"expand +{expansion.new_switch}"
                f" (spliced {len(expansion.spliced)})")
        elif op == "fm-restart":
            fm = fabric.fabric_manager
            if hasattr(fm, "servers"):
                # Sharded: crash one random server (shard or coordinator).
                target = rng.choice(fm.servers)
                target.restart()
                result.steps.append(f"fm-restart {target.name}")
            else:
                fm.restart()
                result.steps.append("fm-restart")
            settle = max(settle, config.fm_settle_s)
        elif op == "fm-partition":
            settle = max(settle, config.fm_settle_s)
            result.steps.append(_fm_partition(fabric, rng, config))
        elif op == "acl-install":
            src, dst = rng.sample(hosts, 2)
            fabric.fabric_manager.install_acl(src.ip, dst.ip)
            acls.append((src, dst))
            result.steps.append(f"acl-install {src.name}->{dst.name}")
        elif op == "acl-revoke":
            src, dst = acls.pop(rng.randrange(len(acls)))
            fabric.fabric_manager.revoke_acl(src.ip, dst.ip)
            result.steps.append(f"acl-revoke {src.name}->{dst.name}")

        sim.run(until=sim.now + settle)
        oracle.check_now()
        if oracle.violations and config.stop_on_violation:
            break

    result.failed_links = sorted(failed)
    result.violations = list(oracle.violations)
    result.hops = oracle.hops
    result.path_launches = fabric.path_cache_stats().get("launches", 0)
    result.flow_paths = oracle.flow_paths
    result.flow_stats = fabric.flow_engine_stats()
    oracle.close()
    return result


# ----------------------------------------------------------------------
# Shrinking


def static_violations_for_links(k: int, links, hosts_per_edge: int = 1,
                                settle_s: float = 0.6,
                                sim_seed: int = 1,
                                backend: str = "fattree",
                                topo_seed: int = 0) -> list[Violation]:
    """Static-check violations after failing ``links`` simultaneously on
    a fresh, converged fabric. The reproduction predicate for shrinking."""
    sim = Simulator(seed=sim_seed)
    fabric = _converged_fabric(sim, k, hosts_per_edge,
                               backend=backend, topo_seed=topo_seed)
    for a, b in links:
        fabric.link_between(a, b).fail()
    sim.run(until=sim.now + settle_s)
    oracle = InvariantOracle(fabric, track_hops=False)
    found = oracle.check_now()
    oracle.close()
    return found


def shrink_failure_links(k: int, links, predicate=None,
                         hosts_per_edge: int = 1,
                         backend: str = "fattree",
                         topo_seed: int = 0) -> list[tuple[str, str]]:
    """Greedy one-at-a-time minimisation of a failing link set.

    ``predicate(candidate_links) -> bool`` decides whether the violation
    still reproduces; the default re-runs the static checks on a fresh
    fabric. Returns a subset no single element of which can be removed.
    """
    if predicate is None:
        def predicate(candidate):
            return bool(static_violations_for_links(
                k, candidate, hosts_per_edge=hosts_per_edge,
                backend=backend, topo_seed=topo_seed))
    current = list(links)
    changed = True
    while changed:
        changed = False
        for link in list(current):
            candidate = [l for l in current if l != link]
            if predicate(candidate):
                current = candidate
                changed = True
    return current


# ----------------------------------------------------------------------
# The campaign


def _plain_value(value):
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return tuple(_plain_value(v) for v in value)
    return str(value)


def _sanitize_result(result: ScenarioResult) -> ScenarioResult:
    """Render violation details to primitives so results cross a process
    boundary (details may reference live frames/switches)."""
    result.violations = [
        Violation(v.kind, v.where, v.time,
                  {k: _plain_value(val) for k, val in v.detail.items()})
        for v in result.violations
    ]
    return result


def _scenario_worker(payload) -> ScenarioResult:
    """Module-level so multiprocessing can import it in workers."""
    seed, config = payload
    return _sanitize_result(run_scenario(seed, config))


def _compute_results(config: CampaignConfig) -> list[ScenarioResult]:
    """All scenario results, in index order, sharded over
    ``config.parallel`` worker processes when asked to."""
    payloads = [(scenario_seed_for(config, index), config)
                for index in range(config.scenarios)]
    workers = min(max(1, config.parallel), len(payloads))
    if workers > 1:
        import multiprocessing

        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        with ctx.Pool(workers) as pool:
            # chunksize=1: scenarios vary a lot in cost (k is drawn per
            # seed), so fine-grained dispatch balances the pool.
            return pool.map(_scenario_worker, payloads, chunksize=1)
    return [_scenario_worker(payload) for payload in payloads]


def run_campaign(config: CampaignConfig | None = None,
                 log=None) -> CampaignReport:
    """Run a full campaign. ``log`` (e.g. ``print``) gets progress lines."""
    config = config or CampaignConfig()
    report = CampaignReport(config=config)
    shrinks_left = config.max_shrinks
    for index, result in enumerate(_compute_results(config)):
        seed = result.seed
        report.results.append(result)
        if log is not None:
            status = "ok" if result.ok else (
                "VIOLATION: " + ", ".join(str(v) for v in result.violations[:3]))
            log(f"scenario {index + 1}/{config.scenarios} seed={seed} "
                f"k={result.k} [{'; '.join(result.steps)}] -> {status}")
        if result.ok:
            continue
        kinds = tuple(sorted({v.kind for v in result.violations}))
        if result.failed_links and shrinks_left > 0 and bool(
                static_violations_for_links(
                    result.k, result.failed_links,
                    hosts_per_edge=config.hosts_per_edge,
                    backend=config.backend, topo_seed=seed)):
            shrinks_left -= 1
            minimal = shrink_failure_links(
                result.k, result.failed_links,
                hosts_per_edge=config.hosts_per_edge,
                backend=config.backend, topo_seed=seed)
            reproducer = Reproducer(seed, result.k, minimal, kinds,
                                    static=True, backend=config.backend)
        else:
            reproducer = Reproducer(seed, result.k, result.failed_links,
                                    kinds, static=False,
                                    backend=config.backend)
        report.reproducers.append(reproducer)
        if log is not None:
            log(f"  reproducer: {reproducer}")
    return report
