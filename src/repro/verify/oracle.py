"""Runtime invariant oracle: a TraceBus subscriber watching every hop.

:class:`InvariantOracle` attaches to a built fabric and listens to the
``verify.hop``/``verify.miss`` records the PortLand switches emit for
each forwarded frame (the emissions are guarded by
``TraceBus.wants`` — when no oracle is attached they cost one set
lookup). From the hop stream it enforces the two *trajectory*
invariants the paper proves by construction:

* **loop-freedom** — no (payload, destination) ever enters the same
  switch twice. Keyed on destination as well as payload identity so a
  legitimate rewrite (a migration trap repointing a stale PMAC) starts
  a fresh trajectory rather than a false loop;
* **up-after-down** — once a frame has matched a *down* entry
  (descending toward a more specific prefix) it must never match an
  *up* entry again; this is the ordering argument behind the paper's
  loop-freedom proof, checked per hop via
  :func:`repro.portland.forwarding.entry_direction`.

The oracle also listens to ``verify.flow`` records — the pinned hop
lists the flow-level engine (:mod:`repro.flows`) emits whenever a fluid
flow resolves or re-resolves its path — and enforces the same two
invariants on each list as a whole, plus that the path terminates at a
host-delivery entry. This is how flow-mode campaigns prove that fluid
flows only ever occupy valid up*-down* paths, including the re-resolved
path after a fault.

``check_now()`` additionally runs the static checks (PMAC consistency,
override soundness, all-pairs table walks) against the current fabric
state, for use after the fabric has settled.
"""

from __future__ import annotations

from repro.net.ethernet import ETHERTYPE_IPV4
from repro.portland.forwarding import entry_direction
from repro.sim.trace import TraceRecord
from repro.verify.invariants import (
    Violation,
    check_override_soundness,
    check_pmac_consistency,
)
from repro.verify.walk import check_all_pairs_delivery

#: The Ethernet I/G bit: group-addressed frames legitimately fan out and
#: are excluded from the unicast trajectory invariants.
_MULTICAST_BIT = 1 << 40


class _Trajectory:
    """Per-(payload, destination) forwarding history."""

    __slots__ = ("payload", "visited", "descended")

    def __init__(self, payload) -> None:
        self.payload = payload  # strong ref: keeps id() stable
        self.visited: set[str] = set()
        self.descended = False


class InvariantOracle:
    """Watches a fabric for invariant violations.

    Usage::

        oracle = InvariantOracle(fabric)
        ...  # run traffic, inject faults
        oracle.check_now()            # static checks, after settling
        assert oracle.violations == []
        oracle.close()
    """

    def __init__(self, fabric, track_hops: bool = True) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.violations: list[Violation] = []
        self.hops = 0
        self.misses = 0
        #: Fluid-path resolutions checked (flow-mode fabrics only).
        self.flow_paths = 0
        #: Deliberate ACL discards observed (each must be justified by
        #: an installed policy rule — the table walker proves that).
        self.policy_drops = 0
        self._trajectories: dict[tuple[int, int], _Trajectory] = {}
        self._subscribed = False
        if track_hops:
            self.sim.trace.subscribe("verify.hop", self._on_hop)
            self.sim.trace.subscribe("verify.miss", self._on_miss)
            self.sim.trace.subscribe("verify.flow", self._on_flow)
            self.sim.trace.subscribe("verify.policy_drop",
                                     self._on_policy_drop)
            self.sim.trace.subscribe("verify.class_inversion",
                                     self._on_class_inversion)
            self._subscribed = True

    # ------------------------------------------------------------------
    # Runtime (per-hop) checks

    def _track_for(self, record: TraceRecord) -> _Trajectory | None:
        detail = record.detail
        if detail.get("ethertype") != ETHERTYPE_IPV4:
            return None
        dst = detail["dst"]
        if dst & _MULTICAST_BIT:
            return None
        payload = detail.get("payload")
        if payload is None:
            return None
        key = (id(payload), dst)
        track = self._trajectories.get(key)
        if track is None:
            track = self._trajectories[key] = _Trajectory(payload)
        return track

    def _on_hop(self, record: TraceRecord) -> None:
        self.hops += 1
        track = self._track_for(record)
        if track is None:
            return
        if record.source in track.visited:
            self.violations.append(Violation(
                "loop", record.source, record.time,
                {"dst": f"{record.detail['dst']:#014x}",
                 "entry": record.detail.get("entry"),
                 "revisits": sorted(track.visited)}))
        track.visited.add(record.source)
        direction = entry_direction(record.detail.get("entry", ""))
        if direction in ("down", "deliver"):
            track.descended = True
        elif direction == "up" and track.descended:
            self.violations.append(Violation(
                "up-after-down", record.source, record.time,
                {"dst": f"{record.detail['dst']:#014x}",
                 "entry": record.detail.get("entry"),
                 "path_so_far": sorted(track.visited)}))

    def _on_miss(self, record: TraceRecord) -> None:
        # Misses are expected during convergence windows; they are
        # counted for diagnostics and judged post-hoc by the table
        # walker, which knows whether the destination was reachable.
        self.misses += 1

    def _on_policy_drop(self, record: TraceRecord) -> None:
        # Counted for campaign accounting; whether each drop is
        # justified (an installed rule blocks the pair) is the table
        # walker's call — see repro.verify.walk.
        self.policy_drops += 1

    def _on_class_inversion(self, record: TraceRecord) -> None:
        """A strict-priority port dequeued a bulk frame while a higher
        class was waiting — the per-class latency invariant (mice never
        queue behind elephant bytes) failed at this link."""
        self.violations.append(Violation(
            "class-inversion", record.source, record.time,
            dict(record.detail)))

    def _on_flow(self, record: TraceRecord) -> None:
        """Check one fluid flow's pinned hop list.

        The list arrives whole (``((switch, entry, in_port), ...)``), so
        the trajectory invariants are checked in one pass rather than
        incrementally: no switch may repeat, no up-entry may follow a
        down-entry, and the final hop must be a host-delivery entry —
        a fluid flow must never be pinned to a path that strands its
        bytes inside the fabric.
        """
        self.flow_paths += 1
        hops = record.detail.get("hops") or ()
        visited: list[str] = []
        descended = False
        for switch_name, entry_name, _in_index in hops:
            if switch_name in visited:
                self.violations.append(Violation(
                    "flow-loop", record.source, record.time,
                    {"switch": switch_name, "hops": visited}))
            direction = entry_direction(entry_name or "")
            if direction == "up" and descended:
                self.violations.append(Violation(
                    "flow-up-after-down", record.source, record.time,
                    {"switch": switch_name, "entry": entry_name,
                     "hops": visited}))
            elif direction in ("down", "deliver"):
                descended = True
            visited.append(switch_name)
        if hops and entry_direction(hops[-1][1] or "") != "deliver":
            self.violations.append(Violation(
                "flow-no-delivery", record.source, record.time,
                {"last_entry": hops[-1][1], "hops": visited}))

    # ------------------------------------------------------------------
    # Static (settled-state) checks

    def check_now(self, pairs=None, pmac: bool = True,
                  overrides: bool = True, delivery: bool = True
                  ) -> list[Violation]:
        """Run the post-hoc invariant checks against the current state.

        Returns only the *new* violations found by this call (they are
        also appended to :attr:`violations`). Call on a settled fabric.
        """
        found: list[Violation] = []
        if pmac:
            found.extend(check_pmac_consistency(self.fabric))
        if overrides:
            found.extend(check_override_soundness(self.fabric))
        if delivery:
            found.extend(check_all_pairs_delivery(self.fabric, pairs=pairs))
        self.violations.extend(found)
        return found

    # ------------------------------------------------------------------
    # Lifecycle

    def reset(self) -> None:
        """Forget all trajectories and violations (e.g. between steps)."""
        self._trajectories.clear()
        self.violations.clear()
        self.hops = 0
        self.misses = 0
        self.flow_paths = 0
        self.policy_drops = 0

    def close(self) -> None:
        """Unsubscribe from the trace bus. Idempotent."""
        if self._subscribed:
            self.sim.trace.unsubscribe("verify.hop", self._on_hop)
            self.sim.trace.unsubscribe("verify.miss", self._on_miss)
            self.sim.trace.unsubscribe("verify.flow", self._on_flow)
            self.sim.trace.unsubscribe("verify.policy_drop",
                                       self._on_policy_drop)
            self.sim.trace.unsubscribe("verify.class_inversion",
                                       self._on_class_inversion)
            self._subscribed = False

    def __enter__(self) -> "InvariantOracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
