"""Post-hoc invariant checks over a settled PortLand fabric.

Each check is a pure function ``(fabric) -> list[Violation]`` reading
the *actual* state of the system — agent registries, installed fault
overrides, the fabric manager's host table — and comparing it against
the independent reachability oracle in
:mod:`repro.verify.reachability`. An empty list means the invariant
holds; a non-empty list pinpoints where it broke.

The checks assume a *settled* fabric: run the simulator long enough
after the last topology event for detection, reporting, and
reinstallation to complete (the fault campaigns do this between steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.addresses import MacAddress
from repro.portland.messages import SwitchLevel
from repro.portland.pmac import POSITION_PREFIX_LEN, Pmac


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach.

    Attributes:
        kind: Invariant family, e.g. ``"loop"``, ``"blackhole"``,
            ``"misdelivery"``, ``"pmac-duplicate"``, ``"pmac-structure"``,
            ``"pmac-registry"``, ``"override-soundness"``,
            ``"up-after-down"``.
        where: Name/id of the component where it was observed.
        time: Simulated time of observation.
        detail: Free-form context for the report.
    """

    kind: str
    where: str
    time: float = 0.0
    detail: dict[str, Any] = field(default_factory=dict, compare=False)

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.kind}] at {self.where} (t={self.time:.6f}s): {parts}"


def agents_by_switch_id(fabric) -> dict[int, Any]:
    """Map switch id -> PortlandAgent for every switch in the fabric."""
    return {agent.switch_id: agent for agent in fabric.agents.values()}


# ----------------------------------------------------------------------
# PMAC uniqueness / consistency


def check_pmac_consistency(fabric) -> list[Violation]:
    """PMAC invariants (paper §3.2).

    * Globally, at most one live host per PMAC — two hosts sharing a
      (pod, position, port, vmid) would be indistinguishable to
      forwarding.
    * Every edge-held PMAC structurally matches its switch: the pod and
      position fields equal the edge's LDP-discovered location and the
      port field names the port the host actually hangs off. A mismatch
      means the AMAC↔PMAC rewrite layer is leaking identifiers.
    * The fabric manager's registry is a subset of the edge tables: every
      (ip → pmac) binding it would hand out in a proxy-ARP reply must be
      backed by a matching rewrite/egress entry at the owning edge.
    """
    now = fabric.sim.now
    violations: list[Violation] = []
    owner_by_pmac: dict[int, str] = {}

    for name, agent in fabric.agents.items():
        if agent.level is not SwitchLevel.EDGE:
            continue
        for pmac_mac, record in agent.hosts_by_pmac.items():
            previous = owner_by_pmac.get(pmac_mac.value)
            if previous is not None:
                violations.append(Violation(
                    "pmac-duplicate", name, now,
                    {"pmac": str(record.pmac), "also_at": previous}))
            owner_by_pmac[pmac_mac.value] = name
            if (record.pmac.pod != agent.ldp.pod
                    or record.pmac.position != agent.ldp.position
                    or record.pmac.port != record.port):
                violations.append(Violation(
                    "pmac-structure", name, now,
                    {"pmac": str(record.pmac), "host_port": record.port,
                     "edge_pod": agent.ldp.pod,
                     "edge_position": agent.ldp.position}))
            if agent.hosts_by_amac.get(record.amac) is not record:
                violations.append(Violation(
                    "pmac-structure", name, now,
                    {"pmac": str(record.pmac), "amac": str(record.amac),
                     "reason": "amac/pmac maps disagree"}))

    fm = fabric.fabric_manager
    if fm is None:
        return violations
    agents = agents_by_switch_id(fabric)
    for ip, fm_record in fm.hosts_by_ip.items():
        agent = agents.get(fm_record.edge_id)
        if agent is None:
            violations.append(Violation(
                "pmac-registry", fm.name, now,
                {"ip": str(ip), "reason": "unknown edge id",
                 "edge_id": fm_record.edge_id}))
            continue
        edge_record = agent.hosts_by_pmac.get(fm_record.pmac)
        if edge_record is None:
            violations.append(Violation(
                "pmac-registry", fm.name, now,
                {"ip": str(ip), "pmac": str(fm_record.pmac),
                 "edge": agent.switch.name,
                 "reason": "FM binding not present at edge"}))
        elif (edge_record.amac != fm_record.amac
              or edge_record.port != fm_record.port):
            violations.append(Violation(
                "pmac-registry", fm.name, now,
                {"ip": str(ip), "pmac": str(fm_record.pmac),
                 "edge": agent.switch.name,
                 "reason": "FM binding disagrees with edge record"}))
    return violations


# ----------------------------------------------------------------------
# Fault-override soundness / minimality


def check_override_soundness(fabric) -> list[Violation]:
    """Every installed ``avoid`` must name a genuinely dead-ended path.

    For each fault override held by a switch agent (the state the fabric
    manager's FaultUpdates actually left behind, not the FM's intent),
    re-derive viability of every avoided neighbour from the alive wiring
    alone. Forbidding a neighbour through which the destination is still
    deliverable shrinks the ECMP set for no reason — the minimality half
    of the paper's prescriptive-update claim — and in the extreme
    (empty allowed set while alive paths exist) manufactures a blackhole.

    The completeness direction — a *viable-looking but dead* neighbour
    that should have been avoided — is covered by the table walker
    (:mod:`repro.verify.walk`), which observes the resulting drop.
    """
    fm = fabric.fabric_manager
    if fm is None:
        return []
    now = fabric.sim.now
    view = fm.view()
    scheme = fabric.routing_scheme()
    edges_by_location = {
        (view.pod(edge), view.position(edge)): edge for edge in view.edges()
    }
    violations: list[Violation] = []

    for name, agent in fabric.agents.items():
        if not agent._fault_overrides:
            continue
        for (value, bits), avoid_ids in agent._fault_overrides.items():
            if bits != POSITION_PREFIX_LEN:
                violations.append(Violation(
                    "override-soundness", name, now,
                    {"prefix": f"{MacAddress(value)}/{bits}",
                     "reason": "override prefix is not a position prefix"}))
                continue
            pmac = Pmac.from_mac(MacAddress(value))
            dst_edge = edges_by_location.get((pmac.pod, pmac.position))
            if dst_edge is None:
                # The FM no longer knows such an edge; transient staleness
                # rather than an invariant breach — skip.
                continue
            for neighbor in avoid_ids:
                if not view.alive(agent.switch_id, neighbor):
                    # Trivially sound: the first hop is dead — either in
                    # the fault matrix, or pruned from the neighbor
                    # reports entirely (LDP drops long-dead links, so a
                    # stale override can outlive its link's adjacency).
                    continue
                # Viability of the avoided first hop is the scheme's
                # call — each backend knows its own forwarding
                # discipline (up*-down* descent vs. shortest-path DAG).
                if scheme.avoid_viable(view, agent, neighbor, dst_edge):
                    violations.append(Violation(
                        "override-soundness", name, now,
                        {"prefix": str(pmac), "avoid": neighbor,
                         "dst_edge": dst_edge,
                         "reason": "alive path forbidden by override"}))
    return violations
