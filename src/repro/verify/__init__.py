"""Fabric invariant verification (``repro.verify``).

An *independent oracle* for the properties PortLand claims by
construction (paper §3.5–3.6): loop-freedom, no blackholes, PMAC
uniqueness/consistency, and soundness of the prescriptive fault
overrides. Independence means none of these checks reuse
:func:`repro.portland.faults.compute_overrides` or trust the control
plane's own bookkeeping — reachability comes from a from-scratch
up*-down* search over the alive wiring, and forwarding behaviour is
read out of the switches' *installed* flow tables.

Three layers:

* :mod:`repro.verify.invariants` + :mod:`repro.verify.walk` —
  post-hoc checks over a settled fabric (pure functions returning
  :class:`Violation` lists);
* :mod:`repro.verify.oracle` — :class:`InvariantOracle`, a runtime
  subscriber on the simulator's :class:`~repro.sim.trace.TraceBus` that
  watches every forwarded frame for switch revisits and up-after-down
  violations, plus a ``check_now()`` entry point for the static checks;
* :mod:`repro.verify.campaign` — seeded property-based fault campaigns
  (random failures, recoveries, VM migrations) with automatic shrinking
  of failing scenarios to a minimal link set.

See ``docs/VERIFY.md`` for the invariants and the independence argument.
"""

from repro.verify.campaign import (
    CampaignConfig,
    CampaignReport,
    Reproducer,
    ScenarioResult,
    run_campaign,
    run_scenario,
    shrink_failure_links,
    static_violations_for_links,
)
from repro.verify.invariants import (
    Violation,
    check_override_soundness,
    check_pmac_consistency,
)
from repro.verify.oracle import InvariantOracle
from repro.verify.reachability import (
    deliverable_via_agg,
    deliverable_via_core,
    edge_reachable,
    reachable_edge_set,
)
from repro.verify.walk import check_all_pairs_delivery, walk_unicast

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "InvariantOracle",
    "Reproducer",
    "ScenarioResult",
    "Violation",
    "check_all_pairs_delivery",
    "check_override_soundness",
    "check_pmac_consistency",
    "deliverable_via_agg",
    "deliverable_via_core",
    "edge_reachable",
    "reachable_edge_set",
    "run_campaign",
    "run_scenario",
    "shrink_failure_links",
    "static_violations_for_links",
    "walk_unicast",
]
