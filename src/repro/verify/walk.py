"""Exhaustive walks over the *installed* forwarding tables.

The reachability module says what the alive wiring permits; this module
checks what the switches would actually do, by symbolically forwarding a
unicast frame through every flow table it can reach. Every ECMP branch
(``SelectByHash``) is explored — a hash could pick any member — so a
single dead branch shows up even if most flows would have been lucky.

Walk outcomes per path:

* **delivered** — a host-egress entry rewrote the PMAC back to the AMAC
  and output the frame onto the destination host's port;
* **punted** — a ``ToAgent`` entry took over (e.g. a migration trap);
  software forwarding is the agent's business, not a data-plane fault;
* **dropped** — a table miss, an empty-action (guard/override) entry, or
  transmission into a failed link. A drop is a *blackhole* violation iff
  the independent oracle says the destination edge was reachable;
* **looped** — the frame re-entered a switch already on its path; always
  a violation, reachable or not;
* **misdelivered** — the frame reached a host other than the intended
  one, or reached the right host still carrying its PMAC (the
  identifier leak the locator/identifier-split literature warns about).

For a pair the fabric manager's :class:`~repro.policy.PolicyTable`
blocks, the polarity flips: every drop is *justified* (never a
blackhole) and a delivery is the ``acl-leak`` violation.
"""

from __future__ import annotations

from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.switching.flow_table import (
    FlowEntry,
    Output,
    OutputMany,
    SelectByHash,
    SetEthDst,
    SetEthSrc,
    ToAgent,
)
from repro.switching.switch import FlowSwitch
from repro.verify.invariants import Violation, agents_by_switch_id

#: Walk-depth backstop; a fat-tree unicast path has at most 5 switch hops,
#: so hitting this means the loop detector is about to fire anyway.
MAX_PATH_LEN = 16


def _branches(entry: FlowEntry, frame: EthernetFrame, in_port: int):
    """All (out_port, frame) pairs ``entry`` could produce, plus whether
    any action punts to the agent. Mirrors ``FlowSwitch.apply_actions``,
    with ``SelectByHash`` expanded to every member port."""
    outs: list[tuple[int, EthernetFrame]] = []
    punted = False
    current = frame
    for action in entry.actions:
        if isinstance(action, SetEthDst):
            current = current.copy()
            current.dst = action.mac
        elif isinstance(action, SetEthSrc):
            current = current.copy()
            current.src = action.mac
        elif isinstance(action, Output):
            outs.append((action.port, current))
        elif isinstance(action, OutputMany):
            outs.extend((p, current) for p in action.ports if p != in_port)
        elif isinstance(action, SelectByHash):
            outs.extend((p, current) for p in action.ports)
        elif isinstance(action, ToAgent):
            punted = True
    return outs, punted


def _wire_alive(port) -> bool:
    link = port.link
    if link is None or link.failed or not port.enabled:
        return False
    # A unidirectionally failed transmit direction also eats the frame.
    return id(port) not in getattr(link, "_failed_tx", ())


def walk_unicast(fabric, src_host, dst_record, dst_host,
                 view=None) -> list[Violation]:
    """Walk one (src host, destination binding) pair through the tables.

    ``dst_record`` is the fabric manager's
    :class:`~repro.portland.fabric_manager.FmHostRecord` for the
    destination — the binding a proxy-ARP reply would hand the source,
    so its ``pmac`` is exactly what the source would put on the wire.
    """
    fm = fabric.fabric_manager
    assert fm is not None
    if view is None:
        view = fm.view()
    now = fabric.sim.now
    attach = src_host.nic
    if attach.link is None or attach.link.failed or attach.peer is None:
        return []  # source is detached (mid-migration): nothing on the wire
    first_switch = attach.peer.node
    if not isinstance(first_switch, FlowSwitch):
        return []
    agents = agents_by_switch_id(fabric)
    src_agent = fabric.agents.get(first_switch.name)
    src_edge_id = src_agent.switch_id if src_agent is not None else None

    frame = EthernetFrame(dst_record.pmac, src_host.mac, ETHERTYPE_IPV4, None)
    violations: list[Violation] = []
    drops: list[tuple[str, str]] = []
    delivered = punted = False

    stack = [(first_switch, attach.peer.index, frame, (first_switch.name,))]
    while stack:
        node, in_index, current, path = stack.pop()
        entry = node.table.lookup(current, in_index)
        if entry is None:
            drops.append((node.name, "table-miss"))
            continue
        outs, did_punt = _branches(entry, current, in_index)
        punted = punted or did_punt
        if not outs and not did_punt:
            drops.append((node.name, f"drop-entry:{entry.name or '?'}"))
            continue
        for port_index, out_frame in outs:
            if port_index == in_index or not 0 <= port_index < len(node.ports):
                drops.append((node.name, f"bad-port:{port_index}"))
                continue
            port = node.ports[port_index]
            if not _wire_alive(port):
                drops.append((port.name, "dead-wire"))
                continue
            peer = port.peer
            next_node = peer.node
            if isinstance(next_node, FlowSwitch):
                if next_node.name in path or len(path) >= MAX_PATH_LEN:
                    violations.append(Violation(
                        "loop", next_node.name, now,
                        {"dst": str(dst_record.pmac),
                         "path": "->".join(path + (next_node.name,))}))
                    continue
                stack.append((next_node, peer.index, out_frame,
                              path + (next_node.name,)))
            else:
                if next_node is not dst_host:
                    violations.append(Violation(
                        "misdelivery", next_node.name, now,
                        {"dst_pmac": str(dst_record.pmac),
                         "expected": dst_host.name,
                         "via": "->".join(path)}))
                elif out_frame.dst != dst_record.amac:
                    violations.append(Violation(
                        "misdelivery", next_node.name, now,
                        {"dst_pmac": str(dst_record.pmac),
                         "delivered_dst": str(out_frame.dst),
                         "reason": "PMAC leaked past the fabric boundary"}))
                else:
                    delivered = True

    policy = getattr(fm, "policy", None)
    if policy is not None and policy.blocks(str(src_host.ip),
                                            str(dst_host.ip)):
        # The pair is ACL-blocked: every drop is *justified* — the walk
        # normally dies on the source edge's ``acl:`` entry — so none of
        # them is a blackhole. A delivery, though, means some branch
        # forwarded around the installed drop: the leak the policy
        # oracle exists to catch. (Callers settle after ACL ops, so the
        # install has reached the edge by the time the walker runs.)
        if delivered:
            violations.append(Violation(
                "acl-leak", first_switch.name, now,
                {"src": src_host.name, "dst": dst_host.name,
                 "src_ip": str(src_host.ip), "dst_ip": str(dst_host.ip)}))
        return violations

    if drops:
        # Whether a drop is a blackhole is the topology scheme's call:
        # its reachability oracle knows which paths the backend's
        # forwarding discipline is even allowed to take.
        dst_agent = agents.get(dst_record.edge_id)
        reachable = (
            src_edge_id is not None and dst_agent is not None
            and fabric.routing_scheme().edge_reachable(
                view, src_edge_id, dst_agent.switch_id)
        )
        if reachable:
            for where, reason in sorted(set(drops)):
                violations.append(Violation(
                    "blackhole", where, now,
                    {"src": src_host.name, "dst": dst_host.name,
                     "dst_pmac": str(dst_record.pmac), "reason": reason}))
    return violations


def check_all_pairs_delivery(fabric, pairs=None) -> list[Violation]:
    """Walk every registered, attached (src, dst) host pair.

    ``pairs`` optionally restricts the walk to an iterable of
    ``(src_host, dst_host)`` tuples; by default all ordered pairs in the
    fabric manager's registry are checked.
    """
    fm = fabric.fabric_manager
    if fm is None:
        return []
    view = fm.view()
    hosts_by_ip = {host.ip: host for host in fabric.hosts.values()}
    records = {
        host.name: record
        for ip, record in fm.hosts_by_ip.items()
        if (host := hosts_by_ip.get(ip)) is not None
    }

    def attached(host) -> bool:
        return host.nic.link is not None and not host.nic.link.failed

    violations: list[Violation] = []
    if pairs is None:
        live = [h for h in fabric.host_list()
                if h.name in records and attached(h)]
        pairs = [(s, d) for s in live for d in live if s is not d]
    for src_host, dst_host in pairs:
        record = records.get(dst_host.name)
        if record is None or not attached(dst_host) or not attached(src_host):
            continue
        violations.extend(walk_unicast(fabric, src_host, record, dst_host,
                                       view=view))
    return violations
