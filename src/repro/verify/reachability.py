"""Independent up*-down* reachability oracle over the alive graph.

This is the ground truth the invariant checks compare the fabric
against. It deliberately does **not** reuse
:func:`repro.portland.faults.compute_overrides` (the code under test):
it is a from-scratch breadth-first search over the
:class:`~repro.portland.topology_view.FabricView` wiring minus the fault
matrix, constrained to the paths PortLand forwarding can actually take:

* a frame ascends from its source edge into an aggregation switch, and
  may ascend once more into a core;
* once it starts descending it never goes back up;
* an aggregation switch in the *destination's* pod only ever moves the
  frame down (the ``own-pod-drop`` loop guard forbids re-ascending), so
  same-pod traffic must transit an aggregation switch with alive links
  to both edges.

Plain graph connectivity is *not* the right oracle — a fabric can be
connected through a "valley" (edge→agg→core→agg→edge within one pod)
that loop-free forwarding refuses to use. Using this constrained
reachability keeps the oracle honest about which drops are genuine
blackholes and which are provable disconnections.
"""

from __future__ import annotations

from repro.portland.messages import SwitchLevel
from repro.portland.topology_view import FabricView


def _aggs_of_core_in_pod(view: FabricView, core: int, pod: int) -> list[int]:
    """Aggregation switches of ``pod`` physically wired to ``core``."""
    return [
        nbr for nbr in view.neighbors_of(core).values()
        if view.level(nbr) is SwitchLevel.AGGREGATION and view.pod(nbr) == pod
    ]


def deliverable_via_core(view: FabricView, core: int, dst_edge: int) -> bool:
    """Whether a frame *descending from* ``core`` can reach ``dst_edge``.

    Requires an alive core→agg link into the destination pod and an
    alive agg→edge link below it.
    """
    pod = view.pod(dst_edge)
    if pod is None:
        return False
    return any(
        view.alive(core, agg) and view.alive(agg, dst_edge)
        for agg in _aggs_of_core_in_pod(view, core, pod)
    )


def deliverable_via_agg(view: FabricView, agg: int, dst_edge: int) -> bool:
    """Whether a frame *ascending into* ``agg`` can still reach ``dst_edge``.

    In the destination's pod the only legal move is straight down; in any
    other pod the frame may ascend once more into an alive core that can
    itself descend to the destination.
    """
    if view.pod(agg) == view.pod(dst_edge):
        return view.alive(agg, dst_edge)
    return any(
        view.alive(agg, core) and deliverable_via_core(view, core, dst_edge)
        for core in view.core_neighbors(agg)
    )


def edge_reachable(view: FabricView, src_edge: int, dst_edge: int) -> bool:
    """Whether any loop-free PortLand path exists between two edges."""
    if src_edge == dst_edge:
        return True
    pod = view.pod(src_edge)
    if pod is None:
        return False
    return any(
        view.alive(src_edge, agg) and deliverable_via_agg(view, agg, dst_edge)
        for agg in view.aggs_in_pod(pod)
    )


def reachable_edge_set(view: FabricView, src_edge: int) -> set[int]:
    """All edge switches reachable from ``src_edge`` (including itself)."""
    return {edge for edge in view.edges() if edge_reachable(view, src_edge, edge)}
