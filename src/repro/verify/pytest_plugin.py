"""Pytest integration for the invariant oracle.

Registered from ``tests/conftest.py`` via ``pytest_plugins``. Any test
can take the ``invariant_oracle`` fixture — a factory that attaches an
:class:`~repro.verify.oracle.InvariantOracle` to a fabric. At teardown
every attached oracle is closed and its accumulated *runtime*
violations (loops, up-after-down) asserted empty, so an existing
integration test becomes an invariant test by adding one line::

    def test_something(fabric, invariant_oracle):
        oracle = invariant_oracle(fabric)
        ...  # drive traffic / faults as before
        oracle.check_now()  # optional: static checks at a settled point

Tests that *expect* violations (fault-injection negatives) should use
:class:`InvariantOracle` directly rather than this fixture.
"""

from __future__ import annotations

import pytest

from repro.verify.oracle import InvariantOracle


@pytest.fixture
def invariant_oracle():
    """Factory fixture: ``invariant_oracle(fabric) -> InvariantOracle``.

    Closes every oracle it created at teardown and fails the test if any
    recorded violations remain unexamined.
    """
    created: list[InvariantOracle] = []

    def attach(fabric, track_hops: bool = True) -> InvariantOracle:
        oracle = InvariantOracle(fabric, track_hops=track_hops)
        created.append(oracle)
        return oracle

    yield attach

    problems: list[str] = []
    for oracle in created:
        oracle.close()
        problems.extend(str(v) for v in oracle.violations)
    if problems:
        pytest.fail("invariant violations:\n" + "\n".join(problems),
                    pytrace=False)
