"""Wire formats for PortLand's control protocols.

Two families:

* **LDP messages** (ethertype ``ETHERTYPE_LDP``), exchanged hop-by-hop
  between neighbouring switches: the periodic Location Discovery
  Message, and the position proposal/ack pair edge switches use to agree
  on unique position numbers with their aggregation switches.
* **Fabric-manager messages** (ethertype ``ETHERTYPE_FABRIC``), carried
  on the control network between switch agents and the fabric manager:
  host registration, ARP query/response, pod assignment, fault reports
  and prescriptive fault updates, multicast tree installation, and VM
  migration invalidation.

Everything encodes to real bytes so control-plane load (Fig. 14) is
measured in wire bytes, not object counts.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import CodecError
from repro.net.addresses import IPv4Address, MacAddress
from repro.net.packet import Packet


class SwitchLevel(enum.IntEnum):
    """Tree level of a switch, as discovered by LDP."""

    UNKNOWN = 0
    EDGE = 1
    AGGREGATION = 2
    CORE = 3


#: Sentinel wire values for not-yet-known pod/position.
NO_POD = 0xFFFF
NO_POSITION = 0xFF


# ----------------------------------------------------------------------
# LDP messages


@dataclass(frozen=True)
class LocationDiscoveryMessage(Packet):
    """The periodic LDM beacon (paper §3.2).

    Carries the sender's identity and its current belief about its own
    location. Doubling as a keepalive, its absence is the fabric's
    failure detector.
    """

    switch_id: int
    level: SwitchLevel
    pod: int
    position: int
    seq: int

    _S = struct.Struct("!B6sBHBI")
    KIND = 1

    def encode(self) -> bytes:
        return self._S.pack(self.KIND, self.switch_id.to_bytes(6, "big"),
                            int(self.level), self.pod, self.position, self.seq)

    def wire_length(self) -> int:
        return self._S.size

    @classmethod
    def decode(cls, data: bytes) -> "LocationDiscoveryMessage":
        if len(data) < cls._S.size:
            raise CodecError("LDM too short")
        kind, sid, level, pod, position, seq = cls._S.unpack_from(data, 0)
        if kind != cls.KIND:
            raise CodecError(f"not an LDM (kind={kind})")
        return cls(int.from_bytes(sid, "big"), SwitchLevel(level), pod, position, seq)


@dataclass(frozen=True)
class PositionProposal(Packet):
    """Edge → aggregation: "may I take this position number?"."""

    switch_id: int
    position: int

    _S = struct.Struct("!B6sB")
    KIND = 2

    def encode(self) -> bytes:
        return self._S.pack(self.KIND, self.switch_id.to_bytes(6, "big"),
                            self.position)

    def wire_length(self) -> int:
        return self._S.size

    @classmethod
    def decode(cls, data: bytes) -> "PositionProposal":
        if len(data) < cls._S.size:
            raise CodecError("position proposal too short")
        kind, sid, position = cls._S.unpack_from(data, 0)
        if kind != cls.KIND:
            raise CodecError(f"not a position proposal (kind={kind})")
        return cls(int.from_bytes(sid, "big"), position)


@dataclass(frozen=True)
class PositionAck(Packet):
    """Aggregation → edge: grant or refuse a proposed position."""

    switch_id: int
    position: int
    granted: bool

    _S = struct.Struct("!B6sBB")
    KIND = 3

    def encode(self) -> bytes:
        return self._S.pack(self.KIND, self.switch_id.to_bytes(6, "big"),
                            self.position, int(self.granted))

    def wire_length(self) -> int:
        return self._S.size

    @classmethod
    def decode(cls, data: bytes) -> "PositionAck":
        if len(data) < cls._S.size:
            raise CodecError("position ack too short")
        kind, sid, position, granted = cls._S.unpack_from(data, 0)
        if kind != cls.KIND:
            raise CodecError(f"not a position ack (kind={kind})")
        return cls(int.from_bytes(sid, "big"), position, bool(granted))


def decode_ldp(data: bytes) -> Packet:
    """Decode any LDP-family message from wire bytes."""
    if not data:
        raise CodecError("empty LDP message")
    kind = data[0]
    for cls in (LocationDiscoveryMessage, PositionProposal, PositionAck):
        if kind == cls.KIND:
            return cls.decode(data)
    raise CodecError(f"unknown LDP message kind {kind}")


# ----------------------------------------------------------------------
# Fabric-manager protocol


class FmType(enum.IntEnum):
    """Fabric-manager message type tags."""

    REGISTER_HOST = 1
    ARP_QUERY = 2
    ARP_RESPONSE = 3
    ARP_FLOOD = 4
    POD_REQUEST = 5
    POD_REPLY = 6
    NEIGHBOR_REPORT = 7
    LINK_FAIL = 8
    LINK_RECOVER = 9
    FAULT_UPDATE = 10
    FAULT_CLEAR = 11
    MCAST_INSTALL = 12
    MCAST_REMOVE = 13
    IGMP_RELAY = 14
    MCAST_MISS = 15
    INVALIDATE = 16
    GRATUITOUS_ARP = 17
    DISABLE_LINK = 18
    ENABLE_LINK = 19
    BROADCAST_RELAY = 20
    OVERRIDE_REPORT = 21
    POLICY_INSTALL = 22
    POLICY_REVOKE = 23


class FmMessage(Packet):
    """Base class for fabric-manager protocol messages."""

    TYPE: FmType

    def encode(self) -> bytes:  # pragma: no cover - overridden
        raise NotImplementedError

    def wire_length(self) -> int:
        return len(self.encode())


def _mac_bytes(value: int) -> bytes:
    return value.to_bytes(6, "big")


def _mac_int(data: bytes) -> int:
    return int.from_bytes(data, "big")


@dataclass(frozen=True)
class RegisterHost(FmMessage):
    """Edge → FM: a (new or moved) host appeared on one of my ports."""

    TYPE = FmType.REGISTER_HOST
    edge_id: int
    port: int
    amac: MacAddress
    ip: IPv4Address
    pmac: MacAddress

    def encode(self) -> bytes:
        return (struct.pack("!B", self.TYPE) + _mac_bytes(self.edge_id)
                + struct.pack("!B", self.port) + self.amac.to_bytes()
                + self.ip.to_bytes() + self.pmac.to_bytes())

    @classmethod
    def decode_body(cls, data: bytes) -> "RegisterHost":
        edge_id = _mac_int(data[0:6])
        port = data[6]
        return cls(edge_id, port, MacAddress.from_bytes(data[7:13]),
                   IPv4Address.from_bytes(data[13:17]),
                   MacAddress.from_bytes(data[17:23]))


@dataclass(frozen=True)
class ArpQuery(FmMessage):
    """Edge → FM: resolve ``target_ip`` for a host's ARP request."""

    TYPE = FmType.ARP_QUERY
    request_id: int
    edge_id: int
    requester_ip: IPv4Address
    requester_pmac: MacAddress
    target_ip: IPv4Address

    def encode(self) -> bytes:
        return (struct.pack("!BI", self.TYPE, self.request_id)
                + _mac_bytes(self.edge_id) + self.requester_ip.to_bytes()
                + self.requester_pmac.to_bytes() + self.target_ip.to_bytes())

    @classmethod
    def decode_body(cls, data: bytes) -> "ArpQuery":
        (request_id,) = struct.unpack_from("!I", data, 0)
        return cls(request_id, _mac_int(data[4:10]),
                   IPv4Address.from_bytes(data[10:14]),
                   MacAddress.from_bytes(data[14:20]),
                   IPv4Address.from_bytes(data[20:24]))


@dataclass(frozen=True)
class ArpResponse(FmMessage):
    """FM → edge: resolution result for an :class:`ArpQuery`."""

    TYPE = FmType.ARP_RESPONSE
    request_id: int
    target_ip: IPv4Address
    pmac: MacAddress
    found: bool

    def encode(self) -> bytes:
        return (struct.pack("!BI", self.TYPE, self.request_id)
                + self.target_ip.to_bytes() + self.pmac.to_bytes()
                + struct.pack("!B", int(self.found)))

    @classmethod
    def decode_body(cls, data: bytes) -> "ArpResponse":
        (request_id,) = struct.unpack_from("!I", data, 0)
        return cls(request_id, IPv4Address.from_bytes(data[4:8]),
                   MacAddress.from_bytes(data[8:14]), bool(data[14]))


@dataclass(frozen=True)
class ArpFlood(FmMessage):
    """FM → all edges: broadcast an ARP request for an unknown IP.

    The paper's fallback when the fabric manager has no mapping: the
    request goes out every edge switch's host ports — still loop-free,
    and vastly rarer than per-host broadcast.
    """

    TYPE = FmType.ARP_FLOOD
    target_ip: IPv4Address
    requester_ip: IPv4Address
    requester_pmac: MacAddress

    def encode(self) -> bytes:
        return (struct.pack("!B", self.TYPE) + self.target_ip.to_bytes()
                + self.requester_ip.to_bytes() + self.requester_pmac.to_bytes())

    @classmethod
    def decode_body(cls, data: bytes) -> "ArpFlood":
        return cls(IPv4Address.from_bytes(data[0:4]),
                   IPv4Address.from_bytes(data[4:8]),
                   MacAddress.from_bytes(data[8:14]))


@dataclass(frozen=True)
class PodRequest(FmMessage):
    """Edge (position 0) → FM: assign my pod a number."""

    TYPE = FmType.POD_REQUEST
    switch_id: int

    def encode(self) -> bytes:
        return struct.pack("!B", self.TYPE) + _mac_bytes(self.switch_id)

    @classmethod
    def decode_body(cls, data: bytes) -> "PodRequest":
        return cls(_mac_int(data[0:6]))


@dataclass(frozen=True)
class PodReply(FmMessage):
    """FM → edge: your pod number."""

    TYPE = FmType.POD_REPLY
    pod: int

    def encode(self) -> bytes:
        return struct.pack("!BH", self.TYPE, self.pod)

    @classmethod
    def decode_body(cls, data: bytes) -> "PodReply":
        (pod,) = struct.unpack_from("!H", data, 0)
        return cls(pod)


@dataclass(frozen=True)
class NeighborReport(FmMessage):
    """Switch → FM: my identity, location, and per-port neighbours.

    This is how the fabric manager builds the topology view it needs to
    compute prescriptive fault updates and multicast trees.
    """

    TYPE = FmType.NEIGHBOR_REPORT
    switch_id: int
    level: SwitchLevel
    pod: int
    position: int
    #: tuple of (port, neighbor_switch_id, neighbor_level)
    neighbors: tuple[tuple[int, int, SwitchLevel], ...]

    def encode(self) -> bytes:
        head = (struct.pack("!B", self.TYPE) + _mac_bytes(self.switch_id)
                + struct.pack("!BHBH", int(self.level), self.pod,
                              self.position, len(self.neighbors)))
        body = b"".join(
            struct.pack("!B", port) + _mac_bytes(nbr) + struct.pack("!B", int(lvl))
            for port, nbr, lvl in self.neighbors
        )
        return head + body

    @classmethod
    def decode_body(cls, data: bytes) -> "NeighborReport":
        switch_id = _mac_int(data[0:6])
        level, pod, position, count = struct.unpack_from("!BHBH", data, 6)
        offset = 12
        neighbors = []
        for _ in range(count):
            port = data[offset]
            nbr = _mac_int(data[offset + 1 : offset + 7])
            lvl = SwitchLevel(data[offset + 7])
            neighbors.append((port, nbr, lvl))
            offset += 8
        return cls(switch_id, SwitchLevel(level), pod, position, tuple(neighbors))


@dataclass(frozen=True)
class LinkFail(FmMessage):
    """Switch → FM: I lost the link to ``neighbor_id`` on ``port``."""

    TYPE = FmType.LINK_FAIL
    reporter_id: int
    port: int
    neighbor_id: int

    def encode(self) -> bytes:
        return (struct.pack("!B", self.TYPE) + _mac_bytes(self.reporter_id)
                + struct.pack("!B", self.port) + _mac_bytes(self.neighbor_id))

    @classmethod
    def decode_body(cls, data: bytes) -> "LinkFail":
        return cls(_mac_int(data[0:6]), data[6], _mac_int(data[7:13]))


@dataclass(frozen=True)
class LinkRecover(FmMessage):
    """Switch → FM: the link to ``neighbor_id`` on ``port`` came back."""

    TYPE = FmType.LINK_RECOVER
    reporter_id: int
    port: int
    neighbor_id: int

    def encode(self) -> bytes:
        return (struct.pack("!B", self.TYPE) + _mac_bytes(self.reporter_id)
                + struct.pack("!B", self.port) + _mac_bytes(self.neighbor_id))

    @classmethod
    def decode_body(cls, data: bytes) -> "LinkRecover":
        return cls(_mac_int(data[0:6]), data[6], _mac_int(data[7:13]))


@dataclass(frozen=True)
class FaultUpdate(FmMessage):
    """FM → switch: route ``prefix`` avoiding the listed neighbours.

    Prescriptive: the receiving agent installs a higher-priority entry
    for the PMAC prefix whose ECMP group omits uplinks leading to any of
    ``avoid_neighbor_ids``.
    """

    TYPE = FmType.FAULT_UPDATE
    prefix: MacAddress
    prefix_len: int
    avoid_neighbor_ids: tuple[int, ...]

    def encode(self) -> bytes:
        head = (struct.pack("!B", self.TYPE) + self.prefix.to_bytes()
                + struct.pack("!BH", self.prefix_len, len(self.avoid_neighbor_ids)))
        return head + b"".join(_mac_bytes(n) for n in self.avoid_neighbor_ids)

    @classmethod
    def decode_body(cls, data: bytes) -> "FaultUpdate":
        prefix = MacAddress.from_bytes(data[0:6])
        prefix_len, count = struct.unpack_from("!BH", data, 6)
        ids = tuple(_mac_int(data[9 + 6 * i : 15 + 6 * i]) for i in range(count))
        return cls(prefix, prefix_len, ids)


@dataclass(frozen=True)
class FaultClear(FmMessage):
    """FM → switch: remove the fault override for ``prefix``."""

    TYPE = FmType.FAULT_CLEAR
    prefix: MacAddress
    prefix_len: int

    def encode(self) -> bytes:
        return (struct.pack("!B", self.TYPE) + self.prefix.to_bytes()
                + struct.pack("!B", self.prefix_len))

    @classmethod
    def decode_body(cls, data: bytes) -> "FaultClear":
        return cls(MacAddress.from_bytes(data[0:6]), data[6])


@dataclass(frozen=True)
class McastInstall(FmMessage):
    """FM → switch: forward ``group`` out exactly these ports."""

    TYPE = FmType.MCAST_INSTALL
    group_mac: MacAddress
    ports: tuple[int, ...]

    def encode(self) -> bytes:
        return (struct.pack("!B", self.TYPE) + self.group_mac.to_bytes()
                + struct.pack("!B", len(self.ports))
                + bytes(self.ports))

    @classmethod
    def decode_body(cls, data: bytes) -> "McastInstall":
        group = MacAddress.from_bytes(data[0:6])
        count = data[6]
        return cls(group, tuple(data[7 : 7 + count]))


@dataclass(frozen=True)
class McastRemove(FmMessage):
    """FM → switch: drop your entry for ``group``."""

    TYPE = FmType.MCAST_REMOVE
    group_mac: MacAddress

    def encode(self) -> bytes:
        return struct.pack("!B", self.TYPE) + self.group_mac.to_bytes()

    @classmethod
    def decode_body(cls, data: bytes) -> "McastRemove":
        return cls(MacAddress.from_bytes(data[0:6]))


@dataclass(frozen=True)
class IgmpRelay(FmMessage):
    """Edge → FM: a host joined/left a multicast group."""

    TYPE = FmType.IGMP_RELAY
    edge_id: int
    port: int
    group: IPv4Address
    join: bool
    host_ip: IPv4Address

    def encode(self) -> bytes:
        return (struct.pack("!B", self.TYPE) + _mac_bytes(self.edge_id)
                + struct.pack("!B", self.port) + self.group.to_bytes()
                + struct.pack("!B", int(self.join)) + self.host_ip.to_bytes())

    @classmethod
    def decode_body(cls, data: bytes) -> "IgmpRelay":
        return cls(_mac_int(data[0:6]), data[6],
                   IPv4Address.from_bytes(data[7:11]), bool(data[11]),
                   IPv4Address.from_bytes(data[12:16]))


@dataclass(frozen=True)
class McastMiss(FmMessage):
    """Edge → FM: a host is sending to a group I have no entry for."""

    TYPE = FmType.MCAST_MISS
    edge_id: int
    group: IPv4Address

    def encode(self) -> bytes:
        return (struct.pack("!B", self.TYPE) + _mac_bytes(self.edge_id)
                + self.group.to_bytes())

    @classmethod
    def decode_body(cls, data: bytes) -> "McastMiss":
        return cls(_mac_int(data[0:6]), IPv4Address.from_bytes(data[6:10]))


@dataclass(frozen=True)
class Invalidate(FmMessage):
    """FM → old edge after migration: trap traffic for the stale PMAC.

    The old edge installs a software entry: frames addressed to
    ``old_pmac`` are punted, forwarded on to ``new_pmac``, and answered
    with a unicast gratuitous ARP so the sender repoints its cache.
    """

    TYPE = FmType.INVALIDATE
    ip: IPv4Address
    old_pmac: MacAddress
    new_pmac: MacAddress

    def encode(self) -> bytes:
        return (struct.pack("!B", self.TYPE) + self.ip.to_bytes()
                + self.old_pmac.to_bytes() + self.new_pmac.to_bytes())

    @classmethod
    def decode_body(cls, data: bytes) -> "Invalidate":
        return cls(IPv4Address.from_bytes(data[0:4]),
                   MacAddress.from_bytes(data[4:10]),
                   MacAddress.from_bytes(data[10:16]))


@dataclass(frozen=True)
class GratuitousArp(FmMessage):
    """FM → edge: announce ``ip`` is now at ``pmac`` on your host ports."""

    TYPE = FmType.GRATUITOUS_ARP
    ip: IPv4Address
    pmac: MacAddress

    def encode(self) -> bytes:
        return (struct.pack("!B", self.TYPE) + self.ip.to_bytes()
                + self.pmac.to_bytes())

    @classmethod
    def decode_body(cls, data: bytes) -> "GratuitousArp":
        return cls(IPv4Address.from_bytes(data[0:4]),
                   MacAddress.from_bytes(data[4:10]))


@dataclass(frozen=True)
class DisableLink(FmMessage):
    """FM → switch: stop using your link toward ``neighbor_id``.

    Sent to *both* endpoints of a link entered into the fault matrix.
    Crucial for unidirectional failures: the endpoint whose receive
    direction still works would otherwise never notice (its LDP
    keepalives keep arriving) and would keep blackholing traffic into
    the dead transmit direction.
    """

    TYPE = FmType.DISABLE_LINK
    neighbor_id: int

    def encode(self) -> bytes:
        return struct.pack("!B", self.TYPE) + _mac_bytes(self.neighbor_id)

    @classmethod
    def decode_body(cls, data: bytes) -> "DisableLink":
        return cls(_mac_int(data[0:6]))


@dataclass(frozen=True)
class EnableLink(FmMessage):
    """FM → switch: the link toward ``neighbor_id`` is healthy again."""

    TYPE = FmType.ENABLE_LINK
    neighbor_id: int

    def encode(self) -> bytes:
        return struct.pack("!B", self.TYPE) + _mac_bytes(self.neighbor_id)

    @classmethod
    def decode_body(cls, data: bytes) -> "EnableLink":
        return cls(_mac_int(data[0:6]))


@dataclass(frozen=True)
class BroadcastRelay(FmMessage):
    """Edge ⇄ FM: a non-ARP broadcast frame, tunnelled for fabric-wide
    delivery (paper §3.4: "broadcast ... through the fabric manager").

    The originating edge punts the frame (e.g. a DHCP DISCOVER) to the
    fabric manager, which relays it to every *other* edge switch; each
    re-emits it on its host ports. The fabric itself never floods.
    ``src_pmac`` lets receiving edges suppress the sender's own port.
    """

    TYPE = FmType.BROADCAST_RELAY
    edge_id: int
    src_pmac: MacAddress
    ethertype: int
    payload: bytes

    def encode(self) -> bytes:
        return (struct.pack("!B", self.TYPE) + _mac_bytes(self.edge_id)
                + self.src_pmac.to_bytes()
                + struct.pack("!HH", self.ethertype, len(self.payload))
                + self.payload)

    @classmethod
    def decode_body(cls, data: bytes) -> "BroadcastRelay":
        edge_id = _mac_int(data[0:6])
        src_pmac = MacAddress.from_bytes(data[6:12])
        ethertype, length = struct.unpack_from("!HH", data, 12)
        return cls(edge_id, src_pmac, ethertype, bytes(data[16:16 + length]))


@dataclass(frozen=True)
class OverrideReport(FmMessage):
    """Switch → FM: the fault-override prefixes I currently hold.

    Part of the soft-state refresh: overrides are the one piece of
    *FM-originated* state agents hold, so a restarted fabric manager
    cannot reconstruct them from its own registries. Comparing the
    reported prefixes against ``_sent_overrides`` lets it retract
    entries that no longer follow from the (rebuilt) fault matrix —
    e.g. a link that recovered while the manager was down — and re-push
    entries the switch is missing. Sent only while the switch holds at
    least one override, so a healthy fabric pays nothing.
    """

    TYPE = FmType.OVERRIDE_REPORT
    switch_id: int
    prefixes: tuple[tuple[int, int], ...]

    def encode(self) -> bytes:
        head = (struct.pack("!B", self.TYPE) + _mac_bytes(self.switch_id)
                + struct.pack("!H", len(self.prefixes)))
        return head + b"".join(
            _mac_bytes(value) + struct.pack("!B", bits)
            for value, bits in self.prefixes)

    @classmethod
    def decode_body(cls, data: bytes) -> "OverrideReport":
        switch_id = _mac_int(data[0:6])
        (count,) = struct.unpack_from("!H", data, 6)
        prefixes = tuple(
            (_mac_int(data[8 + 7 * i : 14 + 7 * i]), data[14 + 7 * i])
            for i in range(count))
        return cls(switch_id, prefixes)


@dataclass(frozen=True)
class PolicyInstall(FmMessage):
    """FM → edge: materialise one ACL (drop ``src_ip`` → ``dst_ip``).

    Sent to the *source* host's edge switch; carries the host's ingress
    port and the destination's current PMAC, so the agent can install
    the exact (in_port, eth_dst) drop entry
    (:func:`repro.portland.forwarding.acl_drop`). Re-sent whenever
    either endpoint (re-)registers — migration moves the entry, and a
    soft-state refresh after an FM restart restores it.
    """

    TYPE = FmType.POLICY_INSTALL
    src_ip: IPv4Address
    dst_ip: IPv4Address
    dst_pmac: MacAddress
    port: int

    def encode(self) -> bytes:
        return (struct.pack("!B", self.TYPE) + self.src_ip.to_bytes()
                + self.dst_ip.to_bytes() + self.dst_pmac.to_bytes()
                + struct.pack("!B", self.port))

    @classmethod
    def decode_body(cls, data: bytes) -> "PolicyInstall":
        return cls(IPv4Address.from_bytes(data[0:4]),
                   IPv4Address.from_bytes(data[4:8]),
                   MacAddress.from_bytes(data[8:14]), data[14])


@dataclass(frozen=True)
class PolicyRevoke(FmMessage):
    """FM → edge: remove the ACL entry for the (src, dst) pair."""

    TYPE = FmType.POLICY_REVOKE
    src_ip: IPv4Address
    dst_ip: IPv4Address

    def encode(self) -> bytes:
        return (struct.pack("!B", self.TYPE) + self.src_ip.to_bytes()
                + self.dst_ip.to_bytes())

    @classmethod
    def decode_body(cls, data: bytes) -> "PolicyRevoke":
        return cls(IPv4Address.from_bytes(data[0:4]),
                   IPv4Address.from_bytes(data[4:8]))


_FM_CLASSES: dict[int, type[FmMessage]] = {
    int(cls.TYPE): cls
    for cls in (
        RegisterHost, ArpQuery, ArpResponse, ArpFlood, PodRequest, PodReply,
        NeighborReport, LinkFail, LinkRecover, FaultUpdate, FaultClear,
        McastInstall, McastRemove, IgmpRelay, McastMiss, Invalidate,
        GratuitousArp, DisableLink, EnableLink, BroadcastRelay,
        OverrideReport, PolicyInstall, PolicyRevoke,
    )
}


def decode_fabric(data: bytes) -> FmMessage:
    """Decode any fabric-manager message from wire bytes."""
    if not data:
        raise CodecError("empty fabric message")
    cls = _FM_CLASSES.get(data[0])
    if cls is None:
        raise CodecError(f"unknown fabric message type {data[0]}")
    return cls.decode_body(data[1:])
