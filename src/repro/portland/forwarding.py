"""Flow-entry construction for PortLand's PMAC forwarding (paper §3.4).

Priorities encode the longest-prefix-match order: exact host PMACs and
per-position/pod prefixes sit above the pod-internal drop guard, which
sits above fault overrides, which sit above the default-up ECMP route.
The resulting table is provably loop-free: every entry either sends a
frame strictly *down* the tree (toward a more specific prefix) or
strictly *up* (default route), and a frame that has started descending
can never match an up entry again — the property tests exercise this on
random topologies with random failures.
"""

from __future__ import annotations

from repro.net.addresses import MacAddress
from repro.net.ethernet import ETHERTYPE_ARP
from repro.net.ipv4 import IPPROTO_IGMP
from repro.portland.pmac import pod_prefix, position_prefix
from repro.switching.flow_table import (
    Drop,
    Match,
    Output,
    OutputMany,
    SelectByHash,
    SetEthDst,
    SetEthSrc,
    ToAgent,
    mac_prefix_mask,
)

# Forwarding-table priorities, highest first.
PRIO_ARP = 500
PRIO_ACL = 460
PRIO_IGMP = 450
PRIO_HOST = 400
PRIO_DOWN = 400
PRIO_TRAP = 380
PRIO_MCAST_GROUP = 300
PRIO_MCAST_MISS = 250
PRIO_OWN_PREFIX_DROP = 200
PRIO_FAULT = 150
PRIO_DEFAULT_UP = 100

# Rewrite-table priorities.
REWRITE_PRIO_HOST = 500
REWRITE_PRIO_NEW_HOST = 100

#: A match on "any Ethernet multicast destination" (I/G bit set).
MULTICAST_BIT_MATCH = Match(eth_dst=MacAddress(1 << 40), eth_dst_mask=1 << 40)


def entry_direction(name: str) -> str:
    """Classify a forwarding-entry name by which way it moves a frame.

    Returns one of ``"up"`` (default ECMP route or fault-constrained up
    route), ``"down"`` (descending toward a more specific prefix),
    ``"deliver"`` (host egress), ``"drop"`` (loop-guard drop entries),
    or ``"control"`` (punts, multicast, traps — frames that leave the
    unicast up*-down* pipeline). The invariant oracle uses this to
    observe the paper's loop-freedom argument at runtime: a frame that
    has matched a *down* entry anywhere must never match an *up* entry
    afterwards.
    """
    if name == "default-up" or name.startswith("fault:"):
        return "up"
    if name.startswith("route:"):
        # Scheme-resolved routes (e.g. Jellyfish's shortest-path DAG)
        # have no up/down polarity; their loop-freedom argument is
        # monotone distance descent, checked by the scheme's oracle,
        # not by the up*-down* automaton.
        return "route"
    if name.startswith(("down:", "pod:")):
        return "down"
    if name.startswith("host:"):
        return "deliver"
    if name in ("own-prefix-drop", "own-pod-drop") or name.startswith("acl:"):
        return "drop"
    return "control"


def arp_intercept() -> tuple[Match, tuple, int, str]:
    """Edge: punt every ARP frame to the agent (proxy ARP)."""
    return (Match(ethertype=ETHERTYPE_ARP), (ToAgent("arp"),), PRIO_ARP, "arp")


def igmp_intercept() -> tuple[Match, tuple, int, str]:
    """Edge: punt IGMP so joins/leaves reach the fabric manager."""
    return (Match(ip_proto=IPPROTO_IGMP), (ToAgent("igmp"),), PRIO_IGMP, "igmp")


def mcast_miss() -> tuple[Match, tuple, int, str]:
    """Edge: punt multicast frames with no installed group entry."""
    return (MULTICAST_BIT_MATCH, (ToAgent("mcast-miss"),), PRIO_MCAST_MISS,
            "mcast-miss")


def host_egress(pmac_mac: MacAddress, amac: MacAddress,
                port: int) -> tuple[Match, tuple, int, str]:
    """Edge: deliver to a local host, rewriting PMAC back to AMAC."""
    return (Match(eth_dst=pmac_mac), (SetEthDst(amac), Output(port)),
            PRIO_HOST, f"host:{pmac_mac}")


def own_prefix_drop(pod: int, position: int) -> tuple[Match, tuple, int, str]:
    """Edge: drop traffic for our own prefix with no matching host.

    Prevents unknown-vmid frames from bouncing back up the tree.
    """
    value, bits = position_prefix(pod, position)
    return (Match(eth_dst=value, eth_dst_mask=mac_prefix_mask(bits)), (),
            PRIO_OWN_PREFIX_DROP, "own-prefix-drop")


def own_pod_drop(pod: int) -> tuple[Match, tuple, int, str]:
    """Aggregation: never send own-pod traffic up (loop guard)."""
    value, bits = pod_prefix(pod)
    return (Match(eth_dst=value, eth_dst_mask=mac_prefix_mask(bits)), (),
            PRIO_OWN_PREFIX_DROP, "own-pod-drop")


def down_to_position(pod: int, position: int,
                     port: int) -> tuple[Match, tuple, int, str]:
    """Aggregation: descend toward one edge switch."""
    value, bits = position_prefix(pod, position)
    return (Match(eth_dst=value, eth_dst_mask=mac_prefix_mask(bits)),
            (Output(port),), PRIO_DOWN, f"down:{pod}.{position}")


def down_to_pod(pod: int, ports: tuple[int, ...]) -> tuple[Match, tuple, int, str]:
    """Core: descend toward one pod (ECMP if multiply connected)."""
    value, bits = pod_prefix(pod)
    action = (Output(ports[0]),) if len(ports) == 1 else (SelectByHash(ports),)
    return (Match(eth_dst=value, eth_dst_mask=mac_prefix_mask(bits)),
            action, PRIO_DOWN, f"pod:{pod}")


def default_up(ports: tuple[int, ...]) -> tuple[Match, tuple, int, str]:
    """Edge/aggregation: everything else goes up, ECMP-hashed."""
    return (Match(), (SelectByHash(ports),), PRIO_DEFAULT_UP, "default-up")


def route_entry(pod: int, position: int,
                ports: tuple[int, ...]) -> tuple[Match, tuple, int, str]:
    """Scheme-resolved route toward one destination locator prefix.

    Sits at default-up priority so prescriptive fault overrides
    (PRIO_FAULT) shadow it for their prefix, exactly as they shadow the
    fat tree's default-up entry. Empty ``ports`` is an explicit drop
    (destination currently next-hop-less from here).
    """
    value, bits = position_prefix(pod, position)
    return (Match(eth_dst=value, eth_dst_mask=mac_prefix_mask(bits)),
            (SelectByHash(ports),) if ports else (),
            PRIO_DEFAULT_UP, f"route:{pod}.{position}")


def fault_override(prefix: MacAddress, prefix_len: int,
                   ports: tuple[int, ...]) -> tuple[Match, tuple, int, str]:
    """Fault-constrained up route for one destination prefix."""
    return (Match(eth_dst=prefix, eth_dst_mask=mac_prefix_mask(prefix_len)),
            (SelectByHash(ports),) if ports else (),
            PRIO_FAULT, f"fault:{prefix}/{prefix_len}")


def mcast_group(group_mac: MacAddress,
                ports: tuple[int, ...]) -> tuple[Match, tuple, int, str]:
    """Installed multicast tree entry."""
    return (Match(eth_dst=group_mac), (OutputMany(ports),),
            PRIO_MCAST_GROUP, f"mcast:{group_mac}")


def migration_trap(old_pmac: MacAddress) -> tuple[Match, tuple, int, str]:
    """Old edge after migration: trap frames for the stale PMAC."""
    return (Match(eth_dst=old_pmac), (ToAgent("migrated"),), PRIO_TRAP,
            f"trap:{old_pmac}")


def acl_drop(in_port: int, dst_pmac: MacAddress, src_ip: str,
             dst_ip: str) -> tuple[Match, tuple, int, str]:
    """Edge ACL: drop the blocked pair's traffic at the source's edge.

    Matched on (source host's ingress port, destination PMAC) — the
    exact shape a frame from the blocked source has after ingress
    rewrite, and one the symbolic table walker reproduces verbatim.
    The ``in_port`` component makes the entry non-key-only, which
    automatically disables the decision cache and compiled-path cache
    at this switch (``FlowTable.cache_safe``), so no cached verdict can
    ever bypass the ACL.
    """
    return (Match(in_port=in_port, eth_dst=dst_pmac), (Drop("acl"),),
            PRIO_ACL, f"acl:{src_ip}->{dst_ip}")
