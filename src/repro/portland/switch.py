"""The PortLand switch: a two-stage flow pipeline plus direct LDP path.

Stage 1 (*rewrite table*) performs the edge MAC rewriting the paper
installs as OpenFlow entries: AMAC→PMAC on ingress host ports (and the
new-host trap). Entries whose actions are purely header rewrites fall
through to stage 2 (*forwarding table*), which holds the PMAC
longest-prefix-match entries, multicast entries, ARP interception, and
the ECMP default-up route.

Stage 2 runs behind a per-switch :class:`DecisionCache`: the verdict of
the longest-prefix walk (matched entry + hash-resolved actions) is
memoised by (dst PMAC, ethertype, IP protocol, flow hash), so
steady-state forwarding costs one dict probe per hop instead of a
priority-ordered match scan. Every table mutation — entry installs and
removals, fault-override diffs, ECMP membership refreshes — flushes the
cache through the table's change listener, and the agent additionally
flushes explicitly when the fabric manager changes link/override state.

LDP frames and control-network frames bypass the tables entirely — they
terminate in switch software, like protocol packets reaching a switch
CPU port.
"""

from __future__ import annotations

from repro.net.ethernet import ETHERTYPE_LDP, EthernetFrame
from repro.net.link import Port
from repro.sim.simulator import Simulator
from repro.switching.decision_cache import DEFAULT_CAPACITY, DecisionCache
from repro.switching.path_cache import PathCache
from repro.switching.flow_table import (
    FlowEntry,
    FlowTable,
    Output,
    OutputMany,
    SelectByHash,
    SetEthDst,
    SetEthSrc,
    ToAgent,
    decision_key,
)
from repro.switching.switch import FlowSwitch

_TERMINAL_ACTIONS = (Output, OutputMany, SelectByHash, ToAgent)

_NO_DECISION: tuple[FlowEntry | None, tuple] = (None, ())


class PortlandSwitch(FlowSwitch):
    """Data plane of a PortLand switch (any level)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        num_ports: int,
        agent_delay_s: float = 50e-6,
        decision_cache_entries: int = DEFAULT_CAPACITY,
    ) -> None:
        super().__init__(sim, name, num_ports, agent_delay_s=agent_delay_s,
                         miss_to_agent=False)
        self.rewrite_table = FlowTable()
        self.control_port: Port | None = None
        self.decision_cache: DecisionCache | None = None
        if decision_cache_entries > 0:
            self.decision_cache = DecisionCache(self.table,
                                                decision_cache_entries)
            self.decision_cache.on_flush = self._trace_cache_flush
        #: Shared fabric-level compiled-path cache (wired by the topology
        #: builder when ``PortlandConfig.path_cache_entries > 0``).
        self.path_cache: PathCache | None = None
        #: Per-ingress compiled paths, keyed (in_port, decision key);
        #: owned and indexed by :attr:`path_cache`.
        self._path_table: dict = {}

    def attach_control_port(self) -> Port:
        """Add the out-of-band port that connects to the fabric manager."""
        self.control_port = self.add_port()
        return self.control_port

    # ------------------------------------------------------------------
    # Pipeline

    def receive(self, frame: EthernetFrame, in_port: Port) -> None:
        if self.control_port is not None and in_port is self.control_port:
            # Control-network delivery goes straight to the agent.
            self.punt_to_agent(frame, in_port, "control")
            return
        if frame.ethertype == ETHERTYPE_LDP:
            self.punt_to_agent(frame, in_port, "ldp")
            return
        if self.rx_tap is not None:
            self.rx_tap(frame, in_port)

        current = frame
        rewrite = self.rewrite_table.lookup(current, in_port.index)
        if rewrite is not None:
            rewrite.touch(current)
            if any(isinstance(a, _TERMINAL_ACTIONS) for a in rewrite.actions):
                self.apply_actions(current, in_port, rewrite.actions)
                return
            current = self._apply_rewrites(current, rewrite.actions)

        path_cache = self.path_cache
        if path_cache is not None and current.tclass == 0:
            # Compiled cut-through transit: only for class-0 frames
            # entering the fabric from an attached host (switch-to-switch
            # arrivals are mid-path hops of interpreted frames).
            # Prioritized traffic always takes the interpreted path so it
            # meets the real per-port egress queues — cut-through transit
            # never queues, which would erase exactly the head-of-line
            # effect the priority classes exist to control.
            peer = in_port.peer
            if peer is not None and not isinstance(peer.node, FlowSwitch):
                path = path_cache.resolve(self, current, in_port.index)
                if path is not None:
                    path_cache.launch(path, current)
                    return

        entry, actions = self._forwarding_decision(current, in_port.index)
        if entry is None:
            self.miss_drops += 1
            if self.sim.trace.wants("verify.miss"):
                self.sim.trace.emit(self.sim.now, "verify.miss", self.name,
                                    payload=current.payload,
                                    dst=current.dst.value,
                                    ethertype=current.ethertype,
                                    in_port=in_port.index)
            return
        entry.touch(current)
        if self.sim.trace.wants("verify.hop"):
            self.sim.trace.emit(self.sim.now, "verify.hop", self.name,
                                payload=current.payload,
                                dst=current.dst.value,
                                ethertype=current.ethertype,
                                entry=entry.name, in_port=in_port.index)
        self.apply_actions(current, in_port, actions)

    # ------------------------------------------------------------------
    # Forwarding fast path

    def _forwarding_decision(
        self, frame: EthernetFrame, in_index: int,
    ) -> tuple[FlowEntry | None, tuple]:
        """The stage-2 verdict for ``frame``: (matched entry, actions).

        Served from the decision cache when possible; falls back to the
        full LPM walk (and memoises its verdict) otherwise. The cache is
        bypassed entirely while the table holds any match the decision
        key cannot distinguish (``cache_safe`` false) — correctness
        before speed.
        """
        cache = self.decision_cache
        if cache is None or not self.table.cache_safe:
            entry = self.table.lookup(frame, in_index)
            return (entry, entry.actions) if entry is not None else _NO_DECISION
        key = decision_key(frame)
        decision = cache.lookup(key)
        if decision is not None:
            return decision
        entry = self.table.lookup(frame, in_index)
        if entry is None:
            # Misses are not memoised: they occur in convergence windows
            # where the table is about to change under us anyway.
            return _NO_DECISION
        return cache.install(key, entry)

    def flush_decisions(self, reason: str = "explicit") -> None:
        """Drop all cached forwarding decisions (control-plane hook).

        Fans out to the fabric-level path cache: every compiled path
        traversing this switch was derived from the decisions being
        flushed, so it dies with them.
        """
        if self.decision_cache is not None:
            self.decision_cache.invalidate_all(reason)
        if self.path_cache is not None:
            self.path_cache.invalidate_switch(self, reason)

    def _trace_cache_flush(self, reason: str) -> None:
        if self.sim.trace.wants("switch.cache_flush"):
            self.sim.trace.emit(self.sim.now, "switch.cache_flush", self.name,
                                reason=reason)

    def _apply_rewrites(self, frame: EthernetFrame, actions) -> EthernetFrame:
        current = frame
        for action in actions:
            if isinstance(action, SetEthSrc):
                current = current.copy()
                current.src = action.mac
            elif isinstance(action, SetEthDst):
                current = current.copy()
                current.dst = action.mac
        return current

    def inject(self, frame: EthernetFrame, from_port_index: int = -1) -> None:
        """Run a software-generated frame through the forwarding table
        only (used by the agent to source frames into the fabric).

        Punt entries are skipped: the agent has already processed this
        frame, so re-punting it would loop or blackhole.
        """
        entry = self.table.lookup(frame, from_port_index, skip_punts=True)
        if entry is None:
            self.miss_drops += 1
            if self.sim.trace.wants("verify.miss"):
                self.sim.trace.emit(self.sim.now, "verify.miss", self.name,
                                    payload=frame.payload,
                                    dst=frame.dst.value,
                                    ethertype=frame.ethertype,
                                    in_port=from_port_index, injected=True)
            return
        entry.touch(frame)
        if self.sim.trace.wants("verify.hop"):
            self.sim.trace.emit(self.sim.now, "verify.hop", self.name,
                                payload=frame.payload, dst=frame.dst.value,
                                ethertype=frame.ethertype, entry=entry.name,
                                in_port=from_port_index, injected=True)
        # A fake ingress that can never equal a real port index, so
        # OutputMany/flood exclusion works naturally.
        self.apply_actions(frame, _VirtualIngress(from_port_index), entry.actions)

    def send_control(self, frame: EthernetFrame) -> bool:
        """Transmit on the control port."""
        if self.control_port is None:
            return False
        return self.control_port.send(frame)


class _VirtualIngress:
    """Stands in for an ingress port on injected frames."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index
