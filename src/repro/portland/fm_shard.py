"""Sharded fabric manager: scaled-out mechanism, centralized policy.

The paper's fabric manager is one process; production descendants
(VL2's directory service, Jupiter) kept the centralized *policy* but
scaled out the *mechanism*. This module models that split:

* **Shards** (:class:`FmShard`) own the switch control links and a
  pod-aligned slice of the IP→PMAC registry. Each shard is its own
  single-server queue with its own ``fm_service_time_s`` accounting, so
  ARP service capacity scales with the shard count. A switch's *home
  shard* is chosen by its structural pod (parsed from the topology
  name, falling back to round-robin); a host record's *owner shard* is
  chosen by the pod octet of its IP (``10.pod.edge.host``), so for fat
  trees same-pod lookups stay local and only cross-pod queries pay one
  inter-shard hop.
* **The coordinator** (:class:`FmCoordinator`) owns everything that
  needs a global view: pod assignment, the topology view and the
  authoritative fault matrix, multicast trees, and the override
  push. It has no switch links — shards relay its messages — and it
  replicates the fault matrix plus the edge directory to the shards so
  they can fan out ARP floods, broadcasts, and gratuitous ARPs without
  a coordinator round-trip.
* **The cluster facade** (:class:`FmShardCluster`) presents the same
  surface a single :class:`FabricManager` does (``hosts_by_ip``,
  ``view()``, counters, ``restart()``), so the builder, the invariant
  oracle, and the workloads run unchanged against either deployment.

Inter-shard traffic is modeled as internal messages that pay the
control-network propagation delay plus a normal service slot at the
receiving server, and is counted separately (``intershard_messages`` /
``intershard_bytes``) from switch-facing control traffic so fig. 14
comparisons stay apples-to-apples. Partitioning a shard severs this
internal delivery too (see :meth:`FmShardCluster.set_partitioned`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.link import Port
from repro.portland.config import PortlandConfig
from repro.portland.fabric_manager import FabricManager, FmHostRecord
from repro.portland.messages import (
    ArpQuery,
    ArpResponse,
    BroadcastRelay,
    FmMessage,
    IgmpRelay,
    LinkFail,
    LinkRecover,
    McastMiss,
    NeighborReport,
    OverrideReport,
    PodRequest,
    RegisterHost,
)
from repro.sim.simulator import Simulator

#: Structural-pod hint in builder switch names (``edge-p3-s1`` → 3).
_POD_IN_NAME = re.compile(r"-p(\d+)-")

#: Accounting overhead per internal message (type tag + routing header).
_INTERNAL_HEADER = 8


def owner_index_for_ip(ip: IPv4Address, n_shards: int,
                       pod_plan: bool = True) -> int:
    """Registry owner shard for ``ip``.

    With ``pod_plan`` (the fat-tree ``10.pod.edge.host`` layout): the
    pod octet modulo the shard count — a true by-pod partition, so
    same-pod ARP lookups stay on the querier's home shard. Backends
    whose IP plan has no pod structure (``scheme.pod_ip_plan`` False —
    the two-layer design packs every host into pod 0, which would pin
    the whole registry onto shard 0) use a stable FNV-1a hash over all
    four octets instead: balanced, and independent of Python's
    randomized ``hash()``.
    """
    if pod_plan:
        return ((ip.value >> 16) & 0xFF) % n_shards
    h = 0x811C9DC5
    for shift in (24, 16, 8, 0):
        h ^= (ip.value >> shift) & 0xFF
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h % n_shards


def pod_hint_from_name(name: str | None) -> int | None:
    """Structural pod parsed from a builder switch name, if present."""
    if not name:
        return None
    match = _POD_IN_NAME.search(name)
    return int(match.group(1)) if match else None


# ----------------------------------------------------------------------
# Cluster-internal messages (never serialized onto a switch link; their
# wire_length feeds the intershard byte accounting only).


@dataclass(frozen=True)
class _Forwarded:
    """A protocol message relayed from the receiving server to the one
    that owns its state (ARP query → registry owner, report → coordinator)."""

    message: FmMessage

    def wire_length(self) -> int:
        return _INTERNAL_HEADER + self.message.wire_length()


@dataclass(frozen=True)
class _Deliver:
    """Coordinator/shard → home shard: put ``message`` on the control
    link of ``switch_id`` (cluster-internal last hop)."""

    switch_id: int
    message: FmMessage

    def wire_length(self) -> int:
        return _INTERNAL_HEADER + 6 + self.message.wire_length()


@dataclass(frozen=True)
class _Replica:
    """Coordinator → shards: replicated edge directory + fault matrix."""

    edge_ids: tuple[int, ...]
    failed: tuple[frozenset[int], ...]

    def wire_length(self) -> int:
        return _INTERNAL_HEADER + 6 * len(self.edge_ids) + 12 * len(self.failed)


@dataclass(frozen=True)
class _ResyncRequest:
    """Restarted shard → coordinator: re-send me a :class:`_Replica`."""

    shard_index: int

    def wire_length(self) -> int:
        return _INTERNAL_HEADER


_INTERNAL_TYPES = (_Forwarded, _Deliver, _Replica, _ResyncRequest)


# ----------------------------------------------------------------------


class FmShard(FabricManager):
    """One registry shard: owns control links for its home switches and
    the host records whose IPs hash to it."""

    def __init__(self, sim: Simulator, config: PortlandConfig,
                 cluster: "FmShardCluster", index: int) -> None:
        super().__init__(sim, config, name=f"fm-shard-{index}")
        self.cluster = cluster
        self.index = index
        #: Replicated edge directory (coordinator keeps it current).
        self._edge_ids: list[int] = []

    # -- replicated state ---------------------------------------------

    def _edge_switch_ids(self) -> list[int]:
        return list(self._edge_ids)

    # -- routing ------------------------------------------------------

    def send_to_switch(self, switch_id: int, message: FmMessage) -> None:
        if switch_id in self._port_by_switch:
            super().send_to_switch(switch_id, message)
            return
        self.cluster.relay(self, switch_id, message)

    # -- dispatch -----------------------------------------------------

    def _dispatch(self, message) -> None:
        if isinstance(message, _Deliver):
            # Last hop of a cluster-routed send: our switch, our link.
            FabricManager.send_to_switch(self, message.switch_id,
                                         message.message)
            return
        if isinstance(message, _Replica):
            self._edge_ids = list(message.edge_ids)
            self.fault_matrix.clear()
            self.fault_matrix.update(message.failed)
            return
        if isinstance(message, _Forwarded):
            inner = message.message
            if isinstance(inner, ArpQuery):
                self._serve_arp(inner, forwarded=True)
            else:
                # RegisterHost forwarded to us as registry owner.
                FabricManager._dispatch(self, inner)
            return
        if isinstance(message, ArpQuery):
            self._serve_arp(message, forwarded=False)
            return
        if isinstance(message, RegisterHost):
            owner = self.cluster.owner_shard(message.ip)
            if owner is not self:
                self.cluster.forward(self, owner, message)
                return
            self._on_register_host(message)
            return
        if isinstance(message, (PodRequest, NeighborReport, LinkFail,
                                LinkRecover, IgmpRelay, McastMiss,
                                OverrideReport)):
            # Global state lives at the policy coordinator.
            self.cluster.forward(self, self.cluster.coordinator, message)
            return
        if isinstance(message, BroadcastRelay):
            # Served locally from the replicated edge directory.
            self._on_broadcast_relay(message)
            return
        FabricManager._dispatch(self, message)

    def _serve_arp(self, query: ArpQuery, forwarded: bool) -> None:
        if not forwarded:
            # Count each client query once, at its home shard.
            self.arp_queries += 1
        record = self.hosts_by_ip.get(query.target_ip)
        if record is not None:
            self.send_to_switch(query.edge_id, ArpResponse(
                query.request_id, query.target_ip, record.pmac, True))
            return
        owner = self.cluster.owner_shard(query.target_ip)
        if owner is not self and not forwarded:
            self.cluster.forward(self, owner, query)
            return
        # We are the owner (or the query was already forwarded here) and
        # have no record: genuine miss.
        self._arp_miss(query)

    # -- registration -------------------------------------------------

    def _on_register_host(self, reg: RegisterHost) -> None:
        # ACL rules live at the coordinator, not on this shard, so the
        # base class's policy hook never fires here — notify the cluster
        # instead so the coordinator can re-materialise any rule that
        # touches the (re-)registered host.
        existing = self.hosts_by_ip.get(reg.ip)
        super()._on_register_host(reg)
        self.cluster.repush_policies(reg, existing)

    # -- restart ------------------------------------------------------

    def restart(self) -> None:
        self._edge_ids = []
        super().restart()
        self.cluster.request_resync(self)


class FmCoordinator(FabricManager):
    """The policy brain: topology view, fault matrix, pod assignment,
    multicast, and the (batched, incremental) override push. No switch
    links — every switch-bound message is relayed through home shards."""

    def __init__(self, sim: Simulator, config: PortlandConfig,
                 cluster: "FmShardCluster", scheme=None) -> None:
        super().__init__(sim, config, name="fm-coordinator", scheme=scheme)
        self.cluster = cluster
        self._last_replica: tuple | None = None

    def send_to_switch(self, switch_id: int, message: FmMessage) -> None:
        self.cluster.relay(self, switch_id, message)

    def _policy_record(self, ip: IPv4Address):
        # Host records live on the shards; the coordinator resolves
        # policy endpoints against the registry's owner shard.
        return self.cluster.owner_shard(ip).hosts_by_ip.get(ip)

    def _dispatch(self, message) -> None:
        if isinstance(message, _ResyncRequest):
            self._replicate(force=True)
            return
        if isinstance(message, _Forwarded):
            message = message.message
        FabricManager._dispatch(self, message)
        # View/fault changes must reach the shards' replicas.
        if isinstance(message, (NeighborReport, LinkFail, LinkRecover)):
            self._replicate()

    def _replicate(self, force: bool = False) -> None:
        edge_ids = tuple(self._edge_switch_ids())
        failed = tuple(sorted(self.fault_matrix, key=sorted))
        snapshot = (edge_ids, failed)
        if not force and snapshot == self._last_replica:
            return
        self._last_replica = snapshot
        replica = _Replica(edge_ids, failed)
        for shard in self.cluster.shards:
            self.cluster.forward(self, shard, replica)

    def restart(self) -> None:
        self._last_replica = None
        super().restart()


class FmShardCluster:
    """Facade over the shards + coordinator, presenting the single-FM
    surface the rest of the system expects."""

    def __init__(self, sim: Simulator, config: PortlandConfig,
                 scheme=None) -> None:
        self.sim = sim
        self.config = config
        self.name = "fm-cluster"
        #: Whether the backend's IP plan carries pod structure in the
        #: second octet (fat trees do; see :func:`owner_index_for_ip`).
        self.pod_ip_plan = scheme is None or getattr(
            scheme, "pod_ip_plan", True)
        n = max(1, config.fm_shards)
        self.coordinator = FmCoordinator(sim, config, self, scheme=scheme)
        self.shards = [FmShard(sim, config, self, i) for i in range(n)]
        self._home_by_switch: dict[int, FmShard] = {}
        self._next_rr = 0
        self._partitioned: set[FabricManager] = set()
        self.intershard_messages = 0
        self.intershard_bytes = 0
        self.intershard_dropped = 0

    # -- construction-time wiring -------------------------------------

    def attach_switch(self, switch_id: int, name: str | None = None) -> Port:
        pod = pod_hint_from_name(name)
        if pod is not None:
            shard = self.shards[pod % len(self.shards)]
        else:
            shard = self.shards[self._next_rr % len(self.shards)]
            self._next_rr += 1
        self._home_by_switch[switch_id] = shard
        return shard.attach_switch(switch_id)

    def mac_for(self, switch_id: int) -> MacAddress:
        return self._home_by_switch[switch_id].mac

    @property
    def mac(self) -> MacAddress:
        # Only meaningful per home shard; kept for surface compatibility.
        return self.shards[0].mac

    def home_index(self, switch_id: int) -> int | None:
        shard = self._home_by_switch.get(switch_id)
        return shard.index if shard is not None else None

    # -- cluster message plane ----------------------------------------

    @property
    def servers(self) -> list[FabricManager]:
        return [self.coordinator, *self.shards]

    def owner_shard(self, ip: IPv4Address) -> FmShard:
        return self.shards[owner_index_for_ip(ip, len(self.shards),
                                              self.pod_ip_plan)]

    def forward(self, sender: FabricManager, target: FabricManager,
                message) -> None:
        """Ship one internal message ``sender`` → ``target``: one
        control-propagation delay, then a service slot at the target."""
        if sender in self._partitioned or target in self._partitioned:
            self.intershard_dropped += 1
            return
        if not isinstance(message, _INTERNAL_TYPES):
            message = _Forwarded(message)
        self.intershard_messages += 1
        self.intershard_bytes += message.wire_length()
        self.sim.schedule(self.config.control_delay_s,
                          target.enqueue_internal, message)

    def relay(self, sender: FabricManager, switch_id: int,
              message: FmMessage) -> None:
        """Route a switch-bound message through its home shard."""
        home = self._home_by_switch.get(switch_id)
        if home is None or home is sender:
            return  # unknown switch, or its link is gone: drop
        self.forward(sender, home, _Deliver(switch_id, message))

    def request_resync(self, shard: FmShard) -> None:
        self.forward(shard, self.coordinator, _ResyncRequest(shard.index))

    def set_partitioned(self, server: FabricManager, partitioned: bool) -> None:
        """Sever (or heal) a server's cluster-internal delivery — the
        campaign pairs this with failing its control links."""
        if partitioned:
            self._partitioned.add(server)
            return
        self._partitioned.discard(server)
        if isinstance(server, FmShard):
            # Healed shards re-pull the replicated directory.
            self.request_resync(server)

    # -- single-FM facade ---------------------------------------------

    @property
    def hosts_by_ip(self) -> dict[IPv4Address, FmHostRecord]:
        merged: dict[IPv4Address, FmHostRecord] = {}
        for shard in self.shards:
            merged.update(shard.hosts_by_ip)
        return merged

    @property
    def policy(self):
        """Edge-ACL policy — centralized at the coordinator (operator
        intent, like pod assignment), surviving cluster restarts."""
        return self.coordinator.policy

    def install_acl(self, src_ip, dst_ip):
        """Block a pair; the coordinator's push relays through the
        source edge's home shard like any switch-bound message."""
        return self.coordinator.install_acl(src_ip, dst_ip)

    def revoke_acl(self, src_ip, dst_ip) -> None:
        self.coordinator.revoke_acl(src_ip, dst_ip)

    def repush_policies(self, reg: RegisterHost,
                        existing: FmHostRecord | None) -> None:
        """A shard (re-)registered a host: re-materialise any rules
        touching it from the coordinator's table (covers registration
        before the rule's other endpoint was known, re-registration
        after restarts, and VM migration edge moves)."""
        if self.coordinator.policy:
            self.coordinator._repush_policies(reg, existing)

    @property
    def switches(self):
        return self.coordinator.switches

    @property
    def fault_matrix(self):
        return self.coordinator.fault_matrix

    @property
    def multicast(self):
        return self.coordinator.multicast

    @property
    def _sent_overrides(self):
        return self.coordinator._sent_overrides

    def view(self):
        return self.coordinator.view()

    def restart(self) -> None:
        """Fail over the whole cluster (every server loses its state)."""
        for server in self.servers:
            server.restart()

    def utilization(self, elapsed: float) -> float:
        """Busiest single server — the cluster's bottleneck CPU."""
        if elapsed <= 0:
            return 0.0
        return max(server.utilization(elapsed) for server in self.servers)

    def utilizations(self, elapsed: float) -> dict[str, float]:
        return {server.name: server.utilization(elapsed)
                for server in self.servers}

    def _summed(self, attr: str) -> int | float:
        return sum(getattr(server, attr) for server in self.servers)

    @property
    def messages_received(self):
        return self._summed("messages_received")

    @property
    def bytes_received(self):
        return self._summed("bytes_received")

    @property
    def messages_sent(self):
        return self._summed("messages_sent")

    @property
    def bytes_sent(self):
        return self._summed("bytes_sent")

    @property
    def arp_queries(self):
        return self._summed("arp_queries")

    @property
    def arp_misses(self):
        return self._summed("arp_misses")

    @property
    def busy_time(self):
        return self._summed("busy_time")

    @property
    def restarts(self):
        return self._summed("restarts")

    @property
    def override_updates_sent(self):
        return self.coordinator.override_updates_sent

    @property
    def override_clears_sent(self):
        return self.coordinator.override_clears_sent

    @property
    def override_recomputes(self):
        return self.coordinator.override_recomputes

    @property
    def override_batches(self):
        return self.coordinator.override_batches

    @property
    def override_edges_examined(self):
        return self.coordinator.override_edges_examined
