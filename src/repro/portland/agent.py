"""The PortLand switch agent — the software half of every switch.

One agent class serves all three levels; the level discovered by LDP
selects which behaviours activate:

* **Edge**: host discovery and PMAC allocation, AMAC↔PMAC rewrite
  entries, proxy-ARP interception (queries to the fabric manager), IGMP
  relay, reactive multicast setup, migration traps, and the default-up
  ECMP route.
* **Aggregation**: per-position down routes, the own-pod loop guard,
  core-facing ECMP, position arbitration (inside LDP).
* **Core**: per-pod down routes.

All levels report their neighbours to the fabric manager, report link
failures/recoveries detected by LDP (or carrier), and apply prescriptive
:class:`FaultUpdate` overrides pushed by the fabric manager.
"""

from __future__ import annotations

from repro.net.addresses import BROADCAST_MAC, ZERO_MAC, IPv4Address, MacAddress
from repro.net.arp import ARP_REQUEST, ArpPacket
from repro.net.ethernet import ETHERTYPE_ARP, ETHERTYPE_FABRIC, EthernetFrame
from repro.net.igmp import IgmpMessage
from repro.net.ipv4 import IPv4Packet
from repro.net.link import Port
from repro.net.packet import Packet, coerce
from repro.portland import forwarding as fwd
from repro.portland.config import PortlandConfig
from repro.portland.ldp import LdpProcess, NeighborInfo
from repro.portland.messages import (
    ArpFlood,
    BroadcastRelay,
    ArpQuery,
    ArpResponse,
    DisableLink,
    EnableLink,
    FaultClear,
    FaultUpdate,
    FmMessage,
    GratuitousArp,
    IgmpRelay,
    Invalidate,
    LinkFail,
    LinkRecover,
    McastInstall,
    McastMiss,
    McastRemove,
    NeighborReport,
    OverrideReport,
    PodReply,
    PodRequest,
    PolicyInstall,
    PolicyRevoke,
    RegisterHost,
    SwitchLevel,
    decode_fabric,
)
from repro.portland.pmac import Pmac, PmacAllocator
from repro.portland.switch import PortlandSwitch
from repro.sim.process import PeriodicTask, Timer
from repro.switching.switch import SwitchAgent


class HostRecord:
    """A host attached to one edge port."""

    __slots__ = ("amac", "ip", "pmac", "port", "registered")

    def __init__(self, amac: MacAddress, port: int, pmac: Pmac) -> None:
        self.amac = amac
        self.ip: IPv4Address | None = None
        self.pmac = pmac
        self.port = port
        self.registered = False


class PortlandAgent(SwitchAgent):
    """Control software for one PortLand switch."""

    def __init__(self, switch: PortlandSwitch, config: PortlandConfig,
                 scheme=None) -> None:
        super().__init__(switch)
        self.switch: PortlandSwitch = switch
        self.config = config
        #: Topology scheme (None = built-in fat-tree behavior). When the
        #: scheme resolves routes itself, ``_refresh_entries`` installs
        #: its ``route:`` entry set instead of the up*-down* entries.
        self.scheme = scheme
        self.ldp = LdpProcess(switch, config, self)
        self.fm_mac: MacAddress | None = None

        # Edge state.
        self.allocator: PmacAllocator | None = None
        self.hosts_by_amac: dict[MacAddress, HostRecord] = {}
        self.hosts_by_pmac: dict[MacAddress, HostRecord] = {}
        self._pending_arp: dict[int, tuple[int, MacAddress, IPv4Address]] = {}
        self._next_request_id = 1
        self._traps: dict[MacAddress, tuple[IPv4Address, MacAddress]] = {}
        self._trap_last_garp: dict[tuple[MacAddress, MacAddress], float] = {}
        self._mcast_last_miss: dict[IPv4Address, float] = {}
        # Cached multicast membership (port, group) -> set of host IPs,
        # re-relayed on every soft-state refresh so a restarted fabric
        # manager can rebuild its group state.
        self._igmp_state: dict[tuple[int, IPv4Address], set[IPv4Address]] = {}

        # Fault overrides pushed by the FM: (prefix_value, len) -> avoid ids.
        self._fault_overrides: dict[tuple[int, int], tuple[int, ...]] = {}
        # Neighbours the FM has told us not to use (covers unidirectional
        # failures our own keepalives cannot see).
        self.fm_blocked_neighbors: set[int] = set()
        # Ports whose failure we already reported (to pair with recovery).
        self._reported_failed: dict[int, int] = {}  # port -> neighbor id

        self._report_timer = Timer(self.sim, self._send_neighbor_report)
        self._refresh_task = PeriodicTask(
            self.sim, config.soft_state_refresh_s, self._soft_state_refresh,
            jitter=0.2, rng_name=f"refresh/{switch.name}")
        self._base_installed = False

        # Measurement counters.
        self.arp_queries = 0
        self.control_messages_sent = 0
        self.control_bytes_sent = 0

    # ------------------------------------------------------------------
    # Identity helpers

    @property
    def switch_id(self) -> int:
        """48-bit switch identifier (its management MAC)."""
        return self.ldp.switch_id

    @property
    def level(self) -> SwitchLevel:
        """Discovered tree level."""
        return self.ldp.level

    def start(self) -> None:
        """Bring the agent up (begins LDP)."""
        self.ldp.start()

    # ------------------------------------------------------------------
    # Packet-in dispatch

    def on_packet_in(self, frame: EthernetFrame, in_port: Port, reason: str) -> None:
        if reason == "ldp":
            self.ldp.on_frame(frame, in_port)
        elif reason == "control":
            self._handle_fm_frame(frame)
        elif reason == "arp":
            self._handle_arp(frame, in_port)
        elif reason == "new-host":
            self._handle_new_host(frame, in_port)
        elif reason == "igmp":
            self._handle_igmp(frame, in_port)
        elif reason == "mcast-miss":
            self._handle_mcast_miss(frame, in_port)
        elif reason == "migrated":
            self._handle_trap(frame)

    def on_port_down(self, port: Port) -> None:
        if self.switch.control_port is not None and port is self.switch.control_port:
            return
        if port.index in self.ldp.host_ports:
            self._host_port_down(port.index)
            return
        self.ldp.on_carrier_down(port)

    def on_port_up(self, port: Port) -> None:
        """Carrier detected on a port.

        Switch neighbours re-announce themselves via LDMs automatically.
        On an edge switch a port that stays LDP-silent after carrier-up is
        a *new host port* (e.g. a migrated VM plugging in): after a grace
        period it is adopted and given a new-host trap entry.
        """
        if (self.level is SwitchLevel.EDGE
                and port.index not in self.ldp.host_ports
                and port.index not in self.ldp.neighbors):
            grace = self.config.edge_detect_periods * self.config.ldm_period_s
            self.sim.schedule(grace, self._adopt_host_port, port.index)

    def _adopt_host_port(self, port_index: int) -> None:
        if (self.level is not SwitchLevel.EDGE
                or port_index in self.ldp.host_ports
                or port_index in self.ldp.neighbors):
            return
        port = self.switch.ports[port_index]
        if port.link is None or not port.is_up:
            return
        self.ldp.host_ports.add(port_index)
        if self._base_installed:
            self.switch.rewrite_table.remove_by_name(f"new-host:{port_index}")
            self.switch.rewrite_table.install(
                fwd.Match(in_port=port_index),
                (fwd.ToAgent("new-host"),),
                fwd.REWRITE_PRIO_NEW_HOST,
                f"new-host:{port_index}",
            )

    # ------------------------------------------------------------------
    # Control-channel plumbing

    def send_to_fm(self, message: FmMessage) -> None:
        """Ship one message to the fabric manager on the control port."""
        if self.fm_mac is None:
            return
        frame = EthernetFrame(self.fm_mac, self.ldp.switch_mac,
                              ETHERTYPE_FABRIC, message)
        self.control_messages_sent += 1
        self.control_bytes_sent += frame.wire_length()
        self.switch.send_control(frame)

    def _handle_fm_frame(self, frame: EthernetFrame) -> None:
        payload = frame.payload
        if isinstance(payload, (bytes, bytearray)):
            message = decode_fabric(bytes(payload))
        else:
            message = payload
        if isinstance(message, PodReply):
            self.ldp.set_pod(message.pod)
        elif isinstance(message, ArpResponse):
            self._handle_arp_response(message)
        elif isinstance(message, ArpFlood):
            self._handle_arp_flood(message)
        elif isinstance(message, FaultUpdate):
            key = (message.prefix.value, message.prefix_len)
            self._fault_overrides[key] = message.avoid_neighbor_ids
            self._install_fault_entry(key)
            # The table-change listener already flushed; this explicit
            # flush also covers a FaultUpdate that re-prescribes the
            # entry the switch already has installed.
            self.switch.flush_decisions("fault-update")
        elif isinstance(message, FaultClear):
            key = (message.prefix.value, message.prefix_len)
            self._fault_overrides.pop(key, None)
            self.switch.table.remove_by_name(
                f"fault:{MacAddress(key[0])}/{key[1]}")
            self.switch.flush_decisions("fault-clear")
        elif isinstance(message, McastInstall):
            entry = fwd.mcast_group(message.group_mac, message.ports)
            self.switch.table.remove_by_name(entry[3])
            self.switch.table.install(entry[0], entry[1], entry[2], entry[3])
        elif isinstance(message, McastRemove):
            self.switch.table.remove_by_name(f"mcast:{message.group_mac}")
        elif isinstance(message, Invalidate):
            self._install_trap(message)
        elif isinstance(message, GratuitousArp):
            self._emit_gratuitous(message.ip, message.pmac)
        elif isinstance(message, DisableLink):
            self.fm_blocked_neighbors.add(message.neighbor_id)
            self._refresh_entries()
            # ECMP memberships just changed shape: retire any decision
            # that could still steer a flow into the disabled link even
            # if _refresh_entries produced a byte-identical table.
            self.switch.flush_decisions("link-disable")
        elif isinstance(message, EnableLink):
            self.fm_blocked_neighbors.discard(message.neighbor_id)
            self._refresh_entries()
            self.switch.flush_decisions("link-enable")
        elif isinstance(message, BroadcastRelay):
            self._emit_relayed_broadcast(message)
        elif isinstance(message, PolicyInstall):
            self._install(fwd.acl_drop(message.port, message.dst_pmac,
                                       str(message.src_ip),
                                       str(message.dst_ip)))
            # The table listener flushed, but a re-push that reproduces
            # the installed entry byte-identically must still retire any
            # cached verdict predating the ACL.
            self.switch.flush_decisions("acl-install")
        elif isinstance(message, PolicyRevoke):
            self.switch.table.remove_by_name(
                f"acl:{message.src_ip}->{message.dst_ip}")
            self.switch.flush_decisions("acl-revoke")

    # ------------------------------------------------------------------
    # LDP listener callbacks

    def on_location_complete(self) -> None:
        self._install_base_entries()
        self._schedule_report()
        self._refresh_task.start()

    def on_neighbor_changed(self, port_index: int) -> None:
        if self._reported_failed.pop(port_index, None) is not None:
            info = self.ldp.neighbors.get(port_index)
            if info is not None:
                self.send_to_fm(LinkRecover(self.switch_id, port_index,
                                            info.switch_id))
        self._refresh_entries()
        self._schedule_report()

    def on_neighbor_lost(self, port_index: int, info: NeighborInfo) -> None:
        self._reported_failed[port_index] = info.switch_id
        self.send_to_fm(LinkFail(self.switch_id, port_index, info.switch_id))
        self._refresh_entries()
        # Same rationale as Disable/EnableLink: a lost neighbour can
        # leave the refreshed table byte-identical (e.g. a core whose
        # per-pod entry survives on another link), yet decisions and
        # compiled paths made while it was alive must not outlive it.
        self.switch.flush_decisions("neighbor-lost")

    def request_pod(self) -> None:
        self.send_to_fm(PodRequest(self.switch_id))

    # ------------------------------------------------------------------
    # Entry installation

    def _install(self, spec: tuple) -> None:
        match, actions, priority, name = spec
        self.switch.table.remove_by_name(name)
        self.switch.table.install(match, actions, priority, name)

    def _install_base_entries(self) -> None:
        if self._base_installed:
            return
        self._base_installed = True
        level = self.level
        if level is SwitchLevel.EDGE:
            assert self.ldp.pod is not None and self.ldp.position is not None
            self.allocator = PmacAllocator(self.ldp.pod, self.ldp.position)
            self._install(fwd.arp_intercept())
            self._install(fwd.igmp_intercept())
            self._install(fwd.mcast_miss())
            self._install(fwd.own_prefix_drop(self.ldp.pod, self.ldp.position))
            for port_index in self.ldp.host_ports:
                self.switch.rewrite_table.install(
                    fwd.Match(in_port=port_index),
                    (fwd.ToAgent("new-host"),),
                    fwd.REWRITE_PRIO_NEW_HOST,
                    f"new-host:{port_index}",
                )
        elif level is SwitchLevel.AGGREGATION:
            assert self.ldp.pod is not None
            self._install(fwd.own_pod_drop(self.ldp.pod))
        self._refresh_entries()

    def _refresh_entries(self) -> None:
        """Recompute topology-dependent entries (idempotent)."""
        if not self._base_installed:
            return
        if self.scheme is not None:
            specs = self.scheme.route_entries(self)
            if specs is not None:
                self._refresh_route_entries(specs)
                return
        level = self.level
        if level in (SwitchLevel.EDGE, SwitchLevel.AGGREGATION):
            up = tuple(self._usable_up_ports())
            if up:
                self._install(fwd.default_up(up))
            else:
                self.switch.table.remove_by_name("default-up")
            for key in self._fault_overrides:
                self._install_fault_entry(key)
        if level is SwitchLevel.AGGREGATION:
            self._refresh_agg_down_entries()
        elif level is SwitchLevel.CORE:
            self._refresh_core_pod_entries()

    def _refresh_route_entries(self, specs: list[tuple]) -> None:
        """Install a scheme-resolved ``route:`` entry set (idempotent),
        keeping any prescriptive fault overrides layered above it."""
        wanted = {spec[3]: spec for spec in specs}
        self.switch.table.remove_where(
            lambda e: e.name.startswith("route:") and e.name not in wanted)
        for spec in wanted.values():
            self._install(spec)
        for key in self._fault_overrides:
            self._install_fault_entry(key)

    def _usable_up_ports(self) -> list[int]:
        """Uplink ports minus any the fabric manager has blocked."""
        return [index for index in self.ldp.up_ports()
                if self.ldp.neighbors[index].switch_id
                not in self.fm_blocked_neighbors]

    def _refresh_agg_down_entries(self) -> None:
        assert self.ldp.pod is not None
        wanted: dict[str, tuple] = {}
        for index, info in self.ldp.neighbors.items():
            if info.switch_id in self.fm_blocked_neighbors:
                continue
            if info.level is SwitchLevel.EDGE and info.position is not None:
                spec = fwd.down_to_position(self.ldp.pod, info.position, index)
                wanted[spec[3]] = spec
        self.switch.table.remove_where(
            lambda e: e.name.startswith("down:") and e.name not in wanted)
        for spec in wanted.values():
            self._install(spec)

    def _refresh_core_pod_entries(self) -> None:
        pods: dict[int, list[int]] = {}
        for index, info in self.ldp.neighbors.items():
            if info.switch_id in self.fm_blocked_neighbors:
                continue
            if info.level is SwitchLevel.AGGREGATION and info.pod is not None:
                pods.setdefault(info.pod, []).append(index)
        wanted = {f"pod:{pod}": fwd.down_to_pod(pod, tuple(sorted(ports)))
                  for pod, ports in pods.items()}
        self.switch.table.remove_where(
            lambda e: e.name.startswith("pod:") and e.name not in wanted)
        for spec in wanted.values():
            self._install(spec)

    def _install_fault_entry(self, key: tuple[int, int]) -> None:
        avoid = set(self._fault_overrides.get(key, ()))
        candidates = None
        if self.scheme is not None:
            candidates = self.scheme.override_candidate_ports(self)
        if candidates is None:
            candidates = self._usable_up_ports()
        ports = tuple(
            index for index in candidates
            if self.ldp.neighbors[index].switch_id not in avoid
        )
        prefix = MacAddress(key[0])
        self._install(fwd.fault_override(prefix, key[1], ports))

    # ------------------------------------------------------------------
    # Neighbor reporting

    def _schedule_report(self) -> None:
        if not self._report_timer.armed:
            self._report_timer.start(self.config.report_debounce_s)

    def _send_neighbor_report(self) -> None:
        if self.level is SwitchLevel.UNKNOWN:
            return
        from repro.portland.messages import NO_POD, NO_POSITION

        neighbors = tuple(
            (index, info.switch_id, info.level)
            for index, info in sorted(self.ldp.neighbors.items())
        )
        self.send_to_fm(NeighborReport(
            switch_id=self.switch_id,
            level=self.level,
            pod=self.ldp.pod if self.ldp.pod is not None else NO_POD,
            position=(self.ldp.position if self.ldp.position is not None
                      else NO_POSITION),
            neighbors=neighbors,
        ))

    def _soft_state_refresh(self) -> None:
        """Re-announce everything the fabric manager holds as soft state.

        The paper's fabric manager keeps *only* soft state so a restarted
        (or failed-over) instance rebuilds its registries from these
        periodic refreshes: topology, host bindings, multicast
        membership, and still-outstanding link failures.
        """
        self._send_neighbor_report()
        for record in self.hosts_by_amac.values():
            if record.registered and record.ip is not None:
                self.send_to_fm(RegisterHost(self.switch_id, record.port,
                                             record.amac, record.ip,
                                             record.pmac.to_mac()))
        for (port, group), members in self._igmp_state.items():
            for host_ip in members:
                self.send_to_fm(IgmpRelay(self.switch_id, port, group,
                                          True, host_ip))
        for port_index, neighbor_id in self._reported_failed.items():
            self.send_to_fm(LinkFail(self.switch_id, port_index, neighbor_id))
        if self._fault_overrides:
            # Overrides are the one piece of FM-*originated* state we
            # hold; reporting them lets a restarted manager retract
            # entries whose fault cleared while it was down. Sent after
            # the LinkFail re-reports above so the manager rebuilds its
            # fault matrix before reconciling.
            self.send_to_fm(OverrideReport(
                self.switch_id, tuple(sorted(self._fault_overrides))))

    # ------------------------------------------------------------------
    # Edge: host discovery and registration

    def _handle_new_host(self, frame: EthernetFrame, in_port: Port) -> None:
        if self.allocator is None or in_port.index not in self.ldp.host_ports:
            return
        amac = frame.src
        record = self.hosts_by_amac.get(amac)
        if record is None:
            pmac = self.allocator.allocate(in_port.index)
            record = HostRecord(amac, in_port.index, pmac)
            self.hosts_by_amac[amac] = record
            self.hosts_by_pmac[pmac.to_mac()] = record
            self._install_host_entries(record)
            self.sim.trace.emit(self.sim.now, "portland.host_discovered",
                                self.switch.name, amac=str(amac),
                                pmac=str(pmac), port=in_port.index)
        self._learn_host_ip(record, frame)
        # Reprocess the triggering frame now that entries exist.
        if frame.ethertype == ETHERTYPE_ARP:
            self._handle_arp(frame, in_port)
        else:
            rewritten = frame.copy()
            rewritten.src = record.pmac.to_mac()
            self.switch.inject(rewritten, from_port_index=in_port.index)

    def _install_host_entries(self, record: HostRecord) -> None:
        pmac_mac = record.pmac.to_mac()
        self.switch.rewrite_table.install(
            fwd.Match(in_port=record.port, eth_src=record.amac),
            (fwd.SetEthSrc(pmac_mac),),
            fwd.REWRITE_PRIO_HOST,
            f"ingress:{record.amac}",
        )
        self._install(fwd.host_egress(pmac_mac, record.amac, record.port))
        # A returning/migrated host supersedes any trap for its PMAC.
        self._remove_trap(pmac_mac)

    def _learn_host_ip(self, record: HostRecord, frame: EthernetFrame) -> None:
        ip: IPv4Address | None = None
        if frame.ethertype == ETHERTYPE_ARP:
            arp = coerce(frame.payload, ArpPacket)
            if arp.sender_ip.value != 0:
                ip = arp.sender_ip
        elif frame.payload is not None:
            try:
                ip = coerce(frame.payload, IPv4Packet).src
            except Exception:
                ip = None
        if ip is None:
            return
        if record.ip != ip or not record.registered:
            record.ip = ip
            record.registered = True
            self.send_to_fm(RegisterHost(self.switch_id, record.port,
                                         record.amac, ip,
                                         record.pmac.to_mac()))

    def _host_port_down(self, port_index: int) -> None:
        gone = [r for r in self.hosts_by_amac.values() if r.port == port_index]
        for record in gone:
            pmac_mac = record.pmac.to_mac()
            del self.hosts_by_amac[record.amac]
            self.hosts_by_pmac.pop(pmac_mac, None)
            self.switch.rewrite_table.remove_by_name(f"ingress:{record.amac}")
            self.switch.table.remove_by_name(f"host:{pmac_mac}")
            if self.allocator is not None:
                self.allocator.release(record.pmac)

    # ------------------------------------------------------------------
    # Edge: ARP proxying

    def _handle_arp(self, frame: EthernetFrame, in_port: Port) -> None:
        if self.allocator is None:
            return
        arp = coerce(frame.payload, ArpPacket)
        if in_port.index in self.ldp.host_ports:
            self._handle_host_arp(frame, arp, in_port)
        else:
            self._handle_fabric_arp(frame, arp)

    def _handle_host_arp(self, frame: EthernetFrame, arp: ArpPacket,
                         in_port: Port) -> None:
        record = self._record_for(frame, arp, in_port)
        if record is None:
            return
        if arp.is_gratuitous:
            # Host announcement (e.g. a VM that just arrived): the
            # registration in _record_for is all that is needed.
            return
        if arp.op == ARP_REQUEST:
            request_id = self._next_request_id
            self._next_request_id += 1
            self._pending_arp[request_id] = (in_port.index, record.amac,
                                             arp.sender_ip)
            self.arp_queries += 1
            self.send_to_fm(ArpQuery(request_id, self.switch_id,
                                     arp.sender_ip, record.pmac.to_mac(),
                                     arp.target_ip))
        else:
            # Solicited reply from a local host (answering an ArpFlood):
            # rewrite the payload's AMAC to the PMAC, route to requester.
            reply = ArpPacket.reply(record.pmac.to_mac(), arp.sender_ip,
                                    arp.target_mac, arp.target_ip)
            out = EthernetFrame(arp.target_mac, record.pmac.to_mac(),
                                ETHERTYPE_ARP, reply)
            self.switch.inject(out, from_port_index=in_port.index)

    def _record_for(self, frame: EthernetFrame, arp: ArpPacket,
                    in_port: Port) -> HostRecord | None:
        """Host record for an ARP frame arriving on a host port,
        discovering/registering the host as a side effect."""
        record = self.hosts_by_amac.get(frame.src)
        if record is None:
            record = self.hosts_by_pmac.get(frame.src)
        if record is None:
            self._handle_new_host(frame, in_port)
            return None  # _handle_new_host re-dispatches the ARP
        self._learn_host_ip(record, frame)
        return record

    def _handle_fabric_arp(self, frame: EthernetFrame, arp: ArpPacket) -> None:
        """ARP arriving from the fabric: unicast replies (or trap GARPs)
        addressed to one of our hosts' PMACs."""
        record = self.hosts_by_pmac.get(frame.dst)
        if record is None:
            return
        delivered = frame.copy()
        delivered.dst = record.amac
        self.switch.ports[record.port].send(delivered)

    def _handle_arp_response(self, message: ArpResponse) -> None:
        pending = self._pending_arp.pop(message.request_id, None)
        if pending is None or not message.found:
            return
        port_index, amac, requester_ip = pending
        reply = ArpPacket.reply(message.pmac, message.target_ip, amac,
                                requester_ip)
        frame = EthernetFrame(amac, message.pmac, ETHERTYPE_ARP, reply)
        self.switch.ports[port_index].send(frame)

    def _handle_arp_flood(self, message: ArpFlood) -> None:
        # The fabric manager's flood fan-out includes the querying edge
        # on purpose: edges proxy ARP requests instead of flooding them
        # locally (_handle_host_arp only sends an ArpQuery), so hosts
        # sharing the requester's edge hear the request *only* through
        # this path. Duplicate-suppression is per port — the requester
        # itself must not receive its own request back.
        if self.allocator is None:
            return
        skip_port: int | None = None
        record = self.hosts_by_pmac.get(message.requester_pmac)
        if record is not None:
            # The requester is one of ours: skip its port directly.
            skip_port = record.port
        else:
            try:
                requester = Pmac.from_mac(message.requester_pmac)
                if (requester.pod == self.ldp.pod
                        and requester.position == self.ldp.position):
                    skip_port = requester.port
            except Exception:
                skip_port = None
        request = ArpPacket(ARP_REQUEST, message.requester_pmac,
                            message.requester_ip, ZERO_MAC, message.target_ip)
        for port_index in self.ldp.host_ports:
            if port_index == skip_port:
                continue
            self.switch.ports[port_index].send(
                EthernetFrame(BROADCAST_MAC, message.requester_pmac,
                              ETHERTYPE_ARP, request))

    # ------------------------------------------------------------------
    # Edge: multicast

    def _handle_igmp(self, frame: EthernetFrame, in_port: Port) -> None:
        if in_port.index not in self.ldp.host_ports:
            return
        packet = coerce(frame.payload, IPv4Packet)
        igmp = coerce(packet.payload, IgmpMessage)
        members = self._igmp_state.setdefault((in_port.index, igmp.group), set())
        if igmp.is_join:
            members.add(packet.src)
        else:
            members.discard(packet.src)
            if not members:
                del self._igmp_state[(in_port.index, igmp.group)]
        self.send_to_fm(IgmpRelay(self.switch_id, in_port.index, igmp.group,
                                  igmp.is_join, packet.src))

    def _handle_mcast_miss(self, frame: EthernetFrame, in_port: Port) -> None:
        if frame.ethertype == ETHERTYPE_ARP or frame.payload is None:
            return
        try:
            packet = coerce(frame.payload, IPv4Packet)
        except Exception:
            return
        group = packet.dst
        if group.is_limited_broadcast:
            self._relay_broadcast(frame, in_port)
            return
        if not group.is_multicast:
            return
        last = self._mcast_last_miss.get(group, -1.0)
        if self.sim.now - last < 0.050:
            return
        self._mcast_last_miss[group] = self.sim.now
        self.send_to_fm(McastMiss(self.switch_id, group))

    # ------------------------------------------------------------------
    # Edge: non-ARP broadcast (relayed through the fabric manager)

    def _relay_broadcast(self, frame: EthernetFrame, in_port: Port) -> None:
        """A host sent a limited broadcast (e.g. DHCP): deliver locally
        and tunnel it through the fabric manager for fabric-wide
        delivery — the fabric itself never floods."""
        if in_port.index not in self.ldp.host_ports:
            return
        for port_index in self.ldp.host_ports:
            if port_index != in_port.index:
                self.switch.ports[port_index].send(frame.copy())
        from repro.net.packet import encode_payload

        self.send_to_fm(BroadcastRelay(self.switch_id, frame.src,
                                       frame.ethertype,
                                       encode_payload(frame.payload)))

    def _emit_relayed_broadcast(self, relay: BroadcastRelay) -> None:
        if self.allocator is None:
            return
        frame = EthernetFrame(BROADCAST_MAC, relay.src_pmac,
                              relay.ethertype, relay.payload)
        for port_index in self.ldp.host_ports:
            self.switch.ports[port_index].send(frame.copy())

    # ------------------------------------------------------------------
    # Edge: VM migration support

    def _install_trap(self, message: Invalidate) -> None:
        old = message.old_pmac
        record = self.hosts_by_pmac.pop(old, None)
        if record is not None:
            self.hosts_by_amac.pop(record.amac, None)
            self.switch.rewrite_table.remove_by_name(f"ingress:{record.amac}")
            self.switch.table.remove_by_name(f"host:{old}")
            if self.allocator is not None:
                self.allocator.release(record.pmac)
        self._traps[old] = (message.ip, message.new_pmac)
        spec = fwd.migration_trap(old)
        self.switch.table.remove_by_name(spec[3])
        self.switch.table.install(spec[0], spec[1], spec[2], spec[3])

    def _remove_trap(self, pmac_mac: MacAddress) -> None:
        if self._traps.pop(pmac_mac, None) is not None:
            self.switch.table.remove_by_name(f"trap:{pmac_mac}")

    def _handle_trap(self, frame: EthernetFrame) -> None:
        trap = self._traps.get(frame.dst)
        if trap is None:
            return
        ip, new_pmac = trap
        # Unicast gratuitous ARP back to the (stale) sender, rate-limited.
        key = (frame.dst, frame.src)
        last = self._trap_last_garp.get(key, -1.0)
        if self.sim.now - last >= self.config.trap_garp_interval_s:
            self._trap_last_garp[key] = self.sim.now
            update = ArpPacket.reply(new_pmac, ip, frame.src, IPv4Address(0))
            self.switch.inject(EthernetFrame(frame.src, new_pmac,
                                             ETHERTYPE_ARP, update))
        if self.config.forward_on_trap:
            forwarded = frame.copy()
            forwarded.dst = new_pmac
            self.switch.inject(forwarded)

    def _emit_gratuitous(self, ip: IPv4Address, pmac: MacAddress) -> None:
        announcement = ArpPacket.gratuitous(pmac, ip)
        for port_index in self.ldp.host_ports:
            self.switch.ports[port_index].send(
                EthernetFrame(BROADCAST_MAC, pmac, ETHERTYPE_ARP, announcement))
