"""Fabric-manager multicast state and tree computation (paper §3.5/§3.6.1).

The fabric manager learns receivers from relayed IGMP joins and senders
from edge switches' multicast table misses, picks a single core as the
rendezvous point, and installs one flow entry per on-tree switch mapping
the group MAC to the exact output-port set. On any membership or fault
change the tree is recomputed and the difference (installs/removals) is
pushed — this is what bounds the loss window in Fig. 12.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.net.addresses import IPv4Address
from repro.portland.topology_view import FabricView

#: Callbacks the fabric manager provides: install(switch_id, group, ports)
#: and remove(switch_id, group).
InstallFn = Callable[[int, IPv4Address, tuple[int, ...]], None]
RemoveFn = Callable[[int, IPv4Address], None]


@dataclass
class GroupState:
    """Per-group membership and the currently installed tree."""

    group: IPv4Address
    #: (edge_id, port) -> set of member host IPs (to handle leaves).
    members: dict[tuple[int, int], set[int]] = field(default_factory=dict)
    sender_edges: set[int] = field(default_factory=set)
    core: int | None = None
    #: switch_id -> installed output ports.
    installed: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def member_edges(self) -> dict[int, set[int]]:
        """edge_id -> set of member host ports."""
        edges: dict[int, set[int]] = {}
        for (edge_id, port), hosts in self.members.items():
            if hosts:
                edges.setdefault(edge_id, set()).add(port)
        return edges


class MulticastManager:
    """All multicast group state of the fabric manager."""

    def __init__(self, install: InstallFn, remove: RemoveFn) -> None:
        self._install = install
        self._remove = remove
        self.groups: dict[IPv4Address, GroupState] = {}
        #: Trees recomputed (measurement hook).
        self.recomputes = 0

    # ------------------------------------------------------------------
    # Events

    def on_membership(self, view: FabricView, edge_id: int, port: int,
                      group: IPv4Address, join: bool, host_ip: IPv4Address) -> None:
        """A relayed IGMP join/leave."""
        state = self.groups.setdefault(group, GroupState(group))
        key = (edge_id, port)
        hosts = state.members.setdefault(key, set())
        if join:
            changed = host_ip.value not in hosts
            hosts.add(host_ip.value)
        else:
            changed = host_ip.value in hosts
            hosts.discard(host_ip.value)
            if not hosts:
                del state.members[key]
        # Duplicate joins arrive constantly (agents re-relay membership on
        # every soft-state refresh); only real changes cost a recompute.
        if changed:
            self.recompute(view, group)

    def on_sender(self, view: FabricView, edge_id: int,
                  group: IPv4Address) -> None:
        """An edge switch reported an unknown-group sender."""
        state = self.groups.setdefault(group, GroupState(group))
        if edge_id not in state.sender_edges:
            state.sender_edges.add(edge_id)
        self.recompute(view, group)

    def on_topology_change(self, view: FabricView) -> None:
        """The fault matrix changed: repair every group whose installed
        tree crosses a dead link (or that could now use a better one)."""
        for group in list(self.groups):
            self.recompute(view, group)

    # ------------------------------------------------------------------
    # Tree computation

    def recompute(self, view: FabricView, group: IPv4Address) -> None:
        """Recompute and (re)install the tree for one group."""
        state = self.groups.get(group)
        if state is None:
            return
        self.recomputes += 1
        wanted = self._compute_tree(view, state)
        self._apply(state, wanted)

    def _compute_tree(self, view: FabricView,
                      state: GroupState) -> dict[int, tuple[int, ...]]:
        member_edges = state.member_edges()
        involved_edges = set(member_edges) | set(state.sender_edges)
        if not involved_edges:
            return {}
        pods: set[int] = set()
        for edge_id in involved_edges:
            pod = view.pod(edge_id)
            if pod is None:
                return {}
            pods.add(pod)

        core, pod_aggs = self._choose_core(view, state.group, pods,
                                           member_edges, involved_edges)
        if core is None:
            return {}
        state.core = core

        ports: dict[int, set[int]] = {}

        def add(switch_id: int, port: int | None) -> None:
            if port is not None:
                ports.setdefault(switch_id, set()).add(port)

        for pod in pods:
            agg = pod_aggs[pod]
            # Core fans down to the pod's chosen aggregation switch.
            add(core, view.port_toward(core, agg))
            # Aggregation fans up to the core and down to member edges.
            add(agg, view.port_toward(agg, core))
            for edge_id in involved_edges:
                if view.pod(edge_id) != pod:
                    continue
                if edge_id in member_edges:
                    add(agg, view.port_toward(agg, edge_id))
                # Every involved edge (member or sender) points up at
                # the pod's tree aggregation switch.
                add(edge_id, view.port_toward(edge_id, agg))
                for host_port in member_edges.get(edge_id, ()):
                    add(edge_id, host_port)
        return {sid: tuple(sorted(pset)) for sid, pset in ports.items()}

    def _choose_core(self, view: FabricView, group: IPv4Address,
                     pods: set[int], member_edges: dict[int, set[int]],
                     involved_edges: set[int]):
        """Deterministically pick a core that can reach every involved
        pod over alive links, and the aggregation switch per pod."""
        cores = sorted(view.cores(),
                       key=lambda c: zlib.crc32(f"{group}/{c}".encode()))
        for core in cores:
            pod_aggs: dict[int, int] = {}
            feasible = True
            for pod in sorted(pods):
                agg = self._choose_agg(view, core, pod, member_edges,
                                       involved_edges)
                if agg is None:
                    feasible = False
                    break
                pod_aggs[pod] = agg
            if feasible:
                return core, pod_aggs
        return None, {}

    def _choose_agg(self, view: FabricView, core: int, pod: int,
                    member_edges: dict[int, set[int]],
                    involved_edges: set[int]) -> int | None:
        pod_edges = [e for e in involved_edges if view.pod(e) == pod]
        for agg in sorted(view.aggs_in_pod(pod)):
            if not view.alive(core, agg):
                continue
            if all(view.alive(agg, edge) for edge in pod_edges):
                return agg
        return None

    def _apply(self, state: GroupState,
               wanted: dict[int, tuple[int, ...]]) -> None:
        for switch_id in list(state.installed):
            if switch_id not in wanted:
                self._remove(switch_id, state.group)
                del state.installed[switch_id]
        for switch_id, ports in wanted.items():
            if state.installed.get(switch_id) != ports:
                self._install(switch_id, state.group, ports)
                state.installed[switch_id] = ports
