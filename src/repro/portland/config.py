"""Tunable parameters of the PortLand control plane.

Defaults follow the paper's testbed behaviour: LDMs double as liveness
probes with a detection time of ``ldm_period_s * miss_threshold`` ≈
50 ms, which (plus reporting and re-installation) lands single-failure
convergence in the paper's 60–80 ms band.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PortlandConfig:
    """All knobs for LDP, the agents, and the fabric manager."""

    #: LDM beacon period.
    ldm_period_s: float = 0.010
    #: Consecutive missed LDMs before a neighbour is declared dead.
    miss_threshold: int = 5
    #: How long a wired-but-silent port must stay silent before an edge
    #: switch concludes it faces a host (multiples of the LDM period).
    edge_detect_periods: float = 3.0
    #: How long an edge waits for position acks before retrying.
    proposal_timeout_s: float = 0.030
    #: Lifetime of a tentative (unconfirmed) position grant at an
    #: aggregation switch.
    grant_ttl_s: float = 0.200

    #: Switch software (packet-in) path latency.
    agent_delay_s: float = 50e-6
    #: Per-switch forwarding decision-cache capacity (0 disables the
    #: fast path and forces the full LPM walk on every packet).
    decision_cache_entries: int = 4096
    #: Per-ingress-switch compiled-path cache capacity (0 — the default —
    #: disables end-to-end cut-through transit). When enabled, cached
    #: flows are delivered by one composite event that skips per-hop
    #: queueing/contention; turn it on for experiments where forwarding
    #: throughput matters more than in-fabric queueing fidelity (see
    #: docs/PERF.md).
    path_cache_entries: int = 0
    #: Flow-level (fluid) simulation mode: the builder attaches a
    #: :class:`repro.flows.FlowEngine` to the fabric, which advances
    #: flows as max-min fair *rates* over compiled hop lists instead of
    #: per-frame events (see ``docs/FLOWS.md``). Forces the compiled-path
    #: cache on (with :data:`~repro.switching.path_cache.DEFAULT_PATH_CAPACITY`
    #: when ``path_cache_entries`` is 0) — flow path resolution and
    #: invalidation ride the same machinery as cut-through transit.
    #: ``"hybrid"`` additionally couples the two executors through shared
    #: ``Link`` capacity: fluid allocations slow frame serialization on
    #: the links they cross, and measured frame load (epoch EWMA) shrinks
    #: the capacity the fluid water-filling distributes — one run can
    #: carry 10k+ background fluid flows under frame-level foreground
    #: flows of interest.
    flow_mode: bool | str = False
    #: RTT-aware fluid TCP model for *greedy* fluid flows (demand_bps
    #: None): handshake setup latency, cwnd ramp bounded by the resolved
    #: hop list's RTT, window cut to the share's BDP on bottleneck
    #: saturation, and a FIN drain tail — so fluid FCTs converge to what
    #: the frame path's TCP stack measures instead of jumping instantly
    #: to max-min rates. Demand-limited (CBR) flows are never affected.
    fluid_tcp: bool = True
    #: Hybrid-mode utilization epoch: how often the engine samples frame
    #: bytes per direction to refresh the frame-load EWMA (and how fast
    #: fluid capacity reacts to foreground bursts). Only read when
    #: ``flow_mode == "hybrid"``.
    hybrid_epoch_s: float = 0.005
    #: Debounce for neighbor reports to the fabric manager.
    report_debounce_s: float = 0.005

    #: Control-network link parameters (switch <-> fabric manager).
    control_rate_bps: float = 1_000_000_000.0
    control_delay_s: float = 20e-6

    #: Fabric-manager per-message service time (one CPU core).
    fm_service_time_s: float = 25e-6
    #: Number of fabric-manager shards (0 or 1 = the classic single FM).
    #: With N > 1 the builder wires an :class:`~repro.portland.fm_shard.
    #: FmShardCluster`: per-pod shards own slices of the IP→PMAC registry
    #: and the switch control links, a policy coordinator owns the
    #: topology view / fault matrix / override push, and each server is
    #: its own single-server queue with its own ``fm_service_time_s``
    #: accounting (see docs/PROTOCOLS.md).
    fm_shards: int = 0
    #: Override-push batching window. 0 (default) pushes FaultUpdate /
    #: FaultClear immediately on every view change, exactly as before;
    #: > 0 coalesces all changes arriving within the window into one
    #: recompute + one diff per convergence round, so a switch sees at
    #: most one update per prefix per round instead of one per event.
    fm_batch_interval_s: float = 0.0
    #: Incremental override recomputation: on a fault-matrix or wiring
    #: change, re-derive only the destination prefixes whose reachability
    #: inputs the change touches (plus the changed switch's own rows)
    #: instead of recomputing every edge prefix. Off by default on the
    #: classic FM (bit-identical full recompute); the sharded
    #: coordinator enables whatever this says.
    fm_incremental: bool = False
    #: Period of the agents' soft-state refresh (neighbor report, host
    #: re-registration, multicast membership, outstanding failures) —
    #: what lets a restarted fabric manager rebuild all of its state.
    soft_state_refresh_s: float = 2.0

    #: After VM migration, also push gratuitous ARPs to every edge switch
    #: (proactive invalidation) in addition to the old-edge trap.
    proactive_garp: bool = False
    #: Whether the old edge forwards trapped packets on to the new PMAC.
    forward_on_trap: bool = True
    #: Min interval between unicast gratuitous ARPs per stale sender.
    trap_garp_interval_s: float = 0.050
