"""The out-of-band control network: switch ⇄ fabric-manager links.

The paper runs OpenFlow over a separate control network; we model it as
a star of dedicated point-to-point links from every switch's control
port to the fabric manager, with explicit rate and latency, so control
round-trips (ARP resolution, fault notification) cost real simulated
time and control load is measurable in wire bytes.
"""

from __future__ import annotations

from repro.net.link import Link
from repro.portland.agent import PortlandAgent
from repro.portland.config import PortlandConfig
from repro.portland.fabric_manager import FabricManager
from repro.sim.simulator import Simulator


class ControlNetwork:
    """Wires agents to one fabric manager."""

    def __init__(self, sim: Simulator, config: PortlandConfig | None = None,
                 fabric_manager: FabricManager | None = None,
                 scheme=None) -> None:
        self.sim = sim
        self.config = config or PortlandConfig()
        if fabric_manager is None:
            if self.config.fm_shards > 1:
                from repro.portland.fm_shard import FmShardCluster
                fabric_manager = FmShardCluster(sim, self.config,
                                                scheme=scheme)
            else:
                fabric_manager = FabricManager(sim, self.config,
                                               scheme=scheme)
        self.fabric_manager = fabric_manager
        self.links: list[Link] = []
        #: switch id -> its control link (campaigns partition per switch).
        self.links_by_switch: dict[int, Link] = {}

    def connect(self, agent: PortlandAgent) -> Link:
        """Create the control link for one switch agent."""
        switch_port = agent.switch.attach_control_port()
        fm_port = self.fabric_manager.attach_switch(agent.switch_id,
                                                    name=agent.switch.name)
        link = Link(
            self.sim,
            switch_port,
            fm_port,
            rate_bps=self.config.control_rate_bps,
            delay_s=self.config.control_delay_s,
            name=f"ctl:{agent.switch.name}",
        )
        agent.fm_mac = self.fabric_manager.mac_for(agent.switch_id)
        self.links.append(link)
        self.links_by_switch[agent.switch_id] = link
        return link
